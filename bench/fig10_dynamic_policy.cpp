// Figure 10: dynamic policy enforcement with job arrivals. Tenant A (VGG)
// occupies the cluster alone; B (GPT) arrives at t1 and C (GPT) at t2, all
// sharing under FFA. At t3 the administrator prioritises A with PFA
// (reserving one spine route); at t4 they further prioritise B over C with
// time-window traffic scheduling. The plot is each tenant's training
// throughput over time, normalised to its steady-state value under FFA with
// all three tenants running.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

namespace {

using namespace mccs;

constexpr Time kT1 = 8.0;    // B arrives
constexpr Time kT2 = 16.0;   // C arrives
constexpr Time kT3 = 28.0;   // PFA for A
constexpr Time kT4 = 40.0;   // TS: B over C
constexpr Time kEnd = 52.0;
constexpr Time kWindow = 2.0;  // throughput sampling window

workload::TrainingModelSpec vgg() { return workload::vgg19_data_parallel(); }
workload::TrainingModelSpec gpt() {
  auto m = workload::gpt27b_tensor_parallel();
  m.layers = 8;
  return m;
}

struct Timeline {
  std::vector<double> a, b, c;  // iterations completed per window
};

Timeline run(bool enact_policies) {
  bench::Harness h =
      bench::make_harness(bench::Scheme::kMccs, cluster::make_testbed(), 77);
  svc::Fabric& fabric = *h.fabric;
  policy::Controller& controller = *h.controller;

  auto job_a = std::make_unique<workload::TrainingJob>(
      fabric, AppId{1}, std::vector<GpuId>{GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}},
      vgg(), workload::TrainingJob::Options{.iterations = 4000});
  auto job_b = std::make_unique<workload::TrainingJob>(
      fabric, AppId{2}, std::vector<GpuId>{GpuId{2}, GpuId{6}}, gpt(),
      workload::TrainingJob::Options{.iterations = 4000});
  auto job_c = std::make_unique<workload::TrainingJob>(
      fabric, AppId{3}, std::vector<GpuId>{GpuId{3}, GpuId{7}}, gpt(),
      workload::TrainingJob::Options{.iterations = 4000});

  job_a->start();
  fabric.loop().schedule_at(kT1, [&] { job_b->start(); });
  fabric.loop().schedule_at(kT2, [&] {
    job_c->start();
    // Arrival rebalance (FFA) happens automatically through the provider
    // hook; nothing else until t3.
  });
  if (enact_policies) {
    fabric.loop().schedule_at(kT3, [&] {
      controller.set_flow_policy(policy::Controller::FlowPolicy::kPfa);
      controller.set_high_priority(AppId{1});
      controller.set_reserved_routes({0});
      controller.rebalance();
    });
    fabric.loop().schedule_at(kT4, [&] {
      workload::run_periodic_traffic_scheduling(fabric, controller, *job_b,
                                                {AppId{3}});
    });
  }
  fabric.loop().run_while_pending([&] { return fabric.loop().now() >= kEnd; });

  Timeline tl;
  for (Time w = 0; w + kWindow <= kEnd; w += kWindow) {
    tl.a.push_back(job_a->iterations_in_window(w, w + kWindow));
    tl.b.push_back(job_b->iterations_in_window(w, w + kWindow));
    tl.c.push_back(job_c->iterations_in_window(w, w + kWindow));
  }
  return tl;
}

double steady_mean(const std::vector<double>& xs, Time from, Time to) {
  double sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Time w = static_cast<double>(i) * kWindow;
    if (w >= from && w < to) {
      sum += xs[i];
      ++n;
    }
  }
  return n > 0 ? sum / n : 1.0;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: throughput with dynamic arrivals and QoS ===\n\n");
  std::printf("t1=%.0fs B arrives | t2=%.0fs C arrives | t3=%.0fs PFA(A) |"
              " t4=%.0fs TS(B over C)\n\n",
              kT1, kT2, kT3, kT4);

  // FFA baseline for normalisation: all three running, no PFA/TS.
  const Timeline ffa = run(false);
  const double norm_a = steady_mean(ffa.a, kT2 + 1, kEnd);
  const double norm_b = steady_mean(ffa.b, kT2 + 1, kEnd);
  const double norm_c = steady_mean(ffa.c, kT2 + 1, kEnd);

  const Timeline tl = run(true);
  std::printf("%-8s %10s %10s %10s\n", "time_s", "A", "B", "C");
  for (std::size_t i = 0; i < tl.a.size(); ++i) {
    const Time w = static_cast<double>(i) * kWindow;
    std::printf("%-8.0f %10.2f %10.2f %10.2f\n", w, tl.a[i] / norm_a,
                tl.b[i] / norm_b, tl.c[i] / norm_c);
  }

  const double a_before = steady_mean(tl.a, kT2 + 1, kT3) / norm_a;
  const double a_after = steady_mean(tl.a, kT3 + 1, kT4) / norm_a;
  const double b_before = steady_mean(tl.b, kT3 + 1, kT4) / norm_b;
  const double b_after = steady_mean(tl.b, kT4 + 1, kEnd) / norm_b;
  const double a_solo = steady_mean(tl.a, 1, kT1) / norm_a;
  const double a_with_b = steady_mean(tl.a, kT1 + 1, kT2) / norm_a;
  std::printf("\nA solo: %.2f -> after B arrives: %.2f -> after C arrives: %.2f"
              " (paper: -17%%, then -14%% more)\n",
              a_solo, a_with_b, a_before);
  std::printf("PFA at t3 improves A: %.2f -> %.2f (%+.0f%%; paper +13%%)\n",
              a_before, a_after, 100.0 * (a_after / a_before - 1.0));
  std::printf("TS at t4 improves B: %.2f -> %.2f (%+.0f%%; paper +18%%)\n",
              b_before, b_after, 100.0 * (b_after / b_before - 1.0));
  return 0;
}
