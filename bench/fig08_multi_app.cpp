// Figure 8: multiple applications sharing the testbed — 128 MB AllReduce bus
// bandwidth per application in 4 setups, under NCCL / NCCL(OR) / MCCS(-FFA)
// / MCCS. Bus bandwidth (= algbw * 2(n-1)/n) reflects per-app hardware
// bandwidth independent of participant count; the aggregated value shows
// network utilisation and the per-app split shows fairness (§6.3).
//
// Setups (Fig. 5b; exact letter grids are ambiguous in the paper text — the
// interpretation below satisfies every constraint §6.3 states, see
// DESIGN.md):
//   S1: A and B each use 1 GPU + 1 vNIC on every host.
//   S2: A uses 1 GPU on every host; B the second GPUs of rack 0; C the
//       second GPUs of rack 1.
//   S3: A uses both GPUs + both vNICs of one host per rack; B and C use one
//       GPU each on the remaining hosts (A's per-host NIC share is 2x).
//   S4: A and B each use both GPUs of one host per rack.
//
// GPU lists are given in the tenants' (rack-interleaved) rank order; the
// provider-side schemes re-order them.

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;
using bench::Scheme;

constexpr Bytes kSize = 128_MB;
constexpr int kIters = 8;
constexpr int kWarmup = 2;
constexpr int kTrials = 6;

struct AppSpec {
  std::string name;
  AppId id;
  std::vector<GpuId> gpus;
};

struct SetupSpec {
  std::string name;
  std::vector<AppSpec> apps;
};

std::vector<SetupSpec> make_setups() {
  std::vector<SetupSpec> setups;
  // Hosts: H0{0,1} H1{2,3} rack0; H2{4,5} H3{6,7} rack1. User rank order
  // interleaves the racks (H0, H2, H1, H3).
  setups.push_back({"Setup 1",
                    {{"A", AppId{1}, {GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}}},
                     {"B", AppId{2}, {GpuId{1}, GpuId{5}, GpuId{3}, GpuId{7}}}}});
  setups.push_back({"Setup 2",
                    {{"A", AppId{1}, {GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}}},
                     {"B", AppId{2}, {GpuId{1}, GpuId{3}}},
                     {"C", AppId{3}, {GpuId{5}, GpuId{7}}}}});
  setups.push_back({"Setup 3",
                    {{"A", AppId{1}, {GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}}},
                     {"B", AppId{2}, {GpuId{2}, GpuId{6}}},
                     {"C", AppId{3}, {GpuId{3}, GpuId{7}}}}});
  setups.push_back({"Setup 4",
                    {{"A", AppId{1}, {GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}}},
                     {"B", AppId{2}, {GpuId{2}, GpuId{3}, GpuId{6}, GpuId{7}}}}});
  return setups;
}

/// One application's back-to-back AllReduce loop running concurrently with
/// the other tenants.
class AppLoop {
 public:
  AppLoop(svc::Fabric& fabric, const AppSpec& spec) : fabric_(&fabric), spec_(spec) {}

  void init() {
    comm_ = bench::bench_create_comm(*fabric_, spec_.id, spec_.gpus);
    const std::size_t count = kSize / sizeof(float);
    for (GpuId g : spec_.gpus) {
      svc::Shim& shim = fabric_->connect(spec_.id, g);
      ranks_.push_back(Rank{&shim, &shim.create_app_stream(),
                            shim.alloc(count * sizeof(float))});
    }
  }

  void run() {
    issue_round();
  }

  /// Keep issuing after our own measurement quota so slower tenants stay
  /// under realistic contention; the driver stops everyone at once.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool done() const {
    return static_cast<int>(durations_.size()) >= kIters;
  }

  [[nodiscard]] std::vector<double> busbw_samples() const {
    std::vector<double> out;
    const int n = static_cast<int>(spec_.gpus.size());
    for (int i = 0; i < kIters && i < static_cast<int>(durations_.size()); ++i) {
      out.push_back(to_gibps(coll::bus_bandwidth(coll::CollectiveKind::kAllReduce,
                                                 n, kSize, durations_[static_cast<std::size_t>(i)])));
    }
    return out;
  }

 private:
  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr buf;
  };

  void issue_round() {
    if (stopped_) return;
    round_start_ = fabric_->loop().now();
    completions_ = 0;
    const std::size_t count = kSize / sizeof(float);
    for (Rank& r : ranks_) {
      r.shim->all_reduce(comm_, r.buf, r.buf, count, coll::DataType::kFloat32,
                         coll::ReduceOp::kSum, *r.stream, [this](Time done) {
                           if (++completions_ ==
                               static_cast<int>(ranks_.size())) {
                             if (iter_ >= kWarmup) {
                               durations_.push_back(done - round_start_);
                             }
                             ++iter_;
                             issue_round();
                           }
                         });
    }
  }

  svc::Fabric* fabric_;
  AppSpec spec_;
  CommId comm_;
  std::vector<Rank> ranks_;
  int iter_ = 0;
  int completions_ = 0;
  bool stopped_ = false;
  Time round_start_ = 0.0;
  std::vector<Time> durations_;
};

}  // namespace

int main() {
  std::printf("=== Figure 8: multi-application bus bandwidth (128 MB AllReduce) ===\n\n");
  const std::vector<Scheme> schemes = {Scheme::kNccl, Scheme::kNcclOr,
                                       Scheme::kMccsNoFa, Scheme::kMccs};

  for (const SetupSpec& setup : make_setups()) {
    std::printf("--- %s (bus bandwidth, GB/s; mean [p2.5, p97.5]) ---\n",
                setup.name.c_str());
    std::printf("%-10s", "scheme");
    for (const AppSpec& a : setup.apps) std::printf("  %-22s", a.name.c_str());
    std::printf("  %s\n", "aggregate");

    for (Scheme scheme : schemes) {
      std::map<std::string, std::vector<double>> samples;
      for (int trial = 0; trial < kTrials; ++trial) {
        bench::Harness h =
            bench::make_harness(scheme, cluster::make_testbed(), 500 + 13 * trial);
        std::vector<std::unique_ptr<AppLoop>> loops;
        for (const AppSpec& a : setup.apps) {
          loops.push_back(std::make_unique<AppLoop>(*h.fabric, a));
          loops.back()->init();
        }
        for (auto& l : loops) l->run();
        const bool ok = h.fabric->loop().run_while_pending([&] {
          for (const auto& l : loops) {
            if (!l->done()) return false;
          }
          return true;
        });
        MCCS_CHECK(ok, "multi-app loop stalled");
        for (auto& l : loops) l->stop();
        h.fabric->loop().run();  // drain in-flight rounds
        for (std::size_t i = 0; i < loops.size(); ++i) {
          auto s = loops[i]->busbw_samples();
          auto& dst = samples[setup.apps[i].name];
          dst.insert(dst.end(), s.begin(), s.end());
        }
      }

      std::printf("%-10s", bench::scheme_name(scheme));
      double aggregate = 0.0;
      for (const AppSpec& a : setup.apps) {
        auto& s = samples[a.name];
        // Mean first, over insertion order (the goldens pin the accumulation
        // order), then one in-place sort shared by both percentiles.
        const double m = mean(s);
        sort_samples(s);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%6.2f [%5.2f,%5.2f]", m,
                      percentile_sorted(s, 2.5), percentile_sorted(s, 97.5));
        std::printf("  %-22s", buf);
        aggregate += m;
      }
      std::printf("  %6.2f\n", aggregate);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper claims (§6.3): MCCS has the highest aggregate and a fair split\n"
      "(equal shares in setups 1/2/4; 2:1:1 in setup 3, where ECMP-based\n"
      "MCCS(-FFA) drifts to ~1.7:1); MCCS outperforms NCCL by ~75%% on average.\n");
  return 0;
}
