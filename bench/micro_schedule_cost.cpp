// Microbenchmark: controller schedule-computation cost (§6.5).
//
// "We observed that the schedule computation takes within 1ms on average
// for a job size of 32 GPUs and scales linearly with the job size." This
// bench measures assign_flows (FFA) wall time on the 768-GPU cluster for
// job sizes 8..512 GPUs.

#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "netsim/routing.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"

namespace {

using namespace mccs;

void BM_FfaScheduleCost(benchmark::State& state) {
  static const cluster::Cluster cl = cluster::make_large_sim_cluster();
  static net::Routing routing(cl.topology());

  const int ngpus = static_cast<int>(state.range(0));
  std::vector<GpuId> gpus;
  for (int g = 0; g < ngpus; ++g) gpus.push_back(GpuId{static_cast<std::uint32_t>(g)});
  const auto strategy = policy::locality_aware_strategy(gpus, cl);
  policy::AssignItem item;
  item.comm = CommId{0};
  item.app = AppId{1};
  item.gpus_by_rank = &gpus;
  item.strategy = &strategy;

  for (auto _ : state) {
    auto routes = policy::assign_flows({item}, cl, routing);
    benchmark::DoNotOptimize(routes);
  }
}
BENCHMARK(BM_FfaScheduleCost)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_LocalityRingCost(benchmark::State& state) {
  static const cluster::Cluster cl = cluster::make_large_sim_cluster();
  const int ngpus = static_cast<int>(state.range(0));
  std::vector<GpuId> gpus;
  for (int g = 0; g < ngpus; ++g) gpus.push_back(GpuId{static_cast<std::uint32_t>(g)});
  for (auto _ : state) {
    auto order = policy::locality_aware_order(gpus, cl);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_LocalityRingCost)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
