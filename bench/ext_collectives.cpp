// Extension bench: the full primitive suite through the MCCS service, plus
// the plan compiler's algorithm diversity.
//
// The paper's prototype ports NCCL's ring AllReduce and AllGather and notes
// the rest are straightforward (§5). This repository implements the rest —
// ReduceScatter, Broadcast, Reduce (chain + tree), AllToAll, and P2P — and
// this bench characterises each one on the 8-GPU testbed under the full
// MCCS scheme (locality rings + FFA): large-message algorithm bandwidth and
// small-message latency, next to the nccl-tests bus-bandwidth view.
//
// Two JSON sections go to BENCH_compiler.json for the perf-tracking gates in
// scripts/check.sh:
//   * "algo"      — measured simulated time/busbw of every compiler-
//                   selectable AllReduce algorithm at three payload sizes;
//   * "selection" — the algorithm-choice pass over the controller's cost
//                   parameters for this fabric, next to the MEASURED ring and
//                   selected-algorithm times, so the claim "the compiler
//                   picks a non-ring algorithm somewhere, and it actually
//                   wins" is checked on every run.

#include <cstdio>
#include <vector>

#include "common.h"
#include "common/check.h"

namespace {

using namespace mccs;

struct Row {
  const char* name;
  coll::CollectiveKind kind;
};

double run_one(coll::CollectiveKind kind, Bytes size, Time* latency_out) {
  bench::Harness h =
      bench::make_harness(bench::Scheme::kMccs, cluster::make_testbed(), 9);
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const CommId comm = bench::bench_create_comm(*h.fabric, app, gpus);
  const auto durations = bench::run_collective_loop(*h.fabric, app, gpus, comm,
                                                    kind, size, 2, 6);
  const double mean_t =
      mean(durations);
  if (latency_out != nullptr) *latency_out = mean_t;
  return to_gibps(coll::algorithm_bandwidth(size, mean_t));
}

/// Simulated time of one AllReduce under a forced algorithm (locality rings,
/// same pipeline heuristic as the ring-vs-tree ablation).
Time run_algorithm(coll::Algorithm algo, Bytes size) {
  svc::Fabric::Options options;
  options.seed = 3;
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};
  const std::size_t tree_chunks = size <= 1_MB ? 1 : 8;
  fabric.set_strategy_provider(
      [&fabric, algo, tree_chunks](const svc::CommInfo& info) {
        svc::CommStrategy s =
            policy::locality_aware_strategy(info.gpus, fabric.cluster());
        s.algorithm = algo;
        s.tree_pipeline_chunks = tree_chunks;
        return s;
      });
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);
  const auto durations = bench::run_collective_loop(
      fabric, app, gpus, comm, coll::CollectiveKind::kAllReduce, size, 2, 6);
  return mean(durations);
}

void bench_algorithms(std::FILE* json) {
  std::printf("%-10s %12s %12s %12s %12s\n", "size", "ring us", "tree us",
              "dbtree us", "pairwise us");
  for (const Bytes size : {16_KB, 1_MB, 128_MB}) {
    double us[4] = {};
    int i = 0;
    for (const coll::Algorithm algo :
         coll::selectable_algorithms(coll::CollectiveKind::kAllReduce)) {
      const Time t = run_algorithm(algo, size);
      us[i++] = t * 1e6;
      const double busbw =
          to_gibps(coll::algorithm_bandwidth(size, t)) *
          coll::bus_bandwidth_factor(coll::CollectiveKind::kAllReduce, 8);
      std::fprintf(json,
                   "{\"bench\":\"ext_collectives\",\"section\":\"algo\","
                   "\"kind\":\"AllReduce\",\"algo\":\"%s\",\"bytes\":%llu,"
                   "\"sim_us\":%.2f,\"busbw_gbps\":%.3f}\n",
                   coll::algorithm_name(algo),
                   static_cast<unsigned long long>(size), t * 1e6, busbw);
    }
    std::printf("%-10llu %12.1f %12.1f %12.1f %12.1f\n",
                static_cast<unsigned long long>(size), us[0], us[1], us[2],
                us[3]);
  }
}

void bench_selection(std::FILE* json) {
  // The controller's cost parameters for this fabric (alpha from the
  // service's per-step constants, beta from the testbed NIC rate).
  svc::Fabric fabric{cluster::make_testbed()};
  policy::Controller ctl(fabric);
  const coll::CostParams p = ctl.cost_params();
  std::printf("cost model: alpha %.1f us, beta %.3f ns/KB\n\n", p.alpha * 1e6,
              p.beta * 1e9 * 1024);
  std::printf("%-10s %10s %14s %14s %14s %14s\n", "size", "selected",
              "model sel us", "model ring us", "sim sel us", "sim ring us");
  for (const Bytes size : {4_KB, 16_KB, 64_KB, 256_KB, 1_MB, 16_MB, 128_MB}) {
    const coll::Algorithm sel = coll::choose_algorithm(
        coll::CollectiveKind::kAllReduce, 8, size, p);
    const Time model_sel =
        coll::algorithm_cost(sel, coll::CollectiveKind::kAllReduce, 8, size, p);
    const Time model_ring = coll::algorithm_cost(
        coll::Algorithm::kRing, coll::CollectiveKind::kAllReduce, 8, size, p);
    const Time sim_ring = run_algorithm(coll::Algorithm::kRing, size);
    const Time sim_sel =
        sel == coll::Algorithm::kRing ? sim_ring : run_algorithm(sel, size);
    std::printf("%-10llu %10s %14.1f %14.1f %14.1f %14.1f\n",
                static_cast<unsigned long long>(size),
                coll::algorithm_name(sel), model_sel * 1e6, model_ring * 1e6,
                sim_sel * 1e6, sim_ring * 1e6);
    std::fprintf(json,
                 "{\"bench\":\"ext_collectives\",\"section\":\"selection\","
                 "\"kind\":\"AllReduce\",\"bytes\":%llu,\"selected\":\"%s\","
                 "\"model_selected_us\":%.2f,\"model_ring_us\":%.2f,"
                 "\"sim_selected_us\":%.2f,\"sim_ring_us\":%.2f}\n",
                 static_cast<unsigned long long>(size),
                 coll::algorithm_name(sel), model_sel * 1e6, model_ring * 1e6,
                 sim_sel * 1e6, sim_ring * 1e6);
  }
}

}  // namespace

int main() {
  std::printf("=== Extension: full collective suite on MCCS (8 GPUs) ===\n\n");
  const std::vector<Row> rows = {
      {"AllReduce", coll::CollectiveKind::kAllReduce},
      {"AllGather", coll::CollectiveKind::kAllGather},
      {"ReduceScatter", coll::CollectiveKind::kReduceScatter},
      {"Broadcast", coll::CollectiveKind::kBroadcast},
      {"Reduce", coll::CollectiveKind::kReduce},
      {"AllToAll", coll::CollectiveKind::kAllToAll},
      {"Gather", coll::CollectiveKind::kGather},
      {"Scatter", coll::CollectiveKind::kScatter},
  };
  std::printf("%-15s %16s %16s %16s\n", "primitive", "algbw GB/s@128MB",
              "busbw GB/s@128MB", "latency us@16KB");
  for (const Row& row : rows) {
    const double algbw = run_one(row.kind, 128_MB, nullptr);
    Time lat = 0;
    run_one(row.kind, 16_KB, &lat);
    std::printf("%-15s %16.2f %16.2f %16.1f\n", row.name, algbw,
                algbw * coll::bus_bandwidth_factor(row.kind, 8), lat * 1e6);
  }
  std::printf("\nBus bandwidth uses the nccl-tests normalisation; comparable\n"
              "values across primitives indicate the datapath drives the NICs\n"
              "equally well regardless of the algorithm shape.\n");

  std::FILE* json = std::fopen("BENCH_compiler.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_compiler.json");
  std::printf("\n-- compiled AllReduce algorithms (simulated) --\n");
  bench_algorithms(json);
  std::printf("\n-- algorithm-choice pass vs measurement --\n");
  bench_selection(json);
  std::fclose(json);
  std::printf("\nBENCH_compiler.json written.\n");
  return 0;
}
