// Extension bench: the full primitive suite through the MCCS service.
//
// The paper's prototype ports NCCL's ring AllReduce and AllGather and notes
// the rest are straightforward (§5). This repository implements the rest —
// ReduceScatter, Broadcast, Reduce (chain + tree), AllToAll, and P2P — and
// this bench characterises each one on the 8-GPU testbed under the full
// MCCS scheme (locality rings + FFA): large-message algorithm bandwidth and
// small-message latency, next to the nccl-tests bus-bandwidth view.

#include <cstdio>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;

struct Row {
  const char* name;
  coll::CollectiveKind kind;
};

double run_one(coll::CollectiveKind kind, Bytes size, Time* latency_out) {
  bench::Harness h =
      bench::make_harness(bench::Scheme::kMccs, cluster::make_testbed(), 9);
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const CommId comm = bench::bench_create_comm(*h.fabric, app, gpus);
  const auto durations = bench::run_collective_loop(*h.fabric, app, gpus, comm,
                                                    kind, size, 2, 6);
  const double mean_t =
      mean(durations);
  if (latency_out != nullptr) *latency_out = mean_t;
  return to_gibps(coll::algorithm_bandwidth(size, mean_t));
}

}  // namespace

int main() {
  std::printf("=== Extension: full collective suite on MCCS (8 GPUs) ===\n\n");
  const std::vector<Row> rows = {
      {"AllReduce", coll::CollectiveKind::kAllReduce},
      {"AllGather", coll::CollectiveKind::kAllGather},
      {"ReduceScatter", coll::CollectiveKind::kReduceScatter},
      {"Broadcast", coll::CollectiveKind::kBroadcast},
      {"Reduce", coll::CollectiveKind::kReduce},
      {"AllToAll", coll::CollectiveKind::kAllToAll},
      {"Gather", coll::CollectiveKind::kGather},
      {"Scatter", coll::CollectiveKind::kScatter},
  };
  std::printf("%-15s %16s %16s %16s\n", "primitive", "algbw GB/s@128MB",
              "busbw GB/s@128MB", "latency us@16KB");
  for (const Row& row : rows) {
    const double algbw = run_one(row.kind, 128_MB, nullptr);
    Time lat = 0;
    run_one(row.kind, 16_KB, &lat);
    std::printf("%-15s %16.2f %16.2f %16.1f\n", row.name, algbw,
                algbw * coll::bus_bandwidth_factor(row.kind, 8), lat * 1e6);
  }
  std::printf("\nBus bandwidth uses the nccl-tests normalisation; comparable\n"
              "values across primitives indicate the datapath drives the NICs\n"
              "equally well regardless of the algorithm shape.\n");
  return 0;
}
