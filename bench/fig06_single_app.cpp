// Figure 6: single-application algorithm bandwidth of AllGather and
// AllReduce on the testbed, 4-GPU (one GPU + one 50G vNIC per host) and
// 8-GPU (both GPUs + both vNICs) setups, data sizes 32 KB - 512 MB, for
// NCCL / NCCL(OR) / MCCS(-FA) / MCCS. Shaded areas in the paper are 95%
// intervals; we print mean and the 2.5/97.5 percentiles across ECMP-seed
// trials.
//
// Also prints the §6.2 in-text claims derived from the sweep:
//   * NCCL(OR) vs NCCL at 512 MB AllReduce (paper: +56% on 4 GPUs, +78% on 8);
//   * MCCS(-FA) overhead vs NCCL(OR) at 512 KB and 8 MB (paper: large at
//     512 KB, <=10% at 8 MB);
//   * MCCS vs NCCL average speedup over 8 MB-512 MB (paper: 1.6x / 2.4x).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;
using bench::Scheme;

const std::vector<Bytes> kSizes = {32_KB, 128_KB, 512_KB, 2_MB,
                                   8_MB,  32_MB,  128_MB, 512_MB};
const std::vector<Scheme> kSchemes = {Scheme::kNccl, Scheme::kNcclOr,
                                      Scheme::kMccsNoFa, Scheme::kMccs};

struct Cell {
  double mean = 0, lo = 0, hi = 0;
};

using Table = std::map<std::pair<int, Bytes>, Cell>;  // (scheme idx, size)

Table sweep(const std::vector<GpuId>& gpus, coll::CollectiveKind kind) {
  Table table;
  for (std::size_t si = 0; si < kSchemes.size(); ++si) {
    for (Bytes size : kSizes) {
      auto samples = bench::algbw_samples(kSchemes[si], cluster::make_testbed,
                                          gpus, kind, size, /*trials=*/10,
                                          /*iters=*/6);
      Cell c;
      // Mean over the original sample order (golden outputs pin the exact
      // accumulation order), then one in-place sort for both percentiles.
      c.mean = mccs::mean(samples);
      mccs::sort_samples(samples);
      c.lo = percentile_sorted(samples, 2.5);
      c.hi = percentile_sorted(samples, 97.5);
      table[{static_cast<int>(si), size}] = c;
    }
  }
  return table;
}

void print_table(const char* title, const Table& table) {
  std::printf("--- %s (algorithm bandwidth, GB/s; mean [p2.5, p97.5]) ---\n",
              title);
  std::printf("%-10s", "size");
  for (Scheme s : kSchemes) std::printf("  %-26s", bench::scheme_name(s));
  std::printf("\n");
  for (Bytes size : kSizes) {
    if (size >= 1_MB) {
      std::printf("%-10s", (std::to_string(size / 1_MB) + "MB").c_str());
    } else {
      std::printf("%-10s", (std::to_string(size / 1_KB) + "KB").c_str());
    }
    for (std::size_t si = 0; si < kSchemes.size(); ++si) {
      const Cell& c = table.at({static_cast<int>(si), size});
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%6.2f [%5.2f,%5.2f]", c.mean, c.lo, c.hi);
      std::printf("  %-26s", buf);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

double cell(const Table& t, Scheme s, Bytes size) {
  for (std::size_t si = 0; si < kSchemes.size(); ++si) {
    if (kSchemes[si] == s) return t.at({static_cast<int>(si), size}).mean;
  }
  return 0;
}

void print_claims(const char* setup, const Table& ar, const Table& ag) {
  std::printf("[%s] NCCL(OR) vs NCCL @512MB AllReduce: %+.0f%%\n", setup,
              100.0 * (cell(ar, Scheme::kNcclOr, 512_MB) /
                           cell(ar, Scheme::kNccl, 512_MB) -
                       1.0));
  std::printf("[%s] MCCS(-FA) vs NCCL(OR) @512KB AllReduce: %+.0f%%, @8MB: %+.1f%%\n",
              setup,
              100.0 * (cell(ar, Scheme::kMccsNoFa, 512_KB) /
                           cell(ar, Scheme::kNcclOr, 512_KB) -
                       1.0),
              100.0 * (cell(ar, Scheme::kMccsNoFa, 8_MB) /
                           cell(ar, Scheme::kNcclOr, 8_MB) -
                       1.0));
  double speedup = 0;
  int count = 0;
  for (Bytes size : {8_MB, 32_MB, 128_MB, 512_MB}) {
    speedup += cell(ar, Scheme::kMccs, size) / cell(ar, Scheme::kNccl, size);
    speedup += cell(ag, Scheme::kMccs, size) / cell(ag, Scheme::kNccl, size);
    count += 2;
  }
  std::printf("[%s] MCCS vs NCCL average speedup (8MB-512MB, AR+AG): %.2fx\n\n",
              setup, speedup / count);
}

}  // namespace

int main() {
  std::printf("=== Figure 6: single-application collective bandwidth ===\n\n");

  // User-assigned rank order: per-host ranks are contiguous (one process
  // group per host) but the host order interleaves the racks — the arbitrary
  // assignment a topology-blind tenant ends up with (§2.2). Hosts: H0,H1 in
  // rack 0; H2,H3 in rack 1; rank order visits H0,H2,H1,H3.
  const std::vector<GpuId> gpus4{GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}};
  const std::vector<GpuId> gpus8{GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5},
                                 GpuId{2}, GpuId{3}, GpuId{6}, GpuId{7}};

  const Table ag4 = sweep(gpus4, coll::CollectiveKind::kAllGather);
  print_table("(a) AllGather, 4-GPU", ag4);
  const Table ar4 = sweep(gpus4, coll::CollectiveKind::kAllReduce);
  print_table("(b) AllReduce, 4-GPU", ar4);
  const Table ag8 = sweep(gpus8, coll::CollectiveKind::kAllGather);
  print_table("(c) AllGather, 8-GPU", ag8);
  const Table ar8 = sweep(gpus8, coll::CollectiveKind::kAllReduce);
  print_table("(d) AllReduce, 8-GPU", ar8);

  std::printf("--- In-text claims (§6.2) ---\n");
  print_claims("4-GPU", ar4, ag4);
  print_claims("8-GPU", ar8, ag8);
  return 0;
}
