// Microbenchmark: failure detection and recovery under a single-link outage.
//
// A steady-state 4-rank cross-rack AllReduce loop runs with transport stall
// detection armed; mid-iteration the hottest leaf->spine fabric link goes
// down permanently (via workload::FaultPlan, the same scripted injector the
// tests use). Two recovery modes are measured:
//
//   rehash   — no controller: the transport's deadline + ECMP re-hash retry
//              ladder alone must move stalled chunks to the surviving spine;
//   reconfig — retries exhausted immediately (max_retries = 0), so the
//              transport escalates to the controller, which confirms the dead
//              link, re-runs flow assignment over surviving capacity, and
//              swaps routes through the Fig.-4 barrier.
//
// Reported per mode (all virtual/simulated seconds):
//   time_to_detect_s  — fault injection -> first retry (rehash) or the
//                       controller confirming the link dead (reconfig);
//   time_to_recover_s — fault injection -> the disrupted iteration completes;
//   goodput_retained  — healthy iteration time / degraded-steady-state
//                       iteration time (1.0 = no loss, 0.5 = half speed);
//   bit_correct       — every rank's result is exactly 4^rounds.
//
// Emits one JSON line per mode to BENCH_recovery.json; scripts/check.sh
// gates on the schema, on bit_correct, on a finite recovery time, and on
// goodput_retained >= 0.5.

#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/cluster.h"
#include "common.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/fault_plan.h"

namespace {

using namespace mccs;

constexpr std::size_t kCount = 1u << 20;  // floats per rank: 4 MiB payloads
constexpr int kWarmup = 2;                // connection setup + plan cache
constexpr int kHealthy = 3;               // measured fault-free iterations
constexpr int kDegraded = 4;              // measured post-recovery iterations
constexpr int kRounds = kWarmup + kHealthy + 1 + kDegraded;  // +1 disrupted

std::uint64_t total_retries(svc::Fabric& fabric) {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < fabric.cluster().host_count(); ++h) {
    const HostId host{static_cast<std::uint32_t>(h)};
    const auto& nics = fabric.cluster().host(host).nic_nodes;
    for (std::size_t nic = 0; nic < nics.size(); ++nic) {
      n += fabric.service(host).transport(static_cast<int>(nic)).stats().retries;
    }
  }
  return n;
}

std::uint64_t total_escalations(svc::Fabric& fabric) {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < fabric.cluster().host_count(); ++h) {
    const HostId host{static_cast<std::uint32_t>(h)};
    const auto& nics = fabric.cluster().host(host).nic_nodes;
    for (std::size_t nic = 0; nic < nics.size(); ++nic) {
      n += fabric.service(host)
               .transport(static_cast<int>(nic))
               .stats()
               .escalations;
    }
  }
  return n;
}

/// The leaf->spine link currently carrying the most traffic — guaranteed to
/// sit on an assigned route of the running collective.
LinkId hottest_fabric_uplink(svc::Fabric& fabric) {
  const net::Topology& topo = fabric.cluster().topology();
  LinkId victim{};
  double hottest = 0.0;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id{static_cast<std::uint32_t>(l)};
    if (topo.node(topo.link(id).src).kind != net::NodeKind::kLeafSwitch) continue;
    if (topo.node(topo.link(id).dst).kind != net::NodeKind::kSpineSwitch) continue;
    const double tp = fabric.network().link_throughput(id);
    if (tp > hottest) {
      hottest = tp;
      victim = id;
    }
  }
  MCCS_CHECK(victim.valid(), "no loaded fabric uplink to fail");
  return victim;
}

struct ModeResult {
  const char* mode = "?";
  double healthy_iter = 0.0;
  double disrupted_iter = 0.0;
  double degraded_iter = 0.0;
  double detect = -1.0;   ///< < 0 => never detected
  double recover = -1.0;  ///< < 0 => never recovered
  std::uint64_t retries = 0;
  std::uint64_t escalations = 0;
  int comms_reconfigured = 0;
  bool bit_correct = false;
};

ModeResult run_mode(bool with_controller) {
  svc::Fabric::Options opt;
  opt.config.chunk_deadline_slack = 4.0;
  opt.config.chunk_deadline_floor = micros(100);
  if (with_controller) opt.config.transport_max_retries = 0;
  svc::Fabric fabric{cluster::make_testbed(), opt};
  std::optional<policy::Controller> controller;
  if (with_controller) {
    controller.emplace(fabric);
    controller->attach();  // FFA explicit routes
    controller->enable_fault_recovery();
  }

  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);
  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr buf;
  };
  std::vector<Rank> ranks;
  for (GpuId g : gpus) {
    svc::Shim& shim = fabric.connect(app, g);
    Rank r{&shim, &shim.create_app_stream(), shim.alloc(kCount * sizeof(float))};
    for (auto& x : fabric.gpus().typed<float>(r.buf, kCount)) x = 1.0f;
    ranks.push_back(r);
  }

  sim::EventLoop& loop = fabric.loop();
  int remaining = 0;
  auto issue_round = [&] {
    remaining = static_cast<int>(ranks.size());
    for (Rank& r : ranks) {
      r.shim->all_reduce(comm, r.buf, r.buf, kCount, coll::DataType::kFloat32,
                         coll::ReduceOp::kSum, *r.stream,
                         [&remaining](Time) { --remaining; });
    }
  };
  // Drive the loop in short slices so the watcher can observe transport
  // counters at a fine virtual-time granularity (detection timestamping).
  auto drain_round = [&](const std::function<void()>& watch) {
    while (remaining > 0) {
      MCCS_CHECK(loop.size() > 0, "recovery loop stalled with no events");
      loop.run_until(loop.now() + micros(5));
      if (watch) watch();
    }
  };

  ModeResult res;
  res.mode = with_controller ? "reconfig" : "rehash";

  for (int i = 0; i < kWarmup; ++i) {
    issue_round();
    drain_round({});
  }
  Time t0 = loop.now();
  for (int i = 0; i < kHealthy; ++i) {
    issue_round();
    drain_round({});
  }
  res.healthy_iter = (loop.now() - t0) / kHealthy;

  // Disrupted iteration: fail the hottest uplink one third of the way in.
  issue_round();
  loop.run_until(loop.now() + res.healthy_iter / 3.0);
  const LinkId victim = hottest_fabric_uplink(fabric);
  workload::FaultPlan plan;
  plan.link_down(loop.now(), victim);  // never restored
  plan.schedule(fabric);
  const Time t_fault = loop.now();
  const std::uint64_t retries_before = total_retries(fabric);
  drain_round([&] {
    if (res.detect >= 0.0) return;
    if (with_controller) {
      if (controller->recovery_log().empty()) return;
      res.detect = controller->recovery_log().front().detected - t_fault;
    } else if (total_retries(fabric) > retries_before) {
      res.detect = loop.now() - t_fault;
    }
  });
  res.recover = loop.now() - t_fault;
  res.disrupted_iter = loop.now() - (t_fault - res.healthy_iter / 3.0);

  // Degraded steady state over the surviving capacity.
  t0 = loop.now();
  for (int i = 0; i < kDegraded; ++i) {
    issue_round();
    drain_round({});
  }
  res.degraded_iter = (loop.now() - t0) / kDegraded;
  loop.run();

  res.retries = total_retries(fabric);
  res.escalations = total_escalations(fabric);
  if (with_controller) {
    for (const auto& rec : controller->recovery_log()) {
      res.comms_reconfigured += rec.comms_reconfigured;
    }
  }
  const float expected = std::pow(4.0f, static_cast<float>(kRounds));
  res.bit_correct = true;
  for (Rank& r : ranks) {
    for (float x : fabric.gpus().typed<float>(r.buf, kCount)) {
      res.bit_correct = res.bit_correct && x == expected;
    }
  }
  return res;
}

}  // namespace

int main() {
  std::printf("=== micro_recovery: single-link failure during AllReduce ===\n\n");

  std::FILE* json = std::fopen("BENCH_recovery.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_recovery.json");

  std::printf("%-9s %12s %12s %12s %10s %9s %8s %6s %5s\n", "mode",
              "healthy(us)", "detect(us)", "recover(us)", "goodput", "retries",
              "escal", "reconf", "bits");
  for (const bool with_controller : {false, true}) {
    const ModeResult r = run_mode(with_controller);
    const double goodput =
        r.degraded_iter > 0.0 ? r.healthy_iter / r.degraded_iter : 0.0;
    std::printf("%-9s %12.1f %12.1f %12.1f %9.1f%% %9llu %8llu %6d %5s\n",
                r.mode, r.healthy_iter * 1e6, r.detect * 1e6, r.recover * 1e6,
                goodput * 100.0, static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.escalations),
                r.comms_reconfigured, r.bit_correct ? "ok" : "BAD");
    std::fprintf(
        json,
        "{\"bench\":\"micro_recovery\",\"mode\":\"%s\",\"gpus\":4,"
        "\"bytes\":%zu,\"healthy_iter_s\":%.9f,\"disrupted_iter_s\":%.9f,"
        "\"degraded_iter_s\":%.9f,\"time_to_detect_s\":%.9f,"
        "\"time_to_recover_s\":%.9f,\"goodput_retained\":%.4f,"
        "\"retries\":%llu,\"escalations\":%llu,\"comms_reconfigured\":%d,"
        "\"bit_correct\":%s}\n",
        r.mode, kCount * sizeof(float), r.healthy_iter, r.disrupted_iter,
        r.degraded_iter, r.detect, r.recover, goodput,
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.escalations), r.comms_reconfigured,
        r.bit_correct ? "true" : "false");
  }
  std::fclose(json);
  std::printf("\nBENCH_recovery.json written (one line per mode).\n");
  return 0;
}
