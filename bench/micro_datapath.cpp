// Microbenchmark: service datapath host-side fast path.
//
// Three sections, one JSON line each to BENCH_datapath.json:
//
//  * plan   — ns to obtain a collective execution plan, cold (build_coll_plan
//             from scratch every launch, the pre-cache behaviour and the
//             enable_plan_cache=false path) vs warm (CollPlanCache hit). The
//             check.sh gate requires warm to be >= 3x faster.
//  * reduce — GB/s of coll::reduce_bytes (op-specialized restrict-pointer
//             loops, -O3) vs coll::reduce_bytes_reference (the pinned scalar
//             oracle). The gate requires >= 2x on kFloat32 sum.
//  * e2e    — host wall ns per collective launch through the full fabric
//             (shim -> frontend -> proxy) with the plan cache on vs off,
//             plus the cache hit rate. Informational: simulated virtual
//             time is identical in both modes by construction.
//
// Everything here measures host CPU cost only; the simulated latencies the
// figure benches report are unaffected by any of it.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/types.h"
#include "common.h"
#include "mccs/coll_plan.h"
#include "mccs/fabric.h"
#include "mccs/proxy_engine.h"
#include "mccs/strategy.h"

namespace {

using namespace mccs;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- section 1: plan construction, cold vs warm ------------------------------

struct PlanShape {
  coll::CollectiveKind kind;
  std::size_t count;
  int root;
};

void bench_plans(std::FILE* json) {
  const cluster::Cluster cl = cluster::make_testbed();
  // One rank per host (the cross-rack testbed communicator the tests use).
  svc::CommSetup setup;
  setup.id = CommId{0};
  setup.app = AppId{1};
  setup.rank = 0;
  setup.nranks = 4;
  setup.gpus = {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const svc::CommStrategy strategy = svc::nccl_default_strategy(setup.gpus, cl);
  setup.strategy = strategy;

  const std::vector<PlanShape> shapes = {
      {coll::CollectiveKind::kAllReduce, 262144, 0},
      {coll::CollectiveKind::kAllGather, 65536, 0},
      {coll::CollectiveKind::kReduceScatter, 65536, 0},
      {coll::CollectiveKind::kAllToAll, 65536, 0},
      {coll::CollectiveKind::kBroadcast, 262144, 0},
  };

  std::printf("%-16s %12s %12s %9s\n", "plan shape", "cold(ns)", "warm(ns)",
              "speedup");
  for (const PlanShape& s : shapes) {
    constexpr int kColdIters = 20000;
    constexpr int kWarmIters = 200000;
    const auto dtype = coll::DataType::kFloat32;

    auto t0 = Clock::now();
    for (int i = 0; i < kColdIters; ++i) {
      auto plan = svc::build_coll_plan(setup, strategy, cl, s.kind, s.count,
                                       dtype, s.root);
      MCCS_CHECK(plan != nullptr, "plan build failed");
    }
    const double cold_ns = seconds_since(t0) * 1e9 / kColdIters;

    svc::CollPlanCache cache;
    (void)cache.acquire(0, true, setup, strategy, cl, s.kind, s.count, dtype,
                        s.root);  // prime
    t0 = Clock::now();
    for (int i = 0; i < kWarmIters; ++i) {
      auto plan = cache.acquire(0, true, setup, strategy, cl, s.kind, s.count,
                                dtype, s.root);
      MCCS_CHECK(plan != nullptr, "plan acquire failed");
    }
    const double warm_ns = seconds_since(t0) * 1e9 / kWarmIters;
    MCCS_CHECK(cache.stats().hits >= kWarmIters, "warm loop did not hit");

    const double speedup = cold_ns / warm_ns;
    const std::string name = coll::to_string(s.kind);
    std::printf("%-16s %12.1f %12.1f %8.1fx\n", name.c_str(), cold_ns, warm_ns,
                speedup);
    std::fprintf(json,
                 "{\"bench\":\"micro_datapath\",\"section\":\"plan\","
                 "\"kind\":\"%s\",\"count\":%zu,\"channels\":%d,"
                 "\"cold_ns\":%.1f,\"warm_ns\":%.1f,\"speedup\":%.3f}\n",
                 name.c_str(), s.count, strategy.num_channels(), cold_ns,
                 warm_ns, speedup);
  }
}

// --- section 2: reduce_bytes, vectorized vs scalar reference -----------------

const char* dtype_name(coll::DataType t) {
  switch (t) {
    case coll::DataType::kFloat32: return "f32";
    case coll::DataType::kFloat64: return "f64";
    case coll::DataType::kInt32: return "i32";
    case coll::DataType::kInt64: return "i64";
    case coll::DataType::kUint8: return "u8";
  }
  return "?";
}

const char* op_name(coll::ReduceOp op) {
  switch (op) {
    case coll::ReduceOp::kSum: return "sum";
    case coll::ReduceOp::kProd: return "prod";
    case coll::ReduceOp::kMin: return "min";
    case coll::ReduceOp::kMax: return "max";
  }
  return "?";
}

void bench_reduce_case(std::FILE* json, coll::DataType dtype,
                       coll::ReduceOp op) {
  // L2-resident working set: the proxy reduces chunk-sized pieces, and the
  // compute-vs-memory balance at this size is where vectorization shows.
  constexpr std::size_t kBytes = 256 * 1024;
  constexpr int kIters = 4000;
  std::vector<std::byte> acc(kBytes), in(kBytes);
  // Fill both operands with the value 1 of the benched type: sum grows
  // linearly over kIters, prod stays at 1, min/max are stable — no overflow
  // and no denormals for any dtype/op combination.
  const auto fill_ones = [kBytes](std::byte* p, coll::DataType t) {
    const std::size_t n = kBytes / dtype_size(t);
    switch (t) {
      case coll::DataType::kFloat32: {
        auto* v = reinterpret_cast<float*>(p);
        for (std::size_t i = 0; i < n; ++i) v[i] = 1.0f;
        break;
      }
      case coll::DataType::kFloat64: {
        auto* v = reinterpret_cast<double*>(p);
        for (std::size_t i = 0; i < n; ++i) v[i] = 1.0;
        break;
      }
      case coll::DataType::kInt32: {
        auto* v = reinterpret_cast<std::int32_t*>(p);
        for (std::size_t i = 0; i < n; ++i) v[i] = 1;
        break;
      }
      case coll::DataType::kInt64: {
        auto* v = reinterpret_cast<std::int64_t*>(p);
        for (std::size_t i = 0; i < n; ++i) v[i] = 1;
        break;
      }
      case coll::DataType::kUint8:
        std::memset(p, 1, kBytes);
        break;
    }
  };
  fill_ones(acc.data(), dtype);
  fill_ones(in.data(), dtype);
  const std::vector<std::byte> acc0 = acc;

  auto run = [&](auto&& fn) {
    acc = acc0;
    fn(std::span<std::byte>(acc), std::span<const std::byte>(in), dtype, op);
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      fn(std::span<std::byte>(acc), std::span<const std::byte>(in), dtype, op);
    }
    const double s = seconds_since(t0);
    return static_cast<double>(kBytes) * kIters / s / 1e9;  // GB/s of acc data
  };

  const double scalar_gbps = run(coll::reduce_bytes_reference);
  const double vector_gbps = run(coll::reduce_bytes);
  const double speedup = vector_gbps / scalar_gbps;

  std::printf("%-4s %-5s %12.2f %12.2f %8.2fx\n", dtype_name(dtype),
              op_name(op), scalar_gbps, vector_gbps, speedup);
  std::fprintf(json,
               "{\"bench\":\"micro_datapath\",\"section\":\"reduce\","
               "\"dtype\":\"%s\",\"op\":\"%s\",\"bytes\":%zu,"
               "\"scalar_gbps\":%.3f,\"vector_gbps\":%.3f,\"speedup\":%.3f}\n",
               dtype_name(dtype), op_name(op), kBytes, scalar_gbps,
               vector_gbps, speedup);
}

void bench_reduce(std::FILE* json) {
  std::printf("%-4s %-5s %12s %12s %9s\n", "type", "op", "scalar GB/s",
              "vector GB/s", "speedup");
  for (coll::DataType dtype :
       {coll::DataType::kFloat32, coll::DataType::kFloat64,
        coll::DataType::kInt32, coll::DataType::kInt64,
        coll::DataType::kUint8}) {
    bench_reduce_case(json, dtype, coll::ReduceOp::kSum);
  }
  for (coll::ReduceOp op : {coll::ReduceOp::kProd, coll::ReduceOp::kMin,
                            coll::ReduceOp::kMax}) {
    bench_reduce_case(json, coll::DataType::kFloat32, op);
  }
}

// --- section 3: end-to-end host cost per collective, cache on vs off ---------

void bench_e2e(std::FILE* json) {
  std::printf("%-10s %18s %10s\n", "plan cache", "host ns/collective",
              "hit rate");
  for (const bool cache_on : {false, true}) {
    svc::Fabric::Options options;
    options.seed = 1;
    options.config.move_data = false;
    options.config.enable_plan_cache = cache_on;
    options.gpu_config.materialize_memory = false;
    svc::Fabric fabric(cluster::make_testbed(), options);

    const AppId app{1};
    const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
    const CommId comm = bench::bench_create_comm(fabric, app, gpus);

    constexpr int kWarmup = 2;
    constexpr int kIters = 400;
    const auto t0 = Clock::now();
    (void)bench::run_collective_loop(fabric, app, gpus, comm,
                                     coll::CollectiveKind::kAllReduce, 1_MB,
                                     kWarmup, kIters);
    // Per launched collective: every iteration launches one per rank.
    const double ns = seconds_since(t0) * 1e9 /
                      (static_cast<double>(kWarmup + kIters) * gpus.size());

    std::uint64_t hits = 0, misses = 0;
    for (GpuId g : gpus) {
      const auto st = fabric.proxy_for(g).plan_cache_stats(comm);
      hits += st.hits;
      misses += st.misses;
    }
    const double hit_rate =
        hits + misses == 0 ? 0.0
                           : static_cast<double>(hits) / (hits + misses);
    std::printf("%-10s %18.0f %9.1f%%\n", cache_on ? "on" : "off", ns,
                hit_rate * 100.0);
    std::fprintf(json,
                 "{\"bench\":\"micro_datapath\",\"section\":\"e2e\","
                 "\"plan_cache\":%s,\"host_ns_per_collective\":%.1f,"
                 "\"hit_rate\":%.4f}\n",
                 cache_on ? "true" : "false", ns, hit_rate);
  }
}

}  // namespace

int main() {
  std::printf("=== micro_datapath: host-side datapath fast path ===\n\n");

  std::FILE* json = std::fopen("BENCH_datapath.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_datapath.json");

  std::printf("-- collective plan: build-per-launch vs cache hit --\n");
  bench_plans(json);
  std::printf("\n-- reduce_bytes: scalar reference vs vectorized --\n");
  bench_reduce(json);
  std::printf("\n-- end-to-end host cost per collective launch --\n");
  bench_e2e(json);

  std::fclose(json);
  std::printf("\nBENCH_datapath.json written.\n");
  return 0;
}
