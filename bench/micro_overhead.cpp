// Microbenchmark: MCCS datapath latency overhead (§6.2).
//
// The paper attributes the small-message penalty to 50-80 us of added
// latency between the application, the service, and the service's internal
// engines. This bench measures the end-to-end latency of a minimal (4 KB)
// cross-rack AllReduce under the library (NCCL) and service (MCCS) timing
// models, and reports the difference — the modelled IPC + engine-hop cost.
// (google-benchmark measures host wall time per simulated collective loop;
// the reported VirtualLatencyUs counter is the simulated latency, which is
// the figure of interest and is independent of host speed.)
//
// The harness (fabric + communicator bootstrap) is constructed once per
// benchmark, outside the timing loop: constructing it dominates the host
// time of a single collective loop by orders of magnitude, so timing it per
// iteration measured setup, not the datapath. PlanCacheHitRate reports the
// fraction of launches served by a cached collective plan (coll_plan.h) —
// close to 1.0 here, since every iteration relaunches the same shape.

#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using namespace mccs;

struct Env {
  bench::Harness h;
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  CommId comm;

  explicit Env(bench::Scheme scheme)
      : h(bench::make_harness(scheme, cluster::make_testbed(), 1)) {
    comm = bench::bench_create_comm(*h.fabric, app, gpus);
  }

  double latency_us() {
    const auto durations = bench::run_collective_loop(
        *h.fabric, app, gpus, comm, coll::CollectiveKind::kAllReduce, 4_KB, 2,
        6);
    return mean(durations) * 1e6;
  }

  double plan_cache_hit_rate() {
    std::uint64_t hits = 0, misses = 0;
    for (GpuId g : gpus) {
      const auto st = h.fabric->proxy_for(g).plan_cache_stats(comm);
      hits += st.hits;
      misses += st.misses;
    }
    return hits + misses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
};

// The virtual-latency counters are taken from the first loop on the fresh
// harness: simulated durations measured late in a long-lived simulation
// differ in their last ulps (differences of ever-larger doubles), and the
// counter must stay bit-stable run to run.

void BM_SmallCollectiveLatency_Nccl(benchmark::State& state) {
  Env env(bench::Scheme::kNccl);
  const double us = env.latency_us();
  for (auto _ : state) benchmark::DoNotOptimize(env.latency_us());
  state.counters["VirtualLatencyUs"] = us;
}
BENCHMARK(BM_SmallCollectiveLatency_Nccl);

void BM_SmallCollectiveLatency_Mccs(benchmark::State& state) {
  Env env(bench::Scheme::kMccsNoFa);
  const double us = env.latency_us();
  for (auto _ : state) benchmark::DoNotOptimize(env.latency_us());
  state.counters["VirtualLatencyUs"] = us;
  state.counters["PlanCacheHitRate"] = env.plan_cache_hit_rate();
}
BENCHMARK(BM_SmallCollectiveLatency_Mccs);

void BM_MccsDatapathOverhead(benchmark::State& state) {
  Env mccs_env(bench::Scheme::kMccsNoFa);
  Env nccl_env(bench::Scheme::kNccl);
  const double delta = mccs_env.latency_us() - nccl_env.latency_us();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mccs_env.latency_us() - nccl_env.latency_us());
  }
  // Paper: 50-80 us overall added latency.
  state.counters["OverheadUs"] = delta;
  state.counters["PlanCacheHitRate"] = mccs_env.plan_cache_hit_rate();
}
BENCHMARK(BM_MccsDatapathOverhead);

}  // namespace

BENCHMARK_MAIN();
