// Microbenchmark: MCCS datapath latency overhead (§6.2).
//
// The paper attributes the small-message penalty to 50-80 us of added
// latency between the application, the service, and the service's internal
// engines. This bench measures the end-to-end latency of a minimal (4 KB)
// cross-rack AllReduce under the library (NCCL) and service (MCCS) timing
// models, and reports the difference — the modelled IPC + engine-hop cost.
// (google-benchmark measures host wall time per simulated collective; the
// reported VirtualLatencyUs counter is the simulated latency, which is the
// figure of interest.)

#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using namespace mccs;

double collective_latency_us(bench::Scheme scheme) {
  bench::Harness h = bench::make_harness(scheme, cluster::make_testbed(), 1);
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = bench::bench_create_comm(*h.fabric, app, gpus);
  const auto durations = bench::run_collective_loop(
      *h.fabric, app, gpus, comm, coll::CollectiveKind::kAllReduce, 4_KB, 2, 6);
  return mean(std::vector<double>(durations.begin(), durations.end())) * 1e6;
}

void BM_SmallCollectiveLatency_Nccl(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) us = collective_latency_us(bench::Scheme::kNccl);
  state.counters["VirtualLatencyUs"] = us;
}
BENCHMARK(BM_SmallCollectiveLatency_Nccl);

void BM_SmallCollectiveLatency_Mccs(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) us = collective_latency_us(bench::Scheme::kMccsNoFa);
  state.counters["VirtualLatencyUs"] = us;
}
BENCHMARK(BM_SmallCollectiveLatency_Mccs);

void BM_MccsDatapathOverhead(benchmark::State& state) {
  double delta = 0;
  for (auto _ : state) {
    delta = collective_latency_us(bench::Scheme::kMccsNoFa) -
            collective_latency_us(bench::Scheme::kNccl);
  }
  // Paper: 50-80 us overall added latency.
  state.counters["OverheadUs"] = delta;
}
BENCHMARK(BM_MccsDatapathOverhead);

}  // namespace

BENCHMARK_MAIN();
