// Figure 11: large-scale flow-level simulation (§6.5). A 768-GPU cluster
// (16 spines, 24 leaves, 4 hosts/leaf, 8 GPUs + 8 NICs per host, all links
// 200 Gbps, oversubscription 2) runs 50 ResNet-50 DDP jobs (100 MB model) of
// 16 or 32 GPUs with Poisson arrivals (mean 200 ms), under random or compact
// placement. Three solutions are compared:
//   random ring            — random rank order, ECMP (the tenant default;
//                            virtualization hides even the intra-host
//                            topology from the tenant, §4.2);
//   OR (optimal ring)      — locality-aware rings, ECMP;
//   OR+FFA (MCCS)          — locality rings with FFA-assigned routes,
//                            recomputed whenever a job joins or exits.
// The output is the CDF of each job's average-AllReduce-time speedup
// relative to the random-ring run, plus the average speedups the legend
// quotes (paper: 2.63x / 3.27x random placement; 3.28x / 3.43x compact).
//
// Placements and start times are precomputed once per (run, placement) and
// shared by all three solutions, so per-job speedups compare like with like.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "cluster/placement.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "policy/flow_assign.h"
#include "workload/flowsim.h"

namespace {

using namespace mccs;

constexpr int kJobs = 50;
constexpr int kRuns = 5;
constexpr int kIterations = 20;

enum class Solution { kRandomGpuRing, kRandomRing, kOptimalRing, kOptimalRingFfa };

const char* solution_name(Solution s) {
  switch (s) {
    case Solution::kRandomGpuRing: return "RandomRing(gpu)";
    case Solution::kRandomRing: return "RandomRing";
    case Solution::kOptimalRing: return "OR";
    case Solution::kOptimalRingFfa: return "OR+FFA";
  }
  return "?";
}

struct JobPlan {
  JobId id;
  std::vector<GpuId> gpus;
  Time start;
};

/// Precompute arrivals + placements with a nominal job duration so all
/// solutions see identical job streams. Jobs occupy whole hosts (16/32 GPUs
/// = 2/4 hosts of 8): random placement picks free hosts anywhere; compact
/// placement packs rack by rack.
std::vector<JobPlan> make_plan(const cluster::Cluster& cl,
                               cluster::Placement placement, Rng& rng) {
  struct Pending {
    int size;
    Time arrival;
  };
  std::vector<Pending> arrivals;
  Time t = 0.0;
  for (int j = 0; j < kJobs; ++j) {
    t += rng.exponential(0.2);
    arrivals.push_back({rng.uniform() < 0.5 ? 16 : 32, t});
  }

  // Nominal duration: iterations * (compute gap + a ballpark AllReduce).
  const Time nominal = kIterations * (millis(90) + millis(40));

  std::vector<bool> host_used(cl.host_count(), false);
  auto try_allocate = [&](int gpus_needed) -> std::optional<std::vector<GpuId>> {
    const int hosts_needed =
        (gpus_needed + 7) / 8;  // 8 GPUs per host in this cluster
    std::vector<std::uint32_t> free_hosts;
    for (std::uint32_t h = 0; h < cl.host_count(); ++h) {
      if (!host_used[h]) free_hosts.push_back(h);
    }
    if (static_cast<int>(free_hosts.size()) < hosts_needed) return std::nullopt;
    std::vector<std::uint32_t> chosen;
    if (placement == cluster::Placement::kRandom) {
      rng.shuffle(free_hosts);
      chosen.assign(free_hosts.begin(), free_hosts.begin() + hosts_needed);
    } else {
      // Compact: prefer the rack with the most free hosts; rack that fits
      // everything wins.
      std::map<std::uint32_t, std::vector<std::uint32_t>> by_rack;
      for (std::uint32_t h : free_hosts) {
        by_rack[cl.host(HostId{h}).rack.get()].push_back(h);
      }
      int remaining = hosts_needed;
      while (remaining > 0) {
        std::uint32_t best = by_rack.begin()->first;
        std::size_t best_n = 0;
        bool fits = false;
        std::size_t fit_n = static_cast<std::size_t>(-1);
        for (const auto& [rack, hs] : by_rack) {
          if (hs.empty()) continue;
          if (hs.size() >= static_cast<std::size_t>(remaining) && hs.size() < fit_n) {
            fits = true;
            fit_n = hs.size();
            best = rack;
          }
          if (!fits && hs.size() > best_n) {
            best_n = hs.size();
            best = rack;
          }
        }
        auto& hs = by_rack[best];
        const int take = std::min<int>(remaining, static_cast<int>(hs.size()));
        chosen.insert(chosen.end(), hs.begin(), hs.begin() + take);
        hs.erase(hs.begin(), hs.begin() + take);
        remaining -= take;
      }
    }
    std::vector<GpuId> gpus;
    for (std::uint32_t h : chosen) {
      host_used[h] = true;
      const auto& info = cl.host(HostId{h});
      gpus.insert(gpus.end(), info.gpus.begin(), info.gpus.end());
    }
    gpus.resize(static_cast<std::size_t>(gpus_needed));
    return gpus;
  };
  auto release = [&](const std::vector<GpuId>& gpus) {
    for (GpuId g : gpus) host_used[cl.host_of_gpu(g).get()] = false;
  };

  std::vector<JobPlan> plan;
  struct Running {
    Time end;
    std::vector<GpuId> gpus;
  };
  std::vector<Running> running;
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    Time start = arrivals[j].arrival;
    std::optional<std::vector<GpuId>> gpus;
    for (;;) {
      gpus = try_allocate(arrivals[j].size);
      if (gpus.has_value()) break;
      // Wait for the earliest-running job to release its hosts.
      std::size_t earliest = 0;
      for (std::size_t r = 1; r < running.size(); ++r) {
        if (running[r].end < running[earliest].end) earliest = r;
      }
      MCCS_CHECK(!running.empty(), "allocator deadlock");
      start = std::max(start, running[earliest].end);
      release(running[earliest].gpus);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(earliest));
    }
    running.push_back({start + nominal, *gpus});
    plan.push_back({JobId{static_cast<std::uint32_t>(j)}, *gpus, start});
  }
  return plan;
}

/// Run one solution over a job plan; returns each job's mean AllReduce time.
std::vector<double> run_solution(const cluster::Cluster& cl,
                                 const std::vector<JobPlan>& plan,
                                 Solution solution, std::uint64_t seed) {
  sim::EventLoop loop;
  net::Network network(loop, cl.topology());
  net::Routing routing(cl.topology());
  Rng rng(seed);

  std::vector<std::unique_ptr<workload::FlowSimJob>> jobs;
  std::vector<bool> active(plan.size(), false);

  // FFA state: recompute routes on every arrival/exit over active jobs.
  auto rebalance = [&] {
    if (solution != Solution::kOptimalRingFfa) return;
    std::vector<policy::AssignItem> items;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!active[j] || jobs[j] == nullptr) continue;
      policy::AssignItem item;
      item.comm = CommId{static_cast<std::uint32_t>(j)};
      item.app = AppId{static_cast<std::uint32_t>(j)};
      item.gpus_by_rank = &jobs[j]->spec().gpus;
      item.strategy = &jobs[j]->strategy();
      items.push_back(item);
    }
    auto routes = policy::assign_flows(items, cl, routing);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (active[j] && jobs[j] != nullptr) {
        jobs[j]->set_routes(routes[static_cast<std::uint32_t>(j)]);
      }
    }
  };

  jobs.resize(plan.size());
  std::vector<double> result(plan.size(), 0.0);
  for (std::size_t j = 0; j < plan.size(); ++j) {
    loop.schedule_at(plan[j].start, [&, j] {
      workload::SimJobSpec spec;
      spec.id = plan[j].id;
      spec.gpus = plan[j].gpus;
      spec.iterations = kIterations;
      switch (solution) {
        case Solution::kRandomGpuRing:
          spec.ring = workload::RingChoice::kRandomGpuOrder;
          break;
        case Solution::kRandomRing:
          spec.ring = workload::RingChoice::kRandomHostOrder;
          break;
        default:
          spec.ring = workload::RingChoice::kOptimal;
          break;
      }
      jobs[j] = std::make_unique<workload::FlowSimJob>(loop, network, cl, spec, rng);
      active[j] = true;
      rebalance();
      jobs[j]->start([&, j](JobId, Time) {
        result[j] = jobs[j]->avg_allreduce_time();
        active[j] = false;
        rebalance();
      });
    });
  }
  loop.run();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: large-scale simulation, AllReduce speedup CDF ===\n\n");
  const auto cl = cluster::make_large_sim_cluster();

  for (cluster::Placement placement :
       {cluster::Placement::kRandom, cluster::Placement::kCompact}) {
    const char* pname =
        placement == cluster::Placement::kRandom ? "Random placement" : "Compact placement";
    std::map<Solution, std::vector<double>> speedups;
    // Plans are cheap and sequential-Rng-driven: precompute them serially,
    // then run every (run, solution) simulation as an independent pool task.
    // Each run_solution builds its own EventLoop/Network/Routing/Rng, so
    // tasks share only the read-only cluster; results land in fixed slots
    // and are folded serially below in the original (run, solution) order,
    // so the output is byte-identical for any MCCS_THREADS.
    constexpr Solution kSolutions[] = {
        Solution::kRandomGpuRing, Solution::kRandomRing,
        Solution::kOptimalRing, Solution::kOptimalRingFfa};
    constexpr std::size_t kNumSolutions = std::size(kSolutions);
    std::vector<std::vector<JobPlan>> plans;
    for (int run = 0; run < kRuns; ++run) {
      Rng rng(9000 + 101 * run + (placement == cluster::Placement::kCompact ? 1 : 0));
      plans.push_back(make_plan(cl, placement, rng));
    }
    std::vector<std::vector<double>> times(kRuns * kNumSolutions);
    par::parallel_for(
        times.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t t = begin; t < end; ++t) {
            const std::size_t run = t / kNumSolutions;
            times[t] = run_solution(cl, plans[run], kSolutions[t % kNumSolutions],
                                    50 + static_cast<std::uint64_t>(run));
          }
        });
    for (int run = 0; run < kRuns; ++run) {
      // Primary baseline: random host-order rings (NCCL's intra-host
      // detection intact). The gpu-order variant — what a tenant gets when
      // virtualization also hides the intra-host topology (§4.2) — brackets
      // the paper's baseline from the other side.
      const auto& base = times[static_cast<std::size_t>(run) * kNumSolutions];
      for (std::size_t si = 1; si < kNumSolutions; ++si) {
        const auto& ts = times[static_cast<std::size_t>(run) * kNumSolutions + si];
        for (std::size_t j = 0; j < ts.size(); ++j) {
          speedups[kSolutions[si]].push_back(base[j] / ts[j]);
        }
      }
    }

    std::printf("--- %s ---\n", pname);
    // Means over insertion order, then one in-place sort per solution shared
    // by all six percentile reads (the by-value percentile() would copy and
    // re-sort the 250-sample vector per call).
    for (Solution s : {Solution::kOptimalRing, Solution::kOptimalRingFfa}) {
      std::printf("%-16s avg speedup vs random ring: %.2fx\n", solution_name(s),
                  mean(speedups[s]));
    }
    std::printf("%-16s (NCCL intra-host detection intact) speedup: %.2fx\n",
                solution_name(Solution::kRandomRing),
                mean(speedups[Solution::kRandomRing]));
    std::printf("CDF (speedup at percentile):\n");
    std::printf("%-16s", "pct");
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) std::printf(" %8.0f", p);
    std::printf("\n");
    for (Solution s : {Solution::kOptimalRing, Solution::kOptimalRingFfa}) {
      std::printf("%-16s", solution_name(s));
      sort_samples(speedups[s]);
      for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        std::printf(" %8.2f", percentile_sorted(speedups[s], p));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Paper: random placement OR 2.63x, OR+FFA 3.27x; compact\n"
              "placement OR 3.28x, OR+FFA 3.43x (FFA adds little when jobs\n"
              "rarely span more than two racks).\n");
  return 0;
}
