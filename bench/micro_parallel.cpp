// Task-pool microbenchmarks: what the deterministic parallel core costs and
// what it buys, across MCCS_THREADS-style thread counts in one process.
//
// Sections (one JSON line each to BENCH_parallel.json):
//
//   dispatch        — pool fork-join overhead: an empty-body parallel_for
//                     per thread count, ns per dispatch. threads=1 is the
//                     inline path (no pool, the pre-parallel baseline).
//   component_solve — 768-GPU flow churn whose flows stay rack-local, so the
//                     max-min components are disjoint and solve concurrently.
//                     Runs the reference (global re-solve) network so every
//                     event is a wide multi-component solve — the shape the
//                     pool targets; wall-clock per thread count on identical
//                     simulated work.
//   sharded_reduce  — 64 MiB float32 sum reduce (the proxy engine's hot
//                     kernel) sharded across the pool; bytes/sec per count.
//   seed_sweep      — independent randomized churn seeds fanned out with
//                     parallel_for (the property-test / chaos-sweep shape).
//
// Every line carries "cores" (hardware_concurrency): on a multi-core machine
// scripts/check.sh gates on >= 2x speedup at max threads for at least two of
// the sweep sections; on smaller machines the lines are recorded but the
// speedup gate is skipped (a 1-core container cannot speed anything up).
//
// Determinism note: the simulated results of every section are independent
// of the thread count (that is the pool's contract, enforced by
// tests/test_parallel.cpp); only the wall-clock changes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/types.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace {

using namespace mccs;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> thread_sweep() {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep{1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  return sweep;
}

// --- dispatch overhead ------------------------------------------------------

double dispatch_ns(int threads) {
  par::set_threads(threads);
  volatile std::size_t sink = 0;
  // Warm the pool (first dispatch spawns workers).
  par::parallel_for(16, 1, [&](std::size_t b, std::size_t) { sink = sink + b; });
  constexpr int kIters = 20000;
  const double t0 = now_s();
  for (int i = 0; i < kIters; ++i) {
    par::parallel_for(16, 1, [&](std::size_t b, std::size_t) { sink = sink + b; });
  }
  const double t1 = now_s();
  return (t1 - t0) / kIters * 1e9;
}

// --- component-scoped solve scaling (768 GPUs) ------------------------------

/// Rack-local flow batches on the Fig.-11 cluster: every rack churns its own
/// flows, so each reallocation sees ~24 disjoint components. The network runs
/// in reference mode (global re-solve per event) so every event pays a full
/// multi-component solve — the wide shape the pool accelerates; the
/// incremental fast path would scope most events to one small component,
/// which stays below the pool's dispatch threshold by design. The schedule is
/// precomputed from one seed; wall-clock differences across thread counts
/// are pure solver concurrency.
struct RackChurn {
  struct Batch {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    std::vector<Bytes> sizes;
    std::vector<std::uint64_t> keys;
  };
  std::vector<std::vector<Batch>> per_rack;  ///< [rack][batch]
};

RackChurn make_rack_churn(const cluster::Cluster& cl, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> racks;
  for (std::uint32_t h = 0; h < cl.host_count(); ++h) {
    const auto r = cl.host(HostId{h}).rack.get();
    if (r >= racks.size()) racks.resize(r + 1);
    racks[r].push_back(h);
  }
  constexpr int kBatches = 12;
  constexpr int kFlowsPerBatch = 6;
  RackChurn churn;
  churn.per_rack.resize(racks.size());
  for (std::size_t r = 0; r < racks.size(); ++r) {
    for (int b = 0; b < kBatches; ++b) {
      RackChurn::Batch batch;
      for (int f = 0; f < kFlowsPerBatch; ++f) {
        const auto& hs = racks[r];
        const std::uint32_t h0 = hs[rng.below(hs.size())];
        std::uint32_t h1 = hs[rng.below(hs.size())];
        if (h1 == h0) h1 = hs[(rng.below(hs.size()) + 1) % hs.size()];
        if (h1 == h0) continue;
        const auto& n0 = cl.host(HostId{h0}).nic_nodes;
        const auto& n1 = cl.host(HostId{h1}).nic_nodes;
        batch.pairs.emplace_back(n0[rng.below(n0.size())],
                                 n1[rng.below(n1.size())]);
        batch.sizes.push_back(4_MB + rng.below(28) * 1_MB);
        batch.keys.push_back(rng.engine()());
      }
      churn.per_rack[r].push_back(std::move(batch));
    }
  }
  return churn;
}

double run_rack_churn(const cluster::Cluster& cl, const RackChurn& churn,
                      int threads) {
  par::set_threads(threads);
  sim::EventLoop loop;
  net::Network net(loop, cl.topology(), net::Network::Options{false});

  struct Runner {
    sim::EventLoop* loop;
    net::Network* net;
    const std::vector<RackChurn::Batch>* batches;
    std::size_t idx = 0;
    int outstanding = 0;

    void start_batch() {
      if (idx >= batches->size()) return;
      const RackChurn::Batch& b = (*batches)[idx];
      outstanding = static_cast<int>(b.pairs.size());
      if (outstanding == 0) {
        ++idx;
        start_batch();
        return;
      }
      for (std::size_t f = 0; f < b.pairs.size(); ++f) {
        net::FlowSpec spec;
        spec.src = b.pairs[f].first;
        spec.dst = b.pairs[f].second;
        spec.size = b.sizes[f];
        spec.ecmp_key = b.keys[f];
        spec.on_complete = [this](FlowId, Time) {
          if (--outstanding == 0) {
            ++idx;
            loop->schedule_after(millis(0.05), [this] { start_batch(); });
          }
        };
        net->start_flow(std::move(spec));
      }
    }
  };

  std::vector<Runner> runners(churn.per_rack.size());
  for (std::size_t r = 0; r < churn.per_rack.size(); ++r) {
    runners[r] = Runner{&loop, &net, &churn.per_rack[r]};
    loop.schedule_at(static_cast<double>(r) * millis(0.01),
                     [&runners, r] { runners[r].start_batch(); });
  }
  const double t0 = now_s();
  loop.run();
  return now_s() - t0;
}

// --- sharded reduce throughput ----------------------------------------------

double reduce_gbps(int threads) {
  par::set_threads(threads);
  const std::size_t count = (std::size_t{64} << 20) / sizeof(float);
  std::vector<float> acc(count, 1.0f), in(count, 2.0f);
  const std::span<std::byte> a(reinterpret_cast<std::byte*>(acc.data()),
                               count * sizeof(float));
  const std::span<const std::byte> b(
      reinterpret_cast<const std::byte*>(in.data()), count * sizeof(float));
  // Warm-up (page faults, pool spawn).
  coll::reduce_bytes(a, b, coll::DataType::kFloat32, coll::ReduceOp::kSum);
  constexpr int kIters = 12;
  const double t0 = now_s();
  for (int i = 0; i < kIters; ++i) {
    coll::reduce_bytes(a, b, coll::DataType::kFloat32, coll::ReduceOp::kSum);
  }
  const double t1 = now_s();
  return static_cast<double>(count * sizeof(float)) * kIters / (t1 - t0) / 1e9;
}

// --- parallel seed sweep ----------------------------------------------------

/// One independent churn seed on the testbed (the property-test shape: own
/// loop, own network, nothing shared).
void run_sweep_seed(const cluster::Cluster& cl, std::uint64_t seed) {
  sim::EventLoop loop;
  net::Network net(loop, cl.topology());
  Rng rng(seed);
  const auto hosts = cl.topology().hosts();
  for (int i = 0; i < 40; ++i) {
    loop.schedule_at(rng.uniform() * 0.04, [&] {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = hosts[rng.below(hosts.size())];
      if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
      net::FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = 1 + rng.below(120'000'000);
      spec.ecmp_key = rng.engine()();
      spec.on_complete = {};
      net.start_flow(std::move(spec));
    });
  }
  loop.run();
}

double run_seed_sweep(const cluster::Cluster& cl, int threads) {
  par::set_threads(threads);
  constexpr std::size_t kSeeds = 24;
  const double t0 = now_s();
  par::parallel_for(kSeeds, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      run_sweep_seed(cl, 0x5EED + s);
    }
  });
  return now_s() - t0;
}

}  // namespace

int main() {
  std::printf("=== micro_parallel: task pool overhead and scaling ===\n\n");
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::vector<int> sweep = thread_sweep();

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_parallel.json");
  std::printf("cores detected: %d\n\n", cores);

  // Dispatch overhead.
  std::printf("%-18s %8s %14s\n", "section", "threads", "ns/dispatch");
  for (const int t : sweep) {
    const double ns = dispatch_ns(t);
    std::printf("%-18s %8d %14.0f\n", "dispatch", t, ns);
    std::fprintf(json,
                 "{\"bench\":\"micro_parallel\",\"section\":\"dispatch\","
                 "\"threads\":%d,\"cores\":%d,\"ns_per_dispatch\":%.1f}\n",
                 t, cores, ns);
  }
  std::printf("\n");

  // Component-solve scaling at 768 GPUs.
  const auto large = cluster::make_large_sim_cluster();
  const RackChurn churn = make_rack_churn(large, 0xC0113C7);
  std::printf("%-18s %8s %9s %9s\n", "section", "threads", "wall(s)",
              "speedup");
  double base = 0.0;
  for (const int t : sweep) {
    const double wall = run_rack_churn(large, churn, t);
    if (t == 1) base = wall;
    const double speedup = base / wall;
    std::printf("%-18s %8d %9.3f %8.2fx\n", "component_solve", t, wall,
                speedup);
    std::fprintf(json,
                 "{\"bench\":\"micro_parallel\",\"section\":\"component_solve\","
                 "\"threads\":%d,\"cores\":%d,\"gpus\":768,\"wall_s\":%.6f,"
                 "\"speedup_vs_1thread\":%.3f}\n",
                 t, cores, wall, speedup);
  }

  // Sharded reduce throughput.
  double base_gbps = 0.0;
  for (const int t : sweep) {
    const double gbps = reduce_gbps(t);
    if (t == 1) base_gbps = gbps;
    const double speedup = gbps / base_gbps;
    std::printf("%-18s %8d %7.1fGB/s %7.2fx\n", "sharded_reduce", t, gbps,
                speedup);
    std::fprintf(json,
                 "{\"bench\":\"micro_parallel\",\"section\":\"sharded_reduce\","
                 "\"threads\":%d,\"cores\":%d,\"buffer_mib\":64,"
                 "\"gbytes_per_sec\":%.3f,\"speedup_vs_1thread\":%.3f}\n",
                 t, cores, gbps, speedup);
  }

  // Seed-sweep scaling (property-test / chaos shape).
  const auto testbed = cluster::make_testbed();
  double sweep_base = 0.0;
  for (const int t : sweep) {
    const double wall = run_seed_sweep(testbed, t);
    if (t == 1) sweep_base = wall;
    const double speedup = sweep_base / wall;
    std::printf("%-18s %8d %9.3f %8.2fx\n", "seed_sweep", t, wall, speedup);
    std::fprintf(json,
                 "{\"bench\":\"micro_parallel\",\"section\":\"seed_sweep\","
                 "\"threads\":%d,\"cores\":%d,\"seeds\":24,\"wall_s\":%.6f,"
                 "\"speedup_vs_1thread\":%.3f}\n",
                 t, cores, wall, speedup);
  }

  par::set_threads(0);
  std::fclose(json);
  std::printf("\nBENCH_parallel.json written (one line per section x thread "
              "count).\n");
  return 0;
}
