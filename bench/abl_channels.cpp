// Ablation: channel (ring) count vs bandwidth.
//
// Multi-channel rings are how the service drives every NIC of a multi-GPU
// host (§4.2: "there may be one or more transport engines associated with
// each GPU to support more communication parallelism"). With both testbed
// vNICs in play, 2 channels double the achievable AllReduce bandwidth; more
// channels than NICs add nothing but per-step overhead.

#include <cstdio>
#include <vector>

#include "common.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"

namespace {

using namespace mccs;

double run_channels(int channels, Bytes size) {
  svc::Fabric::Options options;
  options.seed = 3;
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};
  fabric.set_strategy_provider([&fabric, channels](const svc::CommInfo& info) {
    svc::CommStrategy s;
    s.channel_orders = svc::make_channel_orders(
        policy::locality_aware_order(info.gpus, fabric.cluster()), info.gpus,
        fabric.cluster(), channels);
    // FFA routes so ECMP collisions do not confound the channel-count sweep.
    policy::AssignItem item{info.id, info.app, &info.gpus, &s, false};
    auto routes = policy::assign_flows({item}, fabric.cluster(),
                                       fabric.network().routing());
    s.routes = std::move(routes[info.id.get()]);
    return s;
  });
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);
  const auto durations = bench::run_collective_loop(
      fabric, app, gpus, comm, coll::CollectiveKind::kAllReduce, size, 2, 6);
  return to_gibps(coll::algorithm_bandwidth(
      size, mean(durations)));
}

}  // namespace

int main() {
  std::printf("=== Ablation: ring channel count (8 GPUs, 2 vNICs/host) ===\n\n");
  std::printf("%-10s %16s %16s\n", "channels", "128MB algbw GB/s", "1MB algbw GB/s");
  for (int channels : {1, 2, 4}) {
    std::printf("%-10d %16.2f %16.2f\n", channels,
                run_channels(channels, 128_MB), run_channels(channels, 1_MB));
  }
  std::printf("\nExpected: 2 channels ~2x the single-channel bandwidth (both\n"
              "vNICs busy); 4 channels match 2 at large sizes (NIC-bound) and\n"
              "lose slightly at small sizes (more per-step latency).\n");
  return 0;
}
