// Figure 7: adapting a running job's collective strategy to background
// traffic. Four hosts hang off four switches wired in a ring; an 8-GPU
// AllReduce job runs a clockwise ring. At t=7.5 s a 75 Gbps background flow
// appears on one clockwise switch-to-switch link, collapsing the job's
// bandwidth; at t=12 s the provider issues a runtime reconfiguration that
// reverses the ring (counter-clockwise), restoring full bandwidth without
// interrupting the application.
//
// Prints the per-collective algorithm-bandwidth timeline the figure plots.

#include <cstdio>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;

constexpr Bytes kSize = 512_MB;
constexpr Time kBgStart = 7.5;
constexpr Time kReconfigAt = 12.0;
constexpr Time kEnd = 20.0;

}  // namespace

int main() {
  std::printf("=== Figure 7: runtime ring reconfiguration around a background flow ===\n\n");

  auto cl = cluster::make_switch_ring(4, /*gpus_per_host=*/2, /*nics_per_host=*/2,
                                      gbps(100));
  bench::Harness h =
      bench::make_harness(bench::Scheme::kMccsNoFa, std::move(cl), 1);
  svc::Fabric& fabric = *h.fabric;

  const AppId app{1};
  std::vector<GpuId> gpus;
  for (std::uint32_t g = 0; g < 8; ++g) gpus.push_back(GpuId{g});
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);

  // Background flow: 75 Gbps on the clockwise link sw1 -> sw2 (switch nodes
  // are created first in make_switch_ring, so node ids 0..3 are switches).
  fabric.loop().schedule_at(kBgStart, [&fabric] {
    net::FlowSpec bg;
    bg.src = NodeId{1};
    bg.dst = NodeId{2};
    bg.route = RouteId{0};
    bg.background_demand = gbps(75);
    fabric.network().start_flow(std::move(bg));
  });

  // The centralized manager reacts (after monitoring delay) by reversing the
  // ring at t=12 s.
  fabric.loop().schedule_at(kReconfigAt, [&] {
    svc::CommStrategy reversed = fabric.strategy_of(comm);
    for (auto& o : reversed.channel_orders) o = o.reversed();
    fabric.reconfigure(comm, std::move(reversed));
  });

  // Application: back-to-back 512 MB AllReduces until t=20 s.
  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr buf;
  };
  std::vector<Rank> ranks;
  const std::size_t count = kSize / sizeof(float);
  for (GpuId g : gpus) {
    svc::Shim& shim = fabric.connect(app, g);
    ranks.push_back(Rank{&shim, &shim.create_app_stream(), shim.alloc(kSize)});
  }

  struct Point {
    Time completed;
    double algbw;
  };
  std::vector<Point> timeline;
  int completions_this_iter = 0;
  Time iter_start = 0.0;

  std::function<void()> issue_round = [&] {
    if (fabric.loop().now() >= kEnd) return;
    iter_start = fabric.loop().now();
    completions_this_iter = 0;
    for (Rank& r : ranks) {
      r.shim->all_reduce(comm, r.buf, r.buf, count, coll::DataType::kFloat32,
                         coll::ReduceOp::kSum, *r.stream, [&](Time done) {
                           if (++completions_this_iter == 8) {
                             timeline.push_back(
                                 {done, to_gibps(coll::algorithm_bandwidth(
                                            kSize, done - iter_start))});
                             issue_round();
                           }
                         });
    }
  };
  issue_round();
  fabric.loop().run_while_pending([&] { return fabric.loop().now() >= kEnd; });

  std::printf("%-12s %-14s %s\n", "time_s", "algbw_GBps", "phase");
  for (const Point& p : timeline) {
    const char* phase = p.completed < kBgStart ? "baseline"
                        : p.completed < kReconfigAt ? "bg-flow (degraded)"
                                                    : "after reconfig";
    std::printf("%-12.2f %-14.2f %s\n", p.completed, p.algbw, phase);
  }

  // Summary per phase.
  auto phase_mean = [&](Time a, Time b) {
    double sum = 0;
    int n = 0;
    for (const Point& p : timeline) {
      if (p.completed >= a && p.completed < b) {
        sum += p.algbw;
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  std::printf("\nBaseline mean: %.2f GB/s | during background flow: %.2f GB/s |"
              " after reconfiguration: %.2f GB/s\n",
              phase_mean(0, kBgStart), phase_mean(kBgStart + 0.5, kReconfigAt),
              phase_mean(kReconfigAt + 0.5, kEnd));
  std::printf("Paper: 5.9 GB/s -> 1.7 GB/s -> 5.9 GB/s (shape: collapse, then"
              " full recovery after the runtime reconfiguration).\n");
  return 0;
}
