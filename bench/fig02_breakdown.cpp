// Figure 2: training-time breakdown (Idle / Memcpy / Compute / Comm) of
// models from four product groups at a large social-network company.
//
// The production models are proprietary; DESIGN.md documents the synthetic
// profiles (src/workload/models.cpp::production_model_groups) that span the
// same qualitative balances: communication-heavy, balanced, compute-bound,
// and input-bound. Each group trains data- or tensor-parallel on 4 GPUs of
// the testbed through the MCCS service; the fractions come from measured
// stream busy times and wall clock, exactly how a profiler would compute
// them.

#include <cstdio>

#include "common.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

int main() {
  using namespace mccs;
  std::printf("=== Figure 2: training time breakdown by product group ===\n\n");
  std::printf("%-8s %8s %8s %8s %8s\n", "group", "idle%", "memcpy%", "compute%",
              "comm%");

  const auto groups = workload::production_model_groups();
  const char* labels[] = {"A", "B", "C", "D"};
  for (std::size_t i = 0; i < groups.size(); ++i) {
    bench::Harness h = bench::make_harness(bench::Scheme::kMccsNoFa,
                                           cluster::make_testbed(), 1,
                                           /*timing_only=*/true);
    std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
    if (groups[i].parallelism == workload::Parallelism::kTensorParallel) {
      gpus = {GpuId{0}, GpuId{2}};  // TP groups run 2-way
    }
    workload::TrainingJob job(*h.fabric, AppId{1}, gpus, groups[i],
                              {.iterations = 6});
    job.start();
    h.fabric->loop().run();
    MCCS_CHECK(job.finished(), "training job did not finish");
    const auto b = job.breakdown();
    std::printf("%-8s %8.1f %8.1f %8.1f %8.1f\n", labels[i], b.idle_frac * 100,
                b.memcpy_frac * 100, b.compute_frac * 100, b.comm_frac * 100);
  }
  std::printf(
      "\nPaper expectation: all four components are material; exposed\n"
      "communication is a significant fraction for several groups.\n");
  return 0;
}
