// Ablation: why the Fig.-4 reconfiguration barrier exists.
//
// Two identical workloads issue back-to-back AllReduces while the provider
// fires reconfiguration commands with adversarially staggered per-rank
// delays. With the MCCS protocol (sequence-number barrier over the control
// ring) every collective completes and every sum is exact. With the naive
// ablation (apply-on-receipt), ranks execute the same collective under
// different ring configurations: transfers address the wrong peers, step
// machines wait for tags that never come, and the run wedges or corrupts.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;

struct Outcome {
  int completed = 0;
  int expected = 0;
  bool numerically_correct = true;
  bool wedged = false;
};

Outcome run(bool use_protocol, int rounds) {
  svc::Fabric::Options options;
  options.seed = 5;
  options.config.unsafe_immediate_reconfig = !use_protocol;
  svc::Fabric fabric{cluster::make_testbed(), options};

  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);

  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr buf;
  };
  std::vector<Rank> ranks;
  const std::size_t count = 4096;
  // Asymmetric inputs: each rank contributes a distinct per-element value, so
  // any chunk delivered to the wrong peer produces a detectably wrong sum
  // (symmetric inputs would mask mixed-configuration corruption).
  std::vector<float> expected(count, 0.0f);
  for (std::size_t rk = 0; rk < gpus.size(); ++rk) {
    svc::Shim& shim = fabric.connect(app, gpus[rk]);
    Rank r{&shim, &shim.create_app_stream(), shim.alloc(count * sizeof(float))};
    auto span = fabric.gpus().typed<float>(r.buf, count);
    for (std::size_t i = 0; i < count; ++i) {
      span[i] = static_cast<float>((rk + 1) * 16 + i % 13);
      expected[i] += span[i];
    }
    ranks.push_back(r);
  }

  Outcome out;
  // A long burst of back-to-back collectives, with one staggered
  // reconfiguration per round landing mid-burst: each rank's strategy swap
  // (in the naive ablation) falls between different collectives, so some
  // sequence number executes under mixed configurations.
  const int burst = 12;
  for (int round = 0; round < rounds; ++round) {
    for (int b = 0; b < burst; ++b) {
      out.expected += 4;
      for (Rank& r : ranks) {
        r.shim->all_reduce(comm, r.buf, r.buf, count, coll::DataType::kFloat32,
                           coll::ReduceOp::kSum, *r.stream,
                           [&](Time) { ++out.completed; });
      }
    }
    svc::CommStrategy rev = fabric.strategy_of(comm);
    for (auto& o : rev.channel_orders) o = o.reversed();
    // Delays spanning several collective durations, rotated per round.
    std::vector<Time> delays{micros(0), micros(150), micros(350), micros(650)};
    std::rotate(delays.begin(), delays.begin() + round % 4, delays.end());
    fabric.reconfigure(comm, std::move(rev), delays);
    // Let this round's burst drain before the next (the protocol run needs
    // no such care, but keeps both runs comparable).
    fabric.loop().run_until(fabric.loop().now() + millis(50));
  }

  // Bounded drive: a correct run drains well before the deadline.
  fabric.loop().run_until(seconds(30));
  out.wedged = out.completed < out.expected;

  // Each in-place AllReduce multiplies the (already reduced) values by 4;
  // the first produces the elementwise sum.
  const int total_colls = rounds * burst;
  float scale = 1.0f;
  for (int i = 1; i < total_colls; ++i) scale *= 4.0f;
  for (const Rank& r : ranks) {
    auto span = fabric.gpus().typed<float>(r.buf, count);
    for (std::size_t i = 0; i < count; ++i) {
      const float want = expected[i] * scale;
      // Relative comparison: repeated x4 scaling leaves exact powers of two,
      // but allow for float rounding of the large magnitudes.
      if (!out.wedged && std::abs(span[i] - want) > 1e-4f * std::abs(want)) {
        out.numerically_correct = false;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: Fig.-4 reconfiguration barrier vs naive apply ===\n\n");
  constexpr int kRounds = 4;
  const Outcome with = run(/*use_protocol=*/true, kRounds);
  const Outcome naive = run(/*use_protocol=*/false, kRounds);

  auto show = [](const char* name, const Outcome& o) {
    std::printf("%-18s collectives %d/%d%s%s\n", name, o.completed, o.expected,
                o.wedged ? "  WEDGED (mixed-configuration deadlock)" : "",
                !o.wedged && !o.numerically_correct ? "  DATA CORRUPTED" : "");
  };
  show("MCCS protocol:", with);
  show("naive apply:", naive);

  const bool protocol_ok = !with.wedged && with.numerically_correct &&
                           with.completed == with.expected;
  std::printf("\n%s\n",
              protocol_ok && (naive.wedged || !naive.numerically_correct)
                  ? "The barrier protocol is necessary AND sufficient here: the"
                    " naive variant fails, MCCS completes with exact sums."
                  : "UNEXPECTED: see counters above.");
  return protocol_ok ? 0 : 1;
}
