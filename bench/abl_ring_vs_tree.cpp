// Ablation: ring vs binary-tree AllReduce across message sizes.
//
// §5 notes that tree algorithms integrate straightforwardly next to the
// ported ring kernels; this bench shows why a provider would keep both. On
// the 8-GPU testbed a ring serialises 2(n-1) = 14 steps, while the tree's
// critical path is ~2*log2(n) hops (pipelined over chunks): trees win the
// latency-bound small-message regime, rings win the bandwidth-bound large-
// message regime (every ring byte crosses each NIC once; the tree root's
// links carry multiples). The provider can pick per communicator via
// CommStrategy::algorithm — exactly the kind of choice §2.1 says libraries
// hardcode behind static heuristics.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"

namespace {

using namespace mccs;

double run_algo(coll::Algorithm algo, Bytes size) {
  svc::Fabric::Options options;
  options.seed = 3;
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};
  // Latency-bound messages use an unpipelined tree (1 chunk: ~2 log2 n hops
  // on the critical path); bandwidth-bound ones pipeline over 8 chunks.
  const std::size_t tree_chunks = size <= 1_MB ? 1 : 8;
  fabric.set_strategy_provider([&fabric, algo, tree_chunks](const svc::CommInfo& info) {
    svc::CommStrategy s =
        mccs::policy::locality_aware_strategy(info.gpus, fabric.cluster());
    s.algorithm = algo;
    s.tree_pipeline_chunks = tree_chunks;
    return s;
  });
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const CommId comm = bench::bench_create_comm(fabric, app, gpus);
  const auto durations = bench::run_collective_loop(
      fabric, app, gpus, comm, coll::CollectiveKind::kAllReduce, size, 2, 6);
  return mean(durations);
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: AllReduce algorithm diversity (8 GPUs, testbed) ===\n\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "size", "ring (us)",
              "tree (us)", "dbtree (us)", "pairwise (us)", "winner");
  Bytes crossover = 0;
  const std::vector<std::pair<const char*, coll::Algorithm>> algos = {
      {"ring", coll::Algorithm::kRing},
      {"tree", coll::Algorithm::kTree},
      {"dbtree", coll::Algorithm::kDoubleBinaryTree},
      {"pairwise", coll::Algorithm::kPairwise},
  };
  for (Bytes size : {4_KB, 16_KB, 64_KB, 256_KB, 1_MB, 4_MB, 16_MB, 64_MB, 256_MB}) {
    double us[4] = {};
    const char* winner = "ring";
    double best = 0.0;
    for (std::size_t i = 0; i < algos.size(); ++i) {
      us[i] = run_algo(algos[i].second, size) * 1e6;
      if (i == 0 || us[i] < best) {
        best = us[i];
        winner = algos[i].first;
      }
    }
    if (us[1] < us[0]) crossover = size;
    std::string label = size >= 1_MB ? std::to_string(size / 1_MB) + "MB"
                                     : std::to_string(size / 1_KB) + "KB";
    std::printf("%-10s %12.1f %12.1f %12.1f %12.1f %10s\n", label.c_str(),
                us[0], us[1], us[2], us[3], winner);
  }
  std::printf("\nTree wins the latency-bound regime (up to ~%lluKB here); the"
              " ring wins once bandwidth dominates.\n",
              static_cast<unsigned long long>(crossover / 1_KB));
  return 0;
}
