// Microbenchmark: host-side cost of the telemetry subsystem.
//
// Telemetry must be free when disabled and cheap when enabled. This bench
// runs the micro_overhead scenario (testbed cluster, one cross-rack 4 KB
// AllReduce relaunched back to back) with the timeline sampler off and on,
// alternating modes across repetitions so machine noise hits both equally,
// and reports:
//
//   * virtual_identical — the simulated per-iteration latencies of the two
//     modes compared bit for bit. Telemetry only *observes* the simulation,
//     so any drift here is a correctness bug, not an overhead question;
//   * overhead_frac — (min enabled wall - min disabled wall) / min disabled
//     wall over the repetitions. Min-of-reps because host timing noise is
//     one-sided (preemption only ever slows a rep down);
//   * the enabled mode's recording volume (timeline events, retained bytes,
//     Chrome trace JSON size) so the cost has a denominator.
//
// Emits one JSON line per mode plus a summary line to BENCH_telemetry.json;
// scripts/check.sh gates on the schema, on virtual_identical, and on
// overhead_frac <= 0.10.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "cluster/cluster.h"
#include "common.h"
#include "mccs/trace_export.h"

namespace {

using namespace mccs;

constexpr int kReps = 9;     // alternating off/on repetitions per mode
constexpr int kLoops = 150;  // timed collective loops per repetition
constexpr int kWarmupIters = 2;
constexpr int kIters = 6;  // measured iterations per loop (8 launches total)

struct RepResult {
  double min_loop_s = 0.0;  ///< fastest single timed loop in this rep
  double wall_s = 0.0;      ///< total timed wall across all loops
  std::vector<Time> virtual_durations;  ///< first timed loop's iterations
  std::uint64_t timeline_events = 0;
  std::size_t timeline_bytes = 0;
  std::size_t chrome_trace_bytes = 0;
  std::size_t metrics_instruments = 0;
};

RepResult run_rep(bool enabled) {
  bench::Harness h =
      bench::make_harness(bench::Scheme::kMccsNoFa, cluster::make_testbed(), 1);
  h.fabric->telemetry().set_enabled(enabled);
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = bench::bench_create_comm(*h.fabric, app, gpus);

  auto loop_once = [&] {
    return bench::run_collective_loop(*h.fabric, app, gpus, comm,
                                      coll::CollectiveKind::kAllReduce, 4_KB,
                                      kWarmupIters, kIters);
  };
  loop_once();  // connection setup + plan cache, outside the timer

  // Each ~40 us loop is timed individually and the per-rep minimum kept:
  // preemption or a frequency dip inflates some loops, and the minimum
  // discards those outright where one long timed region would absorb them.
  RepResult res;
  res.min_loop_s = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kLoops; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto durations = loop_once();
    const auto t1 = std::chrono::steady_clock::now();
    if (i == 0) res.virtual_durations = std::move(durations);
    const double loop_s = std::chrono::duration<double>(t1 - t0).count();
    res.min_loop_s = std::min(res.min_loop_s, loop_s);
    res.wall_s += loop_s;
  }

  res.timeline_events = h.fabric->telemetry().timeline().event_count();
  res.timeline_bytes = h.fabric->telemetry().timeline().approximate_bytes();
  res.metrics_instruments = h.fabric->telemetry().metrics().size();
  if (enabled) {
    res.chrome_trace_bytes = svc::chrome_trace_json(*h.fabric).size();
  }
  return res;
}

bool bitwise_equal(const std::vector<Time>& a, const std::vector<Time>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Time)) == 0);
}

}  // namespace

int main() {
  std::printf("=== micro_telemetry: telemetry-enabled overhead ===\n\n");

  double min_loop[2] = {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
  double sum_wall[2] = {0.0, 0.0};
  RepResult last[2];
  bool virtual_identical = true;
  std::vector<Time> reference;

  // Alternate modes so slow host intervals (preemption, thermal) are equally
  // likely to land on either; min-of-loops then discards them entirely.
  for (int rep = 0; rep < kReps; ++rep) {
    for (const bool enabled : {false, true}) {
      RepResult r = run_rep(enabled);
      const int m = enabled ? 1 : 0;
      min_loop[m] = std::min(min_loop[m], r.min_loop_s);
      sum_wall[m] += r.wall_s;
      if (reference.empty()) {
        reference = r.virtual_durations;
      } else {
        virtual_identical =
            virtual_identical && bitwise_equal(reference, r.virtual_durations);
      }
      last[m] = std::move(r);
    }
  }

  // Fastest-loop extrapolation for the reported wall, so both modes are
  // compared at their noise-free best.
  const double min_wall[2] = {min_loop[0] * kLoops, min_loop[1] * kLoops};
  const double overhead_frac = (min_loop[1] - min_loop[0]) / min_loop[0];
  const int collectives = kLoops * (kWarmupIters + kIters);

  std::printf("%-9s %12s %12s %10s %12s %14s\n", "mode", "min wall(s)",
              "mean wall(s)", "events", "bytes", "instruments");
  for (const int m : {0, 1}) {
    std::printf("%-9s %12.4f %12.4f %10llu %12zu %14zu\n",
                m == 0 ? "off" : "on", min_wall[m], sum_wall[m] / kReps,
                static_cast<unsigned long long>(last[m].timeline_events),
                last[m].timeline_bytes, last[m].metrics_instruments);
  }
  std::printf("\noverhead_frac=%.4f  virtual_identical=%s  trace_json=%zuB\n",
              overhead_frac, virtual_identical ? "yes" : "NO",
              last[1].chrome_trace_bytes);

  std::FILE* json = std::fopen("BENCH_telemetry.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_telemetry.json");
  for (const int m : {0, 1}) {
    std::fprintf(
        json,
        "{\"bench\":\"micro_telemetry\",\"mode\":\"%s\",\"reps\":%d,"
        "\"collectives\":%d,\"min_wall_s\":%.9f,\"mean_wall_s\":%.9f,"
        "\"timeline_events\":%llu,\"timeline_bytes\":%zu,"
        "\"metrics_instruments\":%zu}\n",
        m == 0 ? "off" : "on", kReps, collectives, min_wall[m],
        sum_wall[m] / kReps,
        static_cast<unsigned long long>(last[m].timeline_events),
        last[m].timeline_bytes, last[m].metrics_instruments);
  }
  std::fprintf(json,
               "{\"bench\":\"micro_telemetry\",\"mode\":\"summary\","
               "\"overhead_frac\":%.6f,\"virtual_identical\":%s,"
               "\"chrome_trace_bytes\":%zu}\n",
               overhead_frac, virtual_identical ? "true" : "false",
               last[1].chrome_trace_bytes);
  std::fclose(json);
  std::printf("BENCH_telemetry.json written (one line per mode + summary).\n");
  return virtual_identical ? 0 : 1;
}
