// Figure 9: training workloads under QoS (§6.4). Three tenants share the
// testbed in setup 3: A trains VGG-19 from scratch on 4 GPUs (both GPUs of
// one host per rack), B and C finetune GPT models on 2 GPUs each. Job
// completion time (JCT) is reported under four strategies, normalised to
// FFA:
//   ECMP    — locality rings, hashed routing (MCCS(-FFA));
//   FFA     — fair flow assignment;
//   PFA     — one of the two spine routes reserved for A;
//   PFA+TS  — additionally, C may only send in B's idle windows.
//
// In-text claims: ECMP is 18/22/14% slower than FFA for A/B/C; PFA speeds A
// by 13% over FFA (34% over ECMP); TS speeds B by 16% over PFA.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

namespace {

using namespace mccs;

enum class QosScheme { kEcmp, kFfa, kPfa, kPfaTs };

const char* qos_name(QosScheme s) {
  switch (s) {
    case QosScheme::kEcmp: return "ECMP";
    case QosScheme::kFfa: return "FFA";
    case QosScheme::kPfa: return "PFA";
    case QosScheme::kPfaTs: return "PFA+TS";
  }
  return "?";
}

struct RunResult {
  double jct_a = 0, jct_b = 0, jct_c = 0;
};

workload::TrainingModelSpec scaled_vgg() {
  // Scaled-down iteration counts keep the bench quick; the comm/compute
  // ratio — what the policies act on — is the full model's.
  return workload::vgg19_data_parallel();
}

workload::TrainingModelSpec scaled_gpt() {
  auto m = workload::gpt27b_tensor_parallel();
  m.layers = 8;  // finetune a slice per iteration; keeps virtual time short
  return m;
}

RunResult run_once(QosScheme scheme, std::uint64_t seed) {
  bench::Harness h = bench::make_harness(
      scheme == QosScheme::kEcmp ? bench::Scheme::kMccsNoFa : bench::Scheme::kMccs,
      cluster::make_testbed(), seed);
  svc::Fabric& fabric = *h.fabric;
  policy::Controller& controller = *h.controller;

  if (scheme == QosScheme::kPfa || scheme == QosScheme::kPfaTs) {
    controller.set_flow_policy(policy::Controller::FlowPolicy::kPfa);
    controller.set_high_priority(AppId{1});  // A
    controller.set_reserved_routes({0});
  }

  // Setup 3 placement.
  workload::TrainingJob job_a(fabric, AppId{1},
                              {GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}},
                              scaled_vgg(), {.iterations = 8});
  workload::TrainingJob job_b(fabric, AppId{2}, {GpuId{2}, GpuId{6}},
                              scaled_gpt(), {.iterations = 8});
  workload::TrainingJob job_c(fabric, AppId{3}, {GpuId{3}, GpuId{7}},
                              scaled_gpt(), {.iterations = 8});

  RunResult r;
  const Time t0 = fabric.loop().now();
  job_a.start([&](Time t) { r.jct_a = t - t0; });
  job_b.start([&](Time t) {
    r.jct_b = t - t0;
    // B is done: the administrator lifts C's traffic schedule.
    controller.clear_time_schedule({AppId{3}});
  });
  job_c.start([&](Time t) { r.jct_c = t - t0; });

  if (scheme == QosScheme::kPfaTs) {
    // The administrator profiles B (§5: offline profiling) and re-anchors
    // the interleaving schedule periodically as B's phase drifts.
    fabric.loop().schedule_at(seconds(2.0), [&] {
      workload::run_periodic_traffic_scheduling(fabric, controller, job_b,
                                                {AppId{3}});
    });
  }

  fabric.loop().run();
  MCCS_CHECK(job_a.finished() && job_b.finished() && job_c.finished(),
             "QoS run did not complete");
  return r;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: JCT under scheduling and QoS strategies ===\n\n");
  constexpr int kTrials = 8;

  std::map<QosScheme, std::vector<RunResult>> results;
  for (QosScheme s : {QosScheme::kEcmp, QosScheme::kFfa, QosScheme::kPfa,
                      QosScheme::kPfaTs}) {
    for (int t = 0; t < kTrials; ++t) results[s].push_back(run_once(s, 300 + 11 * t));
  }

  auto mean_of = [&](QosScheme s, auto member) {
    double sum = 0;
    for (const RunResult& r : results[s]) sum += r.*member;
    return sum / kTrials;
  };
  const double base_a = mean_of(QosScheme::kFfa, &RunResult::jct_a);
  const double base_b = mean_of(QosScheme::kFfa, &RunResult::jct_b);
  const double base_c = mean_of(QosScheme::kFfa, &RunResult::jct_c);

  std::printf("%-8s %18s %18s %18s\n", "scheme", "VGG (A) norm JCT",
              "GPT (B) norm JCT", "GPT (C) norm JCT");
  for (QosScheme s : {QosScheme::kEcmp, QosScheme::kFfa, QosScheme::kPfa,
                      QosScheme::kPfaTs}) {
    std::printf("%-8s %18.3f %18.3f %18.3f\n", qos_name(s),
                mean_of(s, &RunResult::jct_a) / base_a,
                mean_of(s, &RunResult::jct_b) / base_b,
                mean_of(s, &RunResult::jct_c) / base_c);
  }

  const double pfa_a = mean_of(QosScheme::kPfa, &RunResult::jct_a);
  const double ecmp_a = mean_of(QosScheme::kEcmp, &RunResult::jct_a);
  const double pfa_b = mean_of(QosScheme::kPfa, &RunResult::jct_b);
  const double ts_b = mean_of(QosScheme::kPfaTs, &RunResult::jct_b);
  std::printf("\nPFA speeds up A vs FFA: %+.0f%%  (paper: +13%%)\n",
              100.0 * (base_a / pfa_a - 1.0));
  std::printf("PFA speeds up A vs ECMP: %+.0f%%  (paper: +34%%)\n",
              100.0 * (ecmp_a / pfa_a - 1.0));
  std::printf("TS speeds up B vs PFA:   %+.0f%%  (paper: +16%%)\n",
              100.0 * (pfa_b / ts_b - 1.0));
  return 0;
}
