#pragma once
// Shared bench harness: constructs a fabric configured for one of the four
// evaluation schemes of §6.1 and provides nccl-tests-style collective
// benchmark loops.
//
//   NCCL      — library timing model, user rank order, ECMP
//   NCCL(OR)  — library timing model, locality-optimal ring (the user hand-
//               configured ranks with the provider algorithm's output), ECMP
//   MCCS(-FA) — MCCS service timing model, locality rings, ECMP
//   MCCS      — MCCS service timing model, locality rings + FFA routes

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/nccl_model.h"
#include "cluster/cluster.h"
#include "common/stats.h"
#include "mccs/fabric.h"
#include "policy/controller.h"

namespace mccs::bench {

enum class Scheme { kNccl, kNcclOr, kMccsNoFa, kMccs };

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNccl: return "NCCL";
    case Scheme::kNcclOr: return "NCCL(OR)";
    case Scheme::kMccsNoFa: return "MCCS(-FA)";
    case Scheme::kMccs: return "MCCS";
  }
  return "?";
}

struct Harness {
  std::unique_ptr<svc::Fabric> fabric;
  std::unique_ptr<policy::Controller> controller;
};

inline Harness make_harness(Scheme scheme, cluster::Cluster cl,
                            std::uint64_t seed, bool timing_only = true) {
  svc::Fabric::Options options;
  options.seed = seed;
  if (scheme == Scheme::kNccl || scheme == Scheme::kNcclOr) {
    options.config = baseline::nccl_library_config();
  }
  if (timing_only) {
    // Benches measure time, not data; correctness is covered by the tests.
    options.config.move_data = false;
    options.gpu_config.materialize_memory = false;
  }
  Harness h;
  h.fabric = std::make_unique<svc::Fabric>(std::move(cl), options);
  h.controller = std::make_unique<policy::Controller>(*h.fabric);
  switch (scheme) {
    case Scheme::kNccl:
      h.controller->set_ring_policy(policy::Controller::RingPolicy::kUserOrder);
      h.controller->set_flow_policy(policy::Controller::FlowPolicy::kEcmp);
      break;
    case Scheme::kNcclOr:
    case Scheme::kMccsNoFa:
      h.controller->set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
      h.controller->set_flow_policy(policy::Controller::FlowPolicy::kEcmp);
      break;
    case Scheme::kMccs:
      h.controller->set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
      h.controller->set_flow_policy(policy::Controller::FlowPolicy::kFfa);
      break;
  }
  h.controller->attach();
  return h;
}

/// Create a communicator synchronously (runs the loop until bootstrapped).
inline CommId bench_create_comm(svc::Fabric& fabric, AppId app,
                                const std::vector<GpuId>& gpus) {
  const svc::UniqueId uid = fabric.new_unique_id();
  int ready = 0;
  CommId comm;
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    fabric.connect(app, gpus[r])
        .comm_init_rank(uid, static_cast<int>(gpus.size()), static_cast<int>(r),
                        [&](CommId id) {
                          comm = id;
                          ++ready;
                        });
  }
  const bool ok = fabric.loop().run_while_pending(
      [&] { return ready == static_cast<int>(gpus.size()); });
  MCCS_CHECK(ok, "bootstrap stalled");
  return comm;
}

/// Back-to-back collective loop on one communicator (nccl-tests style).
/// Returns per-iteration completion times after `warmup` iterations.
inline std::vector<Time> run_collective_loop(svc::Fabric& fabric, AppId app,
                                             const std::vector<GpuId>& gpus,
                                             CommId comm,
                                             coll::CollectiveKind kind,
                                             Bytes output_bytes, int warmup,
                                             int iters) {
  const int n = static_cast<int>(gpus.size());
  // "Data size" = output buffer size (§6.2).
  const std::size_t out_elems = output_bytes / sizeof(float);
  // `count` is chosen so `output_bytes` equals the TOTAL data size of the
  // operation (what the paper's x-axis plots): blocked collectives divide it
  // across the n per-rank blocks.
  const std::size_t count =
      (kind == coll::CollectiveKind::kAllGather ||
       kind == coll::CollectiveKind::kAllToAll ||
       kind == coll::CollectiveKind::kReduceScatter ||
       kind == coll::CollectiveKind::kGather ||
       kind == coll::CollectiveKind::kScatter)
          ? out_elems / static_cast<std::size_t>(n)
          : out_elems;
  MCCS_EXPECTS(count > 0);

  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr send;
    gpu::DevicePtr recv;
  };
  std::vector<Rank> ranks;
  for (GpuId g : gpus) {
    svc::Shim& shim = fabric.connect(app, g);
    Rank r;
    r.shim = &shim;
    r.stream = &shim.create_app_stream();
    const bool send_blocked = kind == coll::CollectiveKind::kReduceScatter ||
                              kind == coll::CollectiveKind::kAllToAll ||
                              kind == coll::CollectiveKind::kScatter;
    const bool recv_blocked = kind == coll::CollectiveKind::kAllGather ||
                              kind == coll::CollectiveKind::kAllToAll ||
                              kind == coll::CollectiveKind::kGather;
    const Bytes send_bytes =
        static_cast<Bytes>(count) * (send_blocked ? n : 1) * sizeof(float);
    const Bytes recv_bytes =
        static_cast<Bytes>(count) * (recv_blocked ? n : 1) * sizeof(float);
    r.send = shim.alloc(send_bytes);
    r.recv = shim.alloc(recv_bytes);
    ranks.push_back(r);
  }

  std::vector<Time> iter_end;
  int completions = 0;
  const int total = warmup + iters;
  for (int it = 0; it < total; ++it) {
    for (Rank& r : ranks) {
      auto cb = [&completions](Time) { ++completions; };
      switch (kind) {
        case coll::CollectiveKind::kAllReduce:
          r.shim->all_reduce(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                             coll::ReduceOp::kSum, *r.stream, cb);
          break;
        case coll::CollectiveKind::kAllGather:
          r.shim->all_gather(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                             *r.stream, cb);
          break;
        case coll::CollectiveKind::kReduceScatter:
          r.shim->reduce_scatter(comm, r.send, r.recv, count,
                                 coll::DataType::kFloat32, coll::ReduceOp::kSum,
                                 *r.stream, cb);
          break;
        case coll::CollectiveKind::kBroadcast:
          r.shim->broadcast(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                            0, *r.stream, cb);
          break;
        case coll::CollectiveKind::kReduce:
          r.shim->reduce(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                         coll::ReduceOp::kSum, 0, *r.stream, cb);
          break;
        case coll::CollectiveKind::kAllToAll:
          r.shim->all_to_all(comm, r.send, r.recv, count,
                             coll::DataType::kFloat32, *r.stream, cb);
          break;
        case coll::CollectiveKind::kGather:
          r.shim->gather(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                         0, *r.stream, cb);
          break;
        case coll::CollectiveKind::kScatter:
          r.shim->scatter(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                          0, *r.stream, cb);
          break;
      }
    }
    const int want = (it + 1) * n;
    const bool ok =
        fabric.loop().run_while_pending([&] { return completions >= want; });
    MCCS_CHECK(ok, "collective loop stalled");
    if (it >= warmup) iter_end.push_back(fabric.loop().now());
  }

  std::vector<Time> durations;
  Time prev = iter_end.empty() ? 0.0 : iter_end.front();
  for (std::size_t i = 1; i < iter_end.size(); ++i) {
    durations.push_back(iter_end[i] - prev);
    prev = iter_end[i];
  }
  MCCS_CHECK(!durations.empty(), "need at least 2 measured iterations");
  return durations;
}

/// Algorithm bandwidth samples (GB/s) for one scheme across ECMP seeds.
inline std::vector<double> algbw_samples(
    Scheme scheme, const std::function<cluster::Cluster()>& make_cluster,
    const std::vector<GpuId>& gpus, coll::CollectiveKind kind, Bytes bytes,
    int trials, int iters) {
  std::vector<double> samples;
  for (int t = 0; t < trials; ++t) {
    Harness h = make_harness(scheme, make_cluster(), 1000 + 7 * t);
    const AppId app{1};
    const CommId comm = bench_create_comm(*h.fabric, app, gpus);
    const auto durations =
        run_collective_loop(*h.fabric, app, gpus, comm, kind, bytes, 2, iters);
    for (Time d : durations) {
      samples.push_back(to_gibps(coll::algorithm_bandwidth(bytes, d)));
    }
  }
  return samples;
}

}  // namespace mccs::bench
