// Cluster-day churn harness: the control plane under a full day of tenant
// arrivals and departures on 1k- and 4k-GPU Clos fabrics.
//
// A seeded Poisson trace of training jobs (weighted size mix, exponential
// lifetimes, a slice of high-priority tenants) is replayed through FIFO
// admission control with compact (rack-packing) placement and a
// locality-aware ring per job. Every admission / departure is a
// control-plane event that must re-run PFA flow assignment; the bench times
// that decision in two modes over the IDENTICAL trace:
//
//   full        — the one-shot solver: assign_flows over every live tenant,
//                 from scratch, per event (what every fig harness does);
//   incremental — the warm-started IncrementalAssigner: only the dirty
//                 closure (tenants interfering with the changed one)
//                 re-solves.
//
// Headline metrics per (scale, mode): controller decision latency
// p50/p99/p999 (wall-clock microseconds; the percentile ladder is the new
// stats.h tail_summary), cluster goodput (admitted GPU-time / total
// GPU-time — identical across modes by construction, admission is
// mode-independent), and for the incremental mode the closure sizes and the
// p99 speedup vs full. The two modes' final assignments are compared
// exactly; `assignments_identical` lands in the JSON and scripts/check.sh
// gates it together with a >= 3x p99 speedup floor at >= 1024 GPUs.
//
// Emits one JSON line per (scale, mode) to BENCH_cluster.json.
//
// A second section exercises the same control plane under chaos: the
// workload::run_chaos_churn harness (churn composed with link fault storms
// and tenant kills) swept over seeds in reconfig vs rehash-only mode for the
// goodput-retention headline, plus a long-horizon soak on the 4k-GPU Clos
// (hours of virtual time in four quarters) asserting memory and telemetry-
// registry stability. Emits BENCH_chaos.json; scripts/check.sh gates the
// retention ratio, zero invariant violations, and the soak growth bounds.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/admission.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mccs/strategy.h"
#include "netsim/routing.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"
#include "telemetry/metrics.h"
#include "workload/arrivals.h"
#include "workload/chaos.h"

namespace {

using namespace mccs;

constexpr std::uint64_t kSeed = 20240607;
/// Route indices reserved for high-priority tenants (PFA).
const std::unordered_set<std::uint32_t> kReservedRoutes{0, 1};

struct Scale {
  const char* name;
  cluster::SpineLeafSpec spec;
  workload::ChurnSpec churn;
};

std::vector<Scale> scales() {
  std::vector<Scale> out;
  // Racks (128 GPUs: 16 hosts x 8) comfortably fit the largest job (64), so
  // compact placement keeps most tenants intra-rack; cross-rack spill-over —
  // which couples whole racks into one interference component — happens only
  // under fragmentation, as in a real cluster. ~60% offered load keeps the
  // admission queue shallow and the component graph sparse.
  {
    // 1024 GPUs: 8 leaves x 16 hosts x 8 GPUs, 16 spines.
    Scale s;
    s.name = "clos-1k";
    s.spec.num_spines = 16;
    s.spec.num_leaves = 8;
    s.spec.hosts_per_leaf = 16;
    s.spec.gpus_per_host = 8;
    s.spec.nics_per_host = 8;
    s.spec.nic_link = gbps(200);
    s.spec.fabric_link = gbps(200);
    // ~50 live jobs x ~12.8 GPUs => ~62% load. Jobs top out at a quarter
    // rack, so compact placement keeps tenants intra-rack: a cross-rack
    // spill welds both racks' uplinks into one interference component for
    // the job's whole lifetime, and at this scale (8 racks) a handful of
    // spills chains most of the fabric together — the mix keeps spills the
    // exception, as in a production cluster.
    s.churn.sizes = {8, 16, 32};
    s.churn.size_weights = {4.0, 4.0, 2.0};
    s.churn.mean_interarrival = 18.0;
    s.churn.mean_duration = 900.0;
    s.churn.horizon = 18000.0;
    s.churn.high_priority_fraction = 0.1;
    out.push_back(s);
  }
  {
    // 4096 GPUs: 32 leaves x 16 hosts x 8 GPUs, 32 spines.
    Scale s;
    s.name = "clos-4k";
    s.spec.num_spines = 32;
    s.spec.num_leaves = 32;
    s.spec.hosts_per_leaf = 16;
    s.spec.gpus_per_host = 8;
    s.spec.nics_per_host = 8;
    s.spec.nic_link = gbps(200);
    s.spec.fabric_link = gbps(200);
    // ~120 live jobs => ~61% load; shorter day, same event-count ballpark —
    // the full mode's per-event cost is what explodes with the tenant count.
    s.churn.mean_interarrival = 10.0;
    s.churn.mean_duration = 1200.0;
    s.churn.horizon = 10000.0;
    s.churn.high_priority_fraction = 0.1;
    out.push_back(s);
  }
  return out;
}

/// One admitted tenant: its communicator identity and fixed ring strategy.
struct LiveJob {
  std::vector<GpuId> gpus;
  svc::CommStrategy strategy;
  bool high_priority = false;
  Time admitted_at = 0.0;
};

struct ModeResult {
  std::vector<double> latencies_s;  ///< one per control-plane event
  double goodput = 0.0;
  std::size_t events = 0;
  std::size_t jobs = 0;
  std::uint64_t admitted = 0;
  std::size_t queued_peak = 0;
  double mean_closure = 0.0;  ///< incremental only: avg dirty-closure items
  /// Control-plane solve coalescing: the event loop folds every tenant
  /// mutation a churn event carries (one departure can admit a whole burst
  /// of queued jobs) into a single assigner solve.
  double solves_per_event = 0.0;
  double mean_batch_width = 0.0;  ///< tenant mutations folded per solve
  /// Deterministic digest of the assignment after EVERY event (live comms
  /// ascending, route keys ascending), so "identical" means identical at
  /// each of the trace's thousands of decision points — not merely at the
  /// end, where both modes trivially agree on an empty cluster.
  std::uint64_t assignment_digest = policy::kFnvOffset;
  /// Exact assignment snapshot at the trace midpoint, for a direct map
  /// comparison on top of the digest.
  std::unordered_map<std::uint32_t, policy::RouteMap> mid_assignments;
};

/// Replay the trace once. `incremental` selects the control plane; all
/// workload-side state (admission, placement, strategies) is identical
/// either way, so the modes differ only in how routes are recomputed.
ModeResult run_mode(const Scale& scale, bool incremental) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(scale.spec);
  const net::Routing routing(cluster.topology());
  cluster::AdmissionQueue admission(cluster, cluster::Placement::kCompact);
  Rng rng(kSeed ^ 0x5eedu);

  const std::vector<workload::JobSpec> jobs =
      workload::poisson_jobs(scale.churn, kSeed);
  const std::vector<workload::ChurnEvent> events = workload::churn_events(jobs);

  policy::IncrementalAssigner assigner(cluster, routing);
  assigner.set_reserved_routes(kReservedRoutes);
  policy::AssignOptions options;
  options.reserved_routes = kReservedRoutes;

  std::unordered_map<std::uint32_t, LiveJob> live;
  std::unordered_map<std::uint32_t, policy::RouteMap> full_routes;
  ModeResult res;
  res.jobs = jobs.size();
  double busy_gpu_time = 0.0;
  double closure_total = 0.0;
  std::size_t solves = 0;
  std::size_t mutations = 0;

  auto activate = [&](JobId job, std::vector<GpuId> gpus, Time now) {
    const workload::JobSpec& spec = jobs[job.get()];
    LiveJob lj;
    lj.strategy = policy::locality_aware_strategy(gpus, cluster);
    lj.gpus = std::move(gpus);
    lj.high_priority = spec.high_priority;
    lj.admitted_at = now;
    live.emplace(job.get(), std::move(lj));
  };

  for (const workload::ChurnEvent& ev : events) {
    // Admission (mode-independent): which jobs start or stop right now.
    std::vector<std::uint32_t> started;
    std::vector<std::uint32_t> stopped;
    if (ev.arrival) {
      if (auto placed = admission.submit(ev.job, jobs[ev.job.get()].gpus, rng)) {
        activate(ev.job, std::move(*placed), ev.at);
        started.push_back(ev.job.get());
      }
    } else {
      if (live.count(ev.job.get()) > 0) stopped.push_back(ev.job.get());
      for (cluster::AdmissionQueue::Admission& adm :
           admission.finish(ev.job, rng)) {
        activate(adm.job, std::move(adm.gpus), ev.at);
        started.push_back(adm.job.get());
      }
    }
    res.queued_peak = std::max(res.queued_peak, admission.queue_depth());
    mutations += started.size() + stopped.size();

    // The timed control-plane decision: react to this event's tenant set
    // change with a (re)assignment of flows to routes.
    const auto t0 = std::chrono::steady_clock::now();
    if (incremental) {
      for (std::uint32_t id : stopped) assigner.remove_item(CommId{id});
      for (std::uint32_t id : started) {
        const LiveJob& lj = live.at(id);
        policy::AssignItem item;
        item.comm = CommId{id};
        item.app = AppId{id};
        item.gpus_by_rank = &lj.gpus;
        item.strategy = &lj.strategy;
        item.high_priority = lj.high_priority;
        assigner.add_item(item);
      }
      const policy::IncrementalSolveStats st = assigner.solve(ev.at);
      closure_total += static_cast<double>(st.solved_items);
      ++solves;
    } else {
      std::vector<policy::AssignItem> items;
      items.reserve(live.size());
      // Ascending comm id — the canonical order Controller::compute_routes
      // uses (list_communicators is sorted).
      std::vector<std::uint32_t> ids;
      ids.reserve(live.size());
      for (const auto& [id, lj] : live) {
        if (!ev.arrival && id == ev.job.get()) continue;  // departing now
        ids.push_back(id);
      }
      std::sort(ids.begin(), ids.end());
      for (std::uint32_t id : ids) {
        const LiveJob& lj = live.at(id);
        policy::AssignItem item;
        item.comm = CommId{id};
        item.app = AppId{id};
        item.gpus_by_rank = &lj.gpus;
        item.strategy = &lj.strategy;
        item.high_priority = lj.high_priority;
        items.push_back(item);
      }
      full_routes = policy::assign_flows(items, cluster, routing, options);
      ++solves;
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.latencies_s.push_back(std::chrono::duration<double>(t1 - t0).count());
    ++res.events;

    // Identity accounting, outside the timed region: digest this event's
    // post-decision assignment of every live tenant and fold it into the
    // running trace digest. policy::assignment_digest skips tenants with no
    // routed flows (single-host jobs), which assign_flows omits while the
    // warm assigner tracks with an empty route map; the explicit erase keeps
    // the mid-trace map snapshots comparable too.
    auto assignment = incremental ? assigner.assignments() : full_routes;
    for (auto it = assignment.begin(); it != assignment.end();) {
      it = it->second.empty() ? assignment.erase(it) : std::next(it);
    }
    policy::fold_digest(res.assignment_digest,
                        policy::assignment_digest(assignment));
    if (res.events == events.size() / 2) res.mid_assignments = std::move(assignment);

    // Workload accounting, outside the timed region.
    for (std::uint32_t id : stopped) {
      const LiveJob& lj = live.at(id);
      busy_gpu_time +=
          static_cast<double>(lj.gpus.size()) * (ev.at - lj.admitted_at);
      live.erase(id);
    }
  }

  if (incremental) {
    res.mean_closure = solves > 0 ? closure_total / static_cast<double>(solves) : 0.0;
  }
  res.solves_per_event =
      res.events > 0 ? static_cast<double>(solves) / static_cast<double>(res.events)
                     : 0.0;
  res.mean_batch_width =
      solves > 0 ? static_cast<double>(mutations) / static_cast<double>(solves)
                 : 0.0;
  res.admitted = admission.admitted_total();
  const double horizon = events.empty() ? 1.0 : events.back().at;
  res.goodput = busy_gpu_time /
                (static_cast<double>(cluster.gpu_count()) * horizon);
  return res;
}

// --- chaos-under-churn: goodput retention sweep + long-horizon soak ---------

/// Resident set size right now (Linux /proc/self/statm), in bytes.
std::size_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

int chaos_seed_count() {
  const char* env = std::getenv("MCCS_CHAOS_BENCH_SEEDS");
  if (env == nullptr) return 10;
  const int n = std::atoi(env);
  return n > 0 ? n : 10;
}

/// The retention sweep's fabric: 64 GPUs, one host per leaf, so every
/// multi-host tenant crosses the spine and a fabric fault sits on routed
/// paths — steering (reconfig) vs not steering (rehash) is the ONLY
/// difference between the modes. Four spines give every flow alternates to
/// steer to.
workload::ChaosChurnSpec chaos_retention_spec() {
  workload::ChaosChurnSpec s;
  s.fabric.num_spines = 4;
  s.fabric.num_leaves = 16;
  s.fabric.hosts_per_leaf = 1;
  s.fabric.gpus_per_host = 4;
  s.fabric.nics_per_host = 4;
  s.fabric.nic_link = gbps(200);
  s.fabric.fabric_link = gbps(200);
  s.churn.horizon = 4000.0;
  s.churn.mean_interarrival = 30.0;
  s.churn.mean_duration = 500.0;
  s.churn.sizes = {8, 16};
  s.churn.size_weights = {3.0, 1.0};
  s.churn.high_priority_fraction = 0.1;
  s.reserved_routes = {0};
  s.fault_episodes = 10;
  s.degrade_prob = 0.15;  // mostly hard downs: the steerable failure mode
  s.min_outage = 300.0;
  s.max_outage = 900.0;
  s.flap_bursts = 2;
  s.flaps_per_burst = 3;
  s.max_kills = 2;
  s.kill_prob = 0.5;
  s.audit_period = 8;
  s.max_admission_retries = 16;
  return s;
}

struct ChaosAgg {
  int seeds = 0;
  std::size_t events = 0;
  std::size_t violations = 0;  ///< seeds where any invariant failed
  std::size_t divergent = 0;
  double retention_sum = 0.0;
  std::uint64_t audits = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t kills = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deferred = 0;
  std::uint64_t duplicates = 0;

  void add(const workload::ChaosChurnResult& r) {
    ++seeds;
    events += r.events;
    if (!r.ok()) ++violations;
    divergent += r.divergent_events;
    retention_sum += r.goodput_retention;
    audits += r.audits;
    mismatches += r.audit_mismatches;
    fallbacks += r.fallbacks;
    kills += r.killed;
    rejected += r.rejected;
    deferred += r.deferred;
    duplicates += r.duplicate_departures;
  }
  [[nodiscard]] double retention_mean() const {
    return seeds > 0 ? retention_sum / seeds : 1.0;
  }
};

void emit_chaos_mode(std::FILE* json, const char* mode, int gpus,
                     const ChaosAgg& a) {
  std::fprintf(
      json,
      "{\"bench\":\"chaos_churn\",\"mode\":\"%s\",\"gpus\":%d,\"seeds\":%d,"
      "\"events\":%zu,\"retention_mean\":%.4f,\"violations\":%zu,"
      "\"divergent_events\":%zu,\"audits\":%llu,\"audit_mismatches\":%llu,"
      "\"fallbacks\":%llu,\"kills\":%llu,\"rejected\":%llu,\"deferred\":%llu,"
      "\"duplicate_departures\":%llu}\n",
      mode, gpus, a.seeds, a.events, a.retention_mean(), a.violations,
      a.divergent,
      static_cast<unsigned long long>(a.audits),
      static_cast<unsigned long long>(a.mismatches),
      static_cast<unsigned long long>(a.fallbacks),
      static_cast<unsigned long long>(a.kills),
      static_cast<unsigned long long>(a.rejected),
      static_cast<unsigned long long>(a.deferred),
      static_cast<unsigned long long>(a.duplicates));
}

/// The soak: the 4k-GPU Clos from the churn bench driven through four
/// quarters of chaos-under-churn (4 virtual hours each), sharing one
/// telemetry registry. Every quarter injects a warm-state poison that the
/// sampled audit must heal; identity is checked on a stride and at quiesce.
/// RSS and registry size are sampled after each quarter: a control plane
/// that leaks per-tenant or per-fault state shows up as monotone growth
/// between quarter 1 (steady-state footprint) and the end.
void run_soak(std::FILE* json, const Scale& scale4k) {
  workload::ChaosChurnSpec s;
  s.fabric = scale4k.spec;
  // A slice of larger-than-rack tenants (256 GPUs = two 128-GPU leaves):
  // compact placement never fragments smaller jobs across racks (it prefers
  // whole free racks), so only over-rack tenants put flows on the spine —
  // without them spine faults sit on no live path, the poison has no
  // multi-path victim, and retention is a vacuous 1.0. ~60% offered load.
  s.churn.sizes = {16, 64, 256};
  s.churn.size_weights = {4.0, 2.0, 1.0};
  s.churn.mean_interarrival = 30.0;
  s.churn.mean_duration = 1200.0;
  s.churn.horizon = 14400.0;  // 4 virtual hours per quarter
  s.churn.high_priority_fraction = 0.1;
  s.reserved_routes = {0, 1};
  s.fault_episodes = 24;
  s.degrade_prob = 0.3;
  s.min_outage = 300.0;
  s.max_outage = 1200.0;
  s.flap_bursts = 4;
  s.flaps_per_burst = 4;
  s.max_kills = 4;
  s.kill_prob = 0.5;
  s.audit_period = 32;
  s.max_admission_retries = 32;
  s.poison = true;
  s.oracle_every_event = false;
  s.oracle_stride = 101;

  constexpr int kQuarters = 4;
  telemetry::MetricsRegistry registry;
  ChaosAgg agg;
  bool healed = true;
  int poisons_engaged = 0;
  std::size_t rss_q1 = 0;
  std::size_t registry_q1 = 0;
  for (int q = 0; q < kQuarters; ++q) {
    const workload::ChaosChurnResult r =
        workload::run_chaos_churn(s, 0x50a4u + static_cast<std::uint64_t>(q),
                                  &registry);
    agg.add(r);
    healed = healed && r.healed;
    if (r.poisoned) ++poisons_engaged;
    std::printf("  soak quarter %d/%d: %zu events, retention %.3f, "
                "audits %llu, fallbacks %llu, %s\n",
                q + 1, kQuarters, r.events, r.goodput_retention,
                static_cast<unsigned long long>(r.audits),
                static_cast<unsigned long long>(r.fallbacks),
                r.ok() ? "ok" : "INVARIANT VIOLATION");
    if (q == 0) {
      rss_q1 = rss_bytes();
      registry_q1 = registry.size();
    }
  }
  const std::size_t rss_end = rss_bytes();
  const std::size_t registry_end = registry.size();
  const double rss_growth =
      rss_q1 > 0
          ? (static_cast<double>(rss_end) - static_cast<double>(rss_q1)) /
                static_cast<double>(rss_q1)
          : 0.0;
  const double virtual_hours =
      kQuarters * s.churn.horizon / 3600.0;

  std::printf("  soak: %.0f virtual hours, %zu events, rss %.1f -> %.1f MiB "
              "(%+.1f%%), registry %zu -> %zu instruments\n",
              virtual_hours, agg.events, rss_q1 / 1048576.0,
              rss_end / 1048576.0, rss_growth * 100.0, registry_q1,
              registry_end);
  std::fprintf(
      json,
      "{\"bench\":\"chaos_soak\",\"gpus\":4096,\"quarters\":%d,"
      "\"virtual_hours\":%.1f,\"events\":%zu,\"violations\":%zu,"
      "\"divergent_events\":%zu,\"audits\":%llu,\"audit_mismatches\":%llu,"
      "\"fallbacks\":%llu,\"poisons_engaged\":%d,\"poisons_healed\":%s,"
      "\"rss_q1_mib\":%.1f,\"rss_end_mib\":%.1f,"
      "\"rss_growth_frac\":%.4f,\"registry_size\":%zu,"
      "\"registry_growth\":%lld}\n",
      kQuarters, virtual_hours, agg.events, agg.violations, agg.divergent,
      static_cast<unsigned long long>(agg.audits),
      static_cast<unsigned long long>(agg.mismatches),
      static_cast<unsigned long long>(agg.fallbacks), poisons_engaged,
      healed ? "true" : "false", rss_q1 / 1048576.0, rss_end / 1048576.0,
      rss_growth, registry_end,
      static_cast<long long>(registry_end) -
          static_cast<long long>(registry_q1));
}

}  // namespace

int main() {
  std::printf("=== cluster_day: control-plane churn at 1k/4k GPUs ===\n\n");
  std::FILE* json = std::fopen("BENCH_cluster.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_cluster.json");

  std::printf("%-9s %5s %-12s %7s %9s %9s %9s %9s %8s %8s %6s\n", "scale",
              "gpus", "mode", "events", "p50(us)", "p99(us)", "p999(us)",
              "mean(us)", "goodput", "speedup", "ident");

  for (const Scale& scale : scales()) {
    const int gpus = scale.spec.num_spines == 16 ? 1024 : 4096;
    ModeResult full = run_mode(scale, /*incremental=*/false);
    ModeResult inc = run_mode(scale, /*incremental=*/true);
    const bool identical = full.assignment_digest == inc.assignment_digest &&
                           full.mid_assignments == inc.mid_assignments;

    struct Row {
      const char* mode;
      const ModeResult* r;
    };
    TailSummary full_tail{};
    for (const Row row : {Row{"full", &full}, Row{"incremental", &inc}}) {
      std::vector<double> xs = row.r->latencies_s;
      sort_samples(xs);
      const TailSummary tail = tail_summary_sorted(xs);
      const double mean_s = mean(xs);
      const bool is_inc = row.r == &inc;
      if (!is_inc) full_tail = tail;
      const double speedup = is_inc && tail.p99 > 0.0
                                 ? full_tail.p99 / tail.p99
                                 : 1.0;
      std::printf("%-9s %5d %-12s %7zu %9.1f %9.1f %9.1f %9.1f %7.1f%% %8.1f %6s\n",
                  scale.name, gpus, row.mode, row.r->events, tail.p50 * 1e6,
                  tail.p99 * 1e6, tail.p999 * 1e6, mean_s * 1e6,
                  row.r->goodput * 100.0, speedup,
                  is_inc ? (identical ? "yes" : "NO") : "ref");
      std::fprintf(
          json,
          "{\"bench\":\"cluster_day\",\"scale\":\"%s\",\"gpus\":%d,"
          "\"mode\":\"%s\",\"seed\":%llu,\"events\":%zu,\"jobs\":%zu,"
          "\"admitted\":%llu,\"queued_peak\":%zu,\"goodput\":%.4f,"
          "\"mean_closure_items\":%.2f,\"solves_per_event\":%.4f,"
          "\"mean_batch_width\":%.2f,\"p50_us\":%.3f,\"p99_us\":%.3f,"
          "\"p999_us\":%.3f,\"mean_us\":%.3f,\"speedup_p99_vs_full\":%.2f,"
          "\"assignments_identical\":%s}\n",
          scale.name, gpus, row.mode,
          static_cast<unsigned long long>(kSeed), row.r->events, row.r->jobs,
          static_cast<unsigned long long>(row.r->admitted),
          row.r->queued_peak, row.r->goodput, row.r->mean_closure,
          row.r->solves_per_event, row.r->mean_batch_width,
          tail.p50 * 1e6, tail.p99 * 1e6, tail.p999 * 1e6, mean_s * 1e6,
          speedup, identical ? "true" : "false");
    }
  }
  std::fclose(json);
  std::printf("\nBENCH_cluster.json written (one line per scale x mode).\n");

  // --- chaos-under-churn: retention sweep + soak ---------------------------
  std::printf("\n=== chaos_churn: faults under churn, reconfig vs rehash ===\n\n");
  std::FILE* cjson = std::fopen("BENCH_chaos.json", "w");
  MCCS_CHECK(cjson != nullptr, "cannot open BENCH_chaos.json");

  const workload::ChaosChurnSpec base = chaos_retention_spec();
  const int seeds = chaos_seed_count();
  ChaosAgg reconfig_agg;
  ChaosAgg rehash_agg;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0xbadc0deull + static_cast<std::uint64_t>(i);
    workload::ChaosChurnSpec spec = base;
    spec.reconfig = true;
    spec.poison = i % 3 == 2;  // every third seed proves the self-heal path
    reconfig_agg.add(workload::run_chaos_churn(spec, seed));
    spec.reconfig = false;
    spec.poison = false;
    rehash_agg.add(workload::run_chaos_churn(spec, seed));
  }
  const double loss_reconfig =
      std::max(1e-9, 1.0 - reconfig_agg.retention_mean());
  const double loss_rehash = 1.0 - rehash_agg.retention_mean();
  const double loss_ratio = loss_rehash / loss_reconfig;
  std::printf("%-10s %6s %10s %11s %8s %10s %9s\n", "mode", "seeds",
              "retention", "violations", "audits", "fallbacks", "kills");
  for (const auto& [name, agg] :
       {std::pair<const char*, const ChaosAgg*>{"reconfig", &reconfig_agg},
        {"rehash", &rehash_agg}}) {
    std::printf("%-10s %6d %9.3f%% %11zu %8llu %10llu %9llu\n", name,
                agg->seeds, agg->retention_mean() * 100.0, agg->violations,
                static_cast<unsigned long long>(agg->audits),
                static_cast<unsigned long long>(agg->fallbacks),
                static_cast<unsigned long long>(agg->kills));
  }
  std::printf("goodput loss rehash/reconfig: %.1fx\n\n", loss_ratio);
  emit_chaos_mode(cjson, "reconfig", 64, reconfig_agg);
  emit_chaos_mode(cjson, "rehash", 64, rehash_agg);
  std::fprintf(
      cjson,
      "{\"bench\":\"chaos_summary\",\"retention_reconfig\":%.4f,"
      "\"retention_rehash\":%.4f,\"loss_ratio_rehash_vs_reconfig\":%.2f,"
      "\"violations\":%zu}\n",
      reconfig_agg.retention_mean(), rehash_agg.retention_mean(), loss_ratio,
      reconfig_agg.violations + rehash_agg.violations);

  std::printf("=== chaos_soak: 4k-GPU Clos, %d virtual hours ===\n\n", 16);
  run_soak(cjson, scales()[1]);
  std::fclose(cjson);
  std::printf("\nBENCH_chaos.json written (sweep + summary + soak).\n");
  return 0;
}
