// Cluster-day churn harness: the control plane under a full day of tenant
// arrivals and departures on 1k- and 4k-GPU Clos fabrics.
//
// A seeded Poisson trace of training jobs (weighted size mix, exponential
// lifetimes, a slice of high-priority tenants) is replayed through FIFO
// admission control with compact (rack-packing) placement and a
// locality-aware ring per job. Every admission / departure is a
// control-plane event that must re-run PFA flow assignment; the bench times
// that decision in two modes over the IDENTICAL trace:
//
//   full        — the one-shot solver: assign_flows over every live tenant,
//                 from scratch, per event (what every fig harness does);
//   incremental — the warm-started IncrementalAssigner: only the dirty
//                 closure (tenants interfering with the changed one)
//                 re-solves.
//
// Headline metrics per (scale, mode): controller decision latency
// p50/p99/p999 (wall-clock microseconds; the percentile ladder is the new
// stats.h tail_summary), cluster goodput (admitted GPU-time / total
// GPU-time — identical across modes by construction, admission is
// mode-independent), and for the incremental mode the closure sizes and the
// p99 speedup vs full. The two modes' final assignments are compared
// exactly; `assignments_identical` lands in the JSON and scripts/check.sh
// gates it together with a >= 3x p99 speedup floor at >= 1024 GPUs.
//
// Emits one JSON line per (scale, mode) to BENCH_cluster.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/admission.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mccs/strategy.h"
#include "netsim/routing.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"
#include "workload/arrivals.h"

namespace {

using namespace mccs;

constexpr std::uint64_t kSeed = 20240607;
/// Route indices reserved for high-priority tenants (PFA).
const std::unordered_set<std::uint32_t> kReservedRoutes{0, 1};

struct Scale {
  const char* name;
  cluster::SpineLeafSpec spec;
  workload::ChurnSpec churn;
};

std::vector<Scale> scales() {
  std::vector<Scale> out;
  // Racks (128 GPUs: 16 hosts x 8) comfortably fit the largest job (64), so
  // compact placement keeps most tenants intra-rack; cross-rack spill-over —
  // which couples whole racks into one interference component — happens only
  // under fragmentation, as in a real cluster. ~60% offered load keeps the
  // admission queue shallow and the component graph sparse.
  {
    // 1024 GPUs: 8 leaves x 16 hosts x 8 GPUs, 16 spines.
    Scale s;
    s.name = "clos-1k";
    s.spec.num_spines = 16;
    s.spec.num_leaves = 8;
    s.spec.hosts_per_leaf = 16;
    s.spec.gpus_per_host = 8;
    s.spec.nics_per_host = 8;
    s.spec.nic_link = gbps(200);
    s.spec.fabric_link = gbps(200);
    // ~50 live jobs x ~12.8 GPUs => ~62% load. Jobs top out at a quarter
    // rack, so compact placement keeps tenants intra-rack: a cross-rack
    // spill welds both racks' uplinks into one interference component for
    // the job's whole lifetime, and at this scale (8 racks) a handful of
    // spills chains most of the fabric together — the mix keeps spills the
    // exception, as in a production cluster.
    s.churn.sizes = {8, 16, 32};
    s.churn.size_weights = {4.0, 4.0, 2.0};
    s.churn.mean_interarrival = 18.0;
    s.churn.mean_duration = 900.0;
    s.churn.horizon = 18000.0;
    s.churn.high_priority_fraction = 0.1;
    out.push_back(s);
  }
  {
    // 4096 GPUs: 32 leaves x 16 hosts x 8 GPUs, 32 spines.
    Scale s;
    s.name = "clos-4k";
    s.spec.num_spines = 32;
    s.spec.num_leaves = 32;
    s.spec.hosts_per_leaf = 16;
    s.spec.gpus_per_host = 8;
    s.spec.nics_per_host = 8;
    s.spec.nic_link = gbps(200);
    s.spec.fabric_link = gbps(200);
    // ~120 live jobs => ~61% load; shorter day, same event-count ballpark —
    // the full mode's per-event cost is what explodes with the tenant count.
    s.churn.mean_interarrival = 10.0;
    s.churn.mean_duration = 1200.0;
    s.churn.horizon = 10000.0;
    s.churn.high_priority_fraction = 0.1;
    out.push_back(s);
  }
  return out;
}

/// One admitted tenant: its communicator identity and fixed ring strategy.
struct LiveJob {
  std::vector<GpuId> gpus;
  svc::CommStrategy strategy;
  bool high_priority = false;
  Time admitted_at = 0.0;
};

struct ModeResult {
  std::vector<double> latencies_s;  ///< one per control-plane event
  double goodput = 0.0;
  std::size_t events = 0;
  std::size_t jobs = 0;
  std::uint64_t admitted = 0;
  std::size_t queued_peak = 0;
  double mean_closure = 0.0;  ///< incremental only: avg dirty-closure items
  /// Deterministic digest of the assignment after EVERY event (live comms
  /// ascending, route keys ascending), so "identical" means identical at
  /// each of the trace's thousands of decision points — not merely at the
  /// end, where both modes trivially agree on an empty cluster.
  std::uint64_t assignment_digest = 1469598103934665603ull;  // FNV offset
  /// Exact assignment snapshot at the trace midpoint, for a direct map
  /// comparison on top of the digest.
  std::unordered_map<std::uint32_t, policy::RouteMap> mid_assignments;
};

void fold_digest(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 1099511628211ull;  // FNV prime
  }
}

void fold_assignment(std::uint64_t& h,
                     const std::unordered_map<std::uint32_t, policy::RouteMap>&
                         assignment) {
  std::vector<std::uint32_t> ids;
  ids.reserve(assignment.size());
  // Skip tenants with no routed flows (single-host jobs): assign_flows omits
  // them from its result while the warm assigner tracks them with an empty
  // route map — same assignment, different map shape.
  for (const auto& [id, routes] : assignment) {
    if (!routes.empty()) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t id : ids) {
    fold_digest(h, id);
    const policy::RouteMap& routes = assignment.at(id);
    std::vector<std::uint64_t> keys;
    keys.reserve(routes.size());
    for (const auto& [key, route] : routes) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
      fold_digest(h, key);
      fold_digest(h, routes.at(key).get());
    }
  }
}

/// Replay the trace once. `incremental` selects the control plane; all
/// workload-side state (admission, placement, strategies) is identical
/// either way, so the modes differ only in how routes are recomputed.
ModeResult run_mode(const Scale& scale, bool incremental) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(scale.spec);
  const net::Routing routing(cluster.topology());
  cluster::AdmissionQueue admission(cluster, cluster::Placement::kCompact);
  Rng rng(kSeed ^ 0x5eedu);

  const std::vector<workload::JobSpec> jobs =
      workload::poisson_jobs(scale.churn, kSeed);
  const std::vector<workload::ChurnEvent> events = workload::churn_events(jobs);

  policy::IncrementalAssigner assigner(cluster, routing);
  assigner.set_reserved_routes(kReservedRoutes);
  policy::AssignOptions options;
  options.reserved_routes = kReservedRoutes;

  std::unordered_map<std::uint32_t, LiveJob> live;
  std::unordered_map<std::uint32_t, policy::RouteMap> full_routes;
  ModeResult res;
  res.jobs = jobs.size();
  double busy_gpu_time = 0.0;
  double closure_total = 0.0;
  std::size_t solves = 0;

  auto activate = [&](JobId job, std::vector<GpuId> gpus, Time now) {
    const workload::JobSpec& spec = jobs[job.get()];
    LiveJob lj;
    lj.strategy = policy::locality_aware_strategy(gpus, cluster);
    lj.gpus = std::move(gpus);
    lj.high_priority = spec.high_priority;
    lj.admitted_at = now;
    live.emplace(job.get(), std::move(lj));
  };

  for (const workload::ChurnEvent& ev : events) {
    // Admission (mode-independent): which jobs start or stop right now.
    std::vector<std::uint32_t> started;
    std::vector<std::uint32_t> stopped;
    if (ev.arrival) {
      if (auto placed = admission.submit(ev.job, jobs[ev.job.get()].gpus, rng)) {
        activate(ev.job, std::move(*placed), ev.at);
        started.push_back(ev.job.get());
      }
    } else {
      if (live.count(ev.job.get()) > 0) stopped.push_back(ev.job.get());
      for (cluster::AdmissionQueue::Admission& adm :
           admission.finish(ev.job, rng)) {
        activate(adm.job, std::move(adm.gpus), ev.at);
        started.push_back(adm.job.get());
      }
    }
    res.queued_peak = std::max(res.queued_peak, admission.queue_depth());

    // The timed control-plane decision: react to this event's tenant set
    // change with a (re)assignment of flows to routes.
    const auto t0 = std::chrono::steady_clock::now();
    if (incremental) {
      for (std::uint32_t id : stopped) assigner.remove_item(CommId{id});
      for (std::uint32_t id : started) {
        const LiveJob& lj = live.at(id);
        policy::AssignItem item;
        item.comm = CommId{id};
        item.app = AppId{id};
        item.gpus_by_rank = &lj.gpus;
        item.strategy = &lj.strategy;
        item.high_priority = lj.high_priority;
        assigner.add_item(item);
      }
      const policy::IncrementalSolveStats st = assigner.solve(ev.at);
      closure_total += static_cast<double>(st.solved_items);
      ++solves;
    } else {
      std::vector<policy::AssignItem> items;
      items.reserve(live.size());
      // Ascending comm id — the canonical order Controller::compute_routes
      // uses (list_communicators is sorted).
      std::vector<std::uint32_t> ids;
      ids.reserve(live.size());
      for (const auto& [id, lj] : live) {
        if (!ev.arrival && id == ev.job.get()) continue;  // departing now
        ids.push_back(id);
      }
      std::sort(ids.begin(), ids.end());
      for (std::uint32_t id : ids) {
        const LiveJob& lj = live.at(id);
        policy::AssignItem item;
        item.comm = CommId{id};
        item.app = AppId{id};
        item.gpus_by_rank = &lj.gpus;
        item.strategy = &lj.strategy;
        item.high_priority = lj.high_priority;
        items.push_back(item);
      }
      full_routes = policy::assign_flows(items, cluster, routing, options);
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.latencies_s.push_back(std::chrono::duration<double>(t1 - t0).count());
    ++res.events;

    // Identity accounting, outside the timed region: digest this event's
    // post-decision assignment of every live tenant.
    auto assignment = incremental ? assigner.assignments() : full_routes;
    for (auto it = assignment.begin(); it != assignment.end();) {
      it = it->second.empty() ? assignment.erase(it) : std::next(it);
    }
    fold_assignment(res.assignment_digest, assignment);
    if (res.events == events.size() / 2) res.mid_assignments = std::move(assignment);

    // Workload accounting, outside the timed region.
    for (std::uint32_t id : stopped) {
      const LiveJob& lj = live.at(id);
      busy_gpu_time +=
          static_cast<double>(lj.gpus.size()) * (ev.at - lj.admitted_at);
      live.erase(id);
    }
  }

  if (incremental) {
    res.mean_closure = solves > 0 ? closure_total / static_cast<double>(solves) : 0.0;
  }
  res.admitted = admission.admitted_total();
  const double horizon = events.empty() ? 1.0 : events.back().at;
  res.goodput = busy_gpu_time /
                (static_cast<double>(cluster.gpu_count()) * horizon);
  return res;
}

}  // namespace

int main() {
  std::printf("=== cluster_day: control-plane churn at 1k/4k GPUs ===\n\n");
  std::FILE* json = std::fopen("BENCH_cluster.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_cluster.json");

  std::printf("%-9s %5s %-12s %7s %9s %9s %9s %9s %8s %8s %6s\n", "scale",
              "gpus", "mode", "events", "p50(us)", "p99(us)", "p999(us)",
              "mean(us)", "goodput", "speedup", "ident");

  for (const Scale& scale : scales()) {
    const int gpus = scale.spec.num_spines == 16 ? 1024 : 4096;
    ModeResult full = run_mode(scale, /*incremental=*/false);
    ModeResult inc = run_mode(scale, /*incremental=*/true);
    const bool identical = full.assignment_digest == inc.assignment_digest &&
                           full.mid_assignments == inc.mid_assignments;

    struct Row {
      const char* mode;
      const ModeResult* r;
    };
    TailSummary full_tail{};
    for (const Row row : {Row{"full", &full}, Row{"incremental", &inc}}) {
      std::vector<double> xs = row.r->latencies_s;
      sort_samples(xs);
      const TailSummary tail = tail_summary_sorted(xs);
      const double mean_s = mean(xs);
      const bool is_inc = row.r == &inc;
      if (!is_inc) full_tail = tail;
      const double speedup = is_inc && tail.p99 > 0.0
                                 ? full_tail.p99 / tail.p99
                                 : 1.0;
      std::printf("%-9s %5d %-12s %7zu %9.1f %9.1f %9.1f %9.1f %7.1f%% %8.1f %6s\n",
                  scale.name, gpus, row.mode, row.r->events, tail.p50 * 1e6,
                  tail.p99 * 1e6, tail.p999 * 1e6, mean_s * 1e6,
                  row.r->goodput * 100.0, speedup,
                  is_inc ? (identical ? "yes" : "NO") : "ref");
      std::fprintf(
          json,
          "{\"bench\":\"cluster_day\",\"scale\":\"%s\",\"gpus\":%d,"
          "\"mode\":\"%s\",\"seed\":%llu,\"events\":%zu,\"jobs\":%zu,"
          "\"admitted\":%llu,\"queued_peak\":%zu,\"goodput\":%.4f,"
          "\"mean_closure_items\":%.2f,\"p50_us\":%.3f,\"p99_us\":%.3f,"
          "\"p999_us\":%.3f,\"mean_us\":%.3f,\"speedup_p99_vs_full\":%.2f,"
          "\"assignments_identical\":%s}\n",
          scale.name, gpus, row.mode,
          static_cast<unsigned long long>(kSeed), row.r->events, row.r->jobs,
          static_cast<unsigned long long>(row.r->admitted),
          row.r->queued_peak, row.r->goodput, row.r->mean_closure,
          tail.p50 * 1e6, tail.p99 * 1e6, tail.p999 * 1e6, mean_s * 1e6,
          speedup, identical ? "true" : "false");
    }
  }
  std::fclose(json);
  std::printf("\nBENCH_cluster.json written (one line per scale x mode).\n");
  return 0;
}
