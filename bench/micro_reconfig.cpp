// Microbenchmark: runtime reconfiguration cost (§4.2 / §6.2).
//
// Two properties the design argues for:
//  * zero overhead on the fast path when no reconfiguration is issued;
//  * a bounded stall (control-ring barrier + connection re-setup) when one
//    is.
// Reported counters are virtual (simulated) times.

#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using namespace mccs;

struct Setup {
  bench::Harness h;
  CommId comm;
  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  AppId app{1};

  Setup() : h(bench::make_harness(bench::Scheme::kMccsNoFa, cluster::make_testbed(), 1)) {
    comm = bench::bench_create_comm(*h.fabric, app, gpus);
  }

  /// Virtual time for `iters` back-to-back 8 MB AllReduces.
  double loop_time(int iters) {
    const Time t0 = h.fabric->loop().now();
    auto d = bench::run_collective_loop(*h.fabric, app, gpus, comm,
                                        coll::CollectiveKind::kAllReduce, 8_MB,
                                        0, iters);
    return h.fabric->loop().now() - t0;
  }
};

void BM_ReconfigStall(benchmark::State& state) {
  double stall_us = 0;
  for (auto _ : state) {
    Setup s;
    const double baseline = s.loop_time(6);
    // Reconfigure (reverse the ring), then run the same loop again.
    svc::CommStrategy rev = s.h.fabric->strategy_of(s.comm);
    for (auto& o : rev.channel_orders) o = o.reversed();
    s.h.fabric->reconfigure(s.comm, std::move(rev));
    const double with_reconfig = s.loop_time(6);
    stall_us = (with_reconfig - baseline) * 1e6;
  }
  state.counters["VirtualStallUs"] = stall_us;
}
BENCHMARK(BM_ReconfigStall);

void BM_FastPathNoOverhead(benchmark::State& state) {
  double delta_us = 0;
  for (auto _ : state) {
    Setup s;
    const double first = s.loop_time(6);
    const double second = s.loop_time(6);
    delta_us = (second - first) * 1e6;
  }
  // Should be ~0: sequence numbering adds no fast-path cost.
  state.counters["VirtualDeltaUs"] = delta_us;
}
BENCHMARK(BM_FastPathNoOverhead);

void BM_ReconfigBarrierOnIdleComm(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    Setup s;
    svc::CommStrategy rev = s.h.fabric->strategy_of(s.comm);
    for (auto& o : rev.channel_orders) o = o.reversed();
    const Time t0 = s.h.fabric->loop().now();
    s.h.fabric->reconfigure(s.comm, std::move(rev));
    s.h.fabric->loop().run();
    us = (s.h.fabric->loop().now() - t0) * 1e6;
  }
  state.counters["VirtualBarrierUs"] = us;
}
BENCHMARK(BM_ReconfigBarrierOnIdleComm);

}  // namespace

BENCHMARK_MAIN();
