// Flow-level simulation engine throughput: events/second under flow churn at
// 64/256/768-GPU scale, incremental (component-scoped) vs reference (global)
// max-min reallocation — same workload, same binary, selected by
// `Network::Options::incremental`.
//
// The workload mirrors the Fig.-11 regime the engine exists for: many
// concurrent ring jobs (mostly rack-local, a fraction spanning two racks),
// iterating { start ring flows -> wait for all -> gap }, plus permanent
// background flows and pause/resume pulses (the traffic-scheduling QoS
// pattern). Every job/iteration parameter is precomputed from a fixed seed,
// so both engine modes execute the identical simulated schedule and the
// comparison is events-per-wall-second on equal work.
//
// Emits one JSON line per (scale, mode) to BENCH_flowsim.json — the perf
// trajectory future PRs extend; scripts/check.sh gates on its schema.
//
// A second section exercises the arena-backed slab at fabric scale
// (768 / 8k / 32k endpoints on the widened Clos builders) and writes
// BENCH_scale.json:
//   * kind=perf rows: the full churn workload in incremental mode at
//     MCCS-threads 1 and 8, with an order-sensitive FNV-1a digest of the
//     completion stream (flow id, completion time) proving the thread count
//     changed nothing;
//   * kind=identity rows: a trimmed workload run under both engine modes —
//     digests must match (component-scoped == global oracle) — plus the
//     compile-time bytes-per-flow-state split (hot SoA / solve params /
//     cold) that EXPERIMENTS.md quotes.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace {

using namespace mccs;

struct IterationPlan {
  std::vector<std::uint64_t> ecmp_keys;  ///< one per flow of the iteration
  Bytes bytes = 0;
  bool pause_pulse = false;  ///< gate flow 0 off/on mid-iteration
  Time pause_after = 0.0;
  Time pause_len = 0.0;
};

struct JobPlan {
  std::vector<NodeId> nics;  ///< ring order; flow i goes nics[i]->nics[i+1]
  int channels = 1;          ///< rings run over this many NICs per host
  std::vector<IterationPlan> iterations;
};

struct SlotPlan {
  Time first_start = 0.0;
  std::vector<JobPlan> jobs;
};

struct Workload {
  std::vector<SlotPlan> slots;
  std::vector<std::pair<NodeId, NodeId>> background;  ///< fixed-demand pairs
};

/// Precompute the whole churn schedule so both engine modes see identical
/// simulated work regardless of internal event ordering.
Workload make_workload(const cluster::Cluster& cl, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t hosts = cl.host_count();
  // Group hosts by rack for the placement draw.
  std::vector<std::vector<std::uint32_t>> racks;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    const auto r = cl.host(HostId{h}).rack.get();
    if (r >= racks.size()) racks.resize(r + 1);
    racks[r].push_back(h);
  }

  constexpr int kJobsPerSlot = 3;
  constexpr int kItersPerJob = 8;
  Workload w;
  const std::size_t num_slots = std::max<std::size_t>(2, hosts / 3);
  for (std::size_t s = 0; s < num_slots; ++s) {
    SlotPlan slot;
    slot.first_start = static_cast<double>(s) * millis(0.1);
    for (int j = 0; j < kJobsPerSlot; ++j) {
      JobPlan job;
      const bool cross_rack = rng.uniform() < 0.2 && racks.size() > 1;
      const int k = 2 + static_cast<int>(rng.below(3));  // 2..4 hosts
      std::vector<std::uint32_t> chosen;
      if (cross_rack) {
        const auto r0 = rng.below(racks.size());
        auto r1 = rng.below(racks.size());
        if (r1 == r0) r1 = (r1 + 1) % racks.size();
        for (int i = 0; i < k; ++i) {
          const auto& rk = racks[i % 2 == 0 ? r0 : r1];
          chosen.push_back(rk[rng.below(rk.size())]);
        }
      } else {
        const auto& rk = racks[rng.below(racks.size())];
        for (int i = 0; i < k; ++i) chosen.push_back(rk[rng.below(rk.size())]);
      }
      // Dedup while keeping >= 2 hosts (a ring needs two endpoints).
      std::vector<std::uint32_t> uniq;
      for (std::uint32_t h : chosen) {
        bool seen = false;
        for (std::uint32_t u : uniq) seen = seen || u == h;
        if (!seen) uniq.push_back(h);
      }
      if (uniq.size() < 2) {
        uniq.push_back((uniq[0] + 1) % hosts);
      }
      const auto& nics0 = cl.host(HostId{uniq[0]}).nic_nodes;
      job.channels = std::min<int>(4, static_cast<int>(nics0.size()));
      for (std::uint32_t h : uniq) {
        for (int c = 0; c < job.channels; ++c) {
          job.nics.push_back(cl.host(HostId{h}).nic_nodes[static_cast<std::size_t>(c)]);
        }
      }
      for (int it = 0; it < kItersPerJob; ++it) {
        IterationPlan ip;
        ip.bytes = 8_MB + rng.below(56) * 1_MB;
        const std::size_t edges = uniq.size() * static_cast<std::size_t>(job.channels);
        for (std::size_t e = 0; e < edges; ++e) ip.ecmp_keys.push_back(rng.engine()());
        if (rng.uniform() < 0.15) {
          ip.pause_pulse = true;
          ip.pause_after = millis(0.2 + rng.uniform());
          ip.pause_len = millis(0.2 + rng.uniform());
        }
        job.iterations.push_back(std::move(ip));
      }
      slot.jobs.push_back(std::move(job));
    }
    w.slots.push_back(std::move(slot));
  }
  // One permanent background flow per ~8 racks (min 1): external traffic the
  // strict-priority phase must serve first.
  const std::size_t nbg = std::max<std::size_t>(1, racks.size() / 8);
  for (std::size_t b = 0; b < nbg; ++b) {
    const std::uint32_t h0 = static_cast<std::uint32_t>(rng.below(hosts));
    std::uint32_t h1 = static_cast<std::uint32_t>(rng.below(hosts));
    if (h1 == h0) h1 = (h1 + 1) % hosts;
    w.background.emplace_back(cl.host(HostId{h0}).nic_nodes[0],
                              cl.host(HostId{h1}).nic_nodes[0]);
  }
  return w;
}

/// The ring edge flow i of a job sends over (precomputed schedule; must match
/// SlotRunner::start_iteration exactly so route prewarming touches the same
/// pairs the run resolves).
std::pair<NodeId, NodeId> ring_edge(const JobPlan& job, std::size_t i) {
  const std::size_t n = job.nics.size();
  const NodeId src = job.nics[i];
  NodeId dst = job.nics[(i + job.channels >= n) ? (i + job.channels - n)
                                                : (i + job.channels)];
  if (src == dst) dst = job.nics[(i + 1) % n];
  return {src, dst};
}

/// Order-sensitive FNV-1a over the completion stream. Two runs produce equal
/// digests iff they completed the same flows at the same times in the same
/// order — the bit-reproducibility contract between engine modes and across
/// task-pool widths.
struct CompletionDigest {
  std::uint64_t h = 1469598103934665603ull;
  /// Order-insensitive companion: a wrapping sum of one strong 64-bit hash
  /// per (id, completion-time-bits) record. Batched and unbatched runs
  /// complete every flow at the bitwise-identical virtual time but may
  /// permute completions *within* one instant (per-flow solve cascades
  /// re-insert same-instant events in solve-history order; the coalesced
  /// union solve in ascending id) — this digest is invariant under exactly
  /// that permutation and nothing weaker, so it is the batched-vs-unbatched
  /// identity gate. See DESIGN.md §15.
  ///
  /// `id` must be a WORKLOAD-logical flow name (slot/job/iteration/edge
  /// here), never the netsim-assigned FlowId sequence number: completion
  /// callbacks start the next iteration's flows, so sequence numbers are
  /// allocated in within-instant callback order — exactly the order the
  /// contract lets the two modes permute. Physics are mode-identical; the
  /// labels a consumer mints inside same-instant callbacks are not.
  std::uint64_t canonical = 0;

  void fold(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void record(std::uint64_t id, Time t) {
    fold(id);
    std::uint64_t bits = 0;
    static_assert(sizeof(Time) == sizeof(bits));
    std::memcpy(&bits, &t, sizeof(bits));
    fold(bits);
    // splitmix64 finalizer over the packed record.
    std::uint64_t z = (id * 0x9e3779b97f4a7c15ull) ^ bits;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    canonical += z ^ (z >> 31);
  }
};

struct RunResult {
  std::uint64_t events = 0;  ///< flow starts + completions + pause/resume ops
  std::uint64_t digest = 0;  ///< CompletionDigest over the completion stream
  std::uint64_t canonical = 0;  ///< order-insensitive (id, time) digest
  std::uint64_t solves = 0;      ///< Network::solves_total at loop drain
  std::uint64_t coalesced = 0;   ///< mutations folded into batch closes
  std::uint64_t batches = 0;     ///< non-empty batch closes
  double wall_s = 0.0;
  Time sim_s = 0.0;

  [[nodiscard]] double solves_per_event() const {
    return events == 0 ? 0.0
                       : static_cast<double>(solves) / static_cast<double>(events);
  }
  [[nodiscard]] double mean_batch_width() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(coalesced) /
                              static_cast<double>(batches);
  }
};

/// Drive one slot's job sequence on the network; `events` counts the churn.
struct SlotRunner {
  sim::EventLoop* loop;
  net::Network* net;
  const SlotPlan* plan;
  std::uint64_t* events;
  CompletionDigest* digest;
  std::uint64_t slot_no = 0;  ///< index into Workload::slots — logical-id base
  std::size_t job_idx = 0;
  std::size_t iter_idx = 0;
  int outstanding = 0;

  void start_next_job() {
    if (job_idx >= plan->jobs.size()) return;
    iter_idx = 0;
    start_iteration();
  }

  void start_iteration() {
    const JobPlan& job = plan->jobs[job_idx];
    const IterationPlan& ip = job.iterations[iter_idx];
    const std::size_t n = job.nics.size();
    outstanding = static_cast<int>(n);
    std::optional<FlowId> first;
    // One solve for the whole ring launch instead of one per edge (no-op
    // when the network was built with coalescing off).
    net::Network::SolveBatch batch(*net);
    for (std::size_t i = 0; i < n; ++i) {
      net::FlowSpec spec;
      std::tie(spec.src, spec.dst) = ring_edge(job, i);
      spec.size = ip.bytes;
      spec.ecmp_key = ip.ecmp_keys[i];
      // Logical flow name: stable across engine modes, unlike the netsim
      // FlowId minted by start_flow (see CompletionDigest::record).
      const std::uint64_t lid = (slot_no << 48) | (job_idx << 32) |
                                (iter_idx << 16) | static_cast<std::uint64_t>(i);
      spec.on_complete = [this, lid](FlowId, Time t) {
        digest->record(lid, t);
        ++*events;
        if (--outstanding == 0) iteration_done();
      };
      const FlowId id = net->start_flow(std::move(spec));
      ++*events;
      if (!first) first = id;
    }
    if (ip.pause_pulse && first) {
      const FlowId target = *first;
      const Time t0 = loop->now() + ip.pause_after;
      const Time t1 = t0 + ip.pause_len;
      loop->schedule_at(t0, [this, target] {
        if (!net->flow_active(target)) return;
        net->pause_flow(target);
        ++*events;
      });
      loop->schedule_at(t1, [this, target] {
        if (!net->flow_active(target)) return;
        net->resume_flow(target);
        ++*events;
      });
    }
  }

  void iteration_done() {
    const JobPlan& job = plan->jobs[job_idx];
    if (++iter_idx < job.iterations.size()) {
      loop->schedule_after(millis(1), [this] { start_iteration(); });
      return;
    }
    ++job_idx;
    if (job_idx < plan->jobs.size()) {
      loop->schedule_after(millis(1), [this] { start_next_job(); });
    }
  }
};

struct RunOptions {
  bool incremental = true;
  /// Same-instant solve coalescing (batched mutation epochs + activation /
  /// completion cohorts). Off = the per-event unbatched baseline the
  /// kind=coalesce rows compare against.
  bool coalesce = true;
  /// Resolve every route the schedule will use before the timer starts, so
  /// events/s measures the solver hot path, not cold routing-cache fills.
  bool prewarm_routes = false;
  /// Pre-size the flow slab / scratch from the workload's own bounds.
  bool reserve = false;
};

RunResult run_workload(const cluster::Cluster& cl, const Workload& w,
                       const RunOptions& opts) {
  sim::EventLoop loop;
  net::Network net(loop, cl.topology(),
                   net::Network::Options{.incremental = opts.incremental,
                                         .coalesce = opts.coalesce});
  if (opts.reserve) {
    // Peak concurrency: every slot can have one job's ring in flight at once.
    std::size_t lifetime = w.background.size();
    std::size_t peak = w.background.size();
    for (const SlotPlan& slot : w.slots) {
      std::size_t slot_peak = 0;
      for (const JobPlan& job : slot.jobs) {
        slot_peak = std::max(slot_peak, job.nics.size());
        lifetime += job.iterations.size() * job.nics.size();
      }
      peak += slot_peak;
    }
    net.reserve_flows(peak, lifetime);
  }
  if (opts.prewarm_routes) {
    const net::Routing& routing = net.routing();
    for (const auto& [src, dst] : w.background) routing.paths(src, dst);
    for (const SlotPlan& slot : w.slots) {
      for (const JobPlan& job : slot.jobs) {
        for (std::size_t i = 0; i < job.nics.size(); ++i) {
          const auto [src, dst] = ring_edge(job, i);
          routing.paths(src, dst);
        }
      }
    }
  }
  for (const auto& [src, dst] : w.background) {
    net.start_flow({.src = src, .dst = dst, .background_demand = gbps(40),
                    .on_complete = {}});
  }

  RunResult res;
  CompletionDigest digest;
  std::vector<SlotRunner> runners(w.slots.size());
  for (std::size_t s = 0; s < w.slots.size(); ++s) {
    runners[s] = SlotRunner{&loop, &net, &w.slots[s], &res.events, &digest, s};
    loop.schedule_at(w.slots[s].first_start, [&runners, s] {
      runners[s].start_next_job();
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  const auto t1 = std::chrono::steady_clock::now();
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();
  res.sim_s = loop.now();
  res.digest = digest.h;
  res.canonical = digest.canonical;
  res.solves = net.solves_total();
  res.coalesced = net.coalesced_flows_total();
  res.batches = net.batches_total();
  return res;
}

/// Cut a workload down for the cross-mode identity runs: the reference
/// (global) oracle is O(cluster) per event, so at 32k endpoints the full
/// schedule would dominate the bench's wall clock without proving anything
/// the trimmed prefix doesn't.
Workload trim_workload(Workload w, std::size_t max_slots,
                       std::size_t max_iters) {
  if (w.slots.size() > max_slots) w.slots.resize(max_slots);
  for (SlotPlan& slot : w.slots) {
    for (JobPlan& job : slot.jobs) {
      if (job.iterations.size() > max_iters) job.iterations.resize(max_iters);
    }
  }
  return w;
}

struct Scale {
  int gpus;
  cluster::Cluster cluster;
};

}  // namespace

int main() {
  std::printf("=== micro_flowsim: flow-churn engine throughput ===\n\n");

  std::vector<Scale> scales;
  {
    cluster::SpineLeafSpec s64;
    s64.num_spines = 4;
    s64.num_leaves = 4;
    s64.hosts_per_leaf = 2;
    s64.gpus_per_host = 8;
    s64.nics_per_host = 8;
    s64.nic_link = gbps(200);
    s64.fabric_link = gbps(200);
    scales.push_back({64, cluster::make_spine_leaf(s64)});

    cluster::SpineLeafSpec s256 = s64;
    s256.num_spines = 8;
    s256.num_leaves = 8;
    s256.hosts_per_leaf = 4;
    scales.push_back({256, cluster::make_spine_leaf(s256)});

    scales.push_back({768, cluster::make_large_sim_cluster()});
  }

  std::FILE* json = std::fopen("BENCH_flowsim.json", "w");
  MCCS_CHECK(json != nullptr, "cannot open BENCH_flowsim.json");

  std::printf("%-6s %-12s %10s %9s %14s %9s\n", "gpus", "mode", "events",
              "wall(s)", "events/sec", "speedup");
  for (Scale& sc : scales) {
    const Workload w = make_workload(sc.cluster, 0xF10F51Dull + sc.gpus);
    double ref_rate = 0.0;
    for (const bool incremental : {false, true}) {
      const RunResult r =
          run_workload(sc.cluster, w, RunOptions{.incremental = incremental});
      const double rate = static_cast<double>(r.events) / r.wall_s;
      const char* mode = incremental ? "incremental" : "reference";
      const double speedup = incremental ? rate / ref_rate : 1.0;
      if (!incremental) ref_rate = rate;
      std::printf("%-6d %-12s %10llu %9.3f %14.0f %8.2fx\n", sc.gpus, mode,
                  static_cast<unsigned long long>(r.events), r.wall_s, rate,
                  speedup);
      std::fprintf(json,
                   "{\"bench\":\"micro_flowsim\",\"gpus\":%d,\"mode\":\"%s\","
                   "\"events\":%llu,\"sim_s\":%.6f,\"wall_s\":%.6f,"
                   "\"events_per_sec\":%.1f,\"speedup_vs_reference\":%.3f}\n",
                   sc.gpus, mode, static_cast<unsigned long long>(r.events),
                   r.sim_s, r.wall_s, rate, speedup);
    }
  }
  std::fclose(json);
  std::printf("\nBENCH_flowsim.json written (one line per scale x mode).\n");

  // --- scale points: 768 / 8k / 32k endpoints -> BENCH_scale.json ----------
  std::printf("\n=== scale points: arena-backed slab at 768/8k/32k ===\n\n");
  std::FILE* sjson = std::fopen("BENCH_scale.json", "w");
  MCCS_CHECK(sjson != nullptr, "cannot open BENCH_scale.json");

  const net::Network::StorageFootprint fp = net::Network::flow_state_footprint();
  std::printf("flow state: %zu B hot SoA + %zu B solve params + %zu B cold "
              "= %zu B/flow\n\n",
              fp.hot, fp.param, fp.cold, fp.total());

  std::printf("%-6s %-10s %8s %10s %9s %14s\n", "gpus", "kind", "threads",
              "events", "wall(s)", "events/sec");
  bool all_identical = true;
  for (const int gpus : {768, 8192, 32768}) {
    const cluster::Cluster cl = cluster::make_scaled_sim_cluster(gpus);
    // 768 reuses the BENCH_flowsim seed so its incremental events/s is
    // directly comparable across the two sections (regression tripwire).
    const Workload w =
        make_workload(cl, 0xF10F51Dull + static_cast<std::uint64_t>(gpus));
    const RunOptions perf{.incremental = true, .prewarm_routes = true,
                          .reserve = true};

    RunResult by_threads[2];
    for (int t = 0; t < 2; ++t) {
      par::set_threads(t == 0 ? 1 : 8);
      by_threads[t] = run_workload(cl, w, perf);
      par::set_threads(0);
      const RunResult& r = by_threads[t];
      const double rate = static_cast<double>(r.events) / r.wall_s;
      std::printf("%-6d %-10s %8d %10llu %9.3f %14.0f\n", gpus, "perf",
                  t == 0 ? 1 : 8, static_cast<unsigned long long>(r.events),
                  r.wall_s, rate);
      std::fprintf(sjson,
                   "{\"bench\":\"micro_flowsim_scale\",\"kind\":\"perf\","
                   "\"gpus\":%d,\"threads\":%d,\"events\":%llu,"
                   "\"sim_s\":%.6f,\"wall_s\":%.6f,\"events_per_sec\":%.1f,"
                   "\"solves_per_event\":%.4f,\"mean_batch_width\":%.2f,"
                   "\"digest\":\"%016llx\"}\n",
                   gpus, t == 0 ? 1 : 8,
                   static_cast<unsigned long long>(r.events), r.sim_s,
                   r.wall_s, rate, r.solves_per_event(), r.mean_batch_width(),
                   static_cast<unsigned long long>(r.digest));
    }
    const bool threads_identical =
        by_threads[0].digest == by_threads[1].digest &&
        by_threads[0].events == by_threads[1].events;

    const Workload tw = trim_workload(w, 16, 2);
    const RunResult ref = run_workload(
        cl, tw, RunOptions{.incremental = false, .prewarm_routes = true,
                           .reserve = true});
    const RunResult inc = run_workload(
        cl, tw, RunOptions{.incremental = true, .prewarm_routes = true,
                           .reserve = true});
    const bool identical_to_reference =
        ref.digest == inc.digest && ref.events == inc.events;
    std::printf("%-6d %-10s %8s %10llu %9.3f  threads_identical=%s "
                "identical_to_reference=%s\n",
                gpus, "identity", "-",
                static_cast<unsigned long long>(inc.events), inc.wall_s,
                threads_identical ? "yes" : "NO",
                identical_to_reference ? "yes" : "NO");
    std::fprintf(sjson,
                 "{\"bench\":\"micro_flowsim_scale\",\"kind\":\"identity\","
                 "\"gpus\":%d,\"threads_identical\":%s,"
                 "\"identical_to_reference\":%s,\"verify_events\":%llu,"
                 "\"hot_bytes\":%zu,\"param_bytes\":%zu,\"cold_bytes\":%zu,"
                 "\"bytes_per_flow_state\":%zu}\n",
                 gpus, threads_identical ? "true" : "false",
                 identical_to_reference ? "true" : "false",
                 static_cast<unsigned long long>(inc.events), fp.hot, fp.param,
                 fp.cold, fp.total());
    all_identical = all_identical && threads_identical && identical_to_reference;

    // Coalescing: the same full workload with batching off — the per-event
    // solve baseline. The completion stream must be bit-identical (zero
    // virtual time elapses inside a batch, so the skipped intermediate rate
    // states transfer zero bytes); the solve count must not be.
    par::set_threads(1);
    const RunResult unb = run_workload(
        cl, w, RunOptions{.incremental = true, .coalesce = false,
                          .prewarm_routes = true, .reserve = true});
    par::set_threads(0);
    const RunResult& bat = by_threads[0];
    // Canonical (order-insensitive) digest: every flow must complete at the
    // bitwise-identical virtual time in both modes; only the within-instant
    // completion order may permute (see CompletionDigest::canonical).
    const bool digest_identical =
        bat.canonical == unb.canonical && bat.events == unb.events;
    const double reduction =
        bat.solves == 0 ? 0.0
                        : static_cast<double>(unb.solves) /
                              static_cast<double>(bat.solves);
    std::printf("%-6d %-10s %8s %10llu %9.3f  solves %llu -> %llu "
                "(%.2fx, width %.1f) digest_identical=%s\n",
                gpus, "coalesce", "-",
                static_cast<unsigned long long>(unb.events), unb.wall_s,
                static_cast<unsigned long long>(unb.solves),
                static_cast<unsigned long long>(bat.solves), reduction,
                bat.mean_batch_width(), digest_identical ? "yes" : "NO");
    std::fprintf(sjson,
                 "{\"bench\":\"micro_flowsim_scale\",\"kind\":\"coalesce\","
                 "\"gpus\":%d,\"events\":%llu,\"solves_batched\":%llu,"
                 "\"solves_unbatched\":%llu,\"solves_per_event_batched\":%.4f,"
                 "\"solves_per_event_unbatched\":%.4f,"
                 "\"mean_batch_width\":%.2f,\"reduction\":%.2f,"
                 "\"digest_identical\":%s}\n",
                 gpus, static_cast<unsigned long long>(bat.events),
                 static_cast<unsigned long long>(bat.solves),
                 static_cast<unsigned long long>(unb.solves),
                 bat.solves_per_event(), unb.solves_per_event(),
                 bat.mean_batch_width(), reduction,
                 digest_identical ? "true" : "false");
    all_identical = all_identical && digest_identical;
  }
  std::fclose(sjson);
  std::printf("\nBENCH_scale.json written (perf + identity rows per scale).\n");
  MCCS_CHECK(all_identical,
             "completion streams drifted across threads or engine modes");
  return 0;
}
