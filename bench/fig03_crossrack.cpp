// Figure 3: cross-rack ratio (random ring's cross-rack flow count normalised
// to the optimal ring's) versus job size.
//
//  (a) "Empirical": the production cluster layout — 2 hosts per rack,
//      8 GPUs + 8 NICs per host. Worst case 2x.
//  (b) "Simulated": 4 hosts per rack. Worst case 4x; overhead grows with
//      job size.
//
// Jobs are perfectly packed to hosts (whole hosts, contiguous) and the ring
// ordering is a uniformly random rank permutation, exactly as §2.2 states.

#include <cstdio>
#include <numeric>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "policy/ring_config.h"

namespace {

using namespace mccs;

double expected_ratio(const cluster::Cluster& cl, int job_gpus, int gpus_per_host,
                      int trials, Rng& rng) {
  // Perfectly packed: the first job_gpus/gpus_per_host hosts. Ranks within a
  // host are contiguous (each host's processes get consecutive ranks), so the
  // random choice the tenant makes is the *host* ordering of the ring.
  const int hosts = job_gpus / gpus_per_host;
  MCCS_EXPECTS(hosts >= 1);
  std::vector<RackId> rack_of(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    rack_of[static_cast<std::size_t>(h)] = cl.host(HostId{static_cast<std::uint32_t>(h)}).rack;
  }
  auto crossings = [&](const std::vector<int>& order) {
    int c = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const RackId a = rack_of[static_cast<std::size_t>(order[i])];
      const RackId b = rack_of[static_cast<std::size_t>(order[(i + 1) % order.size()])];
      if (a != b) ++c;
    }
    return c;
  };

  std::vector<int> order(static_cast<std::size_t>(hosts));
  std::iota(order.begin(), order.end(), 0);
  const int optimal = crossings(order);  // packed hosts are rack-contiguous
  if (optimal == 0) return 1.0;          // single-rack job

  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    rng.shuffle(order);
    sum += static_cast<double>(crossings(order)) / optimal;
  }
  return sum / trials;
}

void run_series(const char* label, int hosts_per_rack) {
  // Enough racks for 1024 GPUs: 1024 / (8 * hosts_per_rack) racks, plus one.
  cluster::SpineLeafSpec spec;
  spec.gpus_per_host = 8;
  spec.nics_per_host = 8;
  spec.hosts_per_leaf = hosts_per_rack;
  spec.num_leaves = 1024 / (8 * hosts_per_rack) + 1;
  spec.num_spines = 8;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  const auto cl = cluster::make_spine_leaf(spec);

  Rng rng(42);
  std::printf("# Figure 3%s: cross-rack ratio vs job size (%d hosts/rack)\n",
              label, hosts_per_rack);
  std::printf("%-12s %-16s\n", "job_gpus", "cross_rack_ratio");
  for (int job : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double ratio = expected_ratio(cl, job, 8, 400, rng);
    std::printf("%-12d %-16.3f\n", job, ratio);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 3: network overhead of random ring configuration ===\n\n");
  run_series("a", 2);
  run_series("b", 4);
  std::printf("Paper expectation: ratio grows with job size; worst case 2x at\n"
              "2 hosts/rack and up to 4x at 4 hosts/rack.\n");
  return 0;
}
