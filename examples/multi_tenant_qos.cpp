// Multi-tenant QoS example: three tenants share the testbed; the provider
// enforces priorities with the §4.3 policies.
//
//  1. All three tenants run under fair flow assignment (FFA) — equal shares.
//  2. The administrator prioritises tenant A with PFA: one of the two spine
//     routes is reserved for A's flows.
//  3. The administrator further prioritises B over C with traffic
//     scheduling: C may only send during B's idle cycles, learned from B's
//     collective trace through the management API.

#include <cstdio>
#include <vector>

#include "cluster/cluster.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

using namespace mccs;

int main() {
  svc::Fabric::Options options;
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};

  policy::Controller controller(fabric);
  controller.attach();

  // Tenant A: data-parallel VGG on 4 GPUs (both GPUs of one host per rack).
  workload::TrainingJob job_a(fabric, AppId{1},
                              {GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}},
                              workload::vgg19_data_parallel(), {.iterations = 40});
  // Tenants B and C: tensor-parallel GPT finetunes on 2 GPUs each.
  auto gpt = workload::gpt27b_tensor_parallel();
  gpt.layers = 8;
  workload::TrainingJob job_b(fabric, AppId{2}, {GpuId{2}, GpuId{6}}, gpt,
                              {.iterations = 40});
  workload::TrainingJob job_c(fabric, AppId{3}, {GpuId{3}, GpuId{7}}, gpt,
                              {.iterations = 40});

  job_a.start();
  job_b.start();
  job_c.start();

  // Phase 2 at t=3s: PFA for A.
  fabric.loop().schedule_at(3.0, [&] {
    std::printf("t=3s  administrator: reserve spine route 0 for tenant A (PFA)\n");
    controller.set_flow_policy(policy::Controller::FlowPolicy::kPfa);
    controller.set_high_priority(AppId{1});
    controller.set_reserved_routes({0});
    controller.rebalance();
  });

  // Phase 3 at t=5s: TS — C confined to B's idle cycles.
  fabric.loop().schedule_at(5.0, [&] {
    std::printf("t=5s  administrator: interleave tenant C into B's idle cycles (TS)\n");
    workload::run_periodic_traffic_scheduling(fabric, controller, job_b,
                                              {AppId{3}});
  });

  fabric.loop().run_while_pending(
      [&] { return job_a.finished() && job_b.finished() && job_c.finished(); });
  fabric.loop().run();

  auto report = [&](const char* name, const workload::TrainingJob& job) {
    const auto& ends = job.iteration_end_times();
    std::printf("%s: %zu iterations, finished at t=%.2fs; per-phase iteration"
                " time:", name, ends.size(), job.completion_time());
    auto phase_mean = [&](Time a, Time b) {
      double sum = 0;
      int n = 0;
      for (std::size_t i = 1; i < ends.size(); ++i) {
        if (ends[i] >= a && ends[i] < b) {
          sum += ends[i] - ends[i - 1];
          ++n;
        }
      }
      return n > 0 ? sum / n * 1e3 : 0.0;
    };
    std::printf(" FFA %.0f ms | PFA %.0f ms | PFA+TS %.0f ms\n",
                phase_mean(0.5, 3.0), phase_mean(3.2, 5.0), phase_mean(5.2, 1e9));
  };
  report("A (VGG, priority)", job_a);
  report("B (GPT, mid)     ", job_b);
  report("C (GPT, low)     ", job_c);

  // The provider can audit everything through the management API.
  std::printf("\nmanagement view: %zu communicators;"
              " A issued %zu collectives\n",
              fabric.list_communicators().size(),
              fabric.trace(AppId{1}).size());
  return 0;
}
