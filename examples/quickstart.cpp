// Quickstart: the MCCS programming model end to end.
//
// A tenant application connects its per-GPU processes to the MCCS service
// through the shim, allocates service-managed GPU buffers, creates a
// communicator via the UniqueId rendezvous, and issues an AllReduce — the
// exact NCCL-style flow of §4.1. The provider side (a Controller) picks the
// collective strategy; the tenant never sees the topology.
//
// Everything runs on a simulated 4-node testbed (2 racks, 2x50G vNICs per
// host), with real bytes moving through the collective datapath.

#include <cstdio>
#include <vector>

#include "cluster/cluster.h"
#include "mccs/fabric.h"
#include "policy/controller.h"

using namespace mccs;

int main() {
  // --- provider side: bring up the fabric and attach the controller -------
  svc::Fabric fabric{cluster::make_testbed()};
  policy::Controller controller(fabric);
  controller.set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
  controller.set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  controller.attach();

  // --- tenant side: one process per GPU, one GPU per host ------------------
  const AppId app{1};
  const std::vector<GpuId> my_gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const int nranks = static_cast<int>(my_gpus.size());
  const std::size_t count = 1 << 20;  // 1M floats = 4 MB

  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr send;
    gpu::DevicePtr recv;
  };
  std::vector<Rank> ranks;

  const svc::UniqueId uid = fabric.new_unique_id();
  CommId comm;
  int ready = 0;
  for (int r = 0; r < nranks; ++r) {
    svc::Shim& shim = fabric.connect(app, my_gpus[static_cast<std::size_t>(r)]);
    Rank rank;
    rank.shim = &shim;
    rank.stream = &shim.create_app_stream();
    // Memory is allocated *by the service* and returned through an
    // inter-process handle; the tenant uses the pointer like any device
    // pointer.
    rank.send = shim.alloc(count * sizeof(float));
    rank.recv = shim.alloc(count * sizeof(float));
    auto in = fabric.gpus().typed<float>(rank.send, count);
    for (std::size_t i = 0; i < count; ++i) {
      in[i] = static_cast<float>(r + 1);
    }
    shim.comm_init_rank(uid, nranks, r, [&](CommId id) {
      comm = id;
      ++ready;
    });
    ranks.push_back(rank);
  }
  fabric.loop().run_while_pending([&] { return ready == nranks; });
  std::printf("communicator ready: %d ranks\n", nranks);

  // --- issue the collective --------------------------------------------------
  int remaining = nranks;
  Time completed = 0;
  for (Rank& r : ranks) {
    r.shim->all_reduce(comm, r.send, r.recv, count, coll::DataType::kFloat32,
                       coll::ReduceOp::kSum, *r.stream, [&](Time t) {
                         completed = t;
                         --remaining;
                       });
  }
  fabric.loop().run_while_pending([&] { return remaining == 0; });

  // --- verify -------------------------------------------------------------------
  const float expected = static_cast<float>(nranks * (nranks + 1) / 2);  // 1+2+3+4
  auto out = fabric.gpus().typed<float>(ranks[0].recv, count);
  std::printf("AllReduce of %zu floats finished at t=%.3f ms (virtual)\n",
              count, completed * 1e3);
  std::printf("result[0] = %.1f (expected %.1f) -> %s\n", out[0], expected,
              out[0] == expected ? "OK" : "WRONG");

  // The provider can inspect what its service did:
  const auto& strategy = fabric.strategy_of(comm);
  std::printf("provider strategy: %d channel(s), ring order:", strategy.num_channels());
  for (int p = 0; p < nranks; ++p) {
    std::printf(" %d", strategy.channel_orders[0].rank_at(p));
  }
  std::printf(", %zu explicit route(s)\n", strategy.routes.size());
  return out[0] == expected ? 0 : 1;
}
