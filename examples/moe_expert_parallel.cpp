// Mixture-of-Experts example: an expert-parallel training job whose dominant
// traffic is AllToAll (token dispatch + combine around expert compute),
// running through the MCCS service.
//
// Demonstrates the extension primitives end to end: the MoE workload uses
// AllToAll via the shim, the provider's FFA policy pins the dense pairwise
// flows to distinct spine paths, and the same job under the NCCL library
// model (ECMP) shows the cost of hash collisions on AllToAll-heavy traffic.

#include <cstdio>
#include <vector>

#include "baseline/nccl_model.h"
#include "cluster/cluster.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

using namespace mccs;

namespace {

double run(bool use_mccs, std::uint64_t seed) {
  svc::Fabric::Options options;
  options.seed = seed;
  if (!use_mccs) options.config = baseline::nccl_library_config();
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};

  policy::Controller controller(fabric);
  controller.set_ring_policy(use_mccs
                                 ? policy::Controller::RingPolicy::kLocalityAware
                                 : policy::Controller::RingPolicy::kUserOrder);
  controller.set_flow_policy(use_mccs ? policy::Controller::FlowPolicy::kFfa
                                      : policy::Controller::FlowPolicy::kEcmp);
  controller.set_route_pairwise_mesh(use_mccs);  // AllToAll mesh on routes
  controller.attach();

  workload::TrainingModelSpec m = workload::moe_expert_parallel();
  m.moe_tokens_per_peer_bytes = 4_MB;  // chunky expert dispatch
  // 4-way expert parallelism, one GPU per host (experts span the racks).
  workload::TrainingJob job(fabric, AppId{1},
                            {GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}}, m,
                            {.iterations = 12});
  double jct = 0;
  job.start([&](Time t) { jct = t; });
  fabric.loop().run();
  return jct;
}

}  // namespace

int main() {
  std::printf("=== MoE expert-parallel training: AllToAll through MCCS ===\n\n");
  double nccl = 0, mccs = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    nccl += run(false, s);
    mccs += run(true, s);
  }
  nccl /= 5;
  mccs /= 5;
  std::printf("NCCL model (ECMP):        JCT %6.2f s\n", nccl);
  std::printf("MCCS (locality + FFA):    JCT %6.2f s\n", mccs);
  std::printf("\nMCCS speedup on AllToAll-dominated traffic: %.2fx\n",
              nccl / mccs);
  return 0;
}
