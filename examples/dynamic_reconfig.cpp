// Dynamic reconfiguration example — the Fig. 7 scenario as an application.
//
// An 8-GPU AllReduce job runs on four hosts whose switches form a ring. A
// background flow congests one direction; the provider's manager notices
// (here: a scripted monitor) and reverses the job's ring at runtime using
// the Fig.-4 barrier protocol. The application never stops issuing
// collectives and never learns anything happened — it just gets its
// bandwidth back.

#include <cstdio>
#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "mccs/fabric.h"
#include "policy/ring_config.h"

using namespace mccs;

int main() {
  auto cl = cluster::make_switch_ring(4, 2, 2, gbps(100));
  svc::Fabric::Options options;
  options.config.move_data = false;  // timing-focused demo
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{std::move(cl), options};

  // Provider installs locality rings at creation.
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return policy::locality_aware_strategy(info.gpus, fabric.cluster());
  });

  const AppId app{1};
  std::vector<GpuId> gpus;
  for (std::uint32_t g = 0; g < 8; ++g) gpus.push_back(GpuId{g});

  const svc::UniqueId uid = fabric.new_unique_id();
  CommId comm;
  int ready = 0;
  struct Rank {
    svc::Shim* shim;
    gpu::Stream* stream;
    gpu::DevicePtr buf;
  };
  std::vector<Rank> ranks;
  const std::size_t count = (256_MB) / sizeof(float);
  for (int r = 0; r < 8; ++r) {
    svc::Shim& shim = fabric.connect(app, gpus[static_cast<std::size_t>(r)]);
    ranks.push_back(Rank{&shim, &shim.create_app_stream(),
                         shim.alloc(count * sizeof(float))});
    shim.comm_init_rank(uid, 8, r, [&](CommId id) {
      comm = id;
      ++ready;
    });
  }
  fabric.loop().run_while_pending([&] { return ready == 8; });

  // The application: an endless AllReduce loop printing its bandwidth.
  Time iter_start = 0;
  int completions = 0;
  std::function<void()> issue = [&] {
    if (fabric.loop().now() >= 12.0) return;
    iter_start = fabric.loop().now();
    completions = 0;
    for (Rank& r : ranks) {
      r.shim->all_reduce(comm, r.buf, r.buf, count, coll::DataType::kFloat32,
                         coll::ReduceOp::kSum, *r.stream, [&](Time done) {
                           if (++completions == 8) {
                             std::printf("t=%6.2fs  AllReduce bandwidth %5.2f GB/s\n",
                                         done,
                                         to_gibps(coll::algorithm_bandwidth(
                                             256_MB, done - iter_start)));
                             issue();
                           }
                         });
    }
  };
  issue();

  // t=3s: a 75 Gbps background flow appears on the clockwise path.
  fabric.loop().schedule_at(3.0, [&] {
    std::printf("-- background flow starts (75 Gbps, clockwise)\n");
    net::FlowSpec bg;
    bg.src = NodeId{1};
    bg.dst = NodeId{2};
    bg.route = RouteId{0};
    bg.background_demand = gbps(75);
    fabric.network().start_flow(std::move(bg));
  });

  // t=7s: the provider's manager reverses the ring — zero app involvement.
  fabric.loop().schedule_at(7.0, [&] {
    std::printf("-- provider reverses the ring (runtime reconfiguration)\n");
    svc::CommStrategy reversed = fabric.strategy_of(comm);
    for (auto& o : reversed.channel_orders) o = o.reversed();
    fabric.reconfigure(comm, std::move(reversed));
  });

  fabric.loop().run_while_pending([&] { return fabric.loop().now() >= 12.0; });
  return 0;
}
