// Training-job example: replay a data-parallel VGG-19 training run through
// MCCS (the traffic-generator methodology of §6.1) and compare the provider-
// optimised service against the NCCL library model on the same testbed.
//
// Demonstrates: the workload layer, DDP-style compute/communication overlap
// through GPU events, the Fig.-2 style breakdown, and the end-to-end benefit
// of provider-side ring configuration + flow assignment.

#include <cstdio>
#include <vector>

#include "baseline/nccl_model.h"
#include "cluster/cluster.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

using namespace mccs;

namespace {

struct RunReport {
  double jct = 0.0;
  workload::BreakdownReport breakdown;
};

RunReport run(bool use_mccs) {
  svc::Fabric::Options options;
  if (!use_mccs) options.config = baseline::nccl_library_config();
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  svc::Fabric fabric{cluster::make_testbed(), options};

  policy::Controller controller(fabric);
  if (use_mccs) {
    controller.set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
    controller.set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  } else {
    controller.set_ring_policy(policy::Controller::RingPolicy::kUserOrder);
    controller.set_flow_policy(policy::Controller::FlowPolicy::kEcmp);
  }
  controller.attach();

  // The tenant's arbitrary rank order interleaves the racks — harmless under
  // MCCS (the provider reorders), costly under the library baseline.
  workload::TrainingJob job(fabric, AppId{1},
                            {GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}},
                            workload::vgg19_data_parallel(), {.iterations = 20});
  RunReport report;
  job.start([&](Time t) { report.jct = t; });
  fabric.loop().run();
  report.breakdown = job.breakdown();
  return report;
}

}  // namespace

int main() {
  std::printf("=== VGG-19 data-parallel training: NCCL library vs MCCS ===\n\n");
  const RunReport nccl = run(false);
  const RunReport mccs = run(true);

  auto show = [](const char* name, const RunReport& r) {
    std::printf("%-6s JCT %6.2f s | compute %4.1f%% memcpy %4.1f%% comm %4.1f%%"
                " idle %4.1f%%\n",
                name, r.jct, r.breakdown.compute_frac * 100,
                r.breakdown.memcpy_frac * 100, r.breakdown.comm_frac * 100,
                r.breakdown.idle_frac * 100);
  };
  show("NCCL", nccl);
  show("MCCS", mccs);
  std::printf("\nMCCS speedup: %.2fx (provider-side ring configuration + flow"
              " assignment)\n", nccl.jct / mccs.jct);
  return 0;
}
