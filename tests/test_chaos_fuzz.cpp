// Chaos fuzzing: seeded random fault scripts (link downs, degradations,
// restorations, tenant kills) run against a two-tenant steady-state AllReduce
// workload. Invariants checked per seed:
//
//   * the run terminates — the event loop drains within the wall budget;
//   * every collective completes exactly once, or — only when its tenant was
//     killed — never (no double deliveries, no resurrection after a kill);
//   * surviving tenants' results stay bit-correct through every fault.
//
// Seed count comes from MCCS_CHAOS_SEEDS (default 10); scripts/check.sh
// sweeps a larger range, including under ASan+UBSan. Plans come from
// workload::FaultPlan::random, which pairs every outage with a restoration
// inside the horizon so a stalled collective always regains a path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "common/parallel.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/fault_plan.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using test::await_until;
using test::create_comm;
using test::make_ranks;

std::vector<std::uint64_t> chaos_seeds() {
  const char* env = std::getenv("MCCS_CHAOS_SEEDS");
  int n = env != nullptr ? std::atoi(env) : 10;
  if (n < 1) n = 1;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) seeds.push_back(static_cast<std::uint64_t>(i));
  return seeds;
}

/// One seed's full chaos scenario: fabric, fault script, invariant checks.
/// Seeds are fully independent (each owns its fabric and event loop), so the
/// sweep below fans them out across the task pool; a failed assertion aborts
/// only its own seed's checks.
void run_chaos_seed(std::uint64_t seed) {
  svc::Fabric::Options opt;
  opt.config.chunk_deadline_slack = 4.0;
  opt.config.chunk_deadline_floor = micros(100);
  svc::Fabric fabric{cluster::make_testbed(), opt};

  // Half the seeds run with a recovery controller attached (escalation +
  // reconfigure-around-failures active); the other half exercise the
  // transport's standalone retry ladder.
  std::optional<policy::Controller> controller;
  if (seed % 2 == 0) {
    controller.emplace(fabric);
    controller->attach();
    controller->enable_fault_recovery();
  }

  const AppId app_a{1};  // survivor: never killed, must stay bit-correct
  const AppId app_b{2};  // chaos victim: eligible for a mid-run kill
  const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  const CommId comm_a = create_comm(fabric, app_a, gpus_a);
  const CommId comm_b = create_comm(fabric, app_b, gpus_b);
  auto ranks_a = make_ranks(fabric, app_a, gpus_a);
  auto ranks_b = make_ranks(fabric, app_b, gpus_b);
  constexpr int kRounds = 5;
  const std::size_t count = 1u << 19;  // 2 MiB: rounds long enough to be hit
  std::vector<gpu::DevicePtr> buf_a(4), buf_b(4);
  for (std::size_t r = 0; r < 4; ++r) {
    buf_a[r] = ranks_a[r].shim->alloc(count * sizeof(float));
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    for (auto& x : fabric.gpus().typed<float>(buf_a[r], count)) x = 1.0f;
    for (auto& x : fabric.gpus().typed<float>(buf_b[r], count)) x = 1.0f;
  }

  workload::FaultPlan::RandomOptions ropt;
  ropt.horizon = millis(8);
  ropt.link_count = fabric.cluster().topology().link_count();
  ropt.episodes = 4;
  ropt.min_outage = micros(500);
  ropt.max_outage = millis(2);
  ropt.killable = {app_b};
  ropt.kill_prob = 0.5;
  const workload::FaultPlan plan = workload::FaultPlan::random(seed, ropt);
  plan.schedule(fabric);
  // Observe the kill (if the plan has one) the instant it fires: scheduled
  // after plan.schedule at the same timestamp, so it runs right after the
  // kill event itself.
  bool b_killed = false;
  for (const workload::FaultEvent& e : plan.events()) {
    if (e.kind == workload::FaultEvent::Kind::kKillApp) {
      fabric.loop().schedule_at(std::max(e.at, fabric.loop().now()),
                                [&b_killed] { b_killed = true; });
    }
  }

  // Chained rounds per tenant: round k+1 is issued only once round k
  // completed on every rank. hits[round][rank] counts completion callbacks —
  // exactly-once means no entry ever reaches 2. (A completion may land
  // shortly AFTER the kill: the collective finished and its notification was
  // already in flight. That is still exactly-once, so it is allowed; what a
  // kill forbids is new completions of work aborted by it.)
  std::vector<int> a_hits(kRounds * 4, 0), b_hits(kRounds * 4, 0);
  int a_rounds_left = kRounds, b_rounds_left = kRounds;
  int a_pending = 0, b_pending = 0;
  std::function<void(int)> issue_a = [&](int round) {
    a_pending = 4;
    for (std::size_t r = 0; r < 4; ++r) {
      ranks_a[r].shim->all_reduce(comm_a, buf_a[r], buf_a[r], count,
                                  DataType::kFloat32, ReduceOp::kSum,
                                  *ranks_a[r].stream, [&, round, r](Time) {
                                    EXPECT_EQ(++a_hits[round * 4 +
                                                       static_cast<int>(r)],
                                              1)
                                        << "double delivery";
                                    if (--a_pending == 0) {
                                      --a_rounds_left;
                                      if (round + 1 < kRounds) {
                                        issue_a(round + 1);
                                      }
                                    }
                                  });
    }
  };
  std::function<void(int)> issue_b = [&](int round) {
    b_pending = 4;
    for (std::size_t r = 0; r < 4; ++r) {
      ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                  DataType::kFloat32, ReduceOp::kSum,
                                  *ranks_b[r].stream, [&, round, r](Time) {
                                    EXPECT_EQ(++b_hits[round * 4 +
                                                       static_cast<int>(r)],
                                              1)
                                        << "double delivery";
                                    if (--b_pending == 0) {
                                      --b_rounds_left;
                                      if (round + 1 < kRounds) {
                                        issue_b(round + 1);
                                      }
                                    }
                                  });
    }
  };
  issue_a(0);
  issue_b(0);

  // Termination: A always finishes; B finishes unless it was killed. The
  // loop must then drain completely without throwing — late fault events,
  // retries, and escalations all land on quiescent or tombstoned state.
  ASSERT_TRUE(await_until(fabric, [&] {
    return a_rounds_left == 0 && (b_rounds_left == 0 || b_killed);
  })) << "seed " << seed << " did not terminate";
  EXPECT_NO_THROW(fabric.loop().run()) << "seed " << seed;

  // Exactly-once: A completed every round on every rank; each of B's
  // (round, rank) collectives completed at most once — exactly once when no
  // kill happened.
  for (int k = 0; k < kRounds; ++k) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(a_hits[k * 4 + r], 1)
          << "seed " << seed << " round " << k << " rank " << r;
      EXPECT_LE(b_hits[k * 4 + r], 1)
          << "seed " << seed << " round " << k << " rank " << r;
      if (!b_killed) {
        EXPECT_EQ(b_hits[k * 4 + r], 1)
            << "seed " << seed << " round " << k << " rank " << r;
      }
    }
  }

  // Bit-correctness for survivors: after R rounds of a 4-rank sum AllReduce
  // seeded with ones, every element is exactly 4^R no matter what the
  // network did in between.
  const float expected = 1024.0f;  // 4^5
  for (std::size_t r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf_a[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], expected) << "seed " << seed << " A rank " << r;
    }
  }
  if (!b_killed) {
    for (std::size_t r = 0; r < 4; ++r) {
      auto out = fabric.gpus().typed<float>(buf_b[r], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], expected) << "seed " << seed << " B rank " << r;
      }
    }
  }
}

TEST(ChaosFuzz, RandomFaultScriptPreservesInvariants) {
  const std::vector<std::uint64_t> seeds = chaos_seeds();
  par::parallel_for(seeds.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) run_chaos_seed(seeds[i]);
  });
}

}  // namespace
}  // namespace mccs
