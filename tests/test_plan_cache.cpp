// Tests of the collective plan cache (mccs/coll_plan.h): hit/miss
// accounting, epoch invalidation on reconfiguration, structural equality of
// cached vs freshly built plans over randomized shapes, and behavioural
// equivalence (results and virtual time) with the cache disabled.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "helpers.h"
#include "mccs/coll_plan.h"
#include "mccs/fabric.h"
#include "mccs/proxy_engine.h"
#include "mccs/strategy.h"
#include "policy/controller.h"

namespace mccs {
namespace {

using coll::CollectiveKind;
using coll::DataType;
using coll::ReduceOp;
using svc::CollPlan;
using svc::CommStrategy;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct PlanCacheFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  CommId comm;
  std::vector<test::RankCtx> ranks;
  std::vector<gpu::DevicePtr> buf;
  std::size_t count = 1024;

  void SetUp() override {
    comm = create_comm(fabric, app, gpus);
    ranks = make_ranks(fabric, app, gpus);
    buf.resize(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    }
  }

  void fill_ones() {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      auto s = fabric.gpus().typed<float>(buf[r], count);
      for (auto& x : s) x = 1.0f;
    }
  }

  /// One in-place AllReduce round on every rank, awaited.
  void run_round() {
    int remaining = static_cast<int>(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
    ASSERT_TRUE(await(fabric, remaining));
  }

  void expect_all_equal(float expected) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      auto out = fabric.gpus().typed<float>(buf[r], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_FLOAT_EQ(out[i], expected) << "rank " << r << " elem " << i;
      }
    }
  }
};

TEST_F(PlanCacheFixture, RepeatedLaunchesHitTheCache) {
  fill_ones();
  constexpr int kRounds = 5;
  for (int i = 0; i < kRounds; ++i) run_round();
  for (GpuId g : gpus) {
    const auto st = fabric.proxy_for(g).plan_cache_stats(comm);
    EXPECT_EQ(st.misses, 1u) << "gpu " << g.get();
    EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kRounds - 1))
        << "gpu " << g.get();
    EXPECT_EQ(fabric.proxy_for(g).plan_cache_size(comm), 1u);
  }
}

TEST_F(PlanCacheFixture, DistinctShapesGetDistinctEntries) {
  fill_ones();
  run_round();
  // Same kind, different count => new entry; different kind => new entry.
  int remaining = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count / 2,
                              DataType::kFloat32, ReduceOp::kSum,
                              *ranks[r].stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  int remaining2 = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->broadcast(comm, buf[r], buf[r], count, DataType::kFloat32, 0,
                             *ranks[r].stream,
                             [&remaining2](Time) { --remaining2; });
  }
  ASSERT_TRUE(await(fabric, remaining2));
  for (GpuId g : gpus) {
    EXPECT_EQ(fabric.proxy_for(g).plan_cache_size(comm), 3u);
    EXPECT_EQ(fabric.proxy_for(g).plan_cache_stats(comm).misses, 3u);
  }
}

TEST_F(PlanCacheFixture, ReconfigurationInvalidatesCachedPlans) {
  fill_ones();
  run_round();
  std::vector<std::shared_ptr<const CollPlan>> before;
  for (GpuId g : gpus) {
    auto p = fabric.proxy_for(g).cached_plan(comm, CollectiveKind::kAllReduce,
                                             count, DataType::kFloat32, 0);
    ASSERT_NE(p, nullptr);
    before.push_back(p);
  }

  CommStrategy target = fabric.strategy_of(comm);
  for (auto& o : target.channel_orders) o = o.reversed();
  fabric.reconfigure(comm, target);
  fabric.loop().run();

  // The flush is lazy (on the first acquire under the new epoch), and the
  // post-reconfig plan must differ structurally: the ring direction reversed.
  fill_ones();
  run_round();
  expect_all_equal(4.0f);
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    const auto& proxy = fabric.proxy_for(gpus[r]);
    const auto st = proxy.plan_cache_stats(comm);
    EXPECT_GE(st.invalidations, 1u) << "rank " << r;
    EXPECT_EQ(st.misses, 2u) << "rank " << r;
    auto after = proxy.cached_plan(comm, CollectiveKind::kAllReduce, count,
                                   DataType::kFloat32, 0);
    ASSERT_NE(after, nullptr);
    EXPECT_NE(after, before[r]) << "rank " << r;
    EXPECT_FALSE(*after == *before[r])
        << "rank " << r << ": reversed ring must change the plan";
  }
}

TEST_F(PlanCacheFixture, DisabledCacheStillProducesCorrectResults) {
  svc::Fabric::Options options;
  options.config.enable_plan_cache = false;
  Fabric cold(cluster::make_testbed(), options);
  const CommId c = create_comm(cold, app, gpus);
  auto rks = make_ranks(cold, app, gpus);
  std::vector<gpu::DevicePtr> b(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    b[r] = rks[r].shim->alloc(count * sizeof(float));
    auto s = cold.gpus().typed<float>(b[r], count);
    for (auto& x : s) x = 1.0f;
  }
  constexpr int kRounds = 3;
  for (int i = 0; i < kRounds; ++i) {
    int remaining = static_cast<int>(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      rks[r].shim->all_reduce(c, b[r], b[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *rks[r].stream,
                              [&remaining](Time) { --remaining; });
    }
    ASSERT_TRUE(await(cold, remaining));
  }
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = cold.gpus().typed<float>(b[r], count);
    ASSERT_FLOAT_EQ(out[0], 64.0f);  // ((1*4)*4)*4
  }
  for (GpuId g : gpus) {
    const auto st = cold.proxy_for(g).plan_cache_stats(c);
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(st.misses, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(cold.proxy_for(g).plan_cache_size(c), 0u);
  }

  // The cache affects host CPU time only: the warm fixture fabric and the
  // cold fabric must agree on simulated time for the same workload.
  fill_ones();
  for (int i = 0; i < kRounds; ++i) run_round();
  EXPECT_DOUBLE_EQ(fabric.loop().now(), cold.loop().now());
}

TEST_F(PlanCacheFixture, AlgorithmSwapUnderLoadThroughTheBarrier) {
  // The satellite regression for the algorithm-keyed plan cache: swap a live
  // communicator's algorithm while a round is in flight. The Fig.-4 barrier
  // drains the old plan, the swap reconfigures, and the cache must compile a
  // tree plan instead of replaying the ring entry.
  policy::Controller ctl(fabric);
  ctl.set_flow_policy(policy::Controller::FlowPolicy::kEcmp);

  fill_ones();
  run_round();
  expect_all_equal(4.0f);
  std::vector<std::shared_ptr<const CollPlan>> before;
  for (GpuId g : gpus) {
    before.push_back(fabric.proxy_for(g).cached_plan(
        comm, CollectiveKind::kAllReduce, count, DataType::kFloat32, 0));
    ASSERT_NE(before.back(), nullptr);
  }

  // Launch the next round, then swap before the loop runs it: the launches
  // are in flight when the reconfiguration arrives.
  int remaining = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(ctl.swap_algorithm(comm, coll::Algorithm::kTree, 4));
  ASSERT_TRUE(await(fabric, remaining));
  expect_all_equal(16.0f);

  // A repeat of the same swap is a no-op.
  EXPECT_FALSE(ctl.swap_algorithm(comm, coll::Algorithm::kTree, 4));
  EXPECT_EQ(fabric.strategy_of(comm).algorithm, coll::Algorithm::kTree);
  EXPECT_EQ(fabric.strategy_of(comm).tree_pipeline_chunks, 4u);

  // The round after the swap must run the tree plan, not the ring entry.
  run_round();
  expect_all_equal(64.0f);
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    const auto& proxy = fabric.proxy_for(gpus[r]);
    EXPECT_GE(proxy.plan_cache_stats(comm).invalidations, 1u) << "rank " << r;
    auto after = proxy.cached_plan(comm, CollectiveKind::kAllReduce, count,
                                   DataType::kFloat32, 0);
    ASSERT_NE(after, nullptr);
    EXPECT_FALSE(*after == *before[r])
        << "rank " << r << ": the swap must recompile the plan";
  }
}

TEST(PlanCacheKey, SameEpochAlgorithmSwapNeverServesTheStalePlan) {
  // Defense-in-depth behind the epoch bump: even within one epoch, a
  // strategy that differs only in algorithm (or in a plan-shaping knob the
  // fingerprint folds in) must miss. Before the algorithm-keyed PlanKey the
  // second acquire returned the ring plan.
  const cluster::Cluster cl = cluster::make_testbed();
  svc::CommSetup setup;
  setup.id = CommId{7};
  setup.app = AppId{1};
  setup.nranks = 4;
  setup.gpus = {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  setup.rank = 1;
  const std::vector<int> base = {0, 1, 2, 3};
  CommStrategy ring;
  ring.channel_orders = svc::make_channel_orders(base, setup.gpus, cl, 1);
  CommStrategy tree = ring;
  tree.algorithm = coll::Algorithm::kTree;
  CommStrategy tree_fine = tree;
  tree_fine.tree_pipeline_chunks = 2;
  setup.strategy = ring;

  svc::CollPlanCache cache;
  const auto kind = CollectiveKind::kAllReduce;
  const auto ring_plan =
      cache.acquire(0, true, setup, ring, cl, kind, 1024, DataType::kFloat32, 0);
  const auto tree_plan =
      cache.acquire(0, true, setup, tree, cl, kind, 1024, DataType::kFloat32, 0);
  ASSERT_NE(tree_plan, ring_plan);
  ASSERT_FALSE(*tree_plan == *ring_plan);
  const auto fresh =
      svc::build_coll_plan(setup, tree, cl, kind, 1024, DataType::kFloat32, 0);
  EXPECT_TRUE(*tree_plan == *fresh);

  // Pipeline granularity is part of the fingerprint, not the algorithm.
  const auto fine_plan = cache.acquire(0, true, setup, tree_fine, cl, kind,
                                       1024, DataType::kFloat32, 0);
  ASSERT_NE(fine_plan, tree_plan);
  EXPECT_FALSE(*fine_plan == *tree_plan);

  // All three entries coexist; re-acquiring each is a hit.
  EXPECT_EQ(cache.acquire(0, true, setup, ring, cl, kind, 1024,
                          DataType::kFloat32, 0),
            ring_plan);
  EXPECT_EQ(cache.acquire(0, true, setup, tree, cl, kind, 1024,
                          DataType::kFloat32, 0),
            tree_plan);
}

// --- property test: cached plans are structurally identical to fresh builds --

CollectiveKind random_kind(Rng& rng) {
  static const CollectiveKind kinds[] = {
      CollectiveKind::kAllReduce, CollectiveKind::kAllGather,
      CollectiveKind::kReduceScatter, CollectiveKind::kBroadcast,
      CollectiveKind::kReduce, CollectiveKind::kAllToAll,
      CollectiveKind::kGather, CollectiveKind::kScatter};
  return kinds[rng.below(std::size(kinds))];
}

TEST(PlanCacheProperty, CachedPlanEqualsFreshBuildOverRandomShapes) {
  const cluster::Cluster cl = cluster::make_testbed();
  Rng rng(20240806);
  const std::vector<std::vector<GpuId>> comm_shapes = {
      {GpuId{0}, GpuId{4}},                      // 2 ranks, cross host
      {GpuId{0}, GpuId{1}},                      // 2 ranks, one host
      {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}},  // 4 ranks, one per host
      {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},   // all 8 GPUs
       GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}},
  };

  for (int trial = 0; trial < 200; ++trial) {
    const auto& gpus = comm_shapes[rng.below(comm_shapes.size())];
    const int nranks = static_cast<int>(gpus.size());

    svc::CommSetup setup;
    setup.id = CommId{static_cast<std::uint32_t>(trial)};
    setup.app = AppId{1};
    setup.nranks = nranks;
    setup.gpus = gpus;
    setup.rank = static_cast<int>(rng.below(nranks));

    std::vector<int> base(nranks);
    for (int r = 0; r < nranks; ++r) base[r] = r;
    rng.shuffle(base);
    CommStrategy strategy;
    const int max_channels = nranks > 4 ? 2 : 1;
    strategy.channel_orders = svc::make_channel_orders(
        base, gpus, cl, 1 + static_cast<int>(rng.below(max_channels)));
    const CollectiveKind kind = random_kind(rng);
    if ((kind == CollectiveKind::kAllReduce ||
         kind == CollectiveKind::kBroadcast ||
         kind == CollectiveKind::kReduce) &&
        rng.below(2) == 0) {
      strategy.algorithm = coll::Algorithm::kTree;
    }
    setup.strategy = strategy;

    const std::size_t count = 1 + rng.below(5000);
    const DataType dtype =
        rng.below(2) == 0 ? DataType::kFloat32 : DataType::kInt64;
    const int root = static_cast<int>(rng.below(nranks));

    svc::CollPlanCache cache;
    const auto first =
        cache.acquire(0, true, setup, strategy, cl, kind, count, dtype, root);
    const auto cached =
        cache.acquire(0, true, setup, strategy, cl, kind, count, dtype, root);
    const auto fresh =
        svc::build_coll_plan(setup, strategy, cl, kind, count, dtype, root);

    ASSERT_EQ(first, cached) << "second acquire must be a hit, trial " << trial;
    ASSERT_NE(cached, fresh);
    ASSERT_TRUE(*cached == *fresh)
        << "trial " << trial << ": kind " << coll::to_string(kind) << " count "
        << count << " nranks " << nranks << " rank " << setup.rank << " root "
        << root << " channels " << strategy.num_channels();
  }
}

}  // namespace
}  // namespace mccs
