// Exhaustive oracle test for the vectorized reduction kernels: every
// DataType x ReduceOp combination, over sizes chosen to exercise every
// vector-width remainder path (odd counts, one-below/one-above powers of
// two), must produce bytes identical to the pinned-scalar reference
// (coll::reduce_bytes_reference). Elementwise ops involve no reassociation,
// so "identical" means bit-identical, including for floats.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collectives/types.h"

namespace mccs::coll {
namespace {

const std::vector<std::size_t> kCounts = {
    1, 2, 3, 5, 7, 8, 13, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128,
    1000, 1023, 1025};

const std::vector<DataType> kDtypes = {DataType::kFloat32, DataType::kFloat64,
                                       DataType::kInt32, DataType::kInt64,
                                       DataType::kUint8};

const std::vector<ReduceOp> kOps = {ReduceOp::kSum, ReduceOp::kProd,
                                    ReduceOp::kMin, ReduceOp::kMax};

const char* dtype_name(DataType t) {
  switch (t) {
    case DataType::kFloat32: return "f32";
    case DataType::kFloat64: return "f64";
    case DataType::kInt32: return "i32";
    case DataType::kInt64: return "i64";
    case DataType::kUint8: return "u8";
  }
  return "?";
}

const char* op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

/// Deterministic small values, sign-varied for floats, overflow-safe for a
/// single op application on the integer types (|v| <= 13).
template <class T>
void fill(std::byte* p, std::size_t n, unsigned salt) {
  auto* v = reinterpret_cast<T*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned r = static_cast<unsigned>(i * 2654435761u + salt * 40503u);
    T x = static_cast<T>(1 + r % 13);
    if constexpr (std::is_signed_v<T> || std::is_floating_point_v<T>) {
      if (r & 0x10000u) x = static_cast<T>(-x);
    }
    v[i] = x;
  }
}

void fill_bytes(std::byte* p, std::size_t n, DataType dtype, unsigned salt) {
  switch (dtype) {
    case DataType::kFloat32: fill<float>(p, n, salt); break;
    case DataType::kFloat64: fill<double>(p, n, salt); break;
    case DataType::kInt32: fill<std::int32_t>(p, n, salt); break;
    case DataType::kInt64: fill<std::int64_t>(p, n, salt); break;
    case DataType::kUint8: fill<std::uint8_t>(p, n, salt); break;
  }
}

TEST(ReduceBytes, MatchesScalarReferenceForAllTypesOpsAndSizes) {
  for (DataType dtype : kDtypes) {
    for (ReduceOp op : kOps) {
      for (std::size_t count : kCounts) {
        const std::size_t bytes = count * dtype_size(dtype);
        std::vector<std::byte> acc_vec(bytes), acc_ref(bytes), in(bytes);
        fill_bytes(acc_vec.data(), count, dtype, 1);
        std::memcpy(acc_ref.data(), acc_vec.data(), bytes);
        fill_bytes(in.data(), count, dtype, 2);

        reduce_bytes(acc_vec, in, dtype, op);
        reduce_bytes_reference(acc_ref, in, dtype, op);

        ASSERT_EQ(0, std::memcmp(acc_vec.data(), acc_ref.data(), bytes))
            << dtype_name(dtype) << " " << op_name(op) << " count " << count;
      }
    }
  }
}

TEST(ReduceBytes, RepeatedApplicationAccumulates) {
  // Many applications into the same accumulator (the ring AllReduce shape):
  // vectorized and scalar paths must stay in lockstep the whole way.
  constexpr std::size_t kCount = 257;  // odd, exercises remainder every pass
  const std::size_t bytes = kCount * sizeof(float);
  std::vector<std::byte> acc_vec(bytes), acc_ref(bytes), in(bytes);
  fill_bytes(acc_vec.data(), kCount, DataType::kFloat32, 7);
  std::memcpy(acc_ref.data(), acc_vec.data(), bytes);
  for (unsigned pass = 0; pass < 16; ++pass) {
    fill_bytes(in.data(), kCount, DataType::kFloat32, 100 + pass);
    reduce_bytes(acc_vec, in, DataType::kFloat32, ReduceOp::kSum);
    reduce_bytes_reference(acc_ref, in, DataType::kFloat32, ReduceOp::kSum);
    ASSERT_EQ(0, std::memcmp(acc_vec.data(), acc_ref.data(), bytes))
        << "diverged at pass " << pass;
  }
}

TEST(ReduceBytes, EmptySpansAreANoOp) {
  std::vector<std::byte> empty;
  reduce_bytes(empty, empty, DataType::kFloat32, ReduceOp::kSum);
  reduce_bytes_reference(empty, empty, DataType::kInt64, ReduceOp::kMax);
}

}  // namespace
}  // namespace mccs::coll
