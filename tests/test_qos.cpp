// End-to-end QoS tests: traffic-window gating at the transport engines and
// the controller-driven PFA / TS policies over the management API.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

namespace mccs {
namespace {

using svc::Fabric;
using svc::TrafficSchedule;
using test::await;
using test::create_comm;
using test::make_ranks;

TEST(TrafficGating, BlockedAppMakesNoProgressUntilWindowOpens) {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};  // cross-rack
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 1u << 20;
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) buf[r] = ranks[r].shim->alloc(count * sizeof(float));

  // Window: closed until t=50 ms, then open 50 ms of every 100 ms.
  TrafficSchedule sched;
  sched.t0 = fabric.loop().now();
  sched.period = millis(100);
  sched.allowed.push_back({millis(50), millis(100)});
  fabric.set_traffic_schedule(app, sched);

  int remaining = 2;
  Time done_at = 0.0;
  for (int r = 0; r < 2; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, coll::DataType::kFloat32,
                              coll::ReduceOp::kSum, *ranks[r].stream,
                              [&](Time t) { done_at = t; --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  // Data could only move after the window opened at 50 ms.
  EXPECT_GE(done_at, sched.t0 + millis(50));
}

TEST(TrafficGating, UnrestrictedAfterClearSchedule) {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 4096;
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) buf[r] = ranks[r].shim->alloc(count * sizeof(float));

  TrafficSchedule sched;
  sched.t0 = fabric.loop().now();
  sched.period = seconds(10);
  sched.allowed.push_back({seconds(9), seconds(10)});  // closed for 9 s
  fabric.set_traffic_schedule(app, sched);
  fabric.clear_traffic_schedule(app);

  int remaining = 2;
  for (int r = 0; r < 2; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, coll::DataType::kFloat32,
                              coll::ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  EXPECT_LT(fabric.loop().now(), seconds(1));  // no 9-second stall
}

TEST(TrafficGating, GatingOnlyAffectsTheScheduledApp) {
  Fabric fabric{cluster::make_testbed()};
  AppId gated{1}, free_app{2};
  const std::vector<GpuId> gpus_gated{GpuId{0}, GpuId{4}};
  const std::vector<GpuId> gpus_free{GpuId{1}, GpuId{5}};
  const CommId comm_g = create_comm(fabric, gated, gpus_gated);
  const CommId comm_f = create_comm(fabric, free_app, gpus_free);
  auto ranks_g = make_ranks(fabric, gated, gpus_gated);
  auto ranks_f = make_ranks(fabric, free_app, gpus_free);
  const std::size_t count = 1u << 18;
  std::vector<gpu::DevicePtr> bg(2), bf(2);
  for (int r = 0; r < 2; ++r) {
    bg[r] = ranks_g[r].shim->alloc(count * sizeof(float));
    bf[r] = ranks_f[r].shim->alloc(count * sizeof(float));
  }
  TrafficSchedule sched;
  sched.t0 = fabric.loop().now();
  sched.period = millis(200);
  sched.allowed.push_back({millis(100), millis(200)});
  fabric.set_traffic_schedule(gated, sched);

  Time gated_done = 0, free_done = 0;
  int remaining = 4;
  for (int r = 0; r < 2; ++r) {
    ranks_g[r].shim->all_reduce(comm_g, bg[r], bg[r], count, coll::DataType::kFloat32,
                                coll::ReduceOp::kSum, *ranks_g[r].stream,
                                [&](Time t) { gated_done = t; --remaining; });
    ranks_f[r].shim->all_reduce(comm_f, bf[r], bf[r], count, coll::DataType::kFloat32,
                                coll::ReduceOp::kSum, *ranks_f[r].stream,
                                [&](Time t) { free_done = t; --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  EXPECT_LT(free_done, sched.t0 + millis(100));
  EXPECT_GE(gated_done, sched.t0 + millis(100));
}

TEST(ControllerPolicy, AttachInstallsLocalityRingsAndRoutes) {
  Fabric fabric{cluster::make_testbed()};
  policy::Controller controller(fabric);
  controller.set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
  controller.set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  controller.attach();

  AppId app{1};
  // Ranks deliberately interleaved across racks: the controller must fix it.
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  const auto& strategy = fabric.strategy_of(comm);
  const auto& order = strategy.channel_orders[0].order();
  EXPECT_EQ(policy::cross_rack_edges(order, gpus, fabric.cluster()), 2);
  EXPECT_FALSE(strategy.routes.empty());  // FFA installed explicit routes
}

TEST(ControllerPolicy, SecondJobTriggersRebalanceOfFirst) {
  Fabric fabric{cluster::make_testbed()};
  policy::Controller controller(fabric);
  controller.attach();

  const CommId comm_a = create_comm(fabric, AppId{1}, {GpuId{0}, GpuId{4}});
  const auto routes_before = fabric.strategy_of(comm_a).routes;
  const CommId comm_b = create_comm(fabric, AppId{2}, {GpuId{1}, GpuId{5}});
  fabric.loop().run();  // let any reconfiguration settle

  // Both jobs have one cross-rack flow in each direction; FFA must keep them
  // on distinct spines.
  const auto& ra = fabric.strategy_of(comm_a).routes;
  const auto& rb = fabric.strategy_of(comm_b).routes;
  ASSERT_FALSE(ra.empty());
  ASSERT_FALSE(rb.empty());
  for (const auto& [key, route_a] : ra) {
    auto it = rb.find(key);
    if (it != rb.end()) {
      EXPECT_NE(route_a.get() % 2, it->second.get() % 2)
          << "both jobs' flows hash to the same spine";
    }
  }
}

TEST(ControllerPolicy, TimeScheduleFromRealTraceGatesOtherTenant) {
  Fabric fabric{cluster::make_testbed()};
  policy::Controller controller(fabric);
  controller.attach();

  // Prioritised tenant A runs a periodic TP-style job to build a trace.
  workload::TrainingModelSpec m = workload::gpt27b_tensor_parallel();
  m.layers = 2;
  m.tp_activation_bytes = 4_MB;
  m.forward_compute = millis(6);
  m.backward_compute = millis(12);
  m.h2d_bytes_per_iter = 0;
  m.input_stall = 0;
  workload::TrainingJob job_a(fabric, AppId{1}, {GpuId{0}, GpuId{4}}, m,
                              {.iterations = 8});
  job_a.start();
  fabric.loop().run();
  ASSERT_TRUE(job_a.finished());

  EXPECT_TRUE(controller.apply_time_schedule(AppId{1}, {AppId{2}}));
  controller.clear_time_schedule({AppId{2}});
}

}  // namespace
}  // namespace mccs
