// Tests of the workload layer: model specs, the traffic generator driving
// real MCCS collectives, placement, and the §6.5 flow-level job simulator.

#include <gtest/gtest.h>

#include <set>

#include "cluster/placement.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/flowsim.h"
#include "workload/models.h"
#include "workload/traffic_gen.h"

namespace mccs::workload {
namespace {

TEST(Models, Vgg19GradientVolumeMatchesModelArithmetic) {
  const auto m = vgg19_data_parallel();
  EXPECT_EQ(m.parallelism, Parallelism::kDataParallel);
  EXPECT_NEAR(static_cast<double>(m.total_comm_bytes_per_iter()), 574.8e6, 1e6);
  for (Bytes b : m.grad_buckets) EXPECT_LE(b, 25'000'000u);
}

TEST(Models, GptTensorParallelCommVolume) {
  const auto m = gpt27b_tensor_parallel();
  EXPECT_EQ(m.parallelism, Parallelism::kTensorParallel);
  // 32 layers x 2 passes x 2 collectives x 20 MB = 2.56 GiB-ish.
  EXPECT_EQ(m.total_comm_bytes_per_iter(),
            32ull * 2 * 2 * m.tp_activation_bytes);
}

TEST(Models, ProductionGroupsSpanDifferentBalances) {
  const auto groups = production_model_groups();
  ASSERT_EQ(groups.size(), 4u);
  // Group D is input-bound: much more H2D traffic than group B.
  EXPECT_GT(groups[3].h2d_bytes_per_iter, groups[1].h2d_bytes_per_iter * 4);
}

TEST(TrainingJobTest, DataParallelJobCompletesAllIterations) {
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = resnet50_ddp();
  // Shrink for test speed.
  m.grad_buckets = {4_MB, 4_MB};
  m.h2d_bytes_per_iter = 1_MB;
  m.forward_compute = millis(2);
  m.backward_compute = millis(4);
  m.optimizer_compute = millis(1);
  m.input_stall = millis(1);

  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, m,
                  {.iterations = 5});
  bool done = false;
  job.start([&](Time) { done = true; });
  fabric.loop().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.iteration_end_times().size(), 5u);
  // Iterations strictly increase in time.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(job.iteration_end_times()[i], job.iteration_end_times()[i - 1]);
  }
}

TEST(TrainingJobTest, TensorParallelJobCompletes) {
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = gpt27b_tensor_parallel();
  m.layers = 4;
  m.tp_activation_bytes = 2_MB;
  m.forward_compute = millis(4);
  m.backward_compute = millis(8);
  m.h2d_bytes_per_iter = 0;
  m.input_stall = 0;

  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{1}}, m, {.iterations = 3});
  bool done = false;
  job.start([&](Time) { done = true; });
  fabric.loop().run();
  ASSERT_TRUE(done);
  // TP communication is on the critical path: each iteration must take at
  // least the pure compute time plus something for the collectives.
  const auto& ends = job.iteration_end_times();
  const Time iter_time = ends[1] - ends[0];
  EXPECT_GT(iter_time, m.forward_compute + m.backward_compute + m.optimizer_compute);
}

TEST(TrainingJobTest, BreakdownFractionsSumToOne) {
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = resnet50_ddp();
  m.grad_buckets = {4_MB};
  m.forward_compute = millis(3);
  m.backward_compute = millis(3);
  m.optimizer_compute = millis(1);
  m.h2d_bytes_per_iter = 8_MB;
  m.input_stall = millis(2);
  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{4}}, m, {.iterations = 4});
  job.start();
  fabric.loop().run();
  ASSERT_TRUE(job.finished());
  const auto b = job.breakdown();
  EXPECT_NEAR(b.compute_frac + b.memcpy_frac + b.comm_frac + b.idle_frac, 1.0, 1e-6);
  EXPECT_GT(b.compute_frac, 0.0);
  EXPECT_GT(b.memcpy_frac, 0.0);
  EXPECT_GT(b.comm_frac, 0.0);
  EXPECT_GT(b.idle_frac, 0.0);
}

TEST(TrainingJobTest, OverlapMakesDataParallelFasterThanSerialBound) {
  // With DDP-style overlap, iteration time is well below compute + full
  // serial communication.
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = resnet50_ddp();
  m.grad_buckets.assign(8, 8_MB);
  m.forward_compute = millis(10);
  m.backward_compute = millis(40);
  m.optimizer_compute = millis(2);
  m.h2d_bytes_per_iter = 0;
  m.input_stall = 0;
  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, m,
                  {.iterations = 3});
  job.start();
  fabric.loop().run();
  const auto& ends = job.iteration_end_times();
  const Time iter = ends[2] - ends[1];
  // Serial bound: compute + all 64 MB AllReduced at ~4+ GB/s effective.
  const Time compute = m.forward_compute + m.backward_compute + m.optimizer_compute;
  EXPECT_GT(iter, compute);  // communication not free...
  // ...but overlapped: far less than compute + comm-after-compute.
  const double comm_serial =
      2.0 * 3 / 4 * 64e6 / gbps(50);  // all buckets, serial, single NIC pair
  EXPECT_LT(iter, compute + comm_serial);
}

}  // namespace
}  // namespace mccs::workload

namespace mccs::cluster {
namespace {

TEST(Placement, RandomAllocatesExactlyNDistinctFreeGpus) {
  auto cl = make_large_sim_cluster();
  GpuAllocator alloc(cl);
  Rng rng(3);
  auto a = alloc.allocate(32, Placement::kRandom, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size(), 32u);
  std::set<std::uint32_t> uniq;
  for (GpuId g : *a) uniq.insert(g.get());
  EXPECT_EQ(uniq.size(), 32u);
  EXPECT_EQ(alloc.free_count(), cl.gpu_count() - 32);
}

TEST(Placement, CompactPacksIntoOneRackWhenPossible) {
  auto cl = make_large_sim_cluster();  // 32 GPUs per rack
  GpuAllocator alloc(cl);
  Rng rng(3);
  auto a = alloc.allocate(32, Placement::kCompact, rng);
  ASSERT_TRUE(a.has_value());
  std::set<std::uint32_t> racks;
  for (GpuId g : *a) racks.insert(cl.rack_of_gpu(g).get());
  EXPECT_EQ(racks.size(), 1u);
}

TEST(Placement, CompactSpillsToMinimalRacks) {
  auto cl = make_large_sim_cluster();
  GpuAllocator alloc(cl);
  Rng rng(3);
  auto a = alloc.allocate(48, Placement::kCompact, rng);  // 1.5 racks
  ASSERT_TRUE(a.has_value());
  std::set<std::uint32_t> racks;
  for (GpuId g : *a) racks.insert(cl.rack_of_gpu(g).get());
  EXPECT_EQ(racks.size(), 2u);
}

TEST(Placement, AllocationFailsWhenFullAndReleaseRestores) {
  auto cl = make_testbed();  // 8 GPUs
  GpuAllocator alloc(cl);
  Rng rng(1);
  auto a = alloc.allocate(8, Placement::kRandom, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.allocate(1, Placement::kRandom, rng).has_value());
  alloc.release(*a);
  EXPECT_TRUE(alloc.allocate(8, Placement::kCompact, rng).has_value());
}

}  // namespace
}  // namespace mccs::cluster

namespace mccs::workload {
namespace {

TEST(FlowSim, OptimalRingBeatsRandomRingOnCrossRackJob) {
  auto cl = cluster::make_large_sim_cluster();
  // A 32-GPU job on two hosts in each of two racks: a random host order
  // crosses the rack boundary up to 4 times, the optimal ring exactly twice.
  std::vector<GpuId> gpus;
  for (int h : {0, 1, 4, 5}) {
    for (int g = 0; g < 8; ++g) {
      gpus.push_back(GpuId{static_cast<std::uint32_t>(h * 8 + g)});
    }
  }
  auto run = [&](RingChoice ring, std::uint64_t seed) {
    sim::EventLoop loop;
    net::Network net(loop, cl.topology());
    Rng rng(seed);
    SimJobSpec spec;
    spec.id = JobId{0};
    spec.gpus = gpus;
    spec.iterations = 3;
    spec.ring = ring;
    FlowSimJob job(loop, net, cl, spec, rng);
    job.start({});
    loop.run();
    return job.avg_allreduce_time();
  };
  // Average a few random seeds: random rings zig-zag across racks.
  double random_avg = 0;
  for (std::uint64_t s = 1; s <= 6; ++s) random_avg += run(RingChoice::kRandomHostOrder, s);
  random_avg /= 6;
  const double optimal = run(RingChoice::kOptimal, 1);
  EXPECT_LT(optimal, random_avg);
}

TEST(FlowSim, FfaRoutesImproveOrMatchEcmp) {
  auto cl = cluster::make_large_sim_cluster();
  std::vector<GpuId> gpus;
  for (int h = 0; h < 2; ++h) {
    for (int g = 0; g < 8; ++g) {
      gpus.push_back(GpuId{static_cast<std::uint32_t>(h * 4 * 8 + g)});
    }
  }
  auto run = [&](bool ffa) {
    sim::EventLoop loop;
    net::Network net(loop, cl.topology());
    Rng rng(11);
    SimJobSpec spec;
    spec.id = JobId{0};
    spec.gpus = gpus;
    spec.iterations = 3;
    spec.ring = RingChoice::kOptimal;
    FlowSimJob job(loop, net, cl, spec, rng);
    if (ffa) {
      policy::AssignItem item{CommId{0}, AppId{1}, &gpus, &job.strategy(), false};
      net::Routing routing(cl.topology());
      auto routes = policy::assign_flows({item}, cl, routing);
      job.set_routes(routes[0]);
    }
    job.start({});
    loop.run();
    return job.avg_allreduce_time();
  };
  EXPECT_LE(run(true), run(false) * 1.001);
}

}  // namespace
}  // namespace mccs::workload

namespace mccs::workload {
namespace {

TEST(TrainingJobTest, PipelineParallelJobCompletes) {
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = gpt_pipeline_parallel();
  m.pp_activation_bytes = 1_MB;
  m.forward_compute = millis(8);
  m.backward_compute = millis(16);
  m.h2d_bytes_per_iter = 0;
  m.input_stall = 0;
  // 4 stages across 4 hosts.
  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, m,
                  {.iterations = 4});
  bool done = false;
  job.start([&](Time) { done = true; });
  fabric.loop().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(job.iteration_end_times().size(), 4u);
}

TEST(TrainingJobTest, PipelineMicrobatchingOverlapsTransfers) {
  // With more microbatches the per-stage compute is sliced finer and the
  // P2P transfers overlap compute: iteration time must not grow, and with a
  // communication-heavy profile it should shrink.
  auto run_with = [&](int microbatches) {
    svc::Fabric fabric{cluster::make_testbed()};
    TrainingModelSpec m = gpt_pipeline_parallel();
    m.pp_microbatches = microbatches;
    m.pp_activation_bytes = 16_MB;  // comm-heavy
    m.forward_compute = millis(8);
    m.backward_compute = millis(16);
    m.h2d_bytes_per_iter = 0;
    m.input_stall = 0;
    TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}},
                    m, {.iterations = 3});
    job.start();
    fabric.loop().run();
    const auto& ends = job.iteration_end_times();
    return ends[2] - ends[1];
  };
  EXPECT_LT(run_with(4), run_with(1) * 1.02);
}

TEST(TrainingJobTest, ExpertParallelJobCompletes) {
  svc::Fabric fabric{cluster::make_testbed()};
  TrainingModelSpec m = moe_expert_parallel();
  m.layers = 3;
  m.moe_tokens_per_peer_bytes = 512_KB;
  m.forward_compute = millis(6);
  m.backward_compute = millis(12);
  m.h2d_bytes_per_iter = 0;
  m.input_stall = 0;
  TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, m,
                  {.iterations = 3});
  bool done = false;
  job.start([&](Time) { done = true; });
  fabric.loop().run();
  ASSERT_TRUE(done);
  // AllToAll traffic shows up in the provider trace.
  const auto trace = fabric.trace(AppId{1});
  int a2a = 0;
  for (const auto& r : trace) {
    if (r.kind == coll::CollectiveKind::kAllToAll) ++a2a;
  }
  // 2 AllToAlls per layer per pass, 3 layers, 2 passes, 3 iters, 4 ranks.
  EXPECT_EQ(a2a, 2 * 3 * 2 * 3 * 4);
}

TEST(TrainingJobTest, ExpertParallelBenefitsFromFlowAssignment) {
  // MoE AllToAll crosses racks densely; FFA-assigned routes beat unlucky
  // ECMP placements on average across seeds.
  auto run_scheme = [&](bool ffa, std::uint64_t seed) {
    svc::Fabric::Options options;
    options.seed = seed;
    options.config.move_data = false;
    options.gpu_config.materialize_memory = false;
    svc::Fabric fabric{cluster::make_testbed(), options};
    policy::Controller controller(fabric);
    controller.set_flow_policy(ffa ? policy::Controller::FlowPolicy::kFfa
                                   : policy::Controller::FlowPolicy::kEcmp);
    controller.attach();
    TrainingModelSpec m = moe_expert_parallel();
    m.layers = 2;
    m.moe_tokens_per_peer_bytes = 8_MB;
    m.forward_compute = millis(2);
    m.backward_compute = millis(4);
    m.h2d_bytes_per_iter = 0;
    m.input_stall = 0;
    TrainingJob job(fabric, AppId{1}, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}},
                    m, {.iterations = 3});
    Time jct = 0;
    job.start([&](Time t) { jct = t; });
    fabric.loop().run();
    return jct;
  };
  double ecmp = 0, ffa = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    ecmp += run_scheme(false, s);
    ffa += run_scheme(true, s);
  }
  EXPECT_LE(ffa, ecmp * 1.001);
}

}  // namespace
}  // namespace mccs::workload
