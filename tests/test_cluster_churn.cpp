// Seconds-scale churn smoke for the warm-started control plane, tier-1:
//
//   * two identical fabrics driven through the same tenant churn — creates,
//     a kill, link failure + recovery, re-admission — one controller in
//     incremental mode, one in full-re-solve mode; installed routes must
//     match after every step (the live-fabric complement of the
//     assign_flows-level property test);
//   * a create/collective/kill soak asserting the telemetry registry stops
//     growing — per-comm plan-cache counters must be evicted on teardown;
//   * FIFO admission-control ordering and the seeded Poisson churn trace.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/admission.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "netsim/network.h"
#include "policy/controller.h"
#include "workload/arrivals.h"

namespace mccs {
namespace {

using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

cluster::SpineLeafSpec smoke_spec() {
  // 16 GPUs: 2 spines x 4 leaves x 2 hosts x 2 GPUs — four racks, so both
  // intra-rack tenants (candidate-disjoint components) and cross-rack ones
  // exist, and a spine link failure actually reroutes something.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 2;
  spec.num_leaves = 4;
  spec.hosts_per_leaf = 2;
  spec.gpus_per_host = 2;
  spec.nics_per_host = 2;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  return spec;
}

/// Two fabrics, one churn script: the incremental controller must install
/// exactly the routes the full one does at every step.
struct ChurnPair {
  Fabric full{cluster::make_spine_leaf(smoke_spec())};
  Fabric inc{cluster::make_spine_leaf(smoke_spec())};
  policy::Controller ctl_full{full};
  policy::Controller ctl_inc{inc};

  ChurnPair() {
    for (policy::Controller* c : {&ctl_full, &ctl_inc}) {
      c->set_ring_policy(policy::Controller::RingPolicy::kLocalityAware);
      c->set_flow_policy(policy::Controller::FlowPolicy::kPfa);
      c->set_reserved_routes({0});
      c->set_high_priority(AppId{2});
      c->attach();
    }
    ctl_inc.set_incremental(true);
  }

  CommId create_on_both(AppId app, const std::vector<GpuId>& gpus) {
    const CommId a = create_comm(full, app, gpus);
    const CommId b = create_comm(inc, app, gpus);
    EXPECT_EQ(a.get(), b.get()) << "comm ids diverged between the fabrics";
    settle();
    return a;
  }

  void settle() {
    full.loop().run();
    inc.loop().run();
  }

  /// Every live communicator's installed routes must be identical.
  void expect_routes_match(const char* step) {
    const auto live = full.list_communicators();
    ASSERT_EQ(live.size(), inc.list_communicators().size()) << step;
    for (const svc::CommInfo& info : live) {
      EXPECT_EQ(full.strategy_of(info.id).routes, inc.strategy_of(info.id).routes)
          << step << ": comm " << info.id.get();
    }
  }
};

TEST(ClusterChurn, IncrementalControllerMatchesFullUnderChurn) {
  ChurnPair p;

  // Arrivals: two intra-rack tenants (racks 0 and 1), one high-priority
  // cross-rack tenant (racks 2 and 3).
  p.create_on_both(AppId{1}, {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}});
  p.expect_routes_match("first tenant");
  p.create_on_both(AppId{2}, {GpuId{8}, GpuId{9}, GpuId{12}, GpuId{13}});
  p.expect_routes_match("high-priority cross-rack tenant");
  p.create_on_both(AppId{3}, {GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}});
  p.expect_routes_match("third tenant");

  // Link failure: take one fabric link down in the netsim (feeds the
  // incremental controller's change-log cursor) and tell both controllers,
  // as the stall->confirm path would.
  const auto link_count = p.full.cluster().topology().link_count();
  const LinkId victim{static_cast<std::uint32_t>(link_count - 1)};
  p.full.network().set_link_state(victim, net::LinkState::kDown);
  p.inc.network().set_link_state(victim, net::LinkState::kDown);
  p.ctl_full.mark_link_failed(victim);
  p.ctl_inc.mark_link_failed(victim);
  p.settle();
  p.expect_routes_match("link failed");

  // Recovery: link back up, exclusion lifted.
  p.full.network().set_link_state(victim, net::LinkState::kUp);
  p.inc.network().set_link_state(victim, net::LinkState::kUp);
  p.ctl_full.clear_link_failed(victim);
  p.ctl_inc.clear_link_failed(victim);
  p.settle();
  p.expect_routes_match("link recovered");

  // Departure: the priority tenant leaves; survivors rebalance.
  p.full.kill_app(AppId{2});
  p.inc.kill_app(AppId{2});
  p.ctl_full.rebalance();
  p.ctl_inc.rebalance();
  p.settle();
  p.expect_routes_match("tenant killed");

  // Re-admission onto the freed GPUs (warm add after a removal).
  p.create_on_both(AppId{4}, {GpuId{8}, GpuId{9}, GpuId{12}, GpuId{13}});
  p.expect_routes_match("re-admitted tenant");
}

TEST(ClusterChurn, TelemetryRegistryDoesNotGrowAcrossCommLifecycles) {
  Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const std::size_t count = 256;

  std::vector<std::size_t> sizes;
  for (int cycle = 0; cycle < 12; ++cycle) {
    const AppId app{static_cast<std::uint32_t>(cycle + 1)};
    const CommId comm = create_comm(fabric, app, gpus);
    auto ranks = make_ranks(fabric, app, gpus);
    std::vector<gpu::DevicePtr> buf(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    }
    // One collective so the per-comm plan-cache counters really register.
    int remaining = static_cast<int>(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count,
                                coll::DataType::kFloat32, coll::ReduceOp::kSum,
                                *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
    ASSERT_TRUE(await(fabric, remaining));
    fabric.kill_app(app);
    fabric.loop().run();
    sizes.push_back(fabric.telemetry().metrics().size());
  }

  // The registry may warm up over the first cycles (global transport/net
  // instruments interning once), but per-comm instruments must be evicted
  // with their comm: after warm-up the size is flat.
  ASSERT_GE(sizes.size(), 4u);
  for (std::size_t i = 2; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[1])
        << "telemetry registry grew across comm lifecycles (cycle " << i
        << "): plan-cache counters leaked";
  }
}

TEST(ClusterChurn, AdmissionQueueIsStrictFifo) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(11);

  // 16 GPUs. Job 0 takes 12; job 1 (8) blocks; job 2 (2) would fit the
  // remaining 4 but must NOT bypass job 1.
  ASSERT_TRUE(q.submit(JobId{0}, 12, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{1}, 8, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{2}, 2, rng).has_value());
  EXPECT_EQ(q.queue_depth(), 2u);
  EXPECT_EQ(q.free_gpus(), 4u);

  // Job 0 leaves: the queue drains head-first — job 1 then job 2.
  const auto admitted = q.finish(JobId{0}, rng);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].job.get(), 1u);
  EXPECT_EQ(admitted[0].gpus.size(), 8u);
  EXPECT_EQ(admitted[1].job.get(), 2u);
  EXPECT_EQ(admitted[1].gpus.size(), 2u);
  EXPECT_EQ(q.queue_depth(), 0u);
  EXPECT_EQ(q.admitted_total(), 3u);
}

TEST(ClusterChurn, AdmissionQueueDepartureOfQueuedJobUnblocks) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(12);

  ASSERT_TRUE(q.submit(JobId{0}, 12, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{1}, 8, rng).has_value());   // blocked head
  EXPECT_FALSE(q.submit(JobId{2}, 4, rng).has_value());   // behind it
  // The blocked head is cancelled while still queued: job 2 fits the free 4
  // GPUs and must be admitted by the same departure.
  const auto admitted = q.finish(JobId{1}, rng);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].job.get(), 2u);
  EXPECT_EQ(q.queue_depth(), 0u);
}

TEST(ClusterChurn, AdmissionQueueCancelOfQueuedMidListDoesNotDrain) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(21);

  // 16 GPUs. Job 0 takes 12; 1 and 2 queue behind it. Cancelling job 2 —
  // queued but NOT at the head — must dequeue it without admitting anyone
  // (the head is still blocked, and FIFO forbids skipping it).
  ASSERT_TRUE(q.submit(JobId{0}, 12, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{1}, 8, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{2}, 2, rng).has_value());
  EXPECT_TRUE(q.is_waiting(JobId{2}));
  EXPECT_TRUE(q.finish(JobId{2}, rng).empty());
  EXPECT_FALSE(q.is_waiting(JobId{2}));
  EXPECT_EQ(q.queue_depth(), 1u);
  EXPECT_EQ(q.duplicate_finish_total(), 0u);
}

TEST(ClusterChurn, AdmissionQueueDuplicateDepartureIsIdempotent) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(22);

  ASSERT_TRUE(q.submit(JobId{0}, 4, rng).has_value());
  EXPECT_TRUE(q.finish(JobId{0}, rng).empty());
  EXPECT_EQ(q.free_gpus(), 16u);
  // Second departure (chaos kill followed by the trace's natural one): a
  // counted no-op, not an abort, and GPUs are not double-released.
  EXPECT_TRUE(q.finish(JobId{0}, rng).empty());
  EXPECT_EQ(q.duplicate_finish_total(), 1u);
  EXPECT_EQ(q.free_gpus(), 16u);
  // Departure of a job never submitted is the same no-op.
  EXPECT_TRUE(q.finish(JobId{99}, rng).empty());
  EXPECT_EQ(q.duplicate_finish_total(), 2u);
}

TEST(ClusterChurn, AdmissionQueueRejectsMalformedRequests) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(23);

  // Zero, negative, or cluster-exceeding GPU counts can never be placed;
  // queueing them would wedge the FIFO head forever, so they are rejected
  // at submit — counted and reported, never queued.
  EXPECT_FALSE(q.submit(JobId{0}, 0, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{1}, -3, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{2}, 17, rng).has_value());
  EXPECT_EQ(q.queue_depth(), 0u);
  EXPECT_EQ(q.rejected_total(), 3u);
  const std::vector<JobId> rejected = q.take_rejected();
  ASSERT_EQ(rejected.size(), 3u);
  EXPECT_EQ(rejected[0].get(), 0u);
  EXPECT_EQ(rejected[1].get(), 1u);
  EXPECT_EQ(rejected[2].get(), 2u);
  EXPECT_TRUE(q.take_rejected().empty());
  // A well-formed submit still works afterwards.
  EXPECT_TRUE(q.submit(JobId{3}, 16, rng).has_value());
}

TEST(ClusterChurn, AdmissionQueueDeferredRetryOrderingUnderBackpressure) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(24);

  // 16 GPUs. Occupy 12, then raise backpressure (recovery storm): every
  // submit defers, departures release capacity but admit nobody, and
  // drain_deferred is a no-op until the storm clears.
  ASSERT_TRUE(q.submit(JobId{0}, 12, rng).has_value());
  q.set_backpressure(true);
  EXPECT_FALSE(q.submit(JobId{1}, 8, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{2}, 2, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{3}, 12, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{4}, 2, rng).has_value());
  EXPECT_EQ(q.deferred_total(), 4u);
  EXPECT_TRUE(q.finish(JobId{0}, rng).empty());
  EXPECT_EQ(q.free_gpus(), 16u);
  EXPECT_TRUE(q.drain_deferred(rng).empty());
  EXPECT_EQ(q.queue_depth(), 4u);

  // Storm clears: the backlog admits strictly in FIFO order — job 1 (8) and
  // job 2 (2) fit, job 3 (12) blocks on the remaining 6, and job 4 (2) must
  // NOT bypass it even though it would fit.
  q.set_backpressure(false);
  const auto first = q.drain_deferred(rng);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].job.get(), 1u);
  EXPECT_EQ(first[1].job.get(), 2u);
  EXPECT_EQ(q.retry_total(), 1u);
  EXPECT_TRUE(q.is_waiting(JobId{3}));
  EXPECT_TRUE(q.is_waiting(JobId{4}));

  // Job 1 departs: 14 free covers the blocked head, and the tail follows in
  // the original deferral order.
  const auto second = q.finish(JobId{1}, rng);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].job.get(), 3u);
  EXPECT_EQ(second[1].job.get(), 4u);
  EXPECT_EQ(q.queue_depth(), 0u);
}

TEST(ClusterChurn, AdmissionQueueBoundedRetryRejectsBlockedHead) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(smoke_spec());
  cluster::AdmissionQueue q(cluster, cluster::Placement::kCompact);
  Rng rng(25);
  q.set_max_retries(1);

  // Job 0 holds 12; job 1 (8) and job 2 (2) queue. Each failed head
  // placement consumes a retry; past the budget the head is rejected and the
  // queue moves on instead of livelocking.
  ASSERT_TRUE(q.submit(JobId{0}, 12, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{1}, 8, rng).has_value());
  EXPECT_FALSE(q.submit(JobId{2}, 2, rng).has_value());

  // First drain attempt: head (8) fails placement (4 free), retry 1 charged,
  // but job 2 must NOT bypass it.
  EXPECT_TRUE(q.drain_deferred(rng).empty());
  EXPECT_EQ(q.retry_total(), 1u);
  EXPECT_EQ(q.queue_depth(), 2u);

  // Second failure exhausts the budget: job 1 is rejected, job 2 admits.
  const auto admitted = q.drain_deferred(rng);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].job.get(), 2u);
  const std::vector<JobId> rejected = q.take_rejected();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].get(), 1u);
  EXPECT_EQ(q.queue_depth(), 0u);
}

TEST(ClusterChurn, PoissonTraceIsSeededAndWellFormed) {
  workload::ChurnSpec spec;
  spec.horizon = 4000.0;
  spec.mean_interarrival = 40.0;
  spec.mean_duration = 600.0;
  spec.sizes = {4, 8};
  spec.size_weights = {3.0, 1.0};

  const auto a = workload::poisson_jobs(spec, 99);
  const auto b = workload::poisson_jobs(spec, 99);
  const auto c = workload::poisson_jobs(spec, 100);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job.get(), b[i].job.get());
    EXPECT_DOUBLE_EQ(a[i].arrive, b[i].arrive);
    EXPECT_DOUBLE_EQ(a[i].depart, b[i].depart);
    EXPECT_EQ(a[i].gpus, b[i].gpus);
    EXPECT_LT(a[i].arrive, a[i].depart);
    EXPECT_LT(a[i].arrive, spec.horizon);
    EXPECT_TRUE(a[i].gpus == 4 || a[i].gpus == 8);
  }
  // A different seed really is a different trace.
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrive != c[i].arrive;
  }
  EXPECT_TRUE(differs);

  // Event stream: every job appears exactly twice (arrive + depart), sorted
  // by time.
  const auto events = workload::churn_events(a);
  ASSERT_EQ(events.size(), a.size() * 2);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  std::vector<int> seen(a.size(), 0);
  for (const auto& ev : events) ++seen[ev.job.get()];
  for (int s : seen) EXPECT_EQ(s, 2);
}

}  // namespace
}  // namespace mccs
