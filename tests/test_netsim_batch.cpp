// Batched-mutation epoch (solve coalescing) tests.
//
// The contract under test (DESIGN.md §15): a Network with coalescing on
// produces a simulation bitwise identical to the per-mutation solve path —
// every flow completes at the bit-identical virtual instant and the link
// change-log is entry-for-entry equal. The one permitted difference is the
// ORDER of completions within a single instant (per-flow cascades re-insert
// same-instant events in solve-history order; a coalesced solve emits them
// in ascending flow id), so streams are compared per flow id and after a
// canonical (time bits, id) sort, never positionally.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mccs::net {
namespace {

std::uint64_t time_bits(Time t) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(t));
  std::memcpy(&b, &t, sizeof(b));
  return b;
}

// --- seeded batched-vs-unbatched sweep --------------------------------------

/// A churn plan exercising everything a batch can coalesce: same-instant
/// start bursts (some flows latent, some sharing a bit-identical activation
/// instant), pause/resume pulses, cancels (including cancel of a flow
/// started in the same batch), and same-instant link-fault epochs.
struct BatchPlan {
  struct Start {
    Time at;
    NodeId src, dst;
    Bytes size;
    std::uint64_t ecmp_key;
    Time latency;
    Bandwidth cap;
    double weight;
    int burst;  ///< starts sharing a burst share one SolveBatch
  };
  struct Pulse {
    int target;
    Time pause_at, resume_at;
  };
  struct Cancel {
    int target;
    Time at;
  };
  struct FaultEpoch {
    Time at;
    std::vector<std::pair<std::uint32_t, bool>> links;  ///< (link, down?)
    Time clear_at;
  };
  std::vector<std::pair<NodeId, NodeId>> background;
  std::vector<Start> starts;
  std::vector<Pulse> pulses;
  std::vector<Cancel> cancels;
  std::vector<FaultEpoch> faults;
};

BatchPlan make_batch_plan(const std::vector<NodeId>& hosts,
                          std::size_t link_count, Rng& rng) {
  BatchPlan plan;
  auto pick_pair = [&] {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = hosts[rng.below(hosts.size())];
    if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
    return std::pair{src, dst};
  };
  for (int b = 0; b < 2; ++b) plan.background.push_back(pick_pair());

  // 6 bursts of 2-5 flows, each burst at one instant. Within a burst, pairs
  // of latent flows share one latency value, so their activation instants
  // (burst time + latency) collide bit-for-bit — the activation-cohort path.
  int burst = 0;
  for (int b = 0; b < 6; ++b, ++burst) {
    const Time at = rng.uniform() * 0.04;
    const int width = 2 + static_cast<int>(rng.below(4));
    const Time shared_latency = rng.uniform() * 2e-3;
    for (int i = 0; i < width; ++i) {
      const auto [src, dst] = pick_pair();
      BatchPlan::Start s;
      s.at = at;
      s.src = src;
      s.dst = dst;
      s.size = 1 + rng.below(60'000'000);
      s.ecmp_key = rng.engine()();
      const double r = rng.uniform();
      s.latency = r < 0.3 ? shared_latency : (r < 0.5 ? rng.uniform() * 1e-3 : 0.0);
      s.cap = rng.uniform() < 0.2 ? gbps(3 + rng.uniform() * 30)
                                  : std::numeric_limits<Bandwidth>::infinity();
      s.weight = rng.uniform() < 0.2 ? 0.5 + rng.uniform() * 3.0 : 1.0;
      s.burst = burst;
      plan.starts.push_back(s);
    }
  }
  for (int p = 0; p < 4; ++p) {
    BatchPlan::Pulse pulse;
    pulse.target = static_cast<int>(rng.below(plan.starts.size()));
    pulse.pause_at = 0.004 + rng.uniform() * 0.04;
    pulse.resume_at = pulse.pause_at + 0.001 + rng.uniform() * 0.02;
    plan.pulses.push_back(pulse);
  }
  for (int c = 0; c < 4; ++c) {
    plan.cancels.push_back({static_cast<int>(rng.below(plan.starts.size())),
                            0.002 + rng.uniform() * 0.05});
  }
  // Two fault epochs: several links change state at one instant (a switch
  // failure takes all its ports), restored later, also in one epoch.
  for (int f = 0; f < 2; ++f) {
    BatchPlan::FaultEpoch ep;
    ep.at = 0.003 + rng.uniform() * 0.04;
    ep.clear_at = ep.at + 0.002 + rng.uniform() * 0.02;
    const int nlinks = 2 + static_cast<int>(rng.below(3));
    for (int l = 0; l < nlinks; ++l) {
      ep.links.emplace_back(static_cast<std::uint32_t>(rng.below(link_count)),
                            rng.uniform() < 0.5);
    }
    plan.faults.push_back(ep);
  }
  return plan;
}

struct BatchRunResult {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> completions;  ///< (id, tbits), arrival order
  std::vector<std::tuple<std::uint32_t, int, std::uint64_t, std::uint64_t>>
      link_log;  ///< (link, state, frac bits, time bits)
  std::uint64_t solves = 0;
};

BatchRunResult run_batch_plan(const cluster::Cluster& cl, const BatchPlan& plan,
                              bool coalesce) {
  sim::EventLoop loop;
  Network net(loop, cl.topology(),
              Network::Options{.incremental = true, .coalesce = coalesce});
  BatchRunResult res;
  std::vector<std::optional<FlowId>> ids(plan.starts.size());

  for (const auto& [src, dst] : plan.background) {
    net.start_flow({.src = src, .dst = dst, .background_demand = gbps(20),
                    .on_complete = {}});
  }
  // Group each burst's starts under one SolveBatch. With coalesce off the
  // batch calls are no-ops, so BOTH runs execute the identical mutation
  // sequence — only the solve grouping differs.
  std::vector<std::vector<std::size_t>> bursts;
  for (std::size_t i = 0; i < plan.starts.size(); ++i) {
    const std::size_t b = static_cast<std::size_t>(plan.starts[i].burst);
    if (bursts.size() <= b) bursts.resize(b + 1);
    bursts[b].push_back(i);
  }
  for (const std::vector<std::size_t>& members : bursts) {
    if (members.empty()) continue;
    loop.schedule_at(plan.starts[members.front()].at, [&, members] {
      Network::SolveBatch batch(net);
      for (std::size_t i : members) {
        const BatchPlan::Start& s = plan.starts[i];
        FlowSpec spec;
        spec.src = s.src;
        spec.dst = s.dst;
        spec.size = s.size;
        spec.ecmp_key = s.ecmp_key;
        spec.start_latency = s.latency;
        spec.rate_cap = s.cap;
        spec.weight = s.weight;
        spec.on_complete = [&res](FlowId id, Time at) {
          res.completions.emplace_back(id.get(), time_bits(at));
        };
        ids[i] = net.start_flow(std::move(spec));
      }
    });
  }
  for (const BatchPlan::Pulse& p : plan.pulses) {
    loop.schedule_at(p.pause_at, [&, p] {
      if (ids[static_cast<std::size_t>(p.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(p.target)])) {
        net.pause_flow(*ids[static_cast<std::size_t>(p.target)]);
      }
    });
    loop.schedule_at(p.resume_at, [&, p] {
      if (ids[static_cast<std::size_t>(p.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(p.target)])) {
        net.resume_flow(*ids[static_cast<std::size_t>(p.target)]);
      }
    });
  }
  for (const BatchPlan::Cancel& c : plan.cancels) {
    loop.schedule_at(c.at, [&, c] {
      if (ids[static_cast<std::size_t>(c.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(c.target)])) {
        net.cancel_flow(*ids[static_cast<std::size_t>(c.target)]);
      }
    });
  }
  for (const BatchPlan::FaultEpoch& ep : plan.faults) {
    loop.schedule_at(ep.at, [&, ep] {
      Network::SolveBatch batch(net);
      for (const auto& [l, down] : ep.links) {
        net.set_link_state(LinkId{l},
                           down ? LinkState::kDown : LinkState::kDegraded,
                           down ? 1.0 : 0.5);
      }
    });
    loop.schedule_at(ep.clear_at, [&, ep] {
      Network::SolveBatch batch(net);
      for (const auto& [l, down] : ep.links) {
        net.set_link_state(LinkId{l}, LinkState::kUp);
      }
    });
  }
  loop.run();

  for (std::size_t i = 0; i < net.link_change_end(); ++i) {
    const LinkChange& lc = net.link_change(i);
    res.link_log.emplace_back(lc.link.get(), static_cast<int>(lc.state),
                              time_bits(lc.capacity_fraction),
                              time_bits(lc.at));
  }
  res.solves = net.solves_total();
  return res;
}

/// One seed: run the same plan batched and unbatched and compare.
/// Returns the number of completions cross-checked.
std::size_t check_batched_vs_unbatched(const cluster::Cluster& cl,
                                       const std::vector<NodeId>& hosts,
                                       std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 7);
  const BatchPlan plan =
      make_batch_plan(hosts, cl.topology().link_count(), rng);
  const BatchRunResult bat = run_batch_plan(cl, plan, /*coalesce=*/true);
  const BatchRunResult unb = run_batch_plan(cl, plan, /*coalesce=*/false);

  // Coalescing must never run MORE solves than per-mutation solving.
  EXPECT_LE(bat.solves, unb.solves) << "seed " << seed;

  // Per flow id: the completion instant is bitwise identical.
  EXPECT_EQ(bat.completions.size(), unb.completions.size()) << "seed " << seed;
  if (bat.completions.size() != unb.completions.size()) return 0;
  std::map<std::uint32_t, std::uint64_t> by_id;
  for (const auto& [id, bits] : bat.completions) {
    EXPECT_TRUE(by_id.emplace(id, bits).second)
        << "seed " << seed << ": flow " << id << " completed twice";
  }
  for (const auto& [id, bits] : unb.completions) {
    const auto it = by_id.find(id);
    EXPECT_NE(it, by_id.end()) << "seed " << seed << " flow " << id;
    if (it == by_id.end()) return 0;
    EXPECT_EQ(it->second, bits)
        << "seed " << seed << " flow " << id
        << ": batched and unbatched completion instants differ";
  }

  // The canonical (time bits, id) sort of the two streams is identical —
  // i.e. the streams are the same multiset, permuted only within instants.
  auto canonical = [](std::vector<std::pair<std::uint32_t, std::uint64_t>> v) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return std::tie(a.second, a.first) < std::tie(b.second, b.first);
    });
    return v;
  };
  EXPECT_EQ(canonical(bat.completions), canonical(unb.completions))
      << "seed " << seed;

  // The link change-log (an application-ordered journal that downstream
  // consumers replay) is entry-for-entry identical.
  EXPECT_EQ(bat.link_log, unb.link_log) << "seed " << seed;
  return bat.completions.size();
}

TEST(NetsimBatch, BatchedMatchesUnbatchedAcross500Seeds) {
  const auto cl = cluster::make_testbed();
  const auto hosts = cl.topology().hosts();

  // Seeds are independent (each builds its own EventLoop/Network), so the
  // sweep fans out across the task pool. MCCS_NETSIM_BATCH_SEEDS trims the
  // sweep for expensive instrumented runs (TSan/ASan).
  std::size_t num_seeds = 500;
  if (const char* env = std::getenv("MCCS_NETSIM_BATCH_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) num_seeds = static_cast<std::size_t>(v);
  }
  std::atomic<std::size_t> total_completions{0};
  par::parallel_for(num_seeds, 16, [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t seed = begin; seed < end; ++seed) {
      local += check_batched_vs_unbatched(cl, hosts, seed);
    }
    total_completions.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_GE(total_completions.load(), num_seeds);
}

// --- edge cases -------------------------------------------------------------

TEST(NetsimBatch, SameInstantLatentActivationsShareOneSolve) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  int completed = 0;
  // Four latent flows started at t=0 with one latency value: their
  // activation instants (0 + latency) are bit-identical, so one activation
  // cohort fires one event and its internal batch runs ONE solve.
  for (int i = 0; i < 4; ++i) {
    net.start_flow({.src = a, .dst = b, .size = 1_GB,
                    .ecmp_key = 11u + static_cast<std::uint64_t>(i),
                    .start_latency = 1e-3,
                    .on_complete = [&](FlowId, Time) { ++completed; }});
  }
  const std::uint64_t solves_before = net.solves_total();
  loop.run_until(2e-3);  // past activation, before any completion
  EXPECT_EQ(net.solves_total() - solves_before, 1u);
  EXPECT_EQ(net.active_flow_count(), 4u);
  loop.run();
  EXPECT_EQ(completed, 4);
}

TEST(NetsimBatch, CancelInsideBatchOfSameBatchStart) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  bool survivor_done = false;
  bool cancelled_done = false;
  const std::uint64_t solves_before = net.solves_total();
  {
    Network::SolveBatch batch(net);
    const FlowId doomed = net.start_flow(
        {.src = a, .dst = b, .size = 8_MB, .ecmp_key = 1,
         .on_complete = [&](FlowId, Time) { cancelled_done = true; }});
    net.start_flow({.src = a, .dst = b, .size = 8_MB, .ecmp_key = 2,
                    .on_complete = [&](FlowId, Time) { survivor_done = true; }});
    {
      Network::SolveBatch nested(net);  // nesting: outermost close solves
      net.cancel_flow(doomed);
    }
    EXPECT_EQ(net.solves_total(), solves_before);  // still deferred
  }
  // One batch epoch, one solve, and the cancelled flow never allocated.
  EXPECT_EQ(net.solves_total() - solves_before, 1u);
  EXPECT_EQ(net.active_flow_count(), 1u);
  loop.run();
  EXPECT_TRUE(survivor_done);
  EXPECT_FALSE(cancelled_done);
}

TEST(NetsimBatch, EmptyBatchRunsNoSolve) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const std::uint64_t solves_before = net.solves_total();
  const std::uint64_t batches_before = net.batches_total();
  {
    Network::SolveBatch batch(net);
  }
  EXPECT_EQ(net.solves_total(), solves_before);
  EXPECT_EQ(net.batches_total(), batches_before);
}

TEST(NetsimBatch, EndBatchWithoutBeginThrows) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  EXPECT_THROW(net.end_batch(), ContractViolation);
}

TEST(NetsimBatch, MassCancelEpochRunsOneSolve) {
  // The kill_app shape: a tenant's flows all torn down at one instant must
  // cost one batch-close solve, not one per flow (regression companion to
  // FaultRecovery.TenantKillDuringBarrierDrainsAndOthersComplete, which
  // drives the same path through Fabric::kill_app).
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const auto hosts = cl.topology().hosts();
  std::vector<FlowId> tenant_a;
  int b_completed = 0;
  for (int i = 0; i < 4; ++i) {
    tenant_a.push_back(net.start_flow(
        {.src = hosts[0], .dst = hosts[1], .size = 64_MB,
         .ecmp_key = static_cast<std::uint64_t>(i), .on_complete = {}}));
    net.start_flow({.src = hosts[2], .dst = hosts[3], .size = 1_MB,
                    .ecmp_key = 100u + static_cast<std::uint64_t>(i),
                    .on_complete = [&](FlowId, Time) { ++b_completed; }});
  }
  loop.run_until(1e-4);
  const std::uint64_t solves_before = net.solves_total();
  {
    Network::SolveBatch batch(net);
    for (const FlowId f : tenant_a) net.cancel_flow(f);
  }
  EXPECT_EQ(net.solves_total() - solves_before, 1u);
  EXPECT_EQ(net.active_flow_count(), 4u);
  loop.run();
  EXPECT_EQ(b_completed, 4);
}

// --- telemetry --------------------------------------------------------------

TEST(NetsimBatch, TelemetryNeitherPerturbsNorDivergesAcrossRuns) {
  // A shared-bottleneck cascade under batched solves: (a) the link_gbps
  // counter stream — flushed once per solve, so once per batch close — is
  // deterministic across identical runs, and (b) observing it does not
  // perturb the simulation (completion instants bitwise identical with
  // telemetry on and off).
  auto cl = cluster::make_testbed();
  auto run = [&](bool telemetry_on) {
    sim::EventLoop loop;
    Network net(loop, cl.topology());
    telemetry::Telemetry tel(telemetry_on);
    net.set_telemetry(&tel);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> completions;
    const NodeId a = cl.host(HostId{0}).nic_nodes[0];
    const NodeId b = cl.host(HostId{1}).nic_nodes[0];
    {
      Network::SolveBatch batch(net);
      for (int i = 0; i < 3; ++i) {
        net.start_flow({.src = a, .dst = b, .size = Bytes{(i + 1) * 4_MB},
                        .ecmp_key = static_cast<std::uint64_t>(i),
                        .on_complete = [&](FlowId id, Time t) {
                          completions.emplace_back(id.get(), time_bits(t));
                        }});
      }
    }
    loop.run();
    return std::pair{completions, tel.timeline().chrome_trace_json()};
  };
  const auto [done_on, trace_on] = run(true);
  const auto [done_on2, trace_on2] = run(true);
  const auto [done_off, trace_off] = run(false);
  EXPECT_EQ(done_on, done_on2);
  EXPECT_EQ(trace_on, trace_on2);          // deterministic counter stream
  EXPECT_EQ(done_on, done_off);            // observation does not perturb
  EXPECT_NE(trace_on, trace_off);          // ...but it did observe something
}

}  // namespace
}  // namespace mccs::net
