// Tests of the shared-memory IPC layer: the SPSC ring's bounds/FIFO
// behaviour and the CommandQueue's doorbell timing model.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "mccs/ipc.h"

namespace mccs::svc {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, FullAndEmptyBoundaries) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop(), 0);
  EXPECT_TRUE(q.try_push(4));  // wrapped slot reused
  EXPECT_TRUE(q.full());
}

TEST(SpscQueue, WrapsManyTimesWithoutCorruption) {
  SpscQueue<int> q(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (!q.full()) ASSERT_TRUE(q.try_push(next_push++));
    while (!q.empty()) ASSERT_EQ(q.try_pop(), next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscQueue<int>(3), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(1), ContractViolation);
}

TEST(CommandQueue, DeliversAfterLatencyInOrder) {
  sim::EventLoop loop;
  std::vector<int> got;
  CommandQueue<int> q(loop, micros(10), 16, [&](int v) { got.push_back(v); });
  q.push(1);
  q.push(2);
  q.push(3);
  loop.run_until(micros(9));
  EXPECT_TRUE(got.empty());  // still in the ring
  loop.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(CommandQueue, BurstsCoalesceIntoOneWakeup) {
  sim::EventLoop loop;
  std::vector<Time> delivery_times;
  CommandQueue<int> q(loop, micros(10), 16,
                      [&](int) { delivery_times.push_back(loop.now()); });
  for (int i = 0; i < 6; ++i) q.push(i);
  loop.run();
  ASSERT_EQ(delivery_times.size(), 6u);
  // One doorbell: everything drains at the same wakeup instant.
  for (Time t : delivery_times) EXPECT_DOUBLE_EQ(t, micros(10));
}

TEST(CommandQueue, SecondBurstGetsItsOwnDoorbell) {
  sim::EventLoop loop;
  std::vector<Time> delivery_times;
  CommandQueue<int> q(loop, micros(10), 16,
                      [&](int) { delivery_times.push_back(loop.now()); });
  q.push(1);
  loop.run();
  q.push(2);
  loop.run();
  ASSERT_EQ(delivery_times.size(), 2u);
  EXPECT_DOUBLE_EQ(delivery_times[0], micros(10));
  EXPECT_DOUBLE_EQ(delivery_times[1], micros(20));
}

TEST(CommandQueue, OverrunThrows) {
  sim::EventLoop loop;
  CommandQueue<int> q(loop, micros(10), 4, [](int) {});
  for (int i = 0; i < 4; ++i) q.push(i);
  EXPECT_THROW(q.push(4), ContractViolation);
}

TEST(CommandQueue, ConsumerMayPushMoreWork) {
  // A consumer that triggers further pushes (e.g., a retry) must not lose
  // or reorder anything.
  sim::EventLoop loop;
  std::vector<int> got;
  CommandQueue<int>* qp = nullptr;
  CommandQueue<int> q(loop, micros(5), 16, [&](int v) {
    got.push_back(v);
    if (v == 1) qp->push(10);
  });
  qp = &q;
  q.push(1);
  q.push(2);
  loop.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 10}));
}

// --- end-to-end: the shim path really goes through the ring --------------------

TEST(IpcIntegration, BackToBackIssuesShareOneDoorbell) {
  Fabric fabric{cluster::make_testbed()};
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) buf[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(1024);

  // Issue a burst; the frontend's queue must report the backlog before the
  // doorbell fires and drain it afterwards.
  int remaining = 6;
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 2; ++r) {
      ranks[static_cast<std::size_t>(r)].shim->all_reduce(
          comm, buf[static_cast<std::size_t>(r)], buf[static_cast<std::size_t>(r)], 16,
          coll::DataType::kFloat32, coll::ReduceOp::kSum,
          *ranks[static_cast<std::size_t>(r)].stream,
          [&remaining](Time) { --remaining; });
    }
  }
  auto& queue = fabric.service(HostId{0}).frontend(app).command_queue(GpuId{0});
  EXPECT_EQ(queue.depth(), 3u);
  ASSERT_TRUE(test::await(fabric, remaining));
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace mccs::svc
