// Tests of the collective plan compiler (collectives/compiler.h).
//
// Coverage, per the compiler's contract:
//  * correctness sweep — every CollectiveKind x every selectable algorithm x
//    nranks 2..17, executed abstractly over contribution ledgers and checked
//    against the collective's set-theoretic oracle;
//  * lowering bit-identity — under kRing the compiled schedule equals the
//    hand-written builders step for step (the paper-figure goldens depend on
//    it), and under kTree it equals the rotated-binary-tree builders;
//  * tree_edges audit — the advertised flow edges of every tree schedule
//    match the edges the per-rank schedules actually send on, for
//    nranks in [2, 64] and multiple roots (the phantom-reduce-edge bugfix);
//  * edge coverage — every send a compiled schedule performs is inside
//    algorithm_edges(), so flow assignment places demand for all of it;
//  * the algorithm-choice pass (analytic cost model), the hierarchy summary
//    and the compiler fingerprint;
//  * end-to-end numerical correctness through the MCCS service for the two
//    algorithms no legacy builder covers (double binary tree, pairwise),
//    including a 17-rank communicator and the single-rank short-circuit.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/compiler.h"
#include "collectives/schedule.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "mccs/strategy.h"

namespace mccs {
namespace {

using coll::Algorithm;
using coll::ChannelSchedule;
using coll::CollectiveKind;
using coll::CommStep;
using coll::CompiledSchedule;
using coll::CompileInput;
using coll::RingOrder;

// --- abstract ledger execution ---------------------------------------------------

/// Same message-driven executor as the ring/tree schedule tests, generalised
/// to schedules whose matched send/recv pairs may name different buffer
/// chunks (AllToAll moves block `dst` of the sender into block `src` of the
/// receiver).
using Ledger = std::vector<std::map<int, int>>;  // per chunk: contributor->count

std::vector<Ledger> run_schedules(const std::vector<ChannelSchedule>& scheds,
                                  std::vector<Ledger> state,
                                  bool frozen_sends = false) {
  const int n = static_cast<int>(scheds.size());
  // AllToAll reads from a send buffer the receives never touch (the shim
  // takes distinct pointers); every other kind operates in one work buffer.
  const std::vector<Ledger> send_state = frozen_sends ? state
                                                      : std::vector<Ledger>{};
  std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
  std::vector<bool> sent(static_cast<std::size_t>(n), false);
  std::vector<std::set<int>> arrived(static_cast<std::size_t>(n));
  bool progress = true;
  auto all_done = [&] {
    for (int r = 0; r < n; ++r) {
      if (cur[static_cast<std::size_t>(r)] <
          scheds[static_cast<std::size_t>(r)].steps.size())
        return false;
    }
    return true;
  };
  while (!all_done()) {
    EXPECT_TRUE(progress) << "compiled schedule deadlocked";
    if (!progress) break;
    progress = false;
    for (int r = 0; r < n; ++r) {
      auto& c = cur[static_cast<std::size_t>(r)];
      const auto& steps = scheds[static_cast<std::size_t>(r)].steps;
      if (c >= steps.size()) continue;
      const CommStep& st = steps[c];
      if (st.has_send() && !sent[static_cast<std::size_t>(r)]) {
        const auto& peer_steps =
            scheds[static_cast<std::size_t>(st.send_to)].steps;
        const CommStep* match = nullptr;
        for (const CommStep& ps : peer_steps) {
          if (ps.has_recv() && ps.recv_tag == st.send_tag) {
            match = &ps;
            break;
          }
        }
        EXPECT_NE(match, nullptr) << "unmatched send tag " << st.send_tag;
        if (match == nullptr) return state;
        EXPECT_EQ(match->recv_from, r);
        auto& dst_chunk =
            state[static_cast<std::size_t>(st.send_to)][match->recv_chunk];
        const auto& src_chunk =
            (frozen_sends ? send_state
                          : state)[static_cast<std::size_t>(r)][st.send_chunk];
        if (match->reduce) {
          for (const auto& [who, cnt] : src_chunk) dst_chunk[who] += cnt;
        } else {
          dst_chunk = src_chunk;
        }
        arrived[static_cast<std::size_t>(st.send_to)].insert(st.send_tag);
        sent[static_cast<std::size_t>(r)] = true;
        progress = true;
      }
      const bool send_ok = !st.has_send() || sent[static_cast<std::size_t>(r)];
      const bool recv_ok = !st.has_recv() ||
                           arrived[static_cast<std::size_t>(r)].count(st.recv_tag) > 0;
      if (send_ok && recv_ok) {
        ++c;
        sent[static_cast<std::size_t>(r)] = false;
        progress = true;
      }
    }
  }
  return state;
}

std::vector<CompiledSchedule> compile_all(CollectiveKind kind, Algorithm algo,
                                          const RingOrder& order, int root,
                                          std::size_t tree_chunks,
                                          const std::vector<int>* hosts = nullptr) {
  const int n = static_cast<int>(order.size());
  std::vector<CompiledSchedule> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    CompileInput in;
    in.kind = kind;
    in.algorithm = algo;
    in.nranks = n;
    in.rank = r;
    in.root = root;
    in.order = &order;
    in.tree_chunks = tree_chunks;
    in.host_of_rank = hosts;
    out.push_back(coll::compile_collective(in));
  }
  return out;
}

/// Initial ledgers encoding who holds what before the collective runs.
std::vector<Ledger> initial_state(CollectiveKind kind, int n, int root,
                                  std::size_t chunks) {
  std::vector<Ledger> state(static_cast<std::size_t>(n), Ledger(chunks));
  auto& s = state;
  switch (kind) {
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kReduce:
    case CollectiveKind::kReduceScatter:
      // Every rank contributes to every chunk.
      for (int r = 0; r < n; ++r)
        for (std::size_t c = 0; c < chunks; ++c)
          s[static_cast<std::size_t>(r)][c][r] = 1;
      break;
    case CollectiveKind::kBroadcast:
      for (std::size_t c = 0; c < chunks; ++c)
        s[static_cast<std::size_t>(root)][c][root] = 1;
      break;
    case CollectiveKind::kAllGather:
      // Rank r starts holding only its own block.
      for (int r = 0; r < n; ++r)
        s[static_cast<std::size_t>(r)][static_cast<std::size_t>(r)][r] = 1;
      break;
    case CollectiveKind::kAllToAll:
      // Block b of rank r is the distinct token r*1000 + b.
      for (int r = 0; r < n; ++r)
        for (std::size_t b = 0; b < chunks; ++b)
          s[static_cast<std::size_t>(r)][b][r * 1000 + static_cast<int>(b)] = 1;
      break;
    case CollectiveKind::kGather:
      // Non-roots hold their single block at chunk 0.
      for (int r = 0; r < n; ++r)
        if (r != root) s[static_cast<std::size_t>(r)][0][r] = 1;
      break;
    case CollectiveKind::kScatter:
      for (std::size_t c = 0; c < chunks; ++c)
        s[static_cast<std::size_t>(root)][c][1000 + static_cast<int>(c)] = 1;
      break;
  }
  return state;
}

/// The collective's set-theoretic oracle over final ledgers.
void verify_state(CollectiveKind kind, int n, int root, std::size_t chunks,
                  const std::vector<Ledger>& state) {
  auto expect_full = [&](int r, std::size_t c) {
    const auto& chunk = state[static_cast<std::size_t>(r)][c];
    for (int who = 0; who < n; ++who) {
      ASSERT_TRUE(chunk.count(who) && chunk.at(who) == 1)
          << "rank " << r << " chunk " << c << " contributor " << who
          << " count " << (chunk.count(who) ? chunk.at(who) : 0);
    }
  };
  switch (kind) {
    case CollectiveKind::kAllReduce:
      for (int r = 0; r < n; ++r)
        for (std::size_t c = 0; c < chunks; ++c) expect_full(r, c);
      break;
    case CollectiveKind::kReduce:
      for (std::size_t c = 0; c < chunks; ++c) expect_full(root, c);
      break;
    case CollectiveKind::kReduceScatter:
      // Rank r owns buffer block r of the scattered reduction.
      for (int r = 0; r < n; ++r)
        expect_full(r, static_cast<std::size_t>(r));
      break;
    case CollectiveKind::kBroadcast:
      for (int r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < chunks; ++c) {
          const auto& chunk = state[static_cast<std::size_t>(r)][c];
          ASSERT_EQ(chunk.size(), 1u) << "rank " << r << " chunk " << c;
          ASSERT_EQ(chunk.count(root), 1u) << "rank " << r << " chunk " << c;
          ASSERT_EQ(chunk.at(root), 1) << "rank " << r << " chunk " << c;
        }
      }
      break;
    case CollectiveKind::kAllGather:
      for (int r = 0; r < n; ++r) {
        for (std::size_t b = 0; b < chunks; ++b) {
          const auto& chunk = state[static_cast<std::size_t>(r)][b];
          ASSERT_EQ(chunk.size(), 1u) << "rank " << r << " block " << b;
          ASSERT_EQ(chunk.count(static_cast<int>(b)), 1u)
              << "rank " << r << " block " << b;
        }
      }
      break;
    case CollectiveKind::kAllToAll:
      // Block q of rank r ends as block r of rank q (own block stays local).
      for (int r = 0; r < n; ++r) {
        for (int q = 0; q < n; ++q) {
          if (q == r) continue;
          const auto& chunk =
              state[static_cast<std::size_t>(r)][static_cast<std::size_t>(q)];
          ASSERT_EQ(chunk.size(), 1u) << "rank " << r << " block " << q;
          ASSERT_EQ(chunk.count(q * 1000 + r), 1u)
              << "rank " << r << " block " << q;
        }
      }
      break;
    case CollectiveKind::kGather:
      for (int q = 0; q < n; ++q) {
        if (q == root) continue;
        const auto& chunk =
            state[static_cast<std::size_t>(root)][static_cast<std::size_t>(q)];
        ASSERT_EQ(chunk.size(), 1u) << "block " << q;
        ASSERT_EQ(chunk.count(q), 1u) << "block " << q;
      }
      break;
    case CollectiveKind::kScatter:
      for (int q = 0; q < n; ++q) {
        if (q == root) continue;
        const auto& chunk = state[static_cast<std::size_t>(q)][0];
        ASSERT_EQ(chunk.size(), 1u) << "rank " << q;
        ASSERT_EQ(chunk.count(1000 + q), 1u) << "rank " << q;
      }
      break;
  }
}

bool is_rooted(CollectiveKind kind) {
  return kind == CollectiveKind::kBroadcast || kind == CollectiveKind::kReduce ||
         kind == CollectiveKind::kGather || kind == CollectiveKind::kScatter;
}

bool is_fixed_shape(CollectiveKind kind) {
  return kind == CollectiveKind::kAllToAll || kind == CollectiveKind::kGather ||
         kind == CollectiveKind::kScatter;
}

/// A non-trivial ring order (position != rank) that is still a permutation
/// for every n: rotate the identity, then reverse it.
RingOrder scrambled_order(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = (i + 1) % n;
  std::reverse(v.begin(), v.end());
  return RingOrder(std::move(v));
}

// --- correctness sweep: every kind x every selectable algorithm ------------------

class CompiledSweepP : public ::testing::TestWithParam<CollectiveKind> {};

TEST_P(CompiledSweepP, EveryAlgorithmMatchesOracleForRanks2To17) {
  const CollectiveKind kind = GetParam();
  for (int n = 2; n <= 17; ++n) {
    const std::vector<RingOrder> orders = {RingOrder::identity(n),
                                           scrambled_order(n)};
    const std::vector<int> roots =
        is_rooted(kind) ? std::vector<int>{0, n - 1} : std::vector<int>{0};
    for (const Algorithm algo : coll::selectable_algorithms(kind)) {
      for (const RingOrder& order : orders) {
        for (const int root : roots) {
          SCOPED_TRACE(::testing::Message()
                       << coll::to_string(kind) << " algo "
                       << coll::algorithm_name(algo) << " n " << n << " root "
                       << root << " pos0 " << order.rank_at(0));
          const auto compiled = compile_all(kind, algo, order, root, 3);
          // One plan shape per communicator: every rank agrees on chunks.
          const std::size_t chunks = compiled[0].schedule.num_chunks;
          // Flow assignment advertises the algorithm's steady-state edge
          // superset (the root-0 AllReduce trees). Rooted tree collectives
          // at other roots — and the DBT mirror broadcast — use rotated
          // trees whose edges deliberately ride ECMP, so coverage is only
          // asserted where the contract promises it.
          const bool tree_like = algo == Algorithm::kTree ||
                                 algo == Algorithm::kDoubleBinaryTree;
          const bool coverage_checked =
              !is_fixed_shape(kind) &&
              !(is_rooted(kind) && tree_like &&
                (root != 0 || algo == Algorithm::kDoubleBinaryTree));
          std::vector<ChannelSchedule> scheds;
          const auto edges = coll::algorithm_edges(algo, order);
          const std::set<std::pair<int, int>> edge_set(edges.begin(),
                                                       edges.end());
          for (int r = 0; r < n; ++r) {
            const auto& cs = compiled[static_cast<std::size_t>(r)];
            ASSERT_EQ(cs.schedule.num_chunks, chunks) << "rank " << r;
            ASSERT_FALSE(cs.phases.empty()) << "rank " << r;
            // One recv slot per tag (the invariant build_coll_plan enforces).
            std::set<int> tags;
            for (const CommStep& st : cs.schedule.steps) {
              if (st.has_recv()) {
                ASSERT_TRUE(tags.insert(st.recv_tag).second)
                    << "rank " << r << " duplicate recv tag " << st.recv_tag;
              }
              // Flow assignment must place demand for every send edge.
              if (st.has_send() && coverage_checked) {
                ASSERT_TRUE(edge_set.count({r, st.send_to}))
                    << "rank " << r << " sends on unadvertised edge " << r
                    << "->" << st.send_to;
              }
            }
            scheds.push_back(cs.schedule);
          }
          const auto state = run_schedules(
              scheds, initial_state(kind, n, root, chunks),
              kind == CollectiveKind::kAllToAll);
          verify_state(kind, n, root, chunks, state);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, CompiledSweepP,
    ::testing::Values(CollectiveKind::kAllReduce, CollectiveKind::kAllGather,
                      CollectiveKind::kReduceScatter,
                      CollectiveKind::kBroadcast, CollectiveKind::kReduce,
                      CollectiveKind::kAllToAll, CollectiveKind::kGather,
                      CollectiveKind::kScatter));

// --- lowering bit-identity -------------------------------------------------------

void expect_same_schedule(const ChannelSchedule& got,
                          const ChannelSchedule& want) {
  ASSERT_EQ(got.num_chunks, want.num_chunks);
  ASSERT_EQ(got.steps.size(), want.steps.size());
  for (std::size_t i = 0; i < want.steps.size(); ++i) {
    const CommStep& a = got.steps[i];
    const CommStep& b = want.steps[i];
    ASSERT_EQ(a.index, b.index) << "step " << i;
    ASSERT_EQ(a.send_to, b.send_to) << "step " << i;
    ASSERT_EQ(a.send_chunk, b.send_chunk) << "step " << i;
    ASSERT_EQ(a.send_tag, b.send_tag) << "step " << i;
    ASSERT_EQ(a.recv_from, b.recv_from) << "step " << i;
    ASSERT_EQ(a.recv_chunk, b.recv_chunk) << "step " << i;
    ASSERT_EQ(a.recv_tag, b.recv_tag) << "step " << i;
    ASSERT_EQ(a.reduce, b.reduce) << "step " << i;
  }
}

ChannelSchedule legacy_ring(CollectiveKind kind, const RingOrder& order,
                            int rank, int root) {
  const int n = static_cast<int>(order.size());
  switch (kind) {
    case CollectiveKind::kReduce:
      return coll::build_chain_reduce_schedule(order, rank, root);
    case CollectiveKind::kAllToAll:
      return coll::build_alltoall_schedule(n, rank);
    case CollectiveKind::kGather:
      return coll::build_gather_schedule(n, rank, root);
    case CollectiveKind::kScatter:
      return coll::build_scatter_schedule(n, rank, root);
    default:
      return coll::build_ring_schedule(kind, order, rank, root);
  }
}

TEST(CompilerLowering, RingIsBitIdenticalToHandwrittenBuilders) {
  const CollectiveKind kinds[] = {
      CollectiveKind::kAllReduce,     CollectiveKind::kAllGather,
      CollectiveKind::kReduceScatter, CollectiveKind::kBroadcast,
      CollectiveKind::kReduce,        CollectiveKind::kAllToAll,
      CollectiveKind::kGather,        CollectiveKind::kScatter};
  for (const int n : {2, 3, 5, 8, 13, 16}) {
    for (const RingOrder& order : {RingOrder::identity(n), scrambled_order(n)}) {
      for (const CollectiveKind kind : kinds) {
        for (const int root : is_rooted(kind) ? std::vector<int>{0, n - 1}
                                              : std::vector<int>{0}) {
          for (int rank = 0; rank < n; ++rank) {
            SCOPED_TRACE(::testing::Message()
                         << coll::to_string(kind) << " n " << n << " rank "
                         << rank << " root " << root);
            const auto compiled =
                compile_all(kind, Algorithm::kRing, order, root, 8);
            expect_same_schedule(compiled[static_cast<std::size_t>(rank)].schedule,
                                 legacy_ring(kind, order, rank, root));
            if (!is_fixed_shape(kind)) {
              EXPECT_TRUE(compiled[static_cast<std::size_t>(rank)].is_ring);
              EXPECT_EQ(compiled[static_cast<std::size_t>(rank)].my_position,
                        order.position_of(rank));
            }
          }
        }
      }
    }
  }
}

TEST(CompilerLowering, TreeIsBitIdenticalToTreeBuilders) {
  for (const int n : {2, 3, 5, 8, 16, 17}) {
    for (const std::size_t kk : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const RingOrder id = RingOrder::identity(n);
      for (int rank = 0; rank < n; ++rank) {
        SCOPED_TRACE(::testing::Message() << "n " << n << " kk " << kk
                                          << " rank " << rank);
        const auto ar = compile_all(CollectiveKind::kAllReduce,
                                    Algorithm::kTree, id, 0, kk);
        expect_same_schedule(ar[static_cast<std::size_t>(rank)].schedule,
                             coll::build_tree_allreduce_schedule(n, rank, kk));
        const int root = (n - 1) / 2;
        const auto bc = compile_all(CollectiveKind::kBroadcast,
                                    Algorithm::kTree, id, root, kk);
        expect_same_schedule(bc[static_cast<std::size_t>(rank)].schedule,
                             coll::build_tree_broadcast_schedule(n, rank, root, kk));
        const auto rd = compile_all(CollectiveKind::kReduce, Algorithm::kTree,
                                    id, root, kk);
        expect_same_schedule(rd[static_cast<std::size_t>(rank)].schedule,
                             coll::build_tree_reduce_schedule(n, rank, root, kk));
      }
    }
  }
}

TEST(CompilerLowering, TreeScheduleIgnoresRingOrder) {
  // Trees operate in rank space: permuting the ring order must not change
  // the emitted schedule (only the flow edges and the hierarchy summary).
  const int n = 7;
  for (int rank = 0; rank < n; ++rank) {
    const auto a = compile_all(CollectiveKind::kAllReduce, Algorithm::kTree,
                               RingOrder::identity(n), 0, 4);
    const auto b = compile_all(CollectiveKind::kAllReduce, Algorithm::kTree,
                               scrambled_order(n), 0, 4);
    expect_same_schedule(a[static_cast<std::size_t>(rank)].schedule,
                         b[static_cast<std::size_t>(rank)].schedule);
  }
}

// --- tree_edges audit (the phantom-reduce-edge bugfix) ---------------------------

TEST(TreeEdgesAudit, AdvertisedEdgesMatchSchedulesForRanks2To64) {
  for (int n = 2; n <= 64; ++n) {
    std::vector<std::pair<CollectiveKind, int>> cases = {
        {CollectiveKind::kAllReduce, 0}};
    for (const int root : std::set<int>{0, 1 % n, n / 2}) {
      cases.emplace_back(CollectiveKind::kBroadcast, root);
      cases.emplace_back(CollectiveKind::kReduce, root);
    }
    for (const auto& [kind, root] : cases) {
      SCOPED_TRACE(::testing::Message() << coll::to_string(kind) << " n " << n
                                        << " root " << root);
      std::set<std::pair<int, int>> sched_edges;
      for (int rank = 0; rank < n; ++rank) {
        ChannelSchedule sched;
        switch (kind) {
          case CollectiveKind::kAllReduce:
            sched = coll::build_tree_allreduce_schedule(n, rank, 2);
            break;
          case CollectiveKind::kBroadcast:
            sched = coll::build_tree_broadcast_schedule(n, rank, root, 2);
            break;
          default:
            sched = coll::build_tree_reduce_schedule(n, rank, root, 2);
            break;
        }
        for (const CommStep& st : sched.steps) {
          if (st.has_send()) sched_edges.insert({rank, st.send_to});
        }
      }
      const auto advertised = coll::tree_edges(n, root, kind);
      const std::set<std::pair<int, int>> adv_set(advertised.begin(),
                                                  advertised.end());
      ASSERT_EQ(adv_set.size(), advertised.size()) << "duplicate edges";
      ASSERT_EQ(adv_set, sched_edges);
    }
  }
}

// --- algorithm-choice pass -------------------------------------------------------

TEST(AlgorithmChoice, TreeWinsSmallAllReduceRingWinsLarge) {
  const coll::CostParams p;  // defaults: alpha 20us, beta 8e-11 s/B
  EXPECT_EQ(coll::choose_algorithm(CollectiveKind::kAllReduce, 8, 4 * 1024, p),
            Algorithm::kTree);
  EXPECT_EQ(coll::choose_algorithm(CollectiveKind::kAllReduce, 8,
                                   Bytes{256} << 20, p),
            Algorithm::kRing);
  // The measured win the selection claims: at the small point the tree's
  // modelled time must strictly beat the ring's.
  EXPECT_LT(coll::algorithm_cost(Algorithm::kTree, CollectiveKind::kAllReduce,
                                 8, 4 * 1024, p),
            coll::algorithm_cost(Algorithm::kRing, CollectiveKind::kAllReduce,
                                 8, 4 * 1024, p));
  // One crossover: once the ring wins, larger payloads never flip back.
  bool ring_seen = false;
  for (Bytes b = 1024; b <= (Bytes{1} << 30); b *= 2) {
    const Algorithm a =
        coll::choose_algorithm(CollectiveKind::kAllReduce, 8, b, p);
    if (a == Algorithm::kRing) ring_seen = true;
    if (ring_seen) EXPECT_EQ(a, Algorithm::kRing) << "bytes " << b;
  }
  // AllGather has no latency-optimal variant in the search space: ring always.
  for (Bytes b : {Bytes{1024}, Bytes{1} << 20, Bytes{1} << 28}) {
    EXPECT_EQ(coll::choose_algorithm(CollectiveKind::kAllGather, 8, b, p),
              Algorithm::kRing);
  }
}

TEST(AlgorithmChoice, SearchSpacePerKind) {
  using K = CollectiveKind;
  auto algos = [](K k) { return coll::selectable_algorithms(k); };
  EXPECT_EQ(algos(K::kAllReduce).size(), 4u);
  EXPECT_EQ(algos(K::kBroadcast).size(), 4u);
  EXPECT_EQ(algos(K::kReduce).size(), 3u);
  EXPECT_EQ(algos(K::kAllGather),
            (std::vector<Algorithm>{Algorithm::kRing, Algorithm::kPairwise}));
  EXPECT_EQ(algos(K::kReduceScatter),
            (std::vector<Algorithm>{Algorithm::kRing, Algorithm::kPairwise}));
  EXPECT_EQ(algos(K::kAllToAll), (std::vector<Algorithm>{Algorithm::kRing}));
  EXPECT_EQ(algos(K::kGather), (std::vector<Algorithm>{Algorithm::kRing}));
  EXPECT_EQ(algos(K::kScatter), (std::vector<Algorithm>{Algorithm::kRing}));
  // Every selectable algorithm must be in first position exactly when it is
  // the default (ties break to kRing).
  for (const K k : {K::kAllReduce, K::kAllGather, K::kBroadcast, K::kReduce}) {
    EXPECT_EQ(algos(k).front(), Algorithm::kRing);
  }
}

TEST(CompilerFingerprint, DistinguishesPlanShapingKnobs) {
  EXPECT_EQ(coll::compiler_fingerprint(8), coll::compiler_fingerprint(8));
  EXPECT_NE(coll::compiler_fingerprint(1), coll::compiler_fingerprint(8));
  EXPECT_NE(coll::compiler_fingerprint(3), coll::compiler_fingerprint(4));
}

// --- hierarchy summary -----------------------------------------------------------

TEST(CompilerHierarchy, CountsHostsAndCrossHostRingEdges) {
  const std::vector<int> hosts = {0, 0, 1, 1};
  {
    // Locality order: host runs are contiguous => 2 crossings.
    const auto c = compile_all(CollectiveKind::kAllReduce, Algorithm::kRing,
                               RingOrder::identity(4), 0, 8, &hosts);
    EXPECT_EQ(c[0].hierarchy.nhosts, 2);
    EXPECT_EQ(c[0].hierarchy.cross_host_ring_edges, 2);
  }
  {
    // Host-alternating order 0,2,1,3: every ring hop crosses hosts.
    const RingOrder alt(std::vector<int>{0, 2, 1, 3});
    const auto c = compile_all(CollectiveKind::kAllReduce, Algorithm::kRing,
                               alt, 0, 8, &hosts);
    EXPECT_EQ(c[0].hierarchy.nhosts, 2);
    EXPECT_EQ(c[0].hierarchy.cross_host_ring_edges, 4);
  }
}

// --- end-to-end through the MCCS service -----------------------------------------

svc::CommStrategy algo_strategy(const std::vector<GpuId>& gpus,
                                const cluster::Cluster& cl, Algorithm algo,
                                std::size_t chunks) {
  svc::CommStrategy s = svc::nccl_default_strategy(gpus, cl);
  s.algorithm = algo;
  s.tree_pipeline_chunks = chunks;
  return s;
}

struct ServiceCase {
  Algorithm algo;
  int n;
};

class CompiledServiceP : public ::testing::TestWithParam<ServiceCase> {};

TEST_P(CompiledServiceP, AllReduceNumericallyCorrect) {
  const auto [algo, n] = GetParam();
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric, algo = algo](const svc::CommInfo& info) {
    return algo_strategy(info.gpus, fabric.cluster(), algo, 4);
  });
  AppId app{1};
  std::vector<GpuId> gpus;
  for (int r = 0; r < n; ++r)
    gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 999;  // not divisible by chunks or channels
  std::vector<gpu::DevicePtr> buf(gpus.size());
  std::vector<float> expected(count, 0.0f);
  for (int r = 0; r < n; ++r) {
    buf[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_reduce(comm, buf[static_cast<std::size_t>(r)],
                        buf[static_cast<std::size_t>(r)], count,
                        coll::DataType::kFloat32, coll::ReduceOp::kSum,
                        *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], expected[i]) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CompiledServiceP,
    ::testing::Values(ServiceCase{Algorithm::kDoubleBinaryTree, 2},
                      ServiceCase{Algorithm::kDoubleBinaryTree, 3},
                      ServiceCase{Algorithm::kDoubleBinaryTree, 5},
                      ServiceCase{Algorithm::kDoubleBinaryTree, 8},
                      ServiceCase{Algorithm::kPairwise, 2},
                      ServiceCase{Algorithm::kPairwise, 3},
                      ServiceCase{Algorithm::kPairwise, 5},
                      ServiceCase{Algorithm::kPairwise, 8}));

TEST(CompiledService, DbtBroadcastFromNonZeroRoot) {
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return algo_strategy(info.gpus, fabric.cluster(),
                         Algorithm::kDoubleBinaryTree, 3);
  });
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6},
                                GpuId{7}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 501;
  const int root = 3;
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[r], count, static_cast<int>(r));
  }
  std::vector<float> root_data;
  {
    auto s = fabric.gpus().typed<float>(buf[root], count);
    root_data.assign(s.begin(), s.end());
  }
  int remaining = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->broadcast(comm, buf[r], buf[r], count,
                             coll::DataType::kFloat32, root, *ranks[r].stream,
                             [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], root_data[i]) << "rank " << r << " elem " << i;
    }
  }
}

TEST(CompiledService, PairwiseRootedAndScatteredKinds) {
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return algo_strategy(info.gpus, fabric.cluster(), Algorithm::kPairwise, 4);
  });
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const int n = static_cast<int>(gpus.size());
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 96;

  // Reduce to a non-zero root (star reduce).
  std::vector<gpu::DevicePtr> rbuf(gpus.size()), rout(gpus.size());
  std::vector<float> rsum(count, 0.0f);
  for (int r = 0; r < n; ++r) {
    rbuf[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    rout[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, rbuf[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(rbuf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) rsum[i] += s[i];
  }
  const int root = 2;
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->reduce(comm, rbuf[static_cast<std::size_t>(r)],
                    rout[static_cast<std::size_t>(r)], count,
                    coll::DataType::kFloat32, coll::ReduceOp::kSum, root,
                    *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  {
    auto out = fabric.gpus().typed<float>(rout[root], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], rsum[i]) << "elem " << i;
    }
  }

  // ReduceScatter then AllGather over the pairwise mesh round-trips.
  const std::size_t per = 64;
  std::vector<gpu::DevicePtr> send(gpus.size()), part(gpus.size()),
      full(gpus.size());
  for (int r = 0; r < n; ++r) {
    send[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)]
                                            .shim->alloc(static_cast<std::size_t>(n) *
                                                         per * sizeof(float));
    part[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(per * sizeof(float));
    full[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)]
                                            .shim->alloc(static_cast<std::size_t>(n) *
                                                         per * sizeof(float));
    test::fill_pattern<float>(fabric, send[static_cast<std::size_t>(r)],
                              static_cast<std::size_t>(n) * per, 100 + r);
  }
  std::vector<std::vector<float>> expected_parts(
      static_cast<std::size_t>(n), std::vector<float>(per, 0.0f));
  for (int b = 0; b < n; ++b) {
    for (int r = 0; r < n; ++r) {
      auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)],
                                          static_cast<std::size_t>(n) * per);
      for (std::size_t i = 0; i < per; ++i) {
        expected_parts[static_cast<std::size_t>(b)][i] +=
            s[static_cast<std::size_t>(b) * per + i];
      }
    }
  }
  remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->reduce_scatter(comm, send[static_cast<std::size_t>(r)],
                            part[static_cast<std::size_t>(r)], per,
                            coll::DataType::kFloat32, coll::ReduceOp::kSum,
                            *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(part[static_cast<std::size_t>(r)], per);
    for (std::size_t i = 0; i < per; ++i) {
      ASSERT_FLOAT_EQ(out[i], expected_parts[static_cast<std::size_t>(r)][i])
          << "rank " << r << " elem " << i;
    }
  }
  remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_gather(comm, part[static_cast<std::size_t>(r)],
                        full[static_cast<std::size_t>(r)], per,
                        coll::DataType::kFloat32, *rk.stream,
                        [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(full[static_cast<std::size_t>(r)],
                                          static_cast<std::size_t>(n) * per);
    for (int b = 0; b < n; ++b) {
      for (std::size_t i = 0; i < per; ++i) {
        ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(b) * per + i],
                        expected_parts[static_cast<std::size_t>(b)][i])
            << "rank " << r << " block " << b << " elem " << i;
      }
    }
  }
}

TEST(CompiledService, SeventeenRankAllReduce) {
  // A communicator larger than any single host, on a fabric with 18 GPUs:
  // both compiler-only algorithms must survive a prime, >16 rank count.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 2;
  spec.num_leaves = 3;
  spec.hosts_per_leaf = 2;
  spec.gpus_per_host = 3;
  spec.nics_per_host = 3;
  for (const Algorithm algo :
       {Algorithm::kDoubleBinaryTree, Algorithm::kPairwise}) {
    svc::Fabric fabric{cluster::make_spine_leaf(spec)};
    fabric.set_strategy_provider([&fabric, algo](const svc::CommInfo& info) {
      return algo_strategy(info.gpus, fabric.cluster(), algo, 4);
    });
    AppId app{1};
    std::vector<GpuId> gpus;
    for (int r = 0; r < 17; ++r)
      gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
    const CommId comm = test::create_comm(fabric, app, gpus);
    auto ranks = test::make_ranks(fabric, app, gpus);
    const std::size_t count = 257;
    std::vector<gpu::DevicePtr> buf(gpus.size());
    std::vector<float> expected(count, 0.0f);
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
      test::fill_pattern<float>(fabric, buf[r], count, static_cast<int>(r));
      auto s = fabric.gpus().typed<float>(buf[r], count);
      for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
    }
    int remaining = static_cast<int>(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count,
                                coll::DataType::kFloat32, coll::ReduceOp::kSum,
                                *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
    ASSERT_TRUE(test::await(fabric, remaining));
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      auto out = fabric.gpus().typed<float>(buf[r], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_FLOAT_EQ(out[i], expected[i])
            << coll::algorithm_name(algo) << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(CompiledService, SingleRankShortCircuits) {
  // nranks == 1 never reaches the compiler: the collective is a local copy.
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return algo_strategy(info.gpus, fabric.cluster(), Algorithm::kPairwise, 4);
  });
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{3}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 64;
  auto send = ranks[0].shim->alloc(count * sizeof(float));
  auto recv = ranks[0].shim->alloc(count * sizeof(float));
  test::fill_pattern<float>(fabric, send, count, 9);
  int remaining = 1;
  ranks[0].shim->all_reduce(comm, send, recv, count, coll::DataType::kFloat32,
                            coll::ReduceOp::kSum, *ranks[0].stream,
                            [&remaining](Time) { --remaining; });
  ASSERT_TRUE(test::await(fabric, remaining));
  auto in = fabric.gpus().typed<float>(send, count);
  auto out = fabric.gpus().typed<float>(recv, count);
  for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], in[i]);
}

}  // namespace
}  // namespace mccs
