// Error-path tests: the MCCS service is the multi-tenant trust boundary, so
// misuse — bad rendezvous, invalid buffers, stale control commands,
// lifecycle violations — must fail loudly and deterministically.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using svc::Fabric;
using test::create_comm;
using test::make_ranks;

struct MisuseFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
};

TEST_F(MisuseFixture, SameRankJoiningRendezvousTwiceThrows) {
  const svc::UniqueId uid = fabric.new_unique_id();
  fabric.connect(app, GpuId{0}).comm_init_rank(uid, 2, 0, {});
  fabric.connect(app, GpuId{2}).comm_init_rank(uid, 2, 0, {});
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, DisagreeingCommunicatorSizeThrows) {
  const svc::UniqueId uid = fabric.new_unique_id();
  fabric.connect(app, GpuId{0}).comm_init_rank(uid, 2, 0, {});
  fabric.connect(app, GpuId{2}).comm_init_rank(uid, 3, 1, {});
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, CommunicatorSpanningTwoAppsThrows) {
  const svc::UniqueId uid = fabric.new_unique_id();
  fabric.connect(AppId{1}, GpuId{0}).comm_init_rank(uid, 2, 0, {});
  fabric.connect(AppId{2}, GpuId{2}).comm_init_rank(uid, 2, 1, {});
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, ZeroCountCollectiveIsRejected) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  gpu::DevicePtr buf = ranks[0].shim->alloc(64);
  ranks[0].shim->all_reduce(comm, buf, buf, 0, coll::DataType::kFloat32,
                            coll::ReduceOp::kSum, *ranks[0].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, OutOfBoundsBufferRangeIsRejected) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  // 64-byte allocation cannot back a 32-element float AllReduce.
  gpu::DevicePtr small = ranks[0].shim->alloc(64);
  ranks[0].shim->all_reduce(comm, small, small, 32, coll::DataType::kFloat32,
                            coll::ReduceOp::kSum, *ranks[0].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, OffsetBeyondAllocationIsRejected) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  gpu::DevicePtr buf = ranks[0].shim->alloc(256);
  // Offset pushes the 32-element range past the 256-byte allocation.
  ranks[0].shim->all_reduce(comm, buf.at_offset(192), buf.at_offset(192), 32,
                            coll::DataType::kFloat32, coll::ReduceOp::kSum,
                            *ranks[0].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, AnotherTenantsBufferIsRejected) {
  // App 2's collective naming app 1's allocation must be refused: frontends
  // keep per-application allocation registries.
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm_b = create_comm(fabric, AppId{2}, gpus);
  gpu::DevicePtr stolen = fabric.connect(AppId{1}, GpuId{0}).alloc(1024);
  svc::Shim& shim_b = fabric.connect(AppId{2}, GpuId{0});
  gpu::Stream& stream = shim_b.create_app_stream();
  shim_b.all_reduce(comm_b, stolen, stolen, 16, coll::DataType::kFloat32,
                    coll::ReduceOp::kSum, stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, DoubleFreeThrows) {
  svc::Shim& shim = fabric.connect(app, GpuId{0});
  gpu::DevicePtr buf = shim.alloc(64);
  shim.free(buf);
  EXPECT_THROW(shim.free(buf), ContractViolation);
}

TEST_F(MisuseFixture, FreeingAtNonZeroOffsetThrows) {
  svc::Shim& shim = fabric.connect(app, GpuId{0});
  gpu::DevicePtr buf = shim.alloc(64);
  EXPECT_THROW(shim.free(buf.at_offset(8)), ContractViolation);
}

TEST_F(MisuseFixture, CollectiveOnWrongGpuStreamThrows) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  svc::Shim& shim0 = fabric.connect(app, GpuId{0});
  svc::Shim& shim1 = fabric.connect(app, GpuId{2});
  gpu::Stream& wrong_stream = shim1.create_app_stream();  // GPU 2's stream
  gpu::DevicePtr buf = shim0.alloc(64);
  EXPECT_THROW(shim0.all_reduce(comm, buf, buf, 16, coll::DataType::kFloat32,
                                coll::ReduceOp::kSum, wrong_stream),
               ContractViolation);
}

TEST_F(MisuseFixture, DestroyWithOutstandingCollectivesThrows) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  gpu::DevicePtr buf = ranks[0].shim->alloc(1024);
  // Only rank 0 issues: the collective can never complete.
  ranks[0].shim->all_reduce(comm, buf, buf, 256, coll::DataType::kFloat32,
                            coll::ReduceOp::kSum, *ranks[0].stream);
  ranks[0].shim->comm_destroy(comm);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(MisuseFixture, StaleReconfigurationRoundIsRejected) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  const svc::CommStrategy strategy = fabric.strategy_of(comm);
  fabric.reconfigure(comm, strategy);
  fabric.loop().run();
  // Re-delivering round 1 by hand must be rejected as stale.
  EXPECT_THROW(
      fabric.proxy_for(GpuId{0}).request_reconfigure(comm, 1, strategy),
      ContractViolation);
}

TEST_F(MisuseFixture, ConnectRejectsGpuOnAnotherHost) {
  // Service of host 0 cannot hand out a shim for host 1's GPU.
  EXPECT_THROW(fabric.service(HostId{0}).connect(app, GpuId{2}),
               ContractViolation);
}

TEST_F(MisuseFixture, GpuMemoryIsolationIsEnforced) {
  // Timing-only allocations refuse byte access (defence against benches
  // silently reading unmaterialized memory).
  svc::Fabric::Options options;
  options.gpu_config.materialize_memory = false;
  Fabric f2{cluster::make_testbed(), options};
  gpu::DevicePtr p = f2.gpus().gpu(GpuId{0}).allocate(64);
  EXPECT_THROW(f2.gpus().gpu(GpuId{0}).bytes(p, 64), ContractViolation);
  EXPECT_EQ(f2.gpus().gpu(GpuId{0}).mem_size(p.mem), 64u);
}

}  // namespace
}  // namespace mccs
