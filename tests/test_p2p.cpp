// Tests of point-to-point send/recv through the service (§5): rendezvous
// matching, ordering, cross- and intra-host transfers, and independence from
// the collective sequence space (P2P neither gates nor is gated by
// reconfigurations).

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::DataType;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct P2pFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{4}};  // 2 hosts
  CommId comm;
  std::vector<test::RankCtx> ranks;

  void SetUp() override {
    comm = create_comm(fabric, app, gpus);
    ranks = make_ranks(fabric, app, gpus);
  }

  gpu::DevicePtr filled(int rank, std::size_t count, int salt) {
    gpu::DevicePtr p =
        ranks[static_cast<std::size_t>(rank)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, p, count, rank, salt);
    return p;
  }
};

TEST_F(P2pFixture, CrossHostSendRecvDeliversBytes) {
  const std::size_t count = 777;
  gpu::DevicePtr src = filled(0, count, 1);
  gpu::DevicePtr dst = ranks[2].shim->alloc(count * sizeof(float));
  int remaining = 2;
  ranks[0].shim->send(comm, 2, src, count, DataType::kFloat32, *ranks[0].stream,
                      [&](Time) { --remaining; });
  ranks[2].shim->recv(comm, 0, dst, count, DataType::kFloat32, *ranks[2].stream,
                      [&](Time) { --remaining; });
  ASSERT_TRUE(await(fabric, remaining));
  auto in = fabric.gpus().typed<float>(src, count);
  auto out = fabric.gpus().typed<float>(dst, count);
  for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], in[i]);
}

TEST_F(P2pFixture, IntraHostSendRecvDeliversBytes) {
  const std::size_t count = 128;
  gpu::DevicePtr src = filled(0, count, 2);
  gpu::DevicePtr dst = ranks[1].shim->alloc(count * sizeof(float));
  int remaining = 2;
  ranks[0].shim->send(comm, 1, src, count, DataType::kFloat32, *ranks[0].stream,
                      [&](Time) { --remaining; });
  ranks[1].shim->recv(comm, 0, dst, count, DataType::kFloat32, *ranks[1].stream,
                      [&](Time) { --remaining; });
  ASSERT_TRUE(await(fabric, remaining));
  auto in = fabric.gpus().typed<float>(src, count);
  auto out = fabric.gpus().typed<float>(dst, count);
  for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], in[i]);
}

TEST_F(P2pFixture, RecvPostedBeforeSendStillMatches) {
  const std::size_t count = 64;
  gpu::DevicePtr dst = ranks[2].shim->alloc(count * sizeof(float));
  int remaining = 2;
  // Recv first; send issued much later.
  ranks[2].shim->recv(comm, 0, dst, count, DataType::kFloat32, *ranks[2].stream,
                      [&](Time) { --remaining; });
  gpu::DevicePtr src = filled(0, count, 3);
  fabric.loop().schedule_at(millis(20), [&] {
    ranks[0].shim->send(comm, 2, src, count, DataType::kFloat32,
                        *ranks[0].stream, [&](Time) { --remaining; });
  });
  ASSERT_TRUE(await(fabric, remaining));
  auto in = fabric.gpus().typed<float>(src, count);
  auto out = fabric.gpus().typed<float>(dst, count);
  for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], in[i]);
}

TEST_F(P2pFixture, MultipleSendsMatchRecvsInOrder) {
  const std::size_t count = 16;
  std::vector<gpu::DevicePtr> srcs, dsts;
  int remaining = 0;
  for (int k = 0; k < 5; ++k) {
    srcs.push_back(filled(0, count, 100 + k));
    dsts.push_back(ranks[2].shim->alloc(count * sizeof(float)));
    remaining += 2;
  }
  // Interleave issue order: all sends, then all recvs.
  for (int k = 0; k < 5; ++k) {
    ranks[0].shim->send(comm, 2, srcs[static_cast<std::size_t>(k)], count,
                        DataType::kFloat32, *ranks[0].stream,
                        [&](Time) { --remaining; });
  }
  for (int k = 0; k < 5; ++k) {
    ranks[2].shim->recv(comm, 0, dsts[static_cast<std::size_t>(k)], count,
                        DataType::kFloat32, *ranks[2].stream,
                        [&](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int k = 0; k < 5; ++k) {
    auto in = fabric.gpus().typed<float>(srcs[static_cast<std::size_t>(k)], count);
    auto out = fabric.gpus().typed<float>(dsts[static_cast<std::size_t>(k)], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], in[i]) << "pair " << k;
    }
  }
}

TEST_F(P2pFixture, BidirectionalExchange) {
  // Send and recv on separate streams per rank — the standard pattern for a
  // bidirectional exchange (on one stream, the recv's dependency chain would
  // wait for the send's completion event, the classic unpaired deadlock).
  const std::size_t count = 32;
  gpu::DevicePtr a_out = filled(0, count, 7);
  gpu::DevicePtr c_out = filled(2, count, 9);
  gpu::DevicePtr a_in = ranks[0].shim->alloc(count * sizeof(float));
  gpu::DevicePtr c_in = ranks[2].shim->alloc(count * sizeof(float));
  gpu::Stream& a_recv_stream = ranks[0].shim->create_app_stream();
  gpu::Stream& c_recv_stream = ranks[2].shim->create_app_stream();
  int remaining = 4;
  auto cb = [&](Time) { --remaining; };
  ranks[0].shim->send(comm, 2, a_out, count, DataType::kFloat32, *ranks[0].stream, cb);
  ranks[0].shim->recv(comm, 2, a_in, count, DataType::kFloat32, a_recv_stream, cb);
  ranks[2].shim->send(comm, 0, c_out, count, DataType::kFloat32, *ranks[2].stream, cb);
  ranks[2].shim->recv(comm, 0, c_in, count, DataType::kFloat32, c_recv_stream, cb);
  ASSERT_TRUE(await(fabric, remaining));
  auto ao = fabric.gpus().typed<float>(a_out, count);
  auto ci = fabric.gpus().typed<float>(c_in, count);
  auto co = fabric.gpus().typed<float>(c_out, count);
  auto ai = fabric.gpus().typed<float>(a_in, count);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_FLOAT_EQ(ci[i], ao[i]);
    ASSERT_FLOAT_EQ(ai[i], co[i]);
  }
}

TEST_F(P2pFixture, MismatchedSizesAreRejected) {
  gpu::DevicePtr src = filled(0, 64, 1);
  gpu::DevicePtr dst = ranks[2].shim->alloc(32 * sizeof(float));
  ranks[0].shim->send(comm, 2, src, 64, DataType::kFloat32, *ranks[0].stream);
  ranks[2].shim->recv(comm, 0, dst, 32, DataType::kFloat32, *ranks[2].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(P2pFixture, P2pDoesNotBlockReconfiguration) {
  // An unmatched recv is outstanding; a reconfiguration must still complete
  // (P2P is outside the collective sequence space).
  gpu::DevicePtr dst = ranks[2].shim->alloc(64 * sizeof(float));
  int remaining = 2;
  ranks[2].shim->recv(comm, 0, dst, 64, DataType::kFloat32, *ranks[2].stream,
                      [&](Time) { --remaining; });
  svc::CommStrategy rev = fabric.strategy_of(comm);
  for (auto& o : rev.channel_orders) o = o.reversed();
  const svc::CommStrategy target = rev;
  fabric.reconfigure(comm, std::move(rev));
  fabric.loop().run();
  EXPECT_TRUE(fabric.proxy_for(gpus[0]).strategy(comm) == target);
  // Now complete the P2P pair under the new configuration.
  gpu::DevicePtr src = filled(0, 64, 4);
  ranks[0].shim->send(comm, 2, src, 64, DataType::kFloat32, *ranks[0].stream,
                      [&](Time) { --remaining; });
  ASSERT_TRUE(await(fabric, remaining));
}

TEST_F(P2pFixture, SendToSelfIsRejected) {
  gpu::DevicePtr buf = filled(0, 16, 1);
  ranks[0].shim->send(comm, 0, buf, 16, DataType::kFloat32, *ranks[0].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

}  // namespace
}  // namespace mccs
