// Failure-injection tests: the service must fail loudly — or degrade to a
// quiescent, recoverable state — under control-plane and tenant failures, and a
// failing tenant must never affect another tenant's traffic.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct FailureFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  CommId comm;
  std::vector<test::RankCtx> ranks;
  std::vector<gpu::DevicePtr> buf;
  std::size_t count = 512;

  void SetUp() override {
    comm = create_comm(fabric, app, gpus);
    ranks = make_ranks(fabric, app, gpus);
    buf.resize(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
      auto s = fabric.gpus().typed<float>(buf[r], count);
      for (auto& x : s) x = 1.0f;
    }
  }

  void issue_round(int& remaining) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
  }
};

TEST_F(FailureFixture, PartialReconfigDeliveryQuiescesAndLateDeliveryRecovers) {
  // The controller crashes after delivering the command to 3 of 4 ranks:
  // those ranks contribute to the barrier and hold new launches; the system
  // quiesces (no corruption, no spin). Re-delivering to the last rank later
  // (the restarted controller) completes the barrier and everything held
  // drains correctly.
  svc::CommStrategy rev = fabric.strategy_of(comm);
  for (auto& o : rev.channel_orders) o = o.reversed();

  int r1 = 4;
  issue_round(r1);
  // Inject: rank 3's command delayed "forever" (far beyond the test window).
  fabric.reconfigure(comm, rev, {0.0, 0.0, 0.0, seconds(10.0)});
  int r2 = 4;
  issue_round(r2);

  // With the command racing the issues, the ranks that saw it hold every
  // launch until the barrier completes — which needs rank 3's contribution.
  // The system quiesces: nothing completes, nothing corrupts, no spinning.
  fabric.loop().run_until(seconds(1.0));
  EXPECT_GT(r1 + r2, 0) << "collectives completed before the barrier";
  for (GpuId g : gpus) {
    if (g == gpus[3]) continue;
    EXPECT_TRUE(fabric.proxy_for(g).reconfig_in_progress(comm));
  }

  // Late delivery at t=10 s (the restarted controller) recovers everything.
  ASSERT_TRUE(fabric.loop().run_while_pending(
      [&] { return r1 == 0 && r2 == 0; }));
  fabric.loop().run();
  for (GpuId g : gpus) {
    EXPECT_FALSE(fabric.proxy_for(g).reconfig_in_progress(comm));
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == rev);
  }
  // Sums: two rounds of x4.
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 16.0f);
  }
}

TEST_F(FailureFixture, StalledTenantDoesNotAffectOtherTenants) {
  // Tenant A wedges itself (rank 0 never issues); tenant B shares the same
  // hosts and links and must be completely unaffected.
  int a_remaining = 3;
  for (std::size_t r = 1; r < gpus.size(); ++r) {  // rank 0 missing!
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&a_remaining](Time) { --a_remaining; });
  }

  const AppId app_b{2};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  const CommId comm_b = create_comm(fabric, app_b, gpus_b);
  auto ranks_b = make_ranks(fabric, app_b, gpus_b);
  std::vector<gpu::DevicePtr> buf_b(4);
  std::vector<float> expected(count, 0.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf_b[r], count, static_cast<int>(r));
    auto s = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int b_remaining = 4;
  for (std::size_t r = 0; r < 4; ++r) {
    ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_b[r].stream,
                                [&b_remaining](Time) { --b_remaining; });
  }
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return b_remaining == 0; }));
  EXPECT_EQ(a_remaining, 3);  // A is still wedged...
  for (std::size_t r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
}

TEST_F(FailureFixture, TenantFreeingBufferMidCollectiveFailsLoudly) {
  // A buggy tenant frees a buffer while its collective is still in flight:
  // the service must detect the dangling access, not silently corrupt.
  int remaining = 4;
  issue_round(remaining);
  ranks[0].shim->free(buf[0]);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(FailureFixture, ReconfigDuringDrainToleratesSlowRanks) {
  // One rank's app thread is descheduled (its issues arrive very late);
  // reconfigurations interleaved with its catch-up still preserve sums.
  int r1 = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&r1](Time) { --r1; });
  }
  svc::CommStrategy rev = fabric.strategy_of(comm);
  for (auto& o : rev.channel_orders) o = o.reversed();
  fabric.reconfigure(comm, rev);
  // Rank 3 wakes up 5 ms later and issues its half of the collective.
  int r1_last = 1;
  fabric.loop().schedule_at(millis(5), [&] {
    ranks[3].shim->all_reduce(comm, buf[3], buf[3], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[3].stream,
                              [&r1_last](Time) { --r1_last; });
  });
  ASSERT_TRUE(fabric.loop().run_while_pending(
      [&] { return r1 == 0 && r1_last == 0; }));
  fabric.loop().run();
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 4.0f);
  }
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == rev);
  }
}

}  // namespace
}  // namespace mccs
