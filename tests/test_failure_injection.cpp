// Failure-injection tests: the service must fail loudly — or degrade to a
// quiescent, recoverable state — under control-plane and tenant failures, and a
// failing tenant must never affect another tenant's traffic.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/fault_plan.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct FailureFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  CommId comm;
  std::vector<test::RankCtx> ranks;
  std::vector<gpu::DevicePtr> buf;
  std::size_t count = 512;

  void SetUp() override {
    comm = create_comm(fabric, app, gpus);
    ranks = make_ranks(fabric, app, gpus);
    buf.resize(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
      auto s = fabric.gpus().typed<float>(buf[r], count);
      for (auto& x : s) x = 1.0f;
    }
  }

  void issue_round(int& remaining) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
  }
};

TEST_F(FailureFixture, PartialReconfigDeliveryQuiescesAndLateDeliveryRecovers) {
  // The controller crashes after delivering the command to 3 of 4 ranks:
  // those ranks contribute to the barrier and hold new launches; the system
  // quiesces (no corruption, no spin). Re-delivering to the last rank later
  // (the restarted controller) completes the barrier and everything held
  // drains correctly.
  svc::CommStrategy rev = fabric.strategy_of(comm);
  for (auto& o : rev.channel_orders) o = o.reversed();

  int r1 = 4;
  issue_round(r1);
  // Inject: rank 3's command delayed "forever" (far beyond the test window).
  fabric.reconfigure(comm, rev, {0.0, 0.0, 0.0, seconds(10.0)});
  int r2 = 4;
  issue_round(r2);

  // With the command racing the issues, the ranks that saw it hold every
  // launch until the barrier completes — which needs rank 3's contribution.
  // The system quiesces: nothing completes, nothing corrupts, no spinning.
  fabric.loop().run_until(seconds(1.0));
  EXPECT_GT(r1 + r2, 0) << "collectives completed before the barrier";
  for (GpuId g : gpus) {
    if (g == gpus[3]) continue;
    EXPECT_TRUE(fabric.proxy_for(g).reconfig_in_progress(comm));
  }

  // Late delivery at t=10 s (the restarted controller) recovers everything.
  ASSERT_TRUE(fabric.loop().run_while_pending(
      [&] { return r1 == 0 && r2 == 0; }));
  fabric.loop().run();
  for (GpuId g : gpus) {
    EXPECT_FALSE(fabric.proxy_for(g).reconfig_in_progress(comm));
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == rev);
  }
  // Sums: two rounds of x4.
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 16.0f);
  }
}

TEST_F(FailureFixture, StalledTenantDoesNotAffectOtherTenants) {
  // Tenant A wedges itself (rank 0 never issues); tenant B shares the same
  // hosts and links and must be completely unaffected.
  int a_remaining = 3;
  for (std::size_t r = 1; r < gpus.size(); ++r) {  // rank 0 missing!
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&a_remaining](Time) { --a_remaining; });
  }

  const AppId app_b{2};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  const CommId comm_b = create_comm(fabric, app_b, gpus_b);
  auto ranks_b = make_ranks(fabric, app_b, gpus_b);
  std::vector<gpu::DevicePtr> buf_b(4);
  std::vector<float> expected(count, 0.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf_b[r], count, static_cast<int>(r));
    auto s = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int b_remaining = 4;
  for (std::size_t r = 0; r < 4; ++r) {
    ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_b[r].stream,
                                [&b_remaining](Time) { --b_remaining; });
  }
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return b_remaining == 0; }));
  EXPECT_EQ(a_remaining, 3);  // A is still wedged...
  for (std::size_t r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
}

TEST_F(FailureFixture, TenantFreeingBufferMidCollectiveFailsLoudly) {
  // A buggy tenant frees a buffer while its collective is still in flight:
  // the service must detect the dangling access, not silently corrupt.
  int remaining = 4;
  issue_round(remaining);
  ranks[0].shim->free(buf[0]);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(FailureFixture, ReconfigDuringDrainToleratesSlowRanks) {
  // One rank's app thread is descheduled (its issues arrive very late);
  // reconfigurations interleaved with its catch-up still preserve sums.
  int r1 = 3;
  for (std::size_t r = 0; r < 3; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&r1](Time) { --r1; });
  }
  svc::CommStrategy rev = fabric.strategy_of(comm);
  for (auto& o : rev.channel_orders) o = o.reversed();
  fabric.reconfigure(comm, rev);
  // Rank 3 wakes up 5 ms later and issues its half of the collective.
  int r1_last = 1;
  fabric.loop().schedule_at(millis(5), [&] {
    ranks[3].shim->all_reduce(comm, buf[3], buf[3], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[3].stream,
                              [&r1_last](Time) { --r1_last; });
  });
  ASSERT_TRUE(fabric.loop().run_while_pending(
      [&] { return r1 == 0 && r1_last == 0; }));
  fabric.loop().run();
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 4.0f);
  }
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == rev);
  }
}

// --- link failure, detection, and recovery ----------------------------------------

/// Fabric options with transport stall detection on. Tests opt in; the
/// default config keeps detection off so healthy-path results stay
/// byte-identical.
svc::Fabric::Options detection_options() {
  svc::Fabric::Options opt;
  opt.config.chunk_deadline_slack = 4.0;
  opt.config.chunk_deadline_floor = micros(100);
  return opt;
}

/// First leaf->spine link of the testbed fabric (rack 0's first uplink):
/// cross-rack traffic ECMP-hashes over it or its sibling, so killing it
/// leaves path diversity for re-hash recovery.
LinkId first_fabric_uplink(const cluster::Cluster& cl) {
  const net::Topology& topo = cl.topology();
  const NodeId nic0 = cl.host(HostId{0}).nic_nodes[0];
  const NodeId leaf = topo.link(topo.out_links(nic0).front()).dst;
  for (LinkId l : topo.out_links(leaf)) {
    if (topo.node(topo.link(l).dst).kind == net::NodeKind::kSpineSwitch) {
      return l;
    }
  }
  return LinkId{};
}

std::uint64_t total_retries(svc::Fabric& fabric) {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < fabric.cluster().host_count(); ++h) {
    const HostId host{static_cast<std::uint32_t>(h)};
    const auto& nics = fabric.cluster().host(host).nic_nodes;
    for (std::size_t nic = 0; nic < nics.size(); ++nic) {
      n += fabric.service(host).transport(static_cast<int>(nic)).stats().retries;
    }
  }
  return n;
}

std::uint64_t total_escalations(svc::Fabric& fabric) {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < fabric.cluster().host_count(); ++h) {
    const HostId host{static_cast<std::uint32_t>(h)};
    const auto& nics = fabric.cluster().host(host).nic_nodes;
    for (std::size_t nic = 0; nic < nics.size(); ++nic) {
      n += fabric.service(host)
               .transport(static_cast<int>(nic))
               .stats()
               .escalations;
    }
  }
  return n;
}

TEST(FaultRecovery, MidCollectiveLinkDownRecoversViaEcmpRehash) {
  // A fabric link dies while an AllReduce is mid-flight. No controller is
  // attached: the transport's own deadline + ECMP re-hash ladder must move
  // the stalled chunks to the surviving spine and complete bit-correctly.
  Fabric fabric{cluster::make_testbed(), detection_options()};
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 1u << 20;  // 4 MiB: keeps transfers in flight
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    auto s = fabric.gpus().typed<float>(buf[r], count);
    for (auto& x : s) x = 1.0f;
  }
  int remaining = 4;
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }

  const LinkId victim = first_fabric_uplink(fabric.cluster());
  ASSERT_TRUE(victim.valid());
  workload::FaultPlan plan;
  plan.link_down(micros(300), victim);  // never restored
  plan.schedule(fabric);

  ASSERT_TRUE(await(fabric, remaining));
  EXPECT_GT(total_retries(fabric), 0u);
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 4.0f);
  }
}

TEST(FaultRecovery, HardLinkDownEscalatesAndControllerReconfigures) {
  // With retries exhausted immediately (max_retries = 0), the transport
  // escalates to the controller, which confirms the dead link against the
  // network state, reconfigures the communicator's explicit routes around
  // it (Fig.-4 barrier), and the workload keeps completing bit-correctly.
  svc::Fabric::Options opt = detection_options();
  opt.config.transport_max_retries = 0;
  Fabric fabric{cluster::make_testbed(), opt};
  policy::Controller controller(fabric);
  controller.attach();  // FFA explicit routes
  controller.enable_fault_recovery();

  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 1u << 20;
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    auto s = fabric.gpus().typed<float>(buf[r], count);
    for (auto& x : s) x = 1.0f;
  }
  auto issue_round = [&](int& rem) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&rem](Time) { --rem; });
    }
  };

  int r1 = 4;
  issue_round(r1);
  // Mid-flight, kill the fabric link carrying the most traffic — guaranteed
  // to be on an assigned route.
  fabric.loop().run_until(fabric.loop().now() + micros(300));
  const net::Topology& topo = fabric.cluster().topology();
  LinkId victim{};
  double hottest = 0.0;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id{static_cast<std::uint32_t>(l)};
    if (topo.node(topo.link(id).src).kind != net::NodeKind::kLeafSwitch) continue;
    if (topo.node(topo.link(id).dst).kind != net::NodeKind::kSpineSwitch) continue;
    const double tp = fabric.network().link_throughput(id);
    if (tp > hottest) {
      hottest = tp;
      victim = id;
    }
  }
  ASSERT_TRUE(victim.valid());
  fabric.network().set_link_state(victim, net::LinkState::kDown);  // permanent

  // The in-flight round drains (retries re-hash around the dead spine), the
  // escalation fires, and the controller reconfigures.
  ASSERT_TRUE(await(fabric, r1));
  EXPECT_GT(total_escalations(fabric), 0u);
  ASSERT_GE(controller.recovery_log().size(), 1u);
  EXPECT_EQ(controller.recovery_log().front().link, victim);
  EXPECT_GE(controller.recovery_log().front().comms_reconfigured, 1);
  const auto failed = controller.failed_links();
  EXPECT_TRUE(std::find(failed.begin(), failed.end(), victim) != failed.end());

  // Steady state after recovery: further rounds complete without operator
  // input, bit-correctly, over the surviving capacity.
  for (int iter = 1; iter <= 3; ++iter) {
    int rem = 4;
    issue_round(rem);
    ASSERT_TRUE(await(fabric, rem)) << "iteration " << iter << " hung";
  }
  fabric.loop().run();
  const float expected = 256.0f;  // 4 rounds of x4
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], expected);
  }
  // The re-assigned routes avoid the dead link entirely.
  int r2 = 4;
  issue_round(r2);
  fabric.loop().run_until(fabric.loop().now() + micros(300));
  EXPECT_EQ(fabric.network().link_throughput(victim), 0.0);
  ASSERT_TRUE(await(fabric, r2));
}

TEST(FaultRecovery, TenantKillDuringBarrierDrainsAndOthersComplete) {
  // Tenant A wedges mid-reconfiguration (one rank's command delayed forever),
  // then gets killed. The kill must tear down everything A owned — the loop
  // drains, nothing throws — while tenant B completes bit-correctly.
  Fabric fabric{cluster::make_testbed()};
  const AppId app_a{1}, app_b{2};
  const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  const CommId comm_a = create_comm(fabric, app_a, gpus_a);
  const CommId comm_b = create_comm(fabric, app_b, gpus_b);
  auto ranks_a = make_ranks(fabric, app_a, gpus_a);
  auto ranks_b = make_ranks(fabric, app_b, gpus_b);
  const std::size_t count = 512;
  std::vector<gpu::DevicePtr> buf_a(4), buf_b(4);
  for (std::size_t r = 0; r < 4; ++r) {
    buf_a[r] = ranks_a[r].shim->alloc(count * sizeof(float));
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    for (auto& x : fabric.gpus().typed<float>(buf_a[r], count)) x = 1.0f;
    for (auto& x : fabric.gpus().typed<float>(buf_b[r], count)) x = 1.0f;
  }

  // A: stuck barrier (rank 3's command delayed beyond the kill), plus a
  // round of collectives held behind it on 3 of 4 ranks.
  svc::CommStrategy rev = fabric.strategy_of(comm_a);
  for (auto& o : rev.channel_orders) o = o.reversed();
  fabric.reconfigure(comm_a, rev, {0.0, 0.0, 0.0, seconds(100.0)});
  int a_remaining = 4;
  for (std::size_t r = 0; r < 4; ++r) {
    ranks_a[r].shim->all_reduce(comm_a, buf_a[r], buf_a[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_a[r].stream,
                                [&a_remaining](Time) { --a_remaining; });
  }
  int b_remaining = 4;
  for (std::size_t r = 0; r < 4; ++r) {
    ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_b[r].stream,
                                [&b_remaining](Time) { --b_remaining; });
  }

  svc::KillReport report;
  fabric.loop().schedule_after(millis(1),
                               [&] { report = fabric.kill_app(app_a); });

  // The whole system drains: B completes, A's leftovers are gone, and the
  // delayed reconfigure command lands on a tombstone without throwing.
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return b_remaining == 0; }));
  EXPECT_NO_THROW(fabric.loop().run());
  EXPECT_EQ(report.comms, 1u);
  EXPECT_GT(report.collectives, 0u);
  EXPECT_GT(a_remaining, 0);  // the wedged round never completed...
  for (std::size_t r = 0; r < 4; ++r) {  // ...and B is untouched
    auto out = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 4.0f);
  }
  EXPECT_TRUE(fabric.list_communicators().size() == 1 &&
              fabric.list_communicators().front().id == comm_b);
}

TEST(FaultRecovery, FaultedTenantLeavesIntraHostTenantTimingUntouched) {
  // Victim isolation, measured end to end: tenant B is intra-host (GPUs 2,3
  // on host 1 — shared-memory channel only, zero link sharing with anyone).
  // Tenant A spans racks and suffers a NIC-uplink outage mid-run. B's
  // per-iteration completion times must be EXACTLY the same as in a
  // fault-free control run — detection and retries may cost A, never B.
  auto run_b_times = [&](bool with_fault) {
    Fabric fabric{cluster::make_testbed(), detection_options()};
    const AppId app_a{1}, app_b{2};
    const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{4}};  // cross-rack
    const std::vector<GpuId> gpus_b{GpuId{2}, GpuId{3}};  // host 1 only
    const CommId comm_a = create_comm(fabric, app_a, gpus_a);
    const CommId comm_b = create_comm(fabric, app_b, gpus_b);
    auto ranks_a = make_ranks(fabric, app_a, gpus_a);
    auto ranks_b = make_ranks(fabric, app_b, gpus_b);
    const std::size_t count = 1u << 16;
    std::vector<gpu::DevicePtr> buf_a(2), buf_b(2);
    for (std::size_t r = 0; r < 2; ++r) {
      buf_a[r] = ranks_a[r].shim->alloc(count * sizeof(float));
      buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
      for (auto& x : fabric.gpus().typed<float>(buf_a[r], count)) x = 1.0f;
      for (auto& x : fabric.gpus().typed<float>(buf_b[r], count)) x = 1.0f;
    }
    if (with_fault) {
      // Host 0's NIC-0 uplink: A's only egress for GPU 0 (no path
      // diversity), so A stalls hard until the restore.
      const net::Topology& topo = fabric.cluster().topology();
      const NodeId nic0 = fabric.cluster().host(HostId{0}).nic_nodes[0];
      const LinkId uplink = topo.out_links(nic0).front();
      workload::FaultPlan plan;
      plan.link_down(micros(100), uplink).link_restore(millis(5), uplink);
      plan.schedule(fabric);
    }

    int chains_left = 2;
    std::vector<Time> b_times;
    int a_rounds = 3, a_pending = 0;
    int b_rounds = 5, b_pending = 0;
    std::function<void()> issue_a = [&] {
      a_pending = 2;
      for (std::size_t r = 0; r < 2; ++r) {
        ranks_a[r].shim->all_reduce(comm_a, buf_a[r], buf_a[r], count,
                                    DataType::kFloat32, ReduceOp::kSum,
                                    *ranks_a[r].stream, [&](Time) {
                                      if (--a_pending == 0) {
                                        if (--a_rounds > 0) {
                                          issue_a();
                                        } else {
                                          --chains_left;
                                        }
                                      }
                                    });
      }
    };
    std::function<void()> issue_b = [&] {
      b_pending = 2;
      for (std::size_t r = 0; r < 2; ++r) {
        ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                    DataType::kFloat32, ReduceOp::kSum,
                                    *ranks_b[r].stream, [&](Time at) {
                                      if (--b_pending == 0) {
                                        b_times.push_back(at);
                                        if (--b_rounds > 0) {
                                          issue_b();
                                        } else {
                                          --chains_left;
                                        }
                                      }
                                    });
      }
    };
    issue_a();
    issue_b();
    EXPECT_TRUE(await(fabric, chains_left));
    return b_times;
  };

  const std::vector<Time> control = run_b_times(false);
  const std::vector<Time> faulted = run_b_times(true);
  ASSERT_EQ(control.size(), 5u);
  ASSERT_EQ(faulted.size(), 5u);
  for (std::size_t i = 0; i < control.size(); ++i) {
    EXPECT_EQ(control[i], faulted[i]) << "iteration " << i;  // exact, not near
  }
}

}  // namespace
}  // namespace mccs
