// End-to-end tests of the MCCS service on the paper's testbed cluster:
// applications attach shims, allocate service-managed buffers, create
// communicators and run collectives whose numerical results are verified
// against locally computed expectations.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/types.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::CollectiveKind;
using coll::DataType;
using coll::ReduceOp;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct ServiceFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
};

TEST_F(ServiceFixture, ShimAllocGivesValidBuffersAndFreeReleases) {
  svc::Shim& shim = fabric.connect(app, GpuId{0});
  const gpu::DevicePtr p = shim.alloc(1024);
  ASSERT_TRUE(p.valid());
  auto span = fabric.gpus().typed<float>(p, 256);
  span[0] = 42.0f;
  EXPECT_EQ(fabric.gpus().typed<float>(p, 256)[0], 42.0f);
  shim.free(p);
  EXPECT_FALSE(fabric.gpus().gpu(GpuId{0}).mem_valid(p.mem));
}

TEST_F(ServiceFixture, FreeingForeignBufferIsRejected) {
  svc::Shim& shim = fabric.connect(app, GpuId{0});
  gpu::DevicePtr direct = fabric.gpus().gpu(GpuId{0}).allocate(64);
  EXPECT_THROW(shim.free(direct), ContractViolation);
}

TEST_F(ServiceFixture, CollectiveOnUnregisteredBufferIsRejected) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  // recv buffer not allocated through the service:
  gpu::DevicePtr rogue = fabric.gpus().gpu(GpuId{0}).allocate(1024);
  gpu::DevicePtr ok = ranks[0].shim->alloc(1024);
  ranks[0].shim->all_reduce(comm, ok, rogue, 256, DataType::kFloat32,
                            ReduceOp::kSum, *ranks[0].stream);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

TEST_F(ServiceFixture, CommunicatorBootstrapCompletesForAllRanks) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).has_communicator(comm));
  }
  const svc::CommInfo& info = fabric.comm_info(comm);
  EXPECT_EQ(info.nranks, 4);
  EXPECT_EQ(info.app, app);
}

TEST_F(ServiceFixture, DefaultStrategyFollowsUserRankOrder) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  const svc::CommStrategy& s = fabric.strategy_of(comm);
  ASSERT_EQ(s.num_channels(), 1);  // one GPU per host used
  for (int p = 0; p < 4; ++p) EXPECT_EQ(s.channel_orders[0].rank_at(p), p);
  EXPECT_TRUE(s.routes.empty());  // ECMP
}

// Run one AllReduce over the given GPUs and verify sums.
void run_allreduce_and_check(Fabric& fabric, AppId app,
                             const std::vector<GpuId>& gpus, std::size_t count) {
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const int n = static_cast<int>(gpus.size());

  std::vector<gpu::DevicePtr> send(gpus.size()), recv(gpus.size());
  for (int r = 0; r < n; ++r) {
    send[r] = ranks[r].shim->alloc(count * sizeof(float));
    recv[r] = ranks[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, send[r], count, r);
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    ranks[r].shim->all_reduce(comm, send[r], recv[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));

  std::vector<float> expected(count);
  for (int r = 0; r < n; ++r) {
    auto s = fabric.gpus().typed<float>(send[r], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(recv[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], expected[i]) << "rank " << r << " elem " << i;
    }
  }
}

TEST_F(ServiceFixture, AllReduceTwoRanksSameRack) {
  run_allreduce_and_check(fabric, app, {GpuId{0}, GpuId{2}}, 1024);
}

TEST_F(ServiceFixture, AllReduceTwoRanksCrossRack) {
  run_allreduce_and_check(fabric, app, {GpuId{0}, GpuId{4}}, 1024);
}

TEST_F(ServiceFixture, AllReduceFourRanksOneGpuPerHost) {
  run_allreduce_and_check(fabric, app, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, 4096);
}

TEST_F(ServiceFixture, AllReduceEightRanksMultiChannel) {
  run_allreduce_and_check(
      fabric, app,
      {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}, GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}},
      4096);
}

TEST_F(ServiceFixture, AllReduceIntraHostPair) {
  run_allreduce_and_check(fabric, app, {GpuId{0}, GpuId{1}}, 512);
}

TEST_F(ServiceFixture, AllReduceCountSmallerThanChunks) {
  // count=3 over 4 ranks: some chunks are empty.
  run_allreduce_and_check(fabric, app, {GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}}, 3);
}

TEST_F(ServiceFixture, AllReduceInPlace) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 256;
  std::vector<gpu::DevicePtr> buf(2);
  std::vector<std::vector<float>> inputs(2);
  for (int r = 0; r < 2; ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[r], count, r);
    auto s = fabric.gpus().typed<float>(buf[r], count);
    inputs[r].assign(s.begin(), s.end());
  }
  int remaining = 2;
  for (int r = 0; r < 2; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < 2; ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], inputs[0][i] + inputs[1][i]);
    }
  }
}

TEST_F(ServiceFixture, AllGatherCollectsAllRankBlocks) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 300;  // not divisible by channels
  const int n = 4;
  std::vector<gpu::DevicePtr> send(4), recv(4);
  for (int r = 0; r < n; ++r) {
    send[r] = ranks[r].shim->alloc(count * sizeof(float));
    recv[r] = ranks[r].shim->alloc(count * n * sizeof(float));
    test::fill_pattern<float>(fabric, send[r], count, r);
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    ranks[r].shim->all_gather(comm, send[r], recv[r], count, DataType::kFloat32,
                              *ranks[r].stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(recv[r], count * n);
    for (int src = 0; src < n; ++src) {
      auto in = fabric.gpus().typed<float>(send[src], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(src) * count + i], in[i])
            << "rank " << r << " block " << src << " elem " << i;
      }
    }
  }
}

TEST_F(ServiceFixture, ReduceScatterLeavesOwnedChunk) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 128;  // per-rank output elements
  const int n = 4;
  std::vector<gpu::DevicePtr> send(4), recv(4);
  for (int r = 0; r < n; ++r) {
    send[r] = ranks[r].shim->alloc(count * n * sizeof(float));
    recv[r] = ranks[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, send[r], count * n, r);
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    ranks[r].shim->reduce_scatter(comm, send[r], recv[r], count,
                                  DataType::kFloat32, ReduceOp::kSum,
                                  *ranks[r].stream,
                                  [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(recv[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      float expected = 0;
      for (int src = 0; src < n; ++src) {
        expected += fabric.gpus().typed<float>(
            send[src], count * n)[static_cast<std::size_t>(r) * count + i];
      }
      ASSERT_FLOAT_EQ(out[i], expected) << "rank " << r << " elem " << i;
    }
  }
}

TEST_F(ServiceFixture, BroadcastFromNonZeroRoot) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 200;
  const int n = 4;
  const int root = 2;
  std::vector<gpu::DevicePtr> buf(4);
  for (int r = 0; r < n; ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[r], count, r);
  }
  std::vector<float> root_data;
  {
    auto s = fabric.gpus().typed<float>(buf[root], count);
    root_data.assign(s.begin(), s.end());
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    ranks[r].shim->broadcast(comm, buf[r], buf[r], count, DataType::kFloat32,
                             root, *ranks[r].stream,
                             [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], root_data[i]) << "rank " << r;
    }
  }
}

TEST_F(ServiceFixture, BackToBackCollectivesSerializeOnCommStream) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 64;
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    auto s = fabric.gpus().typed<float>(buf[r], count);
    for (auto& x : s) x = 1.0f;
  }
  // Three successive in-place AllReduces: values go 1 -> 2 -> 4 -> 8.
  int remaining = 6;
  for (int round = 0; round < 3; ++round) {
    for (int r = 0; r < 2; ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < 2; ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 8.0f);
  }
}

TEST_F(ServiceFixture, CollectiveWaitsForComputeOnAppStream) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 16;
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) buf[r] = ranks[r].shim->alloc(count * sizeof(float));

  // Rank 0's "compute kernel" takes 50 ms and writes the inputs only when it
  // finishes; if the collective did not respect the app-stream dependency it
  // would reduce zeros.
  ranks[0].stream->enqueue_compute(0.05, "produce", [&] {
    auto s = fabric.gpus().typed<float>(buf[0], count);
    for (auto& x : s) x = 3.0f;
  });
  {
    auto s = fabric.gpus().typed<float>(buf[1], count);
    for (auto& x : s) x = 4.0f;
  }
  int remaining = 2;
  for (int r = 0; r < 2; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  EXPECT_GE(fabric.loop().now(), 0.05);
  for (int r = 0; r < 2; ++r) {
    auto out = fabric.gpus().typed<float>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], 7.0f);
  }
}

TEST_F(ServiceFixture, TraceRecordsCollectiveLifecycle) {
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 1024;
  std::vector<gpu::DevicePtr> buf(2);
  for (int r = 0; r < 2; ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
  }
  int remaining = 2;
  for (int r = 0; r < 2; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  const auto trace = fabric.trace(app);
  ASSERT_EQ(trace.size(), 2u);  // one record per rank
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.comm, comm);
    EXPECT_EQ(rec.kind, CollectiveKind::kAllReduce);
    EXPECT_EQ(rec.bytes, count * sizeof(float));
    EXPECT_LE(rec.issued, rec.launched);
    EXPECT_LE(rec.launched, rec.started);
    EXPECT_LT(rec.started, rec.completed);
  }
}

TEST_F(ServiceFixture, TwoAppsShareTheClusterIndependently) {
  AppId app_b{2};
  const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{4}};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{5}};
  const CommId comm_a = create_comm(fabric, app, gpus_a);
  const CommId comm_b = create_comm(fabric, app_b, gpus_b);
  auto ranks_a = make_ranks(fabric, app, gpus_a);
  auto ranks_b = make_ranks(fabric, app_b, gpus_b);
  const std::size_t count = 512;
  std::vector<gpu::DevicePtr> buf_a(2), buf_b(2);
  for (int r = 0; r < 2; ++r) {
    buf_a[r] = ranks_a[r].shim->alloc(count * sizeof(float));
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf_a[r], count, r, 1);
    test::fill_pattern<float>(fabric, buf_b[r], count, r, 2);
  }
  std::vector<float> exp_a(count), exp_b(count);
  for (int r = 0; r < 2; ++r) {
    auto a = fabric.gpus().typed<float>(buf_a[r], count);
    auto b = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      exp_a[i] += a[i];
      exp_b[i] += b[i];
    }
  }
  int remaining = 4;
  for (int r = 0; r < 2; ++r) {
    ranks_a[r].shim->all_reduce(comm_a, buf_a[r], buf_a[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_a[r].stream, [&remaining](Time) { --remaining; });
    ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                DataType::kFloat32, ReduceOp::kSum,
                                *ranks_b[r].stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < 2; ++r) {
    auto a = fabric.gpus().typed<float>(buf_a[r], count);
    auto b = fabric.gpus().typed<float>(buf_b[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(a[i], exp_a[i]);
      ASSERT_FLOAT_EQ(b[i], exp_b[i]);
    }
  }
}

// Parameterized sweep: AllReduce correctness across dtypes and ops.
struct DtypeOpCase {
  DataType dtype;
  ReduceOp op;
};

class AllReduceDtypeOpP : public ::testing::TestWithParam<DtypeOpCase> {};

template <class T>
void check_typed_allreduce(ReduceOp op) {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 97;
  const int n = 3;
  std::vector<gpu::DevicePtr> buf(3);
  for (int r = 0; r < n; ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(T));
    auto s = fabric.gpus().typed<T>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      s[i] = static_cast<T>(1 + ((i + static_cast<std::size_t>(r) * 7) % 5));
    }
  }
  std::vector<T> expected;
  {
    auto s0 = fabric.gpus().typed<T>(buf[0], count);
    expected.assign(s0.begin(), s0.end());
    for (int r = 1; r < n; ++r) {
      auto s = fabric.gpus().typed<T>(buf[r], count);
      for (std::size_t i = 0; i < count; ++i) {
        switch (op) {
          case ReduceOp::kSum: expected[i] = expected[i] + s[i]; break;
          case ReduceOp::kProd: expected[i] = expected[i] * s[i]; break;
          case ReduceOp::kMin: expected[i] = std::min(expected[i], s[i]); break;
          case ReduceOp::kMax: expected[i] = std::max(expected[i], s[i]); break;
        }
      }
    }
  }
  int remaining = n;
  coll::DataType dtype;
  if constexpr (std::is_same_v<T, float>) dtype = DataType::kFloat32;
  else if constexpr (std::is_same_v<T, double>) dtype = DataType::kFloat64;
  else if constexpr (std::is_same_v<T, std::int32_t>) dtype = DataType::kInt32;
  else if constexpr (std::is_same_v<T, std::int64_t>) dtype = DataType::kInt64;
  else dtype = DataType::kUint8;
  for (int r = 0; r < n; ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, dtype, op,
                              *ranks[r].stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<T>(buf[r], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], expected[i]) << "rank " << r << " elem " << i;
    }
  }
}

TEST_P(AllReduceDtypeOpP, Correct) {
  const auto p = GetParam();
  switch (p.dtype) {
    case DataType::kFloat32: check_typed_allreduce<float>(p.op); break;
    case DataType::kFloat64: check_typed_allreduce<double>(p.op); break;
    case DataType::kInt32: check_typed_allreduce<std::int32_t>(p.op); break;
    case DataType::kInt64: check_typed_allreduce<std::int64_t>(p.op); break;
    case DataType::kUint8: check_typed_allreduce<std::uint8_t>(p.op); break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllReduceDtypeOpP,
    ::testing::Values(DtypeOpCase{DataType::kFloat32, ReduceOp::kSum},
                      DtypeOpCase{DataType::kFloat32, ReduceOp::kMax},
                      DtypeOpCase{DataType::kFloat64, ReduceOp::kSum},
                      DtypeOpCase{DataType::kInt32, ReduceOp::kSum},
                      DtypeOpCase{DataType::kInt32, ReduceOp::kProd},
                      DtypeOpCase{DataType::kInt64, ReduceOp::kMin},
                      DtypeOpCase{DataType::kUint8, ReduceOp::kMax}));

// Parameterized sweep over message sizes (exercises chunking edge cases).
class AllReduceSizeP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllReduceSizeP, CorrectAcrossSizes) {
  Fabric fabric{cluster::make_testbed()};
  run_allreduce_and_check(fabric, AppId{1},
                          {GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}, GpuId{4},
                           GpuId{5}, GpuId{6}, GpuId{7}},
                          GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllReduceSizeP,
                         ::testing::Values(1, 7, 8, 64, 1000, 4096, 65536));

}  // namespace
}  // namespace mccs
