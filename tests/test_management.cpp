// Tests of the provider management surface: trace export, communicator
// snapshots, strategy helpers and channel-order properties.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "mccs/trace_export.h"

namespace mccs {
namespace {

using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

TEST(TraceExport, RecordRoundTripsItsFields) {
  svc::TraceRecord r;
  r.app = AppId{7};
  r.comm = CommId{3};
  r.rank = 2;
  r.seq = 41;
  r.kind = coll::CollectiveKind::kAllGather;
  r.bytes = 1024;
  r.issued = 1.5;
  r.launched = 1.6;
  r.started = 1.7;
  r.completed = 2.0;
  const std::string json = svc::trace_record_to_json(r);
  EXPECT_NE(json.find("\"app\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"AllGather\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":41"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceExport, JsonLinesHasOneLinePerRecord) {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  std::vector<gpu::DevicePtr> buf(2);
  int remaining = 4;
  for (int r = 0; r < 2; ++r) buf[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(256);
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < 2; ++r) {
      ranks[static_cast<std::size_t>(r)].shim->all_reduce(
          comm, buf[static_cast<std::size_t>(r)], buf[static_cast<std::size_t>(r)], 64,
          coll::DataType::kFloat32, coll::ReduceOp::kSum,
          *ranks[static_cast<std::size_t>(r)].stream, [&remaining](Time) { --remaining; });
    }
  }
  ASSERT_TRUE(await(fabric, remaining));
  const std::string lines = svc::trace_to_json_lines(fabric.trace(app));
  EXPECT_EQ(static_cast<int>(std::count(lines.begin(), lines.end(), '\n')), 4);
}

TEST(TraceExport, ManagementSnapshotListsEveryCommunicator) {
  Fabric fabric{cluster::make_testbed()};
  create_comm(fabric, AppId{1}, {GpuId{0}, GpuId{4}});
  create_comm(fabric, AppId{2}, {GpuId{1}, GpuId{5}});
  const std::string snap = svc::management_snapshot_json(fabric);
  EXPECT_EQ(snap.front(), '[');
  EXPECT_EQ(snap.back(), ']');
  EXPECT_NE(snap.find("\"comm\":0"), std::string::npos);
  EXPECT_NE(snap.find("\"comm\":1"), std::string::npos);
  EXPECT_NE(snap.find("\"algorithm\":\"ring\""), std::string::npos);
  EXPECT_NE(snap.find("\"channel_orders\":[[0,1]"), std::string::npos);
}

// --- channel-order properties -------------------------------------------------

TEST(ChannelOrders, EveryChannelIsAPermutation) {
  auto cl = cluster::make_testbed();
  std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                          GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  std::vector<int> base{0, 1, 2, 3, 4, 5, 6, 7};
  const auto orders = svc::make_channel_orders(base, gpus, cl, 4);
  ASSERT_EQ(orders.size(), 4u);
  for (const auto& o : orders) {
    std::set<int> seen(o.order().begin(), o.order().end());
    EXPECT_EQ(seen.size(), 8u);  // RingOrder validates; double-check anyway
  }
}

TEST(ChannelOrders, ChannelsExitHostsThroughDistinctGpus) {
  auto cl = cluster::make_testbed();
  std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                          GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  std::vector<int> base{0, 1, 2, 3, 4, 5, 6, 7};
  const auto orders = svc::make_channel_orders(base, gpus, cl, 2);
  // For each host, the rank whose successor is off-host (the NIC egress)
  // must differ between the two channels.
  for (int host_first_rank : {0, 2, 4, 6}) {
    std::set<int> egress;
    for (const auto& o : orders) {
      for (int p = 0; p < 8; ++p) {
        const int r = o.rank_at(p);
        if (r != host_first_rank && r != host_first_rank + 1) continue;
        const int next = o.rank_at(o.position_of(r) + 1);
        const bool next_same_host =
            cl.same_host(gpus[static_cast<std::size_t>(r)],
                         gpus[static_cast<std::size_t>(next)]);
        if (!next_same_host) egress.insert(r);
      }
    }
    EXPECT_EQ(egress.size(), 2u) << "host of rank " << host_first_rank;
  }
}

TEST(ChannelOrders, HostRunsStayContiguous) {
  auto cl = cluster::make_testbed();
  std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{4}, GpuId{5}};
  std::vector<int> base{0, 1, 2, 3};
  const auto orders = svc::make_channel_orders(base, gpus, cl, 2);
  for (const auto& o : orders) {
    int transitions = 0;
    for (int p = 0; p < 4; ++p) {
      if (!cl.same_host(gpus[static_cast<std::size_t>(o.rank_at(p))],
                        gpus[static_cast<std::size_t>(o.rank_at(p + 1))])) {
        ++transitions;
      }
    }
    EXPECT_EQ(transitions, 2);  // exactly one entry and one exit per host
  }
}

TEST(RouteKey, PacksChannelAndRanksWithoutCollision) {
  std::set<std::uint64_t> keys;
  for (int c : {0, 1, 7}) {
    for (int s = 0; s < 16; ++s) {
      for (int d = 0; d < 16; ++d) {
        if (s == d) continue;
        keys.insert(svc::CommStrategy::route_key(c, s, d));
      }
    }
  }
  EXPECT_EQ(keys.size(), 3u * 16 * 15);
}

}  // namespace
}  // namespace mccs

namespace mccs {
namespace {

TEST(CommLifecycle, FabricDestroyRemovesEverywhere) {
  svc::Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = test::create_comm(fabric, AppId{1}, gpus);
  EXPECT_EQ(fabric.list_communicators().size(), 1u);
  fabric.destroy_communicator(comm);
  fabric.loop().run();
  EXPECT_TRUE(fabric.list_communicators().empty());
  for (GpuId g : gpus) {
    EXPECT_FALSE(fabric.proxy_for(g).has_communicator(comm));
  }
}

TEST(CommLifecycle, DestroyThenCreateReusesCleanState) {
  svc::Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId first = test::create_comm(fabric, AppId{1}, gpus);
  fabric.destroy_communicator(first);
  fabric.loop().run();
  const CommId second = test::create_comm(fabric, AppId{1}, gpus);
  EXPECT_NE(first.get(), second.get());
  // The new communicator works end to end.
  auto ranks = test::make_ranks(fabric, AppId{1}, gpus);
  std::vector<gpu::DevicePtr> buf(2);
  int remaining = 2;
  for (int r = 0; r < 2; ++r) {
    buf[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(64);
    ranks[static_cast<std::size_t>(r)].shim->all_reduce(
        second, buf[static_cast<std::size_t>(r)], buf[static_cast<std::size_t>(r)], 16,
        coll::DataType::kFloat32, coll::ReduceOp::kSum,
        *ranks[static_cast<std::size_t>(r)].stream, [&remaining](Time) { --remaining; });
  }
  EXPECT_TRUE(test::await(fabric, remaining));
}

TEST(CommLifecycle, DestroyWithInFlightCollectiveFailsLoudly) {
  svc::Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{4}};
  const CommId comm = test::create_comm(fabric, AppId{1}, gpus);
  auto ranks = test::make_ranks(fabric, AppId{1}, gpus);
  gpu::DevicePtr buf = ranks[0].shim->alloc(1024);
  // Only rank 0 issues, so the collective stays outstanding forever.
  ranks[0].shim->all_reduce(comm, buf, buf, 256, coll::DataType::kFloat32,
                            coll::ReduceOp::kSum, *ranks[0].stream);
  fabric.destroy_communicator(comm);
  EXPECT_THROW(fabric.loop().run(), ContractViolation);
}

}  // namespace
}  // namespace mccs
