#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace mccs::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0.0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 3.0);
}

TEST(EventLoop, SameTimeEventsRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  double fired_at = -1.0;
  loop.schedule_at(5.0, [&] {
    loop.schedule_after(2.5, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  auto h = loop.schedule_at(1.0, [&] { fired = true; });
  loop.cancel(h);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterFire) {
  EventLoop loop;
  auto h = loop.schedule_at(1.0, [] {});
  loop.run();
  loop.cancel(h);  // no crash
  loop.cancel(h);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, PendingReflectsLiveEvents) {
  EventLoop loop;
  auto h = loop.schedule_at(1.0, [] {});
  EXPECT_TRUE(loop.pending(h));
  loop.cancel(h);
  EXPECT_FALSE(loop.pending(h));
}

TEST(EventLoop, RunUntilAdvancesClockExactly) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.schedule_at(5.0, [&] { ++fired; });
  loop.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilSkipsCancelledHead) {
  EventLoop loop;
  bool fired = false;
  auto h = loop.schedule_at(1.0, [] {});
  loop.schedule_at(2.0, [&] { fired = true; });
  loop.cancel(h);
  loop.run_until(2.5);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, SchedulingInThePastThrows) {
  EventLoop loop;
  loop.schedule_at(2.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(1.0, [] {}), ContractViolation);
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) loop.schedule_after(0.001, recur);
  };
  loop.schedule_after(0.0, recur);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(loop.now(), 0.099, 1e-9);
}

TEST(EventLoop, RunWhilePendingStopsAtPredicate) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++count; });
  const bool ok = loop.run_while_pending([&] { return count == 5; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 5);
}

TEST(EventLoop, RunWhilePendingReturnsFalseWhenDrained) {
  EventLoop loop;
  loop.schedule_at(1.0, [] {});
  EXPECT_FALSE(loop.run_while_pending([] { return false; }));
}

TEST(EventLoop, CancelThenRunUntilKeepsAccounting) {
  EventLoop loop;
  int fired = 0;
  auto h1 = loop.schedule_at(1.0, [&] { ++fired; });
  auto h2 = loop.schedule_at(2.0, [&] { ++fired; });
  auto h3 = loop.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(loop.size(), 3u);
  loop.cancel(h1);  // cancelled entry sits at the heap head
  loop.cancel(h3);
  EXPECT_EQ(loop.size(), 1u);  // dead entries are not counted
  EXPECT_FALSE(loop.pending(h1));
  EXPECT_TRUE(loop.pending(h2));
  loop.run_until(2.5);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(loop.pending(h2));
  EXPECT_TRUE(loop.empty());
  EXPECT_DOUBLE_EQ(loop.now(), 2.5);
}

TEST(EventLoop, SameTimeOrderingSurvivesHeapCompaction) {
  // Interleave 100 same-time survivors with 200 victims, then cancel every
  // victim: dead entries outnumber live ones, forcing a heap compaction.
  // The survivors must still fire in schedule order.
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventLoop::Handle> doomed;
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at(2.0, [&order, i] { order.push_back(i); });
    doomed.push_back(loop.schedule_at(1.0, [] {}));
    doomed.push_back(loop.schedule_at(1.0, [] {}));
  }
  for (auto h : doomed) loop.cancel(h);
  EXPECT_EQ(loop.size(), 100u);
  loop.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, StaleHandleCannotTouchReusedSlot) {
  // Cancelling A frees its slab slot; B reuses it with a bumped generation.
  // A's stale handle must neither report pending nor cancel B.
  EventLoop loop;
  bool a_fired = false;
  bool b_fired = false;
  auto ha = loop.schedule_at(1.0, [&] { a_fired = true; });
  loop.cancel(ha);
  auto hb = loop.schedule_at(1.0, [&] { b_fired = true; });
  EXPECT_FALSE(loop.pending(ha));
  EXPECT_TRUE(loop.pending(hb));
  loop.cancel(ha);  // stale
  EXPECT_TRUE(loop.pending(hb));
  loop.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

}  // namespace
}  // namespace mccs::sim
