#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace mccs::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0.0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 3.0);
}

TEST(EventLoop, SameTimeEventsRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  double fired_at = -1.0;
  loop.schedule_at(5.0, [&] {
    loop.schedule_after(2.5, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  auto h = loop.schedule_at(1.0, [&] { fired = true; });
  loop.cancel(h);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterFire) {
  EventLoop loop;
  auto h = loop.schedule_at(1.0, [] {});
  loop.run();
  loop.cancel(h);  // no crash
  loop.cancel(h);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, PendingReflectsLiveEvents) {
  EventLoop loop;
  auto h = loop.schedule_at(1.0, [] {});
  EXPECT_TRUE(loop.pending(h));
  loop.cancel(h);
  EXPECT_FALSE(loop.pending(h));
}

TEST(EventLoop, RunUntilAdvancesClockExactly) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.schedule_at(5.0, [&] { ++fired; });
  loop.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilSkipsCancelledHead) {
  EventLoop loop;
  bool fired = false;
  auto h = loop.schedule_at(1.0, [] {});
  loop.schedule_at(2.0, [&] { fired = true; });
  loop.cancel(h);
  loop.run_until(2.5);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, SchedulingInThePastThrows) {
  EventLoop loop;
  loop.schedule_at(2.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(1.0, [] {}), ContractViolation);
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) loop.schedule_after(0.001, recur);
  };
  loop.schedule_after(0.0, recur);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(loop.now(), 0.099, 1e-9);
}

TEST(EventLoop, RunWhilePendingStopsAtPredicate) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++count; });
  const bool ok = loop.run_while_pending([&] { return count == 5; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 5);
}

TEST(EventLoop, RunWhilePendingReturnsFalseWhenDrained) {
  EventLoop loop;
  loop.schedule_at(1.0, [] {});
  EXPECT_FALSE(loop.run_while_pending([] { return false; }));
}

}  // namespace
}  // namespace mccs::sim
