// Tests of the provider policies: locality-aware ring configuration,
// best-fit fair flow assignment (FFA), priority flow assignment (PFA), and
// traffic-pattern analysis for time-window scheduling.

#include <gtest/gtest.h>

#include <numeric>

#include "cluster/cluster.h"
#include "netsim/network.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"
#include "policy/traffic_schedule.h"
#include "common/rng.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs::policy {
namespace {

// --- locality-aware ring configuration -------------------------------------------

TEST(RingConfigPolicy, TestbedOptimalRingCrossesRacksExactlyTwice) {
  auto cl = cluster::make_testbed();
  // One GPU per host, deliberately interleaved across racks.
  std::vector<GpuId> gpus{GpuId{0}, GpuId{4}, GpuId{2}, GpuId{6}};
  const auto order = locality_aware_order(gpus, cl);
  EXPECT_EQ(cross_rack_edges(order, gpus, cl), 2);
  // The user-given (identity) order zig-zags: 4 crossings.
  std::vector<int> identity{0, 1, 2, 3};
  EXPECT_EQ(cross_rack_edges(identity, gpus, cl), 4);
}

TEST(RingConfigPolicy, KeepsHostGpusContiguous) {
  auto cl = cluster::make_testbed();
  std::vector<GpuId> gpus{GpuId{1}, GpuId{6}, GpuId{0}, GpuId{7}};  // 2 hosts x 2
  const auto order = locality_aware_order(gpus, cl);
  // Positions of ranks on the same host must be adjacent in the ring.
  auto host_at = [&](int pos) {
    return cl.host_of_gpu(gpus[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])]).get();
  };
  int transitions = 0;
  for (int p = 0; p < 4; ++p) {
    if (host_at(p) != host_at((p + 1) % 4)) ++transitions;
  }
  EXPECT_EQ(transitions, 2);  // one entry + one exit per host
}

TEST(RingConfigPolicy, OptimalCrossRackNeverExceedsRandom) {
  auto cl = cluster::make_large_sim_cluster();
  mccs::Rng rng(7);
  auto all = cl.all_gpus();
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(all);
    std::vector<GpuId> gpus(all.begin(), all.begin() + 32);
    std::vector<int> random_order(32);
    std::iota(random_order.begin(), random_order.end(), 0);
    rng.shuffle(random_order);
    EXPECT_LE(optimal_cross_rack_edges(gpus, cl),
              cross_rack_edges(random_order, gpus, cl));
  }
}

TEST(RingConfigPolicy, StrategyChannelsMatchNicCount) {
  auto cl = cluster::make_testbed();
  std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                          GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  const auto s = locality_aware_strategy(gpus, cl);
  EXPECT_EQ(s.num_channels(), 2);  // 2 GPUs (and NICs) per host
  // Channel rings must exit each host through different GPUs.
  const auto& o0 = s.channel_orders[0];
  const auto& o1 = s.channel_orders[1];
  EXPECT_FALSE(o0 == o1);
}

// --- FFA ----------------------------------------------------------------------

struct TwoJobFixture : ::testing::Test {
  cluster::Cluster cl = cluster::make_testbed();
  net::Routing routing{cl.topology()};
  // Job A on GPU0 of every host, job B on GPU1 of every host (setup 1).
  std::vector<GpuId> gpus_a{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  svc::CommStrategy strat_a = locality_aware_strategy(gpus_a, cl);
  svc::CommStrategy strat_b = locality_aware_strategy(gpus_b, cl);

  std::vector<AssignItem> items() {
    AssignItem a{CommId{0}, AppId{1}, &gpus_a, &strat_a, false};
    AssignItem b{CommId{1}, AppId{2}, &gpus_b, &strat_b, false};
    return {a, b};
  }
};

TEST_F(TwoJobFixture, FfaAssignsEveryInterHostFlowARoute) {
  const auto routes = assign_flows(items(), cl, routing);
  // Each job: 1 channel x 4 positions, 4 inter-host edges (1 GPU per host).
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes.at(0).size(), 4u);
  EXPECT_EQ(routes.at(1).size(), 4u);
}

TEST_F(TwoJobFixture, FfaSpreadsCrossRackFlowsOverBothSpines) {
  const auto routes = assign_flows(items(), cl, routing);
  // The two jobs each have one rack0->rack1 ring edge and one rack1->rack0
  // edge. With 2 spine paths, FFA must not put both forward (or both
  // reverse) cross-rack flows of the two jobs on the same spine.
  // Collect the chosen route for each job's cross-rack edges.
  auto cross_routes = [&](const std::vector<GpuId>& gpus,
                          const svc::CommStrategy& s, CommId comm) {
    std::vector<std::uint32_t> out;
    const auto& order = s.channel_orders[0];
    const int n = static_cast<int>(gpus.size());
    for (int p = 0; p < n; ++p) {
      const GpuId a = gpus[static_cast<std::size_t>(order.rank_at(p))];
      const GpuId b = gpus[static_cast<std::size_t>(order.rank_at(p + 1))];
      if (cl.same_host(a, b) || cl.rack_of_gpu(a) == cl.rack_of_gpu(b)) continue;
      out.push_back(routes.at(comm.get())
                        .at(svc::CommStrategy::route_key(0, order.rank_at(p),
                                                         order.rank_at(p + 1)))
                        .get());
    }
    return out;
  };
  const auto a_routes = cross_routes(gpus_a, strat_a, CommId{0});
  const auto b_routes = cross_routes(gpus_b, strat_b, CommId{1});
  ASSERT_EQ(a_routes.size(), 2u);
  ASSERT_EQ(b_routes.size(), 2u);
  // Forward direction: A and B on different spines.
  EXPECT_NE(a_routes[0], b_routes[0]);
  EXPECT_NE(a_routes[1], b_routes[1]);
}

TEST_F(TwoJobFixture, PfaReservedRouteExcludesLowPriority) {
  auto it = items();
  it[0].high_priority = true;
  AssignOptions opt;
  opt.reserved_routes = {0};
  const auto routes = assign_flows(it, cl, routing, opt);
  // Low-priority job B must avoid route 0 on multi-path (cross-rack) hops.
  const auto& order = strat_b.channel_orders[0];
  for (int p = 0; p < 4; ++p) {
    const GpuId a = gpus_b[static_cast<std::size_t>(order.rank_at(p))];
    const GpuId b = gpus_b[static_cast<std::size_t>(order.rank_at(p + 1))];
    if (cl.same_host(a, b)) continue;
    const auto key = svc::CommStrategy::route_key(0, order.rank_at(p),
                                                  order.rank_at(p + 1));
    const auto r = routes.at(1).at(key);
    if (cl.rack_of_gpu(a) != cl.rack_of_gpu(b)) {
      EXPECT_NE(r.get(), 0u) << "low-priority flow on a reserved route";
    }
  }
}

TEST_F(TwoJobFixture, AssignmentIsDeterministic) {
  const auto r1 = assign_flows(items(), cl, routing);
  const auto r2 = assign_flows(items(), cl, routing);
  EXPECT_EQ(r1.at(0), r2.at(0));
  EXPECT_EQ(r1.at(1), r2.at(1));
}

TEST(FlowAssign, LiveTelemetrySteersAroundBackgroundTraffic) {
  // Two leaves, two spine paths. A background flow occupies spine 0 between
  // the two hosts; the demand model alone cannot see it (ties break to
  // route 0), but with `AssignOptions::network` set the live link throughput
  // pushes the collective's forward edge onto the other spine.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 2;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 2;
  spec.gpus_per_host = 1;
  spec.nics_per_host = 1;
  auto cl = cluster::make_spine_leaf(spec);
  net::Routing routing(cl.topology());

  // Background traffic between the *other* host pair (hosts 1 and 3), pinned
  // to spine route 0: it shares only the leaf-spine fabric links with the
  // collective, not the NIC uplinks.
  sim::EventLoop loop;
  net::Network network(loop, cl.topology());
  network.start_flow({.src = cl.host(HostId{1}).nic_nodes[0],
                      .dst = cl.host(HostId{3}).nic_nodes[0],
                      .route = RouteId{0},
                      .background_demand = gbps(40),
                      .on_complete = {}});

  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};  // hosts 0 and 2
  auto strat = locality_aware_strategy(gpus, cl);
  std::vector<AssignItem> items{AssignItem{CommId{0}, AppId{1}, &gpus, &strat, false}};
  const auto& order = strat.channel_orders[0];
  // The ring edge leaving host 0 — the direction the background flow loads.
  int p0 = 0;
  for (int p = 0; p < 2; ++p) {
    const GpuId g = gpus[static_cast<std::size_t>(order.rank_at(p))];
    if (cl.host_of_gpu(g) == HostId{0}) p0 = p;
  }
  const auto key = svc::CommStrategy::route_key(0, order.rank_at(p0),
                                                order.rank_at(p0 + 1));

  const auto blind = assign_flows(items, cl, routing);
  EXPECT_EQ(blind.at(0).at(key).get(), 0u);

  AssignOptions live;
  live.network = &network;
  const auto steered = assign_flows(items, cl, routing, live);
  EXPECT_NE(steered.at(0).at(key).get(), 0u);
}

TEST(FlowAssign, ScalesRoughlyLinearlyInJobSize) {
  auto cl = cluster::make_large_sim_cluster();
  net::Routing routing(cl.topology());
  auto run_for = [&](int ngpus) {
    std::vector<GpuId> gpus;
    for (int g = 0; g < ngpus; ++g) gpus.push_back(GpuId{static_cast<std::uint32_t>(g)});
    auto strat = locality_aware_strategy(gpus, cl);
    AssignItem item{CommId{0}, AppId{1}, &gpus, &strat, false};
    return measure_assign_seconds({item}, cl, routing);
  };
  run_for(32);  // warm the routing cache
  const double t32 = run_for(32);
  EXPECT_LT(t32, 0.05) << "32-GPU schedule took " << t32 << " s";
}

// --- traffic-pattern analysis ------------------------------------------------------

std::vector<svc::TraceRecord> synthetic_trace(double period, double busy,
                                              int iterations) {
  std::vector<svc::TraceRecord> out;
  for (int i = 0; i < iterations; ++i) {
    const double t0 = 1.0 + i * period;
    for (int k = 0; k < 4; ++k) {
      svc::TraceRecord r;
      r.app = AppId{1};
      r.comm = CommId{0};
      r.rank = 0;
      r.seq = static_cast<std::uint64_t>(i * 4 + k);
      r.issued = t0 + k * busy / 4;
      r.launched = r.issued;
      r.started = r.issued;
      r.completed = r.issued + busy / 4;
      out.push_back(r);
    }
  }
  return out;
}

TEST(TrafficAnalysis, RecoversPeriodAndBusyWindow) {
  const auto trace = synthetic_trace(0.2, 0.08, 10);
  const CommPattern p = analyze_comm_pattern(trace);
  ASSERT_TRUE(p.valid());
  EXPECT_NEAR(p.period, 0.2, 0.02);
  EXPECT_NEAR(p.busy_end - p.busy_begin, 0.08, 0.02);
}

TEST(TrafficAnalysis, TooShortTraceIsRejected) {
  const auto trace = synthetic_trace(0.2, 0.08, 1);
  EXPECT_FALSE(analyze_comm_pattern(trace).valid());
}

TEST(TrafficAnalysis, IdleWindowScheduleComplementsBusyWindow) {
  const auto trace = synthetic_trace(0.2, 0.08, 10);
  const CommPattern p = analyze_comm_pattern(trace);
  const svc::TrafficSchedule s = idle_window_schedule(p);
  ASSERT_FALSE(s.unrestricted());
  // Mid-busy is closed; mid-idle is open (relative to the phase anchor).
  EXPECT_FALSE(s.open_at(p.t0 + 0.02));
  EXPECT_TRUE(s.open_at(p.t0 + 0.15));
}

TEST(TrafficSchedule, OpenAtAndBoundariesAreConsistent) {
  svc::TrafficSchedule s;
  s.t0 = 0.0;
  s.period = 1.0;
  s.allowed.push_back({0.25, 0.75});
  EXPECT_FALSE(s.open_at(0.1));
  EXPECT_TRUE(s.open_at(0.5));
  EXPECT_FALSE(s.open_at(0.9));
  EXPECT_TRUE(s.open_at(1.5));  // periodic
  EXPECT_NEAR(s.next_open(0.1), 0.25, 1e-9);
  EXPECT_NEAR(s.next_open(0.8), 1.25, 1e-9);
  EXPECT_NEAR(s.next_boundary(0.5), 0.75, 1e-9);
}

}  // namespace
}  // namespace mccs::policy

namespace mccs::policy {
namespace {

TEST(FatTree, CrossPodPathsTraverseACore) {
  cluster::FatTreeSpec spec;
  auto cl = cluster::make_fat_tree(spec);
  net::Routing routing(cl.topology());
  // First host of pod 0 to first host of pod 1.
  const auto hosts = cl.host_count();
  ASSERT_EQ(hosts, 8u);  // 2 pods x 2 leaves x 2 hosts
  const NodeId src = cl.host(HostId{0}).nic_nodes[0];
  const NodeId dst = cl.host(HostId{4}).nic_nodes[0];
  const auto& paths = routing.paths(src, dst);
  // leaf -> pod spine (2) -> core (2) -> pod spine (2) -> leaf: 8 paths.
  EXPECT_EQ(paths.size(), 8u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 6u);
  // Same-pod cross-rack stays inside the pod: 2 paths of 4 hops.
  const NodeId dst_same_pod = cl.host(HostId{2}).nic_nodes[0];
  const auto& local = routing.paths(src, dst_same_pod);
  EXPECT_EQ(local.size(), 2u);
  for (const auto& p : local) EXPECT_EQ(p.size(), 4u);
}

TEST(FatTree, LocalityOrderGroupsPodsBeforeRacks) {
  cluster::FatTreeSpec spec;
  auto cl = cluster::make_fat_tree(spec);
  // One GPU on one host of every rack, listed in a pod-interleaved order.
  // Hosts: pod0 = {0,1 (rack0), 2,3 (rack1)}, pod1 = {4,5 (rack2), 6,7
  // (rack3)}; 4 GPUs per host.
  std::vector<GpuId> gpus{
      GpuId{0 * 4},   // pod0 rack0
      GpuId{2 * 4},   // pod0 rack1
      GpuId{4 * 4},   // pod1 rack2
      GpuId{6 * 4},   // pod1 rack3
  };
  std::vector<int> interleaved{0, 2, 1, 3};  // pod0, pod1, pod0, pod1
  const auto order = locality_aware_order(gpus, cl);
  // Count pod boundary crossings around the ring: optimal is exactly 2.
  auto pod_of = [&](int rank) {
    return cl.host(cl.host_of_gpu(gpus[static_cast<std::size_t>(rank)])).pod.get();
  };
  int optimal_crossings = 0;
  int interleaved_crossings = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (pod_of(order[i]) != pod_of(order[(i + 1) % order.size()])) {
      ++optimal_crossings;
    }
    if (pod_of(interleaved[i]) != pod_of(interleaved[(i + 1) % 4])) {
      ++interleaved_crossings;
    }
  }
  EXPECT_EQ(optimal_crossings, 2);
  EXPECT_EQ(interleaved_crossings, 4);
}

TEST(FatTree, CollectiveRunsAcrossPods) {
  // End-to-end sanity: an AllReduce spanning both pods of the fat-tree
  // completes and sums correctly through the service.
  cluster::FatTreeSpec spec;
  svc::Fabric fabric{cluster::make_fat_tree(spec)};
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{16}, GpuId{8}, GpuId{24}};
  const CommId comm = mccs::test::create_comm(fabric, app, gpus);
  auto ranks = mccs::test::make_ranks(fabric, app, gpus);
  const std::size_t count = 256;
  std::vector<gpu::DevicePtr> buf(4);
  std::vector<float> expected(count, 0.0f);
  for (int r = 0; r < 4; ++r) {
    buf[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    mccs::test::fill_pattern<float>(fabric, buf[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int remaining = 4;
  for (int r = 0; r < 4; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_reduce(comm, buf[static_cast<std::size_t>(r)],
                        buf[static_cast<std::size_t>(r)], count,
                        coll::DataType::kFloat32, coll::ReduceOp::kSum,
                        *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(mccs::test::await(fabric, remaining));
  for (int r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], expected[i]);
  }
}

}  // namespace
}  // namespace mccs::policy
