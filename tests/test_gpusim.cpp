#include "gpusim/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "sim/event_loop.h"

namespace mccs::gpu {
namespace {

struct GpuFixture : ::testing::Test {
  sim::EventLoop loop;
  GpuRuntime runtime{loop, 2};
};

TEST_F(GpuFixture, AllocateGivesZeroedDistinctMemory) {
  Gpu& dev = runtime.gpu(GpuId{0});
  const DevicePtr a = dev.allocate(64);
  const DevicePtr b = dev.allocate(64);
  EXPECT_NE(a.mem, b.mem);
  for (std::byte x : dev.bytes(a, 64)) EXPECT_EQ(x, std::byte{0});
}

TEST_F(GpuFixture, BytesAreBoundsChecked) {
  Gpu& dev = runtime.gpu(GpuId{0});
  const DevicePtr a = dev.allocate(64);
  EXPECT_NO_THROW(dev.bytes(a.at_offset(32), 32));
  EXPECT_THROW(dev.bytes(a.at_offset(32), 33), ContractViolation);
}

TEST_F(GpuFixture, IpcHandleSharesUnderlyingBytes) {
  Gpu& dev = runtime.gpu(GpuId{0});
  const DevicePtr a = dev.allocate(16);
  const MemHandle h = dev.export_handle(a.mem);
  const DevicePtr opened = dev.open_handle(h);
  dev.bytes(a, 16)[3] = std::byte{42};
  EXPECT_EQ(dev.bytes(opened, 16)[3], std::byte{42});
}

TEST_F(GpuFixture, RefcountKeepsMemoryAliveUntilLastRelease) {
  Gpu& dev = runtime.gpu(GpuId{0});
  const DevicePtr a = dev.allocate(16);
  const MemHandle h = dev.export_handle(a.mem);
  dev.open_handle(h);
  dev.release(a.mem);
  EXPECT_TRUE(dev.mem_valid(a.mem));  // opened handle still holds it
  dev.release(a.mem);
  EXPECT_FALSE(dev.mem_valid(a.mem));
}

TEST_F(GpuFixture, TypedViewReadsAndWrites) {
  const DevicePtr a = runtime.gpu(GpuId{0}).allocate(4 * sizeof(float));
  auto f = runtime.typed<float>(a, 4);
  f[0] = 1.5f;
  f[3] = -2.0f;
  auto g = runtime.typed<float>(a, 4);
  EXPECT_EQ(g[0], 1.5f);
  EXPECT_EQ(g[3], -2.0f);
}

TEST_F(GpuFixture, ComputeKernelsRunInOrderWithDurations) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  std::vector<double> completion_times;
  s.enqueue_compute(1.0, "k1", [&] { completion_times.push_back(loop.now()); });
  s.enqueue_compute(0.5, "k2", [&] { completion_times.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(completion_times.size(), 2u);
  EXPECT_DOUBLE_EQ(completion_times[0], 1.0);
  EXPECT_DOUBLE_EQ(completion_times[1], 1.5);
}

TEST_F(GpuFixture, IndependentStreamsRunConcurrently) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s1 = dev.create_stream();
  Stream& s2 = dev.create_stream();
  double t1 = -1, t2 = -1;
  s1.enqueue_compute(1.0, "a", [&] { t1 = loop.now(); });
  s2.enqueue_compute(1.0, "b", [&] { t2 = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 1.0);  // not serialized
}

TEST_F(GpuFixture, EventSynchronizesAcrossStreams) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& producer = dev.create_stream();
  Stream& consumer = dev.create_stream();
  auto ev = dev.create_event();
  double consumer_done = -1;
  producer.enqueue_compute(2.0, "produce");
  producer.record_event(ev);
  consumer.wait_event(ev);
  consumer.enqueue_compute(0.5, "consume", [&] { consumer_done = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(consumer_done, 2.5);
}

TEST_F(GpuFixture, EventSharableAcrossDevicesViaHandle) {
  Gpu& dev0 = runtime.gpu(GpuId{0});
  Gpu& dev1 = runtime.gpu(GpuId{1});
  auto ev = dev0.create_event();
  EventHandle handle(ev);
  auto opened = handle.open();
  Stream& s0 = dev0.create_stream();
  Stream& s1 = dev1.create_stream();
  double done = -1;
  s0.enqueue_compute(1.0, "w");
  s0.record_event(ev);
  s1.wait_event(opened);
  s1.enqueue_callback([&] { done = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(done, 1.0);
}

TEST_F(GpuFixture, WaitOnAlreadySignalledEventPassesImmediately) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  auto ev = dev.create_event();
  s.record_event(ev);
  loop.run();
  ASSERT_TRUE(ev->signalled());
  Stream& s2 = dev.create_stream();
  double done = -1;
  s2.wait_event(ev);
  s2.enqueue_callback([&] { done = loop.now(); });
  loop.run();
  EXPECT_GE(done, 0.0);
}

TEST_F(GpuFixture, MemcpyDurationFollowsBandwidth) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  double done = -1;
  s.enqueue_memcpy(1000, 1000.0, [&] { done = loop.now(); });  // 1 s
  loop.run();
  EXPECT_DOUBLE_EQ(done, 1.0);
  EXPECT_DOUBLE_EQ(s.memcpy_busy_time(), 1.0);
}

TEST_F(GpuFixture, ExternalOpBlocksStreamUntilCompleted) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  double started = -1, after = -1;
  const auto token = s.enqueue_external("comm", [&] { started = loop.now(); });
  s.enqueue_callback([&] { after = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(started, 0.0);
  EXPECT_DOUBLE_EQ(after, -1.0);  // still blocked
  loop.schedule_after(3.0, [&] { s.complete_external(token); });
  loop.run();
  EXPECT_DOUBLE_EQ(after, 3.0);
}

TEST_F(GpuFixture, ExternalOpCompletedBeforeReachedDoesNotBlock) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  double after = -1;
  s.enqueue_compute(1.0, "pre");
  const auto token = s.enqueue_external("comm");
  s.enqueue_callback([&] { after = loop.now(); });
  s.complete_external(token);  // completes while "pre" is still running
  loop.run();
  EXPECT_DOUBLE_EQ(after, 1.0);
}

TEST_F(GpuFixture, ExternalOpCompletedSynchronouslyInOnStart) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  double after = -1;
  auto token = std::make_shared<ExternalOpToken>();
  s.enqueue_compute(0.5, "pre");  // ensures *token is assigned before on_start
  *token = s.enqueue_external("instant", [&s, token] { s.complete_external(*token); });
  s.enqueue_callback([&] { after = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(after, 0.5);
}

TEST_F(GpuFixture, ComputeBusyTimeAccumulates) {
  Gpu& dev = runtime.gpu(GpuId{0});
  Stream& s = dev.create_stream();
  s.enqueue_compute(1.0, "a");
  s.enqueue_compute(2.0, "b");
  loop.run();
  EXPECT_DOUBLE_EQ(s.compute_busy_time(), 3.0);
}

}  // namespace
}  // namespace mccs::gpu

namespace mccs::gpu {
namespace {

class StreamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamFuzz, RandomOpMixesAlwaysDrainInOrder) {
  // Random mixes of compute, memcpy, callbacks, records, waits and external
  // ops across several streams must (a) run every per-stream callback in
  // enqueue order and (b) leave every stream idle once all external ops are
  // completed.
  std::mt19937_64 rng(GetParam());
  sim::EventLoop loop;
  GpuRuntime runtime(loop, 1);
  Gpu& dev = runtime.gpu(GpuId{0});

  constexpr int kStreams = 3;
  std::vector<Stream*> streams;
  std::vector<std::vector<int>> order(kStreams);
  std::vector<int> next_tag(kStreams, 0);
  for (int s = 0; s < kStreams; ++s) streams.push_back(&dev.create_stream());

  std::vector<std::shared_ptr<GpuEvent>> events;
  std::vector<std::pair<Stream*, ExternalOpToken>> externals;

  for (int op = 0; op < 120; ++op) {
    const int s = static_cast<int>(rng() % kStreams);
    Stream& stream = *streams[static_cast<std::size_t>(s)];
    const int tag = next_tag[static_cast<std::size_t>(s)]++;
    auto record_order = [&order, s, tag] { order[static_cast<std::size_t>(s)].push_back(tag); };
    switch (rng() % 5) {
      case 0:
        stream.enqueue_compute(1e-6 * static_cast<double>(rng() % 50), "k",
                               record_order);
        break;
      case 1:
        stream.enqueue_memcpy(1 + rng() % 4096, 1e9, record_order);
        break;
      case 2:
        stream.enqueue_callback(record_order);
        break;
      case 3: {
        // Record on this stream; a random other stream waits for it, which
        // can only delay, never deadlock (records precede their waits).
        auto ev = dev.create_event();
        stream.record_event(ev);
        stream.enqueue_callback(record_order);
        Stream& other = *streams[rng() % kStreams];
        other.wait_event(ev);
        events.push_back(ev);
        break;
      }
      case 4: {
        auto token = stream.enqueue_external("x");
        stream.enqueue_callback(record_order);
        externals.emplace_back(&stream, token);
        break;
      }
    }
  }
  // Complete external ops at staggered times.
  double t = 1e-5;
  for (auto& [stream, token] : externals) {
    loop.schedule_at(t, [stream = stream, token = token] {
      stream->complete_external(token);
    });
    t += 7e-6;
  }
  loop.run();

  for (int s = 0; s < kStreams; ++s) {
    EXPECT_TRUE(streams[static_cast<std::size_t>(s)]->idle()) << "stream " << s;
    // Callbacks fired in enqueue order.
    for (std::size_t i = 1; i < order[static_cast<std::size_t>(s)].size(); ++i) {
      EXPECT_LT(order[static_cast<std::size_t>(s)][i - 1],
                order[static_cast<std::size_t>(s)][i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzz, ::testing::Values(3, 17, 99, 424242));

}  // namespace
}  // namespace mccs::gpu
