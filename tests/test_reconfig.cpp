// Tests of the Fig.-4 runtime reconfiguration protocol: sequence-number
// barrier over the control ring, drain of in-flight collectives, connection
// update, and the safety property that no collective ever executes under
// mixed ring configurations — even when the reconfiguration command reaches
// different ranks at adversarially different times.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using svc::CommStrategy;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

struct ReconfigFixture : ::testing::Test {
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  CommId comm;
  std::vector<test::RankCtx> ranks;
  std::vector<gpu::DevicePtr> buf;
  std::size_t count = 1024;

  void SetUp() override {
    comm = create_comm(fabric, app, gpus);
    ranks = make_ranks(fabric, app, gpus);
    buf.resize(gpus.size());
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      buf[r] = ranks[r].shim->alloc(count * sizeof(float));
      auto s = fabric.gpus().typed<float>(buf[r], count);
      for (auto& x : s) x = 1.0f;
    }
  }

  /// Issue one in-place AllReduce on every rank; returns a counter that
  /// reaches 0 on completion.
  void issue_round(int& remaining) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                                ReduceOp::kSum, *ranks[r].stream,
                                [&remaining](Time) { --remaining; });
    }
  }

  CommStrategy reversed_strategy() {
    CommStrategy s = fabric.strategy_of(comm);
    for (auto& o : s.channel_orders) o = o.reversed();
    return s;
  }

  void expect_all_equal(float expected) {
    for (std::size_t r = 0; r < gpus.size(); ++r) {
      auto out = fabric.gpus().typed<float>(buf[r], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_FLOAT_EQ(out[i], expected) << "rank " << r << " elem " << i;
      }
    }
  }
};

TEST_F(ReconfigFixture, ReconfigureOnIdleCommunicatorSwapsStrategy) {
  const CommStrategy target = reversed_strategy();
  fabric.reconfigure(comm, target);
  fabric.loop().run();
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == target);
    EXPECT_FALSE(fabric.proxy_for(g).reconfig_in_progress(comm));
  }
}

TEST_F(ReconfigFixture, CollectivesIssuedDuringReconfigCompleteCorrectly) {
  int remaining = 4;
  issue_round(remaining);
  fabric.reconfigure(comm, reversed_strategy());
  int remaining2 = 4;
  issue_round(remaining2);
  ASSERT_TRUE(await(fabric, remaining));
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return remaining2 == 0; }));
  expect_all_equal(16.0f);  // two rounds of x4 each
}

TEST_F(ReconfigFixture, AdversarialDelaysStillProduceCorrectResults) {
  // Rank 0's command is delayed far beyond the others — the exact race of
  // Fig. 4: ranks 1..3 receive Req and issue the barrier AllGather while
  // rank 0 keeps launching.
  const CommStrategy target = reversed_strategy();
  int remaining = 4;
  issue_round(remaining);
  fabric.reconfigure(comm, target,
                     {millis(50), micros(1), micros(1), micros(1)});
  int remaining2 = 4;
  issue_round(remaining2);
  int remaining3 = 4;
  issue_round(remaining3);
  ASSERT_TRUE(fabric.loop().run_while_pending(
      [&] { return remaining == 0 && remaining2 == 0 && remaining3 == 0; }));
  expect_all_equal(64.0f);  // three rounds of x4
  fabric.loop().run();  // let the delayed command finish the reconfiguration
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == target);
  }
}

TEST_F(ReconfigFixture, BarrierAgreesOnMaxLaunchedSequence) {
  // Hold rank 3's command long enough that ranks 0..2 must wait for it; no
  // collectives in flight, so max = -1 everywhere and the update applies
  // as soon as the last rank contributes.
  const CommStrategy target = reversed_strategy();
  fabric.reconfigure(comm, target, {0.0, 0.0, 0.0, millis(10)});
  fabric.loop().run_until(millis(5));
  // Ranks 0-2 are still collecting (rank 3's value missing).
  EXPECT_TRUE(fabric.proxy_for(gpus[0]).reconfig_in_progress(comm));
  fabric.loop().run();
  for (GpuId g : gpus) {
    EXPECT_FALSE(fabric.proxy_for(g).reconfig_in_progress(comm));
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == target);
  }
}

TEST_F(ReconfigFixture, NoCollectiveExecutesUnderMixedConfigurations) {
  // Safety property: for every sequence number, the set of (sender ->
  // receiver) pairs observed on the wire must form exactly the ring of ONE
  // configuration, never a mixture. We detect mixtures indirectly but
  // completely: wrong pairings would mis-deliver chunks and corrupt the
  // numerical result, so repeated correct sums across many staggered
  // reconfigurations certify the property.
  float expected = 1.0f;
  std::vector<int> counters;
  counters.reserve(12);
  for (int round = 0; round < 12; ++round) {
    counters.push_back(4);
    issue_round(counters.back());
    expected *= 4.0f;
    if (round % 3 == 1) {
      // Stagger command arrival differently each time.
      std::vector<Time> delays{micros(100.0 * round), micros(5), millis(2),
                               micros(50)};
      std::rotate(delays.begin(), delays.begin() + round % 4, delays.end());
      fabric.reconfigure(comm, round % 2 ? reversed_strategy()
                                         : fabric.strategy_of(comm),
                         delays);
    }
  }
  ASSERT_TRUE(fabric.loop().run_while_pending([&] {
    for (int c : counters) {
      if (c != 0) return false;
    }
    return true;
  }));
  expect_all_equal(expected);
}

TEST_F(ReconfigFixture, ZeroOverheadWithoutReconfiguration) {
  // Time N rounds, then N rounds again — identical durations: the protocol
  // adds no fast-path cost when no reconfiguration is issued.
  const Time t0 = fabric.loop().now();
  int remaining = 4;
  issue_round(remaining);
  ASSERT_TRUE(await(fabric, remaining));
  const Time t1 = fabric.loop().now();
  int remaining2 = 4;
  issue_round(remaining2);
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return remaining2 == 0; }));
  const Time t2 = fabric.loop().now();
  const Time round1 = t1 - t0;
  const Time round2 = t2 - t1;
  EXPECT_NEAR(round2, round1, round1 * 0.05);
}

TEST_F(ReconfigFixture, ReconfigurationStallsAreBounded) {
  // A reconfiguration between rounds costs roughly the control barrier plus
  // the connection re-setup, not a multiple of the collective time.
  int r1 = 4;
  issue_round(r1);
  ASSERT_TRUE(await(fabric, r1));
  const Time baseline_start = fabric.loop().now();
  int r2 = 4;
  issue_round(r2);
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return r2 == 0; }));
  const Time baseline = fabric.loop().now() - baseline_start;

  fabric.reconfigure(comm, reversed_strategy());
  const Time reconf_start = fabric.loop().now();
  int r3 = 4;
  issue_round(r3);
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return r3 == 0; }));
  const Time with_reconf = fabric.loop().now() - reconf_start;

  const Time budget = fabric.config().connection_setup_time +
                      10 * fabric.config().control_hop_latency +
                      fabric.config().bootstrap_latency;
  EXPECT_LE(with_reconf, baseline + budget);
}

TEST_F(ReconfigFixture, DeferredRequestAppliesAfterCurrentOne) {
  const CommStrategy rev = reversed_strategy();
  const CommStrategy orig = fabric.strategy_of(comm);
  fabric.reconfigure(comm, rev);
  fabric.reconfigure(comm, orig);  // arrives while the first is in flight
  fabric.loop().run();
  for (GpuId g : gpus) {
    EXPECT_TRUE(fabric.proxy_for(g).strategy(comm) == orig);
    EXPECT_FALSE(fabric.proxy_for(g).reconfig_in_progress(comm));
  }
}

TEST_F(ReconfigFixture, EcmpPlacementRerollsAcrossUpdateEpochs) {
  // The connection epoch participates in the ECMP hash; verify it advances.
  const auto before = fabric.proxy_for(gpus[0]).last_completed(comm);
  EXPECT_EQ(before, -1);
  fabric.reconfigure(comm, reversed_strategy());
  fabric.loop().run();
  int remaining = 4;
  issue_round(remaining);
  ASSERT_TRUE(fabric.loop().run_while_pending([&] { return remaining == 0; }));
  expect_all_equal(4.0f);
}

}  // namespace
}  // namespace mccs
