#pragma once
// Shared test utilities: synchronous wrappers that drive the event loop
// until asynchronous service operations (communicator bootstrap, collective
// completion) finish.

#include <functional>
#include <vector>

#include "mccs/fabric.h"

namespace mccs::test {

/// Create a communicator over `gpus` (rank r = gpus[r]) for one app and run
/// the loop until every rank's service installed it.
inline CommId create_comm(svc::Fabric& fabric, AppId app,
                          const std::vector<GpuId>& gpus) {
  const svc::UniqueId uid = fabric.new_unique_id();
  int ready = 0;
  CommId comm;
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    svc::Shim& shim = fabric.connect(app, gpus[r]);
    shim.comm_init_rank(uid, static_cast<int>(gpus.size()), static_cast<int>(r),
                        [&ready, &comm](CommId id) {
                          comm = id;
                          ++ready;
                        });
  }
  const bool ok = fabric.loop().run_while_pending(
      [&] { return ready == static_cast<int>(gpus.size()); });
  MCCS_CHECK(ok, "communicator bootstrap did not complete");
  return comm;
}

/// Per-rank context for collective tests.
struct RankCtx {
  svc::Shim* shim = nullptr;
  gpu::Stream* stream = nullptr;
};

/// Connect shims and create one app stream per rank.
inline std::vector<RankCtx> make_ranks(svc::Fabric& fabric, AppId app,
                                       const std::vector<GpuId>& gpus) {
  std::vector<RankCtx> out;
  out.reserve(gpus.size());
  for (GpuId g : gpus) {
    svc::Shim& shim = fabric.connect(app, g);
    out.push_back(RankCtx{&shim, &shim.create_app_stream()});
  }
  return out;
}

/// Run the loop until `remaining` drops to zero (collective completions
/// decrement it) or the loop drains; returns true on success.
inline bool await(svc::Fabric& fabric, const int& remaining) {
  return fabric.loop().run_while_pending([&] { return remaining == 0; });
}

/// Fill a device buffer with a deterministic per-rank pattern.
template <class T>
void fill_pattern(svc::Fabric& fabric, gpu::DevicePtr ptr, std::size_t count,
                  int rank, int salt = 0) {
  auto span = fabric.gpus().typed<T>(ptr, count);
  for (std::size_t i = 0; i < count; ++i) {
    span[i] = static_cast<T>((rank + 1) * 1000 + static_cast<int>(i % 977) + salt);
  }
}

}  // namespace mccs::test
