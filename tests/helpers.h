#pragma once
// Shared test utilities: synchronous wrappers that drive the event loop
// until asynchronous service operations (communicator bootstrap, collective
// completion) finish.

#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "mccs/fabric.h"

namespace mccs::test {

/// Create a communicator over `gpus` (rank r = gpus[r]) for one app and run
/// the loop until every rank's service installed it.
inline CommId create_comm(svc::Fabric& fabric, AppId app,
                          const std::vector<GpuId>& gpus) {
  const svc::UniqueId uid = fabric.new_unique_id();
  int ready = 0;
  CommId comm;
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    svc::Shim& shim = fabric.connect(app, gpus[r]);
    shim.comm_init_rank(uid, static_cast<int>(gpus.size()), static_cast<int>(r),
                        [&ready, &comm](CommId id) {
                          comm = id;
                          ++ready;
                        });
  }
  const bool ok = fabric.loop().run_while_pending(
      [&] { return ready == static_cast<int>(gpus.size()); });
  MCCS_CHECK(ok, "communicator bootstrap did not complete");
  return comm;
}

/// Per-rank context for collective tests.
struct RankCtx {
  svc::Shim* shim = nullptr;
  gpu::Stream* stream = nullptr;
};

/// Connect shims and create one app stream per rank.
inline std::vector<RankCtx> make_ranks(svc::Fabric& fabric, AppId app,
                                       const std::vector<GpuId>& gpus) {
  std::vector<RankCtx> out;
  out.reserve(gpus.size());
  for (GpuId g : gpus) {
    svc::Shim& shim = fabric.connect(app, g);
    out.push_back(RankCtx{&shim, &shim.create_app_stream()});
  }
  return out;
}

/// Run the loop until `remaining` drops to zero (collective completions
/// decrement it) or the loop drains; returns true on success.
///
/// Guarded by a wall-clock deadline: a bug that keeps the loop busy forever
/// (a retry storm, a livelocked timer) would otherwise hang the whole test
/// binary. On timeout the fabric's full diagnostic state (flows, link
/// states, per-communicator progress, transport retry counters) is dumped
/// to stderr and the await fails instead of hanging.
inline bool await_until(svc::Fabric& fabric, const std::function<bool()>& done,
                        std::chrono::seconds wall_budget = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + wall_budget;
  std::uint64_t steps = 0;
  bool timed_out = false;
  fabric.loop().run_while_pending([&] {
    if (done()) return true;
    // Check the wall clock every 4096 events — cheap enough to leave on.
    if ((++steps & 0xFFFu) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      return true;
    }
    return false;
  });
  if (timed_out && !done()) {
    std::cerr << "test::await: wall-clock deadline (" << wall_budget.count()
              << "s) exceeded\n";
    fabric.debug_dump(std::cerr);
    return false;
  }
  return done();
}

inline bool await(svc::Fabric& fabric, const int& remaining,
                  std::chrono::seconds wall_budget = std::chrono::seconds(30)) {
  return await_until(fabric, [&remaining] { return remaining == 0; },
                     wall_budget);
}

/// Fill a device buffer with a deterministic per-rank pattern.
template <class T>
void fill_pattern(svc::Fabric& fabric, gpu::DevicePtr ptr, std::size_t count,
                  int rank, int salt = 0) {
  auto span = fabric.gpus().typed<T>(ptr, count);
  for (std::size_t i = 0; i < count; ++i) {
    span[i] = static_cast<T>((rank + 1) * 1000 + static_cast<int>(i % 977) + salt);
  }
}

}  // namespace mccs::test
