#include "netsim/network.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "netsim/routing.h"
#include "netsim/topology.h"
#include "sim/event_loop.h"

namespace mccs::net {
namespace {

// Two hosts connected through one switch, 10 Gbps each way.
struct SimplePair {
  Topology topo;
  NodeId a, b, sw;
  SimplePair() {
    a = topo.add_host("a", RackId{0});
    b = topo.add_host("b", RackId{0});
    sw = topo.add_switch(NodeKind::kLeafSwitch, "sw");
    topo.add_duplex_link(a, sw, gbps(10));
    topo.add_duplex_link(b, sw, gbps(10));
  }
};

TEST(Topology, FindLinkReturnsAddedLinks) {
  SimplePair t;
  EXPECT_TRUE(t.topo.find_link(t.a, t.sw).valid());
  EXPECT_TRUE(t.topo.find_link(t.sw, t.a).valid());
  EXPECT_FALSE(t.topo.find_link(t.a, t.b).valid());
}

TEST(Topology, HostsListsOnlyHosts) {
  SimplePair t;
  const auto hosts = t.topo.hosts();
  EXPECT_EQ(hosts.size(), 2u);
}

TEST(Routing, SingleShortestPath) {
  SimplePair t;
  Routing routing(t.topo);
  const auto& ps = routing.paths(t.a, t.b);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].size(), 2u);  // a->sw, sw->b
}

TEST(Routing, SpineLeafEnumeratesAllSpinePaths) {
  cluster::SpineLeafSpec spec;
  spec.num_spines = 4;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 1;
  spec.gpus_per_host = 1;
  spec.nics_per_host = 1;
  auto cl = cluster::make_spine_leaf(spec);
  Routing routing(cl.topology());
  const NodeId src = cl.host(HostId{0}).nic_nodes[0];
  const NodeId dst = cl.host(HostId{1}).nic_nodes[0];
  const auto& ps = routing.paths(src, dst);
  // One equal-cost path per spine.
  EXPECT_EQ(ps.size(), 4u);
  for (const auto& p : ps) EXPECT_EQ(p.size(), 4u);  // nic-leaf-spine-leaf-nic
}

TEST(Routing, SameRackPathDoesNotTouchSpines) {
  auto cl = cluster::make_testbed();
  Routing routing(cl.topology());
  const NodeId src = cl.host(HostId{0}).nic_nodes[0];
  const NodeId dst = cl.host(HostId{1}).nic_nodes[0];  // same rack
  const auto& ps = routing.paths(src, dst);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].size(), 2u);
}

TEST(Routing, RouteIdSelectsDeterministically) {
  cluster::SpineLeafSpec spec;
  spec.num_spines = 4;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 1;
  auto cl = cluster::make_spine_leaf(spec);
  Routing routing(cl.topology());
  const NodeId src = cl.host(HostId{0}).nic_nodes[0];
  const NodeId dst = cl.host(HostId{1}).nic_nodes[0];
  const auto& p0 = routing.by_route_id(src, dst, RouteId{0});
  const auto& p1 = routing.by_route_id(src, dst, RouteId{1});
  const auto& p4 = routing.by_route_id(src, dst, RouteId{4});  // wraps
  EXPECT_NE(p0, p1);
  EXPECT_EQ(p0, p4);
}

TEST(Routing, EcmpIsDeterministicPerKey) {
  cluster::SpineLeafSpec spec;
  spec.num_spines = 8;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 1;
  auto cl = cluster::make_spine_leaf(spec);
  Routing routing(cl.topology());
  const NodeId src = cl.host(HostId{0}).nic_nodes[0];
  const NodeId dst = cl.host(HostId{1}).nic_nodes[0];
  EXPECT_EQ(routing.by_ecmp(src, dst, 42), routing.by_ecmp(src, dst, 42));
  // Different keys spread over multiple paths.
  std::set<const Path*> seen;
  for (std::uint64_t k = 0; k < 64; ++k) seen.insert(&routing.by_ecmp(src, dst, k));
  EXPECT_GT(seen.size(), 1u);
}

TEST(Network, SingleFlowGetsFullLinkRate) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time done = -1.0;
  net.start_flow({.src = t.a,
                  .dst = t.b,
                  .size = 1250000000ull,  // 1.25e9 B = 1 s at 10 Gbps
                  .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(Network, TwoFlowsShareBottleneckFairly) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time d1 = -1, d2 = -1;
  const Bytes size = 1250000000ull;  // 1 s alone
  net.start_flow({.src = t.a, .dst = t.b, .size = size,
                  .on_complete = [&](FlowId, Time at) { d1 = at; }});
  net.start_flow({.src = t.a, .dst = t.b, .size = size,
                  .on_complete = [&](FlowId, Time at) { d2 = at; }});
  loop.run();
  EXPECT_NEAR(d1, 2.0, 1e-6);
  EXPECT_NEAR(d2, 2.0, 1e-6);
}

TEST(Network, ShorterFlowFinishesThenLongerSpeedsUp) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time d_small = -1, d_big = -1;
  net.start_flow({.src = t.a, .dst = t.b, .size = 625000000ull,  // 0.5 s alone
                  .on_complete = [&](FlowId, Time at) { d_small = at; }});
  net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull,
                  .on_complete = [&](FlowId, Time at) { d_big = at; }});
  loop.run();
  // Small: 0.5e9/ (B/2)... shares until done at t=1.0; big then finishes the
  // remaining 0.625e9 at full rate: 1.0 + 0.5 = 1.5.
  EXPECT_NEAR(d_small, 1.0, 1e-6);
  EXPECT_NEAR(d_big, 1.5, 1e-6);
}

TEST(Network, RateCapLimitsFlow) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time done = -1;
  net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull,
                  .rate_cap = gbps(5),
                  .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.run();
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(Network, CapLeftoverGoesToOtherFlows) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time d1 = -1, d2 = -1;
  net.start_flow({.src = t.a, .dst = t.b, .size = 250000000ull,  // capped at 2G
                  .rate_cap = gbps(2),
                  .on_complete = [&](FlowId, Time at) { d1 = at; }});
  net.start_flow({.src = t.a, .dst = t.b, .size = 1000000000ull,  // gets 8G
                  .on_complete = [&](FlowId, Time at) { d2 = at; }});
  loop.run();
  EXPECT_NEAR(d1, 1.0, 1e-6);
  EXPECT_NEAR(d2, 1.0, 1e-6);
}

TEST(Network, BackgroundFlowHasStrictPriority) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  net.start_flow({.src = t.a, .dst = t.b, .background_demand = gbps(7.5), .on_complete = {}});
  Time done = -1;
  // Normal flow gets the residual 2.5 Gbps, not a fair half.
  net.start_flow({.src = t.a, .dst = t.b, .size = 312500000ull,  // 1 s at 2.5G
                  .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.run_until(5.0);
  EXPECT_NEAR(done, 1.0, 1e-6);
}

TEST(Network, StartLatencyDelaysTransfer) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time done = -1;
  net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull,
                  .start_latency = 0.25,
                  .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.run();
  EXPECT_NEAR(done, 1.25, 1e-6);
}

TEST(Network, PauseFreezesProgressResumeContinues) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time done = -1;
  const FlowId f = net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull,
                                   .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.schedule_at(0.5, [&] { net.pause_flow(f); });
  loop.schedule_at(1.5, [&] { net.resume_flow(f); });
  loop.run();
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(Network, CancelledFlowNeverCompletes) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  bool completed = false;
  const FlowId f = net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull,
                                   .on_complete = [&](FlowId, Time) { completed = true; }});
  loop.schedule_at(0.5, [&] { net.cancel_flow(f); });
  loop.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST(Network, LinkThroughputSumsFlowRates) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull, .on_complete = {}});
  net.start_flow({.src = t.a, .dst = t.b, .size = 1250000000ull, .on_complete = {}});
  const LinkId l = t.topo.find_link(t.a, t.sw);
  EXPECT_NEAR(net.link_throughput(l), gbps(10), 1.0);
  EXPECT_EQ(net.link_flow_count(l), 2u);
}

TEST(Network, EcmpCollisionHalvesThroughputExplicitRoutesAvoidIt) {
  // Two hosts, two equal-cost paths. With explicit distinct routes both
  // flows run at full speed; a deliberate collision halves each.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 2;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 1;
  spec.nics_per_host = 2;
  spec.nic_link = gbps(10);
  spec.fabric_link = gbps(10);
  auto cl = cluster::make_spine_leaf(spec);
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a0 = cl.host(HostId{0}).nic_nodes[0];
  const NodeId a1 = cl.host(HostId{0}).nic_nodes[1];
  const NodeId b0 = cl.host(HostId{1}).nic_nodes[0];
  const NodeId b1 = cl.host(HostId{1}).nic_nodes[1];

  Time d1 = -1, d2 = -1;
  const Bytes size = 1250000000ull;  // 1 s at 10G
  net.start_flow({.src = a0, .dst = b0, .size = size, .route = RouteId{0},
                  .on_complete = [&](FlowId, Time at) { d1 = at; }});
  net.start_flow({.src = a1, .dst = b1, .size = size, .route = RouteId{1},
                  .on_complete = [&](FlowId, Time at) { d2 = at; }});
  loop.run();
  EXPECT_NEAR(d1, 1.0, 1e-6);
  EXPECT_NEAR(d2, 1.0, 1e-6);

  // Now collide both on route 0: each leaf-spine link is shared.
  d1 = d2 = -1;
  const Time t0 = loop.now();
  net.start_flow({.src = a0, .dst = b0, .size = size, .route = RouteId{0},
                  .on_complete = [&](FlowId, Time at) { d1 = at - t0; }});
  net.start_flow({.src = a1, .dst = b1, .size = size, .route = RouteId{0},
                  .on_complete = [&](FlowId, Time at) { d2 = at - t0; }});
  loop.run();
  EXPECT_NEAR(d1, 2.0, 1e-6);
  EXPECT_NEAR(d2, 2.0, 1e-6);
}

TEST(Network, LinkIndexMatchesShadowScanUnderChurn) {
  // The O(1) per-link index (link_throughput / link_flow_count) must agree
  // with a brute-force scan over all active flows at every instant, through
  // starts, latent activations, pauses, resumes, cancels and completions —
  // in both the incremental and the reference engine.
  for (const bool incremental : {true, false}) {
    auto cl = cluster::make_testbed();
    const auto& topo = cl.topology();
    sim::EventLoop loop;
    Network net(loop, topo, Network::Options{incremental});
    Rng rng(incremental ? 0xC0FFEEull : 0xBEEFull);
    const auto hosts = topo.hosts();

    struct Shadow {
      FlowId id;
      Path path;
      Time active_from;  ///< start time + latency
      bool paused = false;
      bool background = false;
    };
    std::vector<Shadow> shadows;
    std::set<std::uint32_t> completed;

    auto verify = [&](Time now) {
      for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
        const LinkId link{l};
        double expect_tp = 0.0;
        std::size_t expect_cnt = 0;
        for (const Shadow& s : shadows) {
          if (completed.count(s.id.get()) > 0) continue;
          if (s.paused || s.active_from > now) continue;
          bool on_link = false;
          for (LinkId pl : s.path) on_link = on_link || pl == link;
          if (!on_link) continue;
          expect_tp += net.flow_rate(s.id);
          if (!s.background) ++expect_cnt;
        }
        EXPECT_NEAR(net.link_throughput(link), expect_tp, 1e-3)
            << "link " << l << " incremental=" << incremental;
        EXPECT_EQ(net.link_flow_count(link), expect_cnt)
            << "link " << l << " incremental=" << incremental;
      }
    };

    for (int step = 0; step < 60; ++step) {
      const Time now = step * 0.002;
      loop.run_until(now);
      const double dice = rng.uniform();
      if (dice < 0.55 || shadows.empty()) {
        const NodeId src = hosts[rng.below(hosts.size())];
        NodeId dst = hosts[rng.below(hosts.size())];
        if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
        FlowSpec spec;
        spec.src = src;
        spec.dst = dst;
        const bool background = rng.uniform() < 0.15;
        if (background) {
          spec.background_demand = gbps(5 + rng.uniform() * 20);
        } else {
          spec.size = 1 + rng.below(50'000'000);
          spec.start_latency = rng.uniform() < 0.3 ? rng.uniform() * 0.004 : 0.0;
        }
        spec.ecmp_key = rng.engine()();
        spec.on_complete = [&completed](FlowId id, Time) {
          completed.insert(id.get());
        };
        const Time latency = spec.start_latency;
        const FlowId id = net.start_flow(std::move(spec));
        shadows.push_back(Shadow{id, net.flow_path(id).to_path(), now + latency,
                                 false, background});
      } else {
        const std::size_t pick = rng.below(shadows.size());
        Shadow& s = shadows[pick];
        if (completed.count(s.id.get()) > 0) continue;
        if (dice < 0.7 && !s.background) {
          if (s.paused) {
            net.resume_flow(s.id);
            s.paused = false;
          } else {
            net.pause_flow(s.id);
            s.paused = true;
          }
        } else if (dice < 0.8) {
          net.cancel_flow(s.id);
          shadows.erase(shadows.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      verify(now);
    }
  }
}

TEST(Network, MaxMinAllocationOnOversubscribedFabric) {
  // Testbed: intra-rack flow (host0->host1) and cross-rack flow share
  // nothing; cross-rack bottleneck is the 50G fabric link.
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId h0 = cl.host(HostId{0}).nic_nodes[0];
  const NodeId h1 = cl.host(HostId{1}).nic_nodes[0];
  const NodeId h2 = cl.host(HostId{2}).nic_nodes[0];
  Time d_intra = -1, d_cross = -1;
  const Bytes size = 6250000000ull;  // 1 s at 50G
  net.start_flow({.src = h0, .dst = h1, .size = size, .route = RouteId{0},
                  .on_complete = [&](FlowId, Time at) { d_intra = at; }});
  net.start_flow({.src = h0, .dst = h2, .size = size, .route = RouteId{0},
                  .on_complete = [&](FlowId, Time at) { d_cross = at; }});
  loop.run();
  // Both flows leave h0 via the same 50G NIC link -> share it.
  EXPECT_NEAR(d_intra, 2.0, 1e-6);
  EXPECT_NEAR(d_cross, 2.0, 1e-6);
}

TEST(Network, LinkDownStallsFlowAndRestoreResumes) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  Time done = -1.0;
  const FlowId f =
      net.start_flow({.src = t.a,
                      .dst = t.b,
                      .size = 1250000000ull,  // 1 s at 10 Gbps
                      .on_complete = [&](FlowId, Time at) { done = at; }});
  const LinkId up = t.topo.find_link(t.a, t.sw);
  loop.run_until(0.25);  // 25% transferred
  net.set_link_state(up, LinkState::kDown);
  EXPECT_EQ(net.link_state(up), LinkState::kDown);
  // A dead link stalls the flow at rate 0 — it must never silently complete.
  loop.run_until(10.0);
  EXPECT_LT(done, 0.0);
  EXPECT_TRUE(net.flow_active(f));
  EXPECT_EQ(net.flow_rate(f), 0.0);
  net.set_link_state(up, LinkState::kUp);
  loop.run();
  EXPECT_NEAR(done, 10.75, 1e-6);  // 0.75 s of payload remained at restore
}

TEST(Network, DegradedLinkRescalesCapacity) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  const LinkId up = t.topo.find_link(t.a, t.sw);
  net.set_link_state(up, LinkState::kDegraded, 0.5);
  EXPECT_EQ(net.link_state(up), LinkState::kDegraded);
  EXPECT_EQ(net.link_capacity_fraction(up), 0.5);
  Time done = -1.0;
  net.start_flow({.src = t.a,
                  .dst = t.b,
                  .size = 1250000000ull,  // 1 s at full rate
                  .on_complete = [&](FlowId, Time at) { done = at; }});
  loop.run();
  EXPECT_NEAR(done, 2.0, 1e-6);  // half capacity -> twice the time
}

TEST(Network, UnsatisfiableAllocationReportsTypedError) {
  SimplePair t;
  sim::EventLoop loop;
  Network net(loop, t.topo);
  int reports = 0;
  std::vector<FlowId> reported;
  net.set_allocation_error_handler([&](const AllocationError& err) {
    ++reports;
    reported = err.flows;
  });
  // A subnormal weight overflows residual/weight to infinity during
  // progressive filling — the allocation cannot be satisfied. The engine
  // must pin the flow at rate 0 and report, not abort the process.
  const FlowId f = net.start_flow({.src = t.a,
                                   .dst = t.b,
                                   .size = 1000,
                                   .weight = 1e-320,
                                   .on_complete = [](FlowId, Time) {}});
  loop.run_until(1.0);
  EXPECT_GE(net.allocation_error_count(), 1u);
  EXPECT_GE(reports, 1);
  ASSERT_FALSE(reported.empty());
  EXPECT_EQ(reported.front(), f);
  EXPECT_TRUE(net.flow_active(f));  // pinned, not silently completed
  EXPECT_EQ(net.flow_rate(f), 0.0);
}

}  // namespace
}  // namespace mccs::net
