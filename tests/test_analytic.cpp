// Analytic validation: for large messages the measured collective times must
// match the closed-form alpha-beta predictions of the ring and tree
// algorithms on the known topology — the simulator is only trustworthy if
// its numbers are derivable, not just plausible.

#include <gtest/gtest.h>

#include "baseline/nccl_model.h"
#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "policy/ring_config.h"

namespace mccs {
namespace {

/// Run one timing-only collective and return its duration.
Time timed_collective(svc::Fabric& fabric, AppId app,
                      const std::vector<GpuId>& gpus, CommId comm,
                      coll::CollectiveKind kind, Bytes bytes) {
  auto ranks = test::make_ranks(fabric, app, gpus);
  const int n = static_cast<int>(gpus.size());
  const std::size_t out_elems = bytes / sizeof(float);
  const std::size_t count = kind == coll::CollectiveKind::kAllGather
                                ? out_elems / static_cast<std::size_t>(n)
                                : out_elems;
  std::vector<gpu::DevicePtr> send(gpus.size()), recv(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    const Bytes sb = kind == coll::CollectiveKind::kReduceScatter
                         ? count * n * sizeof(float)
                         : count * sizeof(float);
    const Bytes rb = kind == coll::CollectiveKind::kAllGather
                         ? count * n * sizeof(float)
                         : count * sizeof(float);
    send[r] = ranks[r].shim->alloc(sb);
    recv[r] = ranks[r].shim->alloc(rb);
  }
  int remaining = n;
  Time done = 0;
  const Time t0 = fabric.loop().now();
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    switch (kind) {
      case coll::CollectiveKind::kAllReduce:
        ranks[r].shim->all_reduce(comm, send[r], recv[r], count,
                                  coll::DataType::kFloat32, coll::ReduceOp::kSum,
                                  *ranks[r].stream, [&](Time t) {
                                    done = t;
                                    --remaining;
                                  });
        break;
      case coll::CollectiveKind::kAllGather:
        ranks[r].shim->all_gather(comm, send[r], recv[r], count,
                                  coll::DataType::kFloat32, *ranks[r].stream,
                                  [&](Time t) {
                                    done = t;
                                    --remaining;
                                  });
        break;
      default:
        ADD_FAILURE() << "unsupported kind in this helper";
    }
  }
  EXPECT_TRUE(test::await(fabric, remaining));
  return done - t0;
}

svc::Fabric timing_fabric() {
  svc::Fabric::Options options;
  options.config = baseline::nccl_library_config();  // minimal latencies
  options.config.move_data = false;
  options.gpu_config.materialize_memory = false;
  return svc::Fabric{cluster::make_testbed(), options};
}

TEST(AnalyticBandwidth, RingAllReduce4GpuMatchesAlphaBetaModel) {
  // 4 hosts, 1 GPU each, optimal ring, no contention: every inter-host ring
  // edge runs at the 50 Gbps vNIC rate. T ~= 2(n-1) * (S/n) / B.
  auto fabric = timing_fabric();
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return policy::locality_aware_strategy(info.gpus, fabric.cluster());
  });
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const AppId app{1};
  const CommId comm = test::create_comm(fabric, app, gpus);
  const Bytes size = 256_MB;
  const Time t = timed_collective(fabric, app, gpus, comm,
                                  coll::CollectiveKind::kAllReduce, size);
  const double predicted = 2.0 * 3 / 4 * static_cast<double>(size) / gbps(50);
  EXPECT_NEAR(t, predicted, predicted * 0.05);
}

TEST(AnalyticBandwidth, RingAllGather4GpuMatchesAlphaBetaModel) {
  auto fabric = timing_fabric();
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return policy::locality_aware_strategy(info.gpus, fabric.cluster());
  });
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const AppId app{1};
  const CommId comm = test::create_comm(fabric, app, gpus);
  const Bytes size = 256_MB;  // output buffer size
  const Time t = timed_collective(fabric, app, gpus, comm,
                                  coll::CollectiveKind::kAllGather, size);
  const double predicted = 3.0 / 4 * static_cast<double>(size) / gbps(50);
  EXPECT_NEAR(t, predicted, predicted * 0.05);
}

TEST(AnalyticBandwidth, SmallMessageLatencyMatchesStepModel) {
  // Latency-bound regime: T ~= steps * per-step latency. With the library
  // config, per step = network hop (5us) + transport overhead (6us).
  auto fabric = timing_fabric();
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return policy::locality_aware_strategy(info.gpus, fabric.cluster());
  });
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const AppId app{1};
  const CommId comm = test::create_comm(fabric, app, gpus);
  const Time t = timed_collective(fabric, app, gpus, comm,
                                  coll::CollectiveKind::kAllReduce, 4_KB);
  const double per_step = micros(5) + micros(6);
  const double steps = 2.0 * (4 - 1);
  // Launch overhead + per-step latencies dominate; transfer time ~ 0.
  EXPECT_GT(t, steps * per_step);
  EXPECT_LT(t, steps * per_step + micros(60));
}

TEST(AnalyticBandwidth, TreeAllReduceLargeMessageMatchesRootBottleneck) {
  // The tree root receives the full buffer from each child and sends it back
  // down: with 2 children on distinct hosts and pipelining, the bottleneck
  // is the root's NIC: T ~= 2 * S_child_volume / B with 2 children sharing.
  auto fabric = timing_fabric();
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    svc::CommStrategy s = policy::locality_aware_strategy(info.gpus, fabric.cluster());
    s.algorithm = coll::Algorithm::kTree;
    s.tree_pipeline_chunks = 16;
    return s;
  });
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}};  // 3 hosts
  const AppId app{1};
  const CommId comm = test::create_comm(fabric, app, gpus);
  const Bytes size = 64_MB;
  const Time t = timed_collective(fabric, app, gpus, comm,
                                  coll::CollectiveKind::kAllReduce, size);
  // Root (rank 0) ingests S from each of 2 children over one 50G NIC, then
  // egresses S to each: 2S in + 2S out, in+out are separate link directions,
  // and the reduce phase pipelines with the broadcast phase per chunk:
  // lower bound 2S/B, generous upper bound 4S/B + slack.
  const double s_over_b = static_cast<double>(size) / gbps(50);
  EXPECT_GT(t, 2.0 * s_over_b * 0.95);
  EXPECT_LT(t, 4.0 * s_over_b * 1.2);
}

TEST(AnalyticBandwidth, EcmpCollisionExactlyHalvesRingThroughput) {
  // Force both 8-GPU channels' cross-rack flows onto spine 0 via explicit
  // routes: the collective must take exactly twice as long as the separated
  // assignment.
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3},
                                GpuId{4}, GpuId{5}, GpuId{6}, GpuId{7}};
  auto run_with_routes = [&](RouteId r0, RouteId r1) {
    auto fabric = timing_fabric();
    fabric.set_strategy_provider([&, r0, r1](const svc::CommInfo& info) {
      svc::CommStrategy s =
          policy::locality_aware_strategy(info.gpus, fabric.cluster());
      // Assign channel 0's inter-host connections route r0, channel 1's r1.
      for (int c = 0; c < s.num_channels(); ++c) {
        const auto& order = s.channel_orders[static_cast<std::size_t>(c)];
        for (int p = 0; p < 8; ++p) {
          s.routes[svc::CommStrategy::route_key(c, order.rank_at(p),
                                                order.rank_at(p + 1))] =
              c == 0 ? r0 : r1;
        }
      }
      return s;
    });
    const AppId app{1};
    const CommId comm = test::create_comm(fabric, app, gpus);
    return timed_collective(fabric, app, gpus, comm,
                            coll::CollectiveKind::kAllReduce, 128_MB);
  };
  const Time separated = run_with_routes(RouteId{0}, RouteId{1});
  const Time collided = run_with_routes(RouteId{0}, RouteId{0});
  EXPECT_NEAR(collided / separated, 2.0, 0.05);
}

}  // namespace
}  // namespace mccs
