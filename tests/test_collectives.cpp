#include "collectives/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "collectives/types.h"

namespace mccs::coll {
namespace {

// --- RingOrder ----------------------------------------------------------------

TEST(RingOrder, IdentityMapsPositionsToRanks) {
  auto o = RingOrder::identity(4);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(o.rank_at(p), p);
  EXPECT_EQ(o.rank_at(4), 0);   // wraps
  EXPECT_EQ(o.rank_at(-1), 3);  // wraps backwards
}

TEST(RingOrder, PositionOfInvertsRankAt) {
  RingOrder o({2, 0, 3, 1});
  for (int p = 0; p < 4; ++p) EXPECT_EQ(o.position_of(o.rank_at(p)), p);
}

TEST(RingOrder, NextAndPrevFollowTheRing) {
  RingOrder o({2, 0, 3, 1});
  EXPECT_EQ(o.next_rank(2), 0);
  EXPECT_EQ(o.next_rank(1), 2);  // wrap
  EXPECT_EQ(o.prev_rank(2), 1);
}

TEST(RingOrder, ReversedReversesTraversal) {
  RingOrder o({2, 0, 3, 1});
  auto r = o.reversed();
  EXPECT_EQ(r.next_rank(0), 2);
  EXPECT_EQ(o.prev_rank(0), 2);
}

TEST(RingOrder, RejectsNonPermutations) {
  EXPECT_THROW(RingOrder({0, 0, 1}), mccs::ContractViolation);
  EXPECT_THROW(RingOrder({0, 1, 5}), mccs::ContractViolation);
}

// --- chunk ranges ----------------------------------------------------------------

TEST(ChunkRange, PartitionsExactlyWithoutOverlap) {
  for (std::size_t total : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (std::size_t n : {1ul, 3ul, 4ul, 8ul}) {
      std::size_t covered = 0;
      for (std::size_t c = 0; c < n; ++c) {
        const auto r = chunk_range(total, n, c);
        EXPECT_EQ(r.begin_elem, covered);
        covered += r.count_elem;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

// --- schedule simulation ------------------------------------------------------------
// Execute a schedule abstractly on per-rank chunk "ledgers" to prove data
// correctness properties independent of the service implementation.

using Ledger = std::vector<std::map<int, int>>;  // per chunk: {input rank: count}

Ledger run_ring(int n, CollectiveKind kind,
                const std::vector<int>& order_vec, int root = 0) {
  RingOrder order(order_vec);
  // state[rank][chunk] = multiset of contributions (input rank -> count).
  std::vector<Ledger> state(static_cast<std::size_t>(n),
                            Ledger(static_cast<std::size_t>(n)));
  for (int r = 0; r < n; ++r) {
    const int p = order.position_of(r);
    switch (kind) {
      case CollectiveKind::kAllReduce:
      case CollectiveKind::kReduceScatter:
        for (int c = 0; c < n; ++c) state[r][static_cast<std::size_t>(c)][r] = 1;
        break;
      case CollectiveKind::kAllGather: {
        const std::size_t own =
            chunk_to_buffer_index(kind, order, static_cast<std::size_t>(p));
        state[r][own][r] = 1;
        break;
      }
      case CollectiveKind::kBroadcast:
        if (r == root) {
          for (int c = 0; c < n; ++c) state[r][static_cast<std::size_t>(c)][root] = 1;
        }
        break;
      default:
        break;
    }
  }

  std::vector<std::vector<RingStep>> steps(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const int p = order.position_of(r);
    switch (kind) {
      case CollectiveKind::kAllReduce: steps[r] = ring_allreduce_steps(n, p); break;
      case CollectiveKind::kAllGather: steps[r] = ring_allgather_steps(n, p); break;
      case CollectiveKind::kReduceScatter:
        steps[r] = ring_reducescatter_steps(n, p);
        break;
      case CollectiveKind::kBroadcast: {
        const int rel = ((p - order.position_of(root)) % n + n) % n;
        steps[r] = ring_broadcast_steps(n, rel);
        break;
      }
      default:
        break;
    }
  }

  // Message-driven execution mirroring the service executor: each rank walks
  // its steps in order; a send is applied at the receiver immediately and
  // tagged; a step completes once its send is out and its recv tag arrived.
  std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
  std::vector<bool> sent(static_cast<std::size_t>(n), false);
  std::vector<std::set<int>> arrived(static_cast<std::size_t>(n));
  bool progress = true;
  auto all_done = [&] {
    for (int r = 0; r < n; ++r)
      if (cur[static_cast<std::size_t>(r)] < steps[r].size()) return false;
    return true;
  };
  while (!all_done()) {
    EXPECT_TRUE(progress) << "schedule deadlocked";
    if (!progress) break;
    progress = false;
    for (int r = 0; r < n; ++r) {
      auto& c = cur[static_cast<std::size_t>(r)];
      if (c >= steps[r].size()) continue;
      const RingStep& st = steps[r][c];
      if (st.has_send() && !sent[static_cast<std::size_t>(r)]) {
        const std::size_t buf = chunk_to_buffer_index(kind, order, st.send_chunk);
        const int dst = order.next_rank(r);
        auto& dst_chunk = state[dst][buf];
        if (st.reduce) {
          for (auto& [who, cnt] : state[r][buf]) dst_chunk[who] += cnt;
        } else {
          dst_chunk = state[r][buf];
        }
        arrived[static_cast<std::size_t>(dst)].insert(st.send_tag);
        sent[static_cast<std::size_t>(r)] = true;
        progress = true;
      }
      const bool send_ok = !st.has_send() || sent[static_cast<std::size_t>(r)];
      const bool recv_ok =
          !st.has_recv() || arrived[static_cast<std::size_t>(r)].count(st.recv_tag) > 0;
      if (send_ok && recv_ok) {
        ++c;
        sent[static_cast<std::size_t>(r)] = false;
        progress = true;
      }
    }
  }

  // Flatten: per rank, map keyed chunk*n + contributor -> count.
  Ledger out(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      for (auto& [who, cnt] : state[r][static_cast<std::size_t>(c)]) {
        out[r][c * n + who] = cnt;
      }
    }
  }
  return out;
}

class RingScheduleP : public ::testing::TestWithParam<int> {};

TEST_P(RingScheduleP, AllReduceEveryRankSumsEveryInputExactlyOnce) {
  const int n = GetParam();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto state = run_ring(n, CollectiveKind::kAllReduce, order);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      for (int who = 0; who < n; ++who) {
        EXPECT_EQ(state[r].at(c * n + who), 1)
            << "rank " << r << " chunk " << c << " contributor " << who;
      }
    }
  }
}

TEST_P(RingScheduleP, AllReduceCorrectUnderArbitraryRingOrder) {
  const int n = GetParam();
  // A rotated+reversed permutation exercises non-identity orders.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::rotate(order.begin(), order.begin() + 1, order.end());
  std::reverse(order.begin() + 1, order.end());
  auto state = run_ring(n, CollectiveKind::kAllReduce, order);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      for (int who = 0; who < n; ++who)
        EXPECT_EQ(state[r].at(c * n + who), 1);
}

TEST_P(RingScheduleP, AllGatherEveryRankHoldsEveryContribution) {
  const int n = GetParam();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::rotate(order.begin(), order.begin() + n / 2, order.end());
  auto state = run_ring(n, CollectiveKind::kAllGather, order);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      // Buffer chunk c must hold exactly rank c's contribution.
      EXPECT_EQ(state[r].count(c * n + c), 1u) << "rank " << r << " chunk " << c;
      EXPECT_EQ(state[r].at(c * n + c), 1);
      for (int who = 0; who < n; ++who) {
        if (who != c) {
          EXPECT_EQ(state[r].count(c * n + who), 0u);
        }
      }
    }
  }
}

TEST_P(RingScheduleP, ReduceScatterOwnedChunkHasAllContributions) {
  const int n = GetParam();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto state = run_ring(n, CollectiveKind::kReduceScatter, order);
  RingOrder ro(order);
  for (int r = 0; r < n; ++r) {
    const int p = ro.position_of(r);
    const std::size_t owned_pos = reducescatter_owned_chunk(n, p);
    const std::size_t buf = chunk_to_buffer_index(CollectiveKind::kReduceScatter, ro, owned_pos);
    EXPECT_EQ(buf, static_cast<std::size_t>(r)) << "owned chunk must be own rank";
    for (int who = 0; who < n; ++who) {
      EXPECT_EQ(state[r].at(static_cast<int>(buf) * n + who), 1)
          << "rank " << r << " contributor " << who;
    }
  }
}

TEST_P(RingScheduleP, BroadcastDeliversRootDataEverywhere) {
  const int n = GetParam();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const int root = n / 2;
  auto state = run_ring(n, CollectiveKind::kBroadcast, order, root);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_EQ(state[r].at(c * n + root), 1) << "rank " << r << " chunk " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingScheduleP, ::testing::Values(2, 3, 4, 5, 8, 16));

// --- step counts ----------------------------------------------------------------

TEST(RingSchedules, AllReduceHasTwoNMinusTwoSteps) {
  EXPECT_EQ(ring_allreduce_steps(8, 3).size(), 14u);
}
TEST(RingSchedules, AllGatherHasNMinusOneSteps) {
  EXPECT_EQ(ring_allgather_steps(8, 3).size(), 7u);
}
TEST(RingSchedules, ReduceScatterStepsReduce) {
  for (const auto& s : ring_reducescatter_steps(4, 1)) EXPECT_TRUE(s.reduce);
}
TEST(RingSchedules, AllGatherStepsCopy) {
  for (const auto& s : ring_allgather_steps(4, 1)) EXPECT_FALSE(s.reduce);
}

// --- bandwidth math ----------------------------------------------------------------

TEST(BandwidthMath, BusBandwidthFactorsMatchNcclTests) {
  EXPECT_DOUBLE_EQ(bus_bandwidth_factor(CollectiveKind::kAllReduce, 8), 2.0 * 7 / 8);
  EXPECT_DOUBLE_EQ(bus_bandwidth_factor(CollectiveKind::kAllGather, 8), 7.0 / 8);
  EXPECT_DOUBLE_EQ(bus_bandwidth_factor(CollectiveKind::kReduceScatter, 4), 3.0 / 4);
  EXPECT_DOUBLE_EQ(bus_bandwidth_factor(CollectiveKind::kBroadcast, 4), 1.0);
}

TEST(BandwidthMath, AlgorithmBandwidthIsSizeOverTime) {
  EXPECT_DOUBLE_EQ(algorithm_bandwidth(1000, 2.0), 500.0);
}

TEST(BandwidthMath, EdgeVolumes) {
  EXPECT_DOUBLE_EQ(allreduce_edge_volume(4, 1000), 2.0 * 3 / 4 * 1000);
  EXPECT_DOUBLE_EQ(allgather_edge_volume(4, 1000), 3.0 / 4 * 1000);
  EXPECT_DOUBLE_EQ(broadcast_edge_volume(4, 1000), 1000.0);
}

// --- reduce_bytes ----------------------------------------------------------------

TEST(ReduceBytes, SumFloats) {
  std::vector<float> a{1, 2, 3}, b{10, 20, 30};
  reduce_bytes(std::as_writable_bytes(std::span<float>(a)),
               std::as_bytes(std::span<const float>(b)), DataType::kFloat32,
               ReduceOp::kSum);
  EXPECT_EQ(a, (std::vector<float>{11, 22, 33}));
}

TEST(ReduceBytes, MinMaxProdInts) {
  std::vector<std::int32_t> a{5, -1, 7};
  std::vector<std::int32_t> b{3, 4, 7};
  auto A = [&] { return std::as_writable_bytes(std::span<std::int32_t>(a)); };
  auto B = [&] { return std::as_bytes(std::span<const std::int32_t>(b)); };
  reduce_bytes(A(), B(), DataType::kInt32, ReduceOp::kMin);
  EXPECT_EQ(a, (std::vector<std::int32_t>{3, -1, 7}));
  reduce_bytes(A(), B(), DataType::kInt32, ReduceOp::kMax);
  EXPECT_EQ(a, (std::vector<std::int32_t>{3, 4, 7}));
  reduce_bytes(A(), B(), DataType::kInt32, ReduceOp::kProd);
  EXPECT_EQ(a, (std::vector<std::int32_t>{9, 16, 49}));
}

TEST(ReduceBytes, SizeMismatchThrows) {
  std::vector<float> a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(reduce_bytes(std::as_writable_bytes(std::span<float>(a)),
                            std::as_bytes(std::span<const float>(b)),
                            DataType::kFloat32, ReduceOp::kSum),
               mccs::ContractViolation);
}

}  // namespace
}  // namespace mccs::coll
