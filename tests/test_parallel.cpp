// Task-pool unit tests and the threads=1 vs threads=8 determinism
// regression. The pool's contract (src/common/parallel.h) is that chunk
// boundaries depend only on (n, grain), so any layer that writes disjoint
// slots and combines serially must produce byte-identical output for every
// thread count. The tests here pin that end to end:
//
//   * pool mechanics — exact chunk coverage, inline single-thread path,
//     nested flattening, parallel_invoke, reconfiguration;
//   * netsim — a randomized churn's completion stream, %.17g-formatted, is
//     string-equal between threads=1 and threads=8;
//   * fabric — a two-tenant AllReduce workload's telemetry_snapshot()
//     (virtual time, metrics, link/flow state) is string-equal;
//   * collectives — a 4 MiB sharded reduce is memcmp-equal to the
//     single-thread run and to the scalar reference oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <random>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/types.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;

/// Restores the default pool to its environment-derived shape on scope exit,
/// so a failing test can't leak an odd thread count into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_threads(0); }
};

// --- pool mechanics ---------------------------------------------------------

TEST(ParallelPool, ChunkBoundariesDependOnlyOnGrainAndCoverExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    par::Pool pool{par::ParallelOptions{threads}};
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      for (const std::size_t grain : {std::size_t{1}, std::size_t{16},
                                      std::size_t{4096}}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
          {
            std::lock_guard<std::mutex> lk(mu);
            chunks.emplace_back(begin, end);
          }
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "n=" << n << " grain=" << grain << " threads=" << threads;
        }
        for (const auto& [begin, end] : chunks) {
          // Boundaries are exact grain multiples (last chunk may be short).
          EXPECT_EQ(begin % grain, 0u);
          EXPECT_TRUE(end - begin == grain || end == n);
        }
        const std::size_t expect_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
        EXPECT_EQ(chunks.size(), expect_chunks);
      }
    }
  }
}

TEST(ParallelPool, SingleThreadRunsInlineOnCaller) {
  par::Pool pool{par::ParallelOptions{1}};
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(100, 10, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;  // safe: inline path is strictly sequential
  });
  EXPECT_EQ(calls, 10);
}

TEST(ParallelPool, NestedParallelForFlattensInline) {
  par::Pool pool{par::ParallelOptions{4}};
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(8, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      const auto me = std::this_thread::get_id();
      // The nested region must run inline on the issuing worker: same
      // thread, full coverage, no deadlock against the single live job.
      pool.parallel_for(8, 2, [&](std::size_t ib, std::size_t ie) {
        EXPECT_EQ(std::this_thread::get_id(), me);
        for (std::size_t i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelPool, ParallelInvokeRunsEveryTaskOnce) {
  par::Pool pool{par::ParallelOptions{3}};
  std::atomic<int> a{0}, b{0}, c{0};
  pool.parallel_invoke({[&] { a.fetch_add(1); }, [&] { b.fetch_add(1); },
                        [&] { c.fetch_add(1); }});
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 1);
  EXPECT_EQ(c.load(), 1);
}

TEST(ParallelPool, SetThreadsReconfiguresBetweenRegions) {
  par::Pool pool{par::ParallelOptions{1}};
  for (const int t : {4, 1, 2}) {
    pool.set_threads(t);
    EXPECT_EQ(pool.threads(), t);
    std::vector<std::atomic<int>> hits(128);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(), 8, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "threads=" << t;
  }
}

TEST(ParallelPool, DefaultPoolReshapeAndRestore) {
  ThreadCountGuard guard;
  par::set_threads(3);
  EXPECT_EQ(par::thread_count(), 3);
  std::atomic<int> total{0};
  par::parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
  par::set_threads(0);  // back to MCCS_THREADS / hardware default
  EXPECT_GE(par::thread_count(), 1);
}

// --- determinism regression: netsim ----------------------------------------

/// A randomized churn on the testbed; every completion appended to `out` as
/// "id time" with time at full double precision. Any cross-thread-count
/// divergence in the solver — even one ulp — changes the string.
std::string churn_completion_stream(std::uint64_t seed) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  net::Network net(loop, cl.topology());
  Rng rng(seed);
  const auto hosts = cl.topology().hosts();
  std::string out;

  for (int i = 0; i < 48; ++i) {
    loop.schedule_at(rng.uniform() * 0.04, [&, i] {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = hosts[rng.below(hosts.size())];
      if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
      net::FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = 1 + rng.below(150'000'000);
      spec.ecmp_key = rng.engine()();
      spec.start_latency = rng.uniform() < 0.3 ? rng.uniform() * 1e-3 : 0.0;
      if (rng.uniform() < 0.25) spec.rate_cap = gbps(4 + rng.uniform() * 30);
      spec.weight = rng.uniform() < 0.2 ? 0.5 + rng.uniform() * 2.0 : 1.0;
      spec.on_complete = [&out](FlowId id, Time at) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%u %.17g\n", id.get(), at);
        out += buf;
      };
      net.start_flow(std::move(spec));
      (void)i;
    });
  }
  loop.run();
  return out;
}

TEST(ParallelDeterminism, NetsimChurnByteIdenticalThreads1Vs8) {
  ThreadCountGuard guard;
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    par::set_threads(1);
    const std::string one = churn_completion_stream(seed);
    par::set_threads(8);
    const std::string eight = churn_completion_stream(seed);
    EXPECT_FALSE(one.empty()) << "seed " << seed;
    EXPECT_EQ(one, eight) << "seed " << seed;
  }
}

// --- determinism regression: fabric telemetry -------------------------------

/// A small two-tenant AllReduce workload; returns the fabric's telemetry
/// snapshot (virtual time, metrics registry, link/flow state) after the loop
/// drains. Everything in the snapshot is virtual-time-derived, so it must be
/// identical for every thread count.
std::string fabric_snapshot_after_workload() {
  svc::Fabric fabric{cluster::make_testbed()};
  const AppId app_a{1}, app_b{2};
  const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const std::vector<GpuId> gpus_b{GpuId{1}, GpuId{3}, GpuId{5}, GpuId{7}};
  const CommId comm_a = test::create_comm(fabric, app_a, gpus_a);
  const CommId comm_b = test::create_comm(fabric, app_b, gpus_b);
  auto ranks_a = test::make_ranks(fabric, app_a, gpus_a);
  auto ranks_b = test::make_ranks(fabric, app_b, gpus_b);
  const std::size_t count = 1u << 18;  // 1 MiB of float32 per rank

  std::vector<gpu::DevicePtr> buf_a(4), buf_b(4);
  for (std::size_t r = 0; r < 4; ++r) {
    buf_a[r] = ranks_a[r].shim->alloc(count * sizeof(float));
    buf_b[r] = ranks_b[r].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf_a[r], count, static_cast<int>(r));
    test::fill_pattern<float>(fabric, buf_b[r], count, static_cast<int>(r), 7);
  }
  int remaining = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t r = 0; r < 4; ++r) {
      remaining += 2;
      ranks_a[r].shim->all_reduce(comm_a, buf_a[r], buf_a[r], count,
                                  DataType::kFloat32, ReduceOp::kSum,
                                  *ranks_a[r].stream,
                                  [&remaining](Time) { --remaining; });
      ranks_b[r].shim->all_reduce(comm_b, buf_b[r], buf_b[r], count,
                                  DataType::kFloat32, ReduceOp::kMax,
                                  *ranks_b[r].stream,
                                  [&remaining](Time) { --remaining; });
    }
    const bool ok = test::await(fabric, remaining);
    EXPECT_TRUE(ok);
    if (!ok) break;
  }
  fabric.loop().run();
  return fabric.telemetry_snapshot();
}

TEST(ParallelDeterminism, FabricTelemetrySnapshotIdenticalThreads1Vs8) {
  ThreadCountGuard guard;
  par::set_threads(1);
  const std::string one = fabric_snapshot_after_workload();
  par::set_threads(8);
  const std::string eight = fabric_snapshot_after_workload();
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

// --- determinism regression: sharded reduce ---------------------------------

TEST(ParallelDeterminism, ShardedReduceBitIdenticalToSingleThreadAndOracle) {
  ThreadCountGuard guard;
  const std::size_t count = (std::size_t{4} << 20) / sizeof(float);  // 4 MiB
  std::vector<float> acc0(count), in(count);
  std::mt19937_64 gen(4242);
  std::uniform_real_distribution<float> dist(-1e6f, 1e6f);
  for (std::size_t i = 0; i < count; ++i) {
    acc0[i] = dist(gen);
    in[i] = dist(gen);
  }
  auto as_bytes = [](std::vector<float>& v) {
    return std::span<std::byte>(reinterpret_cast<std::byte*>(v.data()),
                                v.size() * sizeof(float));
  };
  auto as_cbytes = [](const std::vector<float>& v) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(float));
  };

  for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kProd, ReduceOp::kMin,
                            ReduceOp::kMax}) {
    auto serial = acc0;
    par::set_threads(1);
    coll::reduce_bytes(as_bytes(serial), as_cbytes(in), DataType::kFloat32, op);

    auto sharded = acc0;
    par::set_threads(8);
    coll::reduce_bytes(as_bytes(sharded), as_cbytes(in), DataType::kFloat32,
                       op);

    auto oracle = acc0;
    coll::reduce_bytes_reference(as_bytes(oracle), as_cbytes(in),
                                 DataType::kFloat32, op);

    ASSERT_EQ(std::memcmp(serial.data(), sharded.data(),
                          count * sizeof(float)),
              0)
        << "op " << static_cast<int>(op);
    ASSERT_EQ(std::memcmp(serial.data(), oracle.data(), count * sizeof(float)),
              0)
        << "op " << static_cast<int>(op);
  }
}

}  // namespace
}  // namespace mccs
