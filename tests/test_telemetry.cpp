// Telemetry subsystem tests: registry label interning and aggregation,
// histogram bucket edges, lossless double serialization, JSON string
// escaping, Chrome trace-event export validity (parsed back with a real
// JSON parser), disabled-mode non-interference, and the linear-time trace
// bookkeeping regression (the launch path must not rescan the trace).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"
#include "mccs/trace_export.h"
#include "policy/controller.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"
#include "workload/fault_plan.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

// --- a small strict JSON parser ----------------------------------------------------
//
// The exporters are hand-rolled, so the tests parse their output with an
// independent recursive-descent parser: any missing comma, unescaped quote,
// or truncated number fails the round trip loudly.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< raw digits for kNumber, decoded text for kString
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) {
      ADD_FAILURE() << "missing key: " << key;
      static const JsonValue none;
      return none;
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return fields.count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    pos_ = s_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) {
      fail("unexpected end");
      return '\0';
    }
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", JsonValue{JsonValue::kBool, true});
      case 'f': return literal("false", JsonValue{JsonValue::kBool, false});
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(std::string_view lit, JsonValue v) {
    if (s_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("bad number");
      return {};
    }
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.text = std::string(s_.substr(start, pos_ - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::kString;
    v.text = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        fail("dangling escape");
        return out;
      }
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("short \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else { fail("bad \\u escape"); return out; }
          }
          // The exporters only emit \u00XX (control characters).
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default: fail("unknown escape"); return out;
      }
    }
    expect('"');
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v.fields.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonValue parse_json(std::string_view s) {
  JsonParser p(s);
  JsonValue v = p.parse();
  EXPECT_TRUE(p.ok()) << p.error();
  return v;
}

// --- metrics registry ----------------------------------------------------------

TEST(TelemetryRegistry, CounterInterningIsLabelOrderInsensitive) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("retries", {{"host", "0"}, {"nic", "1"}});
  telemetry::Counter& b = reg.counter("retries", {{"nic", "1"}, {"host", "0"}});
  EXPECT_EQ(&a, &b);
  a.increment(3);
  EXPECT_EQ(b.value(), 3u);

  telemetry::Counter& other = reg.counter("retries", {{"host", "0"}, {"nic", "2"}});
  EXPECT_NE(&a, &other);
  other.increment();
  EXPECT_EQ(reg.counter_total("retries"), 4u);
  EXPECT_EQ(reg.counter_series("retries"), 2u);
  EXPECT_EQ(reg.counter_total("no_such_metric"), 0u);
  EXPECT_EQ(reg.counter_series("no_such_metric"), 0u);
}

TEST(TelemetryRegistry, GaugeAndHandleStability) {
  telemetry::MetricsRegistry reg;
  telemetry::Gauge& g = reg.gauge("util", {{"link", "3"}});
  // Interning many more instruments must not move existing handles.
  for (int i = 0; i < 200; ++i) {
    reg.counter("filler", {{"i", std::to_string(i)}});
  }
  telemetry::Gauge& again = reg.gauge("util", {{"link", "3"}});
  EXPECT_EQ(&g, &again);
  g.set(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(again.value(), 0.75);
}

TEST(TelemetryRegistry, HistogramBucketEdges) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  // Prometheus `le` semantics: a value equal to a bound lands in that bound's
  // bucket, the first value past the last bound lands in +inf.
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (edge)
  h.observe(1.5);  // <= 2
  h.observe(2.0);  // <= 2 (edge)
  h.observe(4.0);  // <= 4 (edge)
  h.observe(4.000001);  // +inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.000001);
}

TEST(TelemetryRegistry, ToJsonParsesBack) {
  telemetry::MetricsRegistry reg;
  reg.counter("hits", {{"comm", "1"}}).increment(7);
  reg.gauge("depth").set(2.5);
  reg.histogram("lat_us", {10.0, 100.0}).observe(42.0);
  const JsonValue v = parse_json(reg.to_json());
  ASSERT_EQ(v.kind, JsonValue::kObject);
  EXPECT_TRUE(v.has("counters"));
  EXPECT_TRUE(v.has("gauges"));
  EXPECT_TRUE(v.has("histograms"));
}

// --- JSON primitives -----------------------------------------------------------

TEST(TelemetryJson, DoubleSerializationRoundTripsBitwise) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          0.1,
                          32.6554,
                          123456789.123456789,
                          1e-300,
                          -2.5e300,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          -std::numeric_limits<double>::epsilon()};
  for (const double v : cases) {
    const std::string s = telemetry::format_double(v);
    const double back = std::strtod(s.c_str(), nullptr);
    std::uint64_t vb = 0, bb = 0;
    std::memcpy(&vb, &v, sizeof v);
    std::memcpy(&bb, &back, sizeof back);
    EXPECT_EQ(vb, bb) << "lossy round trip: " << s;
  }
  // JSON has no NaN/Inf — they must degrade to null, not invalid tokens.
  EXPECT_EQ(telemetry::format_double(std::nan("")), "null");
  EXPECT_EQ(telemetry::format_double(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(TelemetryJson, EscapesHostileStrings) {
  const std::string hostile =
      "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\x01 del:\x1f";
  std::string doc = "{\"k\":\"";
  telemetry::append_escaped_json(doc, hostile);
  doc += "\"}";
  const JsonValue v = parse_json(doc);
  ASSERT_EQ(v.at("k").kind, JsonValue::kString);
  EXPECT_EQ(v.at("k").text, hostile);  // decoding inverts the escaping

  EXPECT_EQ(telemetry::escape_json("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::escape_json("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::escape_json("\n"), "\\n");
  EXPECT_EQ(telemetry::escape_json(std::string_view("\x00z", 2)), "\\u0000z");
  EXPECT_EQ(telemetry::escape_json("héllo"), "héllo");  // UTF-8 passes through
}

TEST(TelemetryJson, TraceRecordExportSurvivesParsing) {
  svc::TraceRecord r;
  r.app = AppId{3};
  r.comm = CommId{7};
  r.rank = 1;
  r.seq = 42;
  r.bytes = 4096;
  r.issued = 1.0 / 3.0;  // a value a fixed-precision printf would corrupt
  r.launched = r.issued + 1e-9;
  r.started = r.launched;
  r.completed = 0.125;
  const JsonValue v = parse_json(svc::trace_record_to_json(r));
  EXPECT_EQ(v.at("seq").number, 42.0);
  const double issued = std::strtod(v.at("issued").text.c_str(), nullptr);
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &issued, sizeof issued);
  std::memcpy(&b, &r.issued, sizeof r.issued);
  EXPECT_EQ(a, b);
}

// --- timeline ------------------------------------------------------------------

TEST(TelemetryTimeline, ChromeTraceExportIsValidAndPaired) {
  telemetry::Timeline tl;
  const int t0 = tl.track("proc a", "thread 1");
  const int t1 = tl.track("proc a", "thread 2");
  const int t2 = tl.track("proc b", "thread 1");
  EXPECT_EQ(tl.track("proc a", "thread 1"), t0);  // interned
  EXPECT_EQ(tl.track_count(), 3u);

  tl.span(t0, "catA", "op", 1e-6, 3e-6,
          {{"bytes", std::uint64_t{4096}}, {"ok", true}});
  tl.span(t1, "catA", "op2", 2e-6, 2e-6);  // zero-length is legal
  tl.instant(t2, "catB", "decision", 1.5e-6, {{"score", 0.25}});
  tl.counter(t2, "gbps", 2e-6, {{"link0", 12.5}});

  const JsonValue v = parse_json(tl.chrome_trace_json());
  const JsonValue& events = v.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);

  std::map<double, int> begins, ends;  // async span ids must pair up
  int instants = 0, counters = 0, metadata = 0;
  for (const JsonValue& e : events.items) {
    const std::string ph = e.at("ph").text;
    if (ph == "b") ++begins[e.at("id").number];
    if (ph == "e") ++ends[e.at("id").number];
    if (ph == "i") ++instants;
    if (ph == "C") ++counters;
    if (ph == "M") ++metadata;
  }
  EXPECT_EQ(begins.size(), 2u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  // process_name per process + thread_name per track.
  EXPECT_EQ(metadata, 2 + 3);
}

TEST(TelemetryTimeline, HostileTrackNamesStayValidJson) {
  telemetry::Timeline tl;
  const int t = tl.track("evil \"proc\"\n", "thread \\ \x02");
  tl.span(t, "cat", "name", 0.0, 1.0);
  const JsonValue v = parse_json(tl.chrome_trace_json());
  bool found = false;
  for (const JsonValue& e : v.at("traceEvents").items) {
    if (e.at("ph").text == "M" && e.at("name").text == "process_name") {
      found |= e.at("args").at("name").text == "evil \"proc\"\n";
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryTimeline, CounterCoalescingKeepsLastSampleOfBurst) {
  telemetry::Timeline tl;
  const int t = tl.track("netsim", "links");
  static const char* k0 = "link0";
  static const char* k1 = "link1";

  std::size_t s = telemetry::Timeline::kNoSample;
  s = tl.counter(t, "gbps", 1e-6, {{k0, 1.0}}, s);
  EXPECT_EQ(tl.event_count(), 1u);
  // Same instant, same key set: overwritten in place.
  s = tl.counter(t, "gbps", 1e-6, {{k0, 2.0}}, s);
  EXPECT_EQ(tl.event_count(), 1u);
  // Same instant, different key set: must append (coalescing would silently
  // drop link0's final value).
  s = tl.counter(t, "gbps", 1e-6, {{k1, 3.0}}, s);
  EXPECT_EQ(tl.event_count(), 2u);
  // Later instant: appends.
  s = tl.counter(t, "gbps", 2e-6, {{k1, 4.0}}, s);
  EXPECT_EQ(tl.event_count(), 3u);

  const JsonValue v = parse_json(tl.chrome_trace_json());
  std::vector<double> link0_values;
  for (const JsonValue& e : v.at("traceEvents").items) {
    if (e.at("ph").text == "C" && e.at("args").has("link0")) {
      link0_values.push_back(e.at("args").at("link0").number);
    }
  }
  ASSERT_EQ(link0_values.size(), 1u);
  EXPECT_DOUBLE_EQ(link0_values[0], 2.0);  // only the burst's last value
}

TEST(TelemetryTimeline, ReserveIsIdempotentAndKeepsRecordsIntact) {
  telemetry::Timeline tl;
  tl.reserve(1024, 4);
  const int t = tl.track("p", "t");
  tl.span(t, "c", "n", 0.0, 1.0, {{"k", std::int64_t{1}}});
  const std::size_t cap = tl.approximate_bytes();
  tl.reserve(1u << 20, 8);  // non-empty: must be a no-op, not a wipe
  EXPECT_EQ(tl.event_count(), 1u);
  EXPECT_EQ(tl.approximate_bytes(), cap);
}

// --- service integration -------------------------------------------------------

/// micro_recovery's scenario: stall detection on, zero retry budget, a
/// controller with fault recovery attached, and a fabric uplink killed
/// mid-collective.
svc::Fabric::Options recovery_options(bool telemetry) {
  svc::Fabric::Options opt;
  opt.config.chunk_deadline_slack = 4.0;
  opt.config.chunk_deadline_floor = micros(100);
  opt.config.transport_max_retries = 0;
  opt.config.enable_telemetry = telemetry;
  return opt;
}

LinkId first_fabric_uplink(const cluster::Cluster& cl) {
  const net::Topology& topo = cl.topology();
  const NodeId nic0 = cl.host(HostId{0}).nic_nodes[0];
  const NodeId leaf = topo.link(topo.out_links(nic0).front()).dst;
  for (LinkId l : topo.out_links(leaf)) {
    if (topo.node(topo.link(l).dst).kind == net::NodeKind::kSpineSwitch) {
      return l;
    }
  }
  return LinkId{};
}

/// Drives the recovery scenario and returns per-rank completion times.
std::vector<Time> run_recovery_scenario(Fabric& fabric) {
  policy::Controller controller(fabric);
  controller.attach();
  controller.enable_fault_recovery();

  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 1u << 18;  // 1 MiB: keeps transfers in flight
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
    auto s = fabric.gpus().typed<float>(buf[r], count);
    for (auto& x : s) x = 1.0f;
  }
  std::vector<Time> completions(gpus.size(), 0.0);
  int remaining = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&completions, &remaining, r](Time t) {
                                completions[r] = t;
                                --remaining;
                              });
  }
  const LinkId victim = first_fabric_uplink(fabric.cluster());
  EXPECT_TRUE(victim.valid());
  workload::FaultPlan plan;
  plan.link_down(micros(300), victim);
  plan.schedule(fabric);
  EXPECT_TRUE(await(fabric, remaining));
  return completions;
}

TEST(TelemetryService, RecoveryTraceHasSpansFromAllLayersAndRecoveryEvents) {
  Fabric fabric{cluster::make_testbed(), recovery_options(true)};
  run_recovery_scenario(fabric);

  const std::string trace = svc::chrome_trace_json(fabric);
  const JsonValue v = parse_json(trace);

  std::set<std::string> span_cats;
  std::set<std::string> instant_names;
  int link_counter_samples = 0;
  for (const JsonValue& e : v.at("traceEvents").items) {
    const std::string ph = e.at("ph").text;
    if (ph == "b") span_cats.insert(e.at("cat").text);
    if (ph == "i") instant_names.insert(e.at("name").text);
    if (ph == "C" && e.at("name").text == "link_gbps") ++link_counter_samples;
  }
  // Spans from all four layers, plus the proxy records merged at export.
  EXPECT_TRUE(span_cats.count("frontend")) << "missing frontend spans";
  EXPECT_TRUE(span_cats.count("proxy")) << "missing proxy spans";
  EXPECT_TRUE(span_cats.count("transport")) << "missing transport spans";
  EXPECT_TRUE(span_cats.count("netsim")) << "missing netsim flow spans";
  EXPECT_TRUE(span_cats.count("policy")) << "missing policy recovery spans";
  // Policy decisions and recovery actions as instants.
  EXPECT_TRUE(instant_names.count("ffa_assign") ||
              instant_names.count("pfa_assign"))
      << "missing flow-assignment instants";
  EXPECT_TRUE(instant_names.count("stall_report"))
      << "missing transport stall escalation instant";
  EXPECT_GT(link_counter_samples, 0);
}

TEST(TelemetryService, DisabledModeIsBitwiseIdenticalAndRecordsNothing) {
  std::vector<Time> with, without;
  {
    Fabric fabric{cluster::make_testbed(), recovery_options(false)};
    without = run_recovery_scenario(fabric);
    EXPECT_EQ(fabric.telemetry().timeline().event_count(), 0u);
    // The registry stays live in disabled mode: the replaced ad-hoc
    // counters (retries, escalations) still count.
    EXPECT_GT(fabric.telemetry().metrics().counter_total("transport_escalations"),
              0u);
  }
  {
    Fabric fabric{cluster::make_testbed(), recovery_options(true)};
    with = run_recovery_scenario(fabric);
    EXPECT_GT(fabric.telemetry().timeline().event_count(), 0u);
  }
  ASSERT_EQ(with.size(), without.size());
  EXPECT_EQ(0, std::memcmp(with.data(), without.data(),
                           with.size() * sizeof(Time)))
      << "telemetry perturbed the simulation";
}

TEST(TelemetryService, SnapshotEndpointParsesAndCoversSubsystems) {
  svc::Fabric::Options opt;
  opt.config.enable_telemetry = true;
  Fabric fabric{cluster::make_testbed(), opt};
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 256;
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
  }
  int remaining = static_cast<int>(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    ranks[r].shim->all_reduce(comm, buf[r], buf[r], count, DataType::kFloat32,
                              ReduceOp::kSum, *ranks[r].stream,
                              [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));

  const JsonValue v = parse_json(fabric.telemetry_snapshot());
  ASSERT_EQ(v.kind, JsonValue::kObject);
  EXPECT_TRUE(v.has("time"));
  EXPECT_TRUE(v.has("metrics"));
  EXPECT_TRUE(v.has("comms"));
  const JsonValue& links = v.at("links");
  ASSERT_EQ(links.kind, JsonValue::kArray);
  ASSERT_FALSE(links.items.empty());
  EXPECT_TRUE(links.items[0].has("bytes"));
  EXPECT_TRUE(links.items[0].has("state"));
  ASSERT_EQ(v.at("comms").kind, JsonValue::kArray);
  ASSERT_EQ(v.at("comms").items.size(), 1u);
}

// --- trace bookkeeping regression ---------------------------------------------

TEST(TelemetryTraceIndex, TenThousandCollectivesStayLinear) {
  // The launch path must locate its TraceRecord by the index captured at
  // issue time, not by scanning the trace backwards (the old scan made a
  // long-running communicator quadratic: 10k collectives = 10^8 record
  // visits). With the index this finishes in a few seconds; the await's
  // wall-clock deadline fails the test if the quadratic behavior returns.
  Fabric fabric{cluster::make_testbed()};
  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{1}};
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const std::size_t count = 16;
  std::vector<gpu::DevicePtr> buf(gpus.size());
  for (std::size_t r = 0; r < gpus.size(); ++r) {
    buf[r] = ranks[r].shim->alloc(count * sizeof(float));
  }

  constexpr int kTotal = 10000;
  constexpr int kBatch = 100;  // stays inside the bounded IPC command ring
  for (int done = 0; done < kTotal; done += kBatch) {
    int remaining = kBatch * static_cast<int>(gpus.size());
    for (int i = 0; i < kBatch; ++i) {
      for (std::size_t r = 0; r < gpus.size(); ++r) {
        ranks[r].shim->all_reduce(comm, buf[r], buf[r], count,
                                  DataType::kFloat32, ReduceOp::kSum,
                                  *ranks[r].stream,
                                  [&remaining](Time) { --remaining; });
      }
    }
    ASSERT_TRUE(await(fabric, remaining));
  }

  const std::vector<svc::TraceRecord> trace = fabric.trace_all();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(kTotal) * gpus.size());
  std::uint64_t expected_seq = 0;
  int rank = -1;
  for (const svc::TraceRecord& r : trace) {
    if (r.rank != rank) {
      rank = r.rank;
      expected_seq = r.seq;
    }
    EXPECT_EQ(r.seq, expected_seq++);
    EXPECT_GE(r.launched, r.issued);
    EXPECT_GE(r.completed, r.started);
  }
}

}  // namespace
}  // namespace mccs
