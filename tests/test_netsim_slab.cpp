// White-box and property tests of the arena-backed flow slab (DESIGN.md §12):
// id/generation safety across slot recycling, live-list ordering, bounded
// link-change logging under consumer-cursor trimming, steady-state
// allocation-freedom of the per-event hot path, and the incremental-vs-
// reference equivalence replayed on the widened 8k-endpoint Clos.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "mccs/fabric.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

// --- allocation counting ------------------------------------------------------
//
// Binary-wide operator new/delete that count while armed. Only the
// steady-state guard test arms them; every other test sees a plain
// malloc-backed operator new. Sanitizer builds keep the counters (the
// instrumented runtime allocates through its own interceptors, so counts
// are meaningless there and the strict assertion is skipped).

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MCCS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MCCS_UNDER_SANITIZER 1
#endif
#endif

namespace mccs::net {

/// Friend-keyed access to the slab internals (declared in network.h).
class NetworkTestPeer {
 public:
  static bool has_slot(const Network& n, FlowId id) {
    return n.slot_of(id.get()) != Network::kNoSlot;
  }
  static std::uint32_t slot(const Network& n, FlowId id) {
    return n.slot_of(id.get());
  }
  static std::size_t slab_size(const Network& n) { return n.param_.size(); }
  static std::size_t free_count(const Network& n) {
    return n.free_slots_.size();
  }
  static std::size_t arena_blocks(const Network& n) {
    return n.path_arena_.size();
  }
};

namespace {

FlowSpec simple_flow(NodeId src, NodeId dst, Bytes size) {
  FlowSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.size = size;
  return spec;
}

// --- id / generation safety ---------------------------------------------------

TEST(NetworkSlab, RecycledSlotDoesNotResurrectOldId) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];

  const FlowId oldf = net.start_flow(simple_flow(a, b, 1_GB));
  const std::uint32_t old_slot = NetworkTestPeer::slot(net, oldf);
  net.cancel_flow(oldf);
  EXPECT_FALSE(net.flow_active(oldf));
  EXPECT_EQ(NetworkTestPeer::free_count(net), 1u);

  // The next start must recycle the freed slot, not grow the slab...
  const FlowId newer = net.start_flow(simple_flow(a, b, 2_GB));
  EXPECT_EQ(NetworkTestPeer::slot(net, newer), old_slot);
  EXPECT_EQ(NetworkTestPeer::slab_size(net), 1u);
  // ...and the dead id must stay dead even though its old slot is live again.
  EXPECT_GT(newer.get(), oldf.get());  // ids are monotone, never reused
  EXPECT_FALSE(net.flow_active(oldf));
  EXPECT_TRUE(net.flow_active(newer));
  EXPECT_EQ(net.flow_remaining(newer), 2_GB);
}

TEST(NetworkSlab, CancelledCompletionNeverFiresAcrossRecycle) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];

  int old_completions = 0;
  int new_completions = 0;
  FlowSpec doomed = simple_flow(a, b, 100_MB);
  doomed.on_complete = [&](FlowId, Time) { ++old_completions; };
  const FlowId oldf = net.start_flow(std::move(doomed));
  const std::uint32_t doomed_slot = NetworkTestPeer::slot(net, oldf);

  // Cancel just before the old flow would have completed; its slot is then
  // recycled by a new flow whose completion event must be the only one left.
  loop.schedule_at(0.001, [&] {
    net.cancel_flow(oldf);
    FlowSpec next = simple_flow(a, b, 100_MB);
    next.on_complete = [&](FlowId, Time) { ++new_completions; };
    const FlowId newer = net.start_flow(std::move(next));
    EXPECT_EQ(NetworkTestPeer::slot(net, newer), doomed_slot);
  });
  loop.run();
  EXPECT_EQ(old_completions, 0);
  EXPECT_EQ(new_completions, 1);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

// --- live-list ordering -------------------------------------------------------

TEST(NetworkSlab, ActiveFlowsAscendingAndDebugDumpOrdered) {
  svc::Fabric fabric(cluster::make_testbed());
  Network& net = fabric.network();
  const auto& cl = fabric.cluster();
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  const NodeId c = cl.host(HostId{2}).nic_nodes[0];

  // Churn so live slots are deliberately scrambled relative to id order:
  // cancellations punch holes that later starts recycle out of order.
  std::vector<FlowId> live;
  for (int i = 0; i < 12; ++i) {
    live.push_back(net.start_flow(simple_flow(i % 2 ? a : c, b, 1_GB)));
  }
  for (const int victim : {1, 7, 3, 10}) {
    net.cancel_flow(live[static_cast<std::size_t>(victim)]);
  }
  std::vector<FlowId> expect;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (i != 1 && i != 7 && i != 3 && i != 10) expect.push_back(live[i]);
  }
  for (int i = 0; i < 4; ++i) {  // recycle the punched slots
    expect.push_back(net.start_flow(simple_flow(a, c, 1_GB)));
  }

  const std::vector<FlowId> active = net.active_flows();
  ASSERT_EQ(active.size(), expect.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(active[i].get(), expect[i].get()) << "index " << i;
    if (i > 0) {
      EXPECT_LT(active[i - 1].get(), active[i].get());
    }
  }

  // The fabric debug dump walks the same list; its flow lines must come out
  // in ascending id order too.
  std::ostringstream dump;
  fabric.debug_dump(dump);
  std::istringstream lines(dump.str());
  std::string line;
  std::vector<std::uint32_t> dumped;
  while (std::getline(lines, line)) {
    std::uint32_t id = 0;
    if (std::sscanf(line.c_str(), "  flow %u ", &id) == 1) dumped.push_back(id);
  }
  ASSERT_EQ(dumped.size(), expect.size());
  for (std::size_t i = 0; i < dumped.size(); ++i) {
    EXPECT_EQ(dumped[i], expect[i].get());
  }
}

// --- link-change log ----------------------------------------------------------

TEST(NetworkSlab, LinkChangeLogKeptWholeWithoutConsumers) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const LinkId link{0};
  for (int i = 0; i < 100; ++i) {
    net.set_link_state(link, LinkState::kDown);
    net.set_link_state(link, LinkState::kUp);
  }
  // No consumer: nothing may be trimmed, so a controller that registers late
  // still sees history from the beginning.
  EXPECT_EQ(net.link_changes_retained(), 200u);
  const int consumer = net.register_link_change_consumer();
  EXPECT_EQ(net.link_change_cursor(consumer), 0u);
  EXPECT_EQ(net.link_change(0).link, link);
}

TEST(NetworkSlab, LinkChangeLogTrimsBoundedOver10kFlaps) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const LinkId link{0};
  const int consumer = net.register_link_change_consumer();

  std::size_t peak_retained = 0;
  std::size_t seen = 0;
  for (int flap = 0; flap < 10'000; ++flap) {
    net.set_link_state(link, LinkState::kDown);
    net.set_link_state(link, LinkState::kUp);
    // Consume like the policy controller: read everything new, then ack.
    const std::size_t end = net.link_change_end();
    for (std::size_t i = net.link_change_cursor(consumer); i < end; ++i) {
      const LinkChange& c = net.link_change(i);
      EXPECT_EQ(c.link, link);
      // Absolute indices survive trimming: even flap entries are the downs.
      EXPECT_EQ(c.state, i % 2 == 0 ? LinkState::kDown : LinkState::kUp);
      ++seen;
    }
    net.ack_link_changes(consumer, end);
    peak_retained = std::max(peak_retained, net.link_changes_retained());
  }
  EXPECT_EQ(seen, 20'000u);
  EXPECT_EQ(net.link_change_end(), 20'000u);
  // Fully-acknowledged entries are trimmed in batches, so the resident log
  // stays bounded by the batch size, not the 20k-change history.
  EXPECT_LE(peak_retained, 1500u);
  EXPECT_LE(net.link_changes_retained(), 1500u);
}

TEST(NetworkSlab, LinkChangeLogWaitsForSlowestConsumer) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const LinkId link{0};
  const int fast = net.register_link_change_consumer();
  const int slow = net.register_link_change_consumer();

  for (int flap = 0; flap < 2'000; ++flap) {
    net.set_link_state(link, LinkState::kDown);
    net.set_link_state(link, LinkState::kUp);
    net.ack_link_changes(fast, net.link_change_end());
  }
  // The lagging consumer pins the log: everything since its cursor remains.
  EXPECT_EQ(net.link_changes_retained(), 4'000u);
  net.ack_link_changes(slow, net.link_change_end());
  net.set_link_state(link, LinkState::kDown);  // next effective change trims
  net.ack_link_changes(fast, net.link_change_end());
  net.ack_link_changes(slow, net.link_change_end());
  net.set_link_state(link, LinkState::kUp);
  EXPECT_LE(net.link_changes_retained(), 1500u);
}

// --- steady-state allocation freedom ------------------------------------------

TEST(NetworkSlab, SteadyStateFlowChurnIsAllocationFree) {
  // 4096-endpoint Clos: big enough that any per-event heap traffic in the
  // solver would be O(thousands) of allocations per wave.
  const auto cl = cluster::make_scaled_sim_cluster(4096);
  sim::EventLoop loop;
  Network net(loop, cl.topology());

  constexpr std::size_t kFlows = 128;
  net.reserve_flows(kFlows + 8, /*lifetime=*/kFlows * 8);

  std::size_t completed = 0;
  const auto run_wave = [&] {
    for (std::size_t i = 0; i < kFlows; ++i) {
      const HostId src{static_cast<std::uint32_t>(i * 3)};
      const HostId dst{static_cast<std::uint32_t>((i * 3 + 17) %
                                                  cl.host_count())};
      FlowSpec spec = simple_flow(cl.host(src).nic_nodes[i % 8],
                                  cl.host(dst).nic_nodes[i % 8], 4_MB);
      spec.ecmp_key = 0x9e3779b97f4a7c15ull * (i + 1);
      spec.on_complete = [&completed](FlowId, Time) { ++completed; };
      net.start_flow(std::move(spec));
    }
    loop.run();
  };

  // Two warm waves: fill the routing cache, grow the slab/scratch/event pool
  // to their high-water marks, spin up the task pool. Counting through the
  // first one doubles as a self-test of the instrumented operator new — a
  // cold wave must allocate, or the zero below would be vacuous.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  run_wave();
  g_count_allocs.store(false);
  EXPECT_GT(g_alloc_count.load(), 0u);
  run_wave();
  ASSERT_EQ(completed, 2 * kFlows);

  // Measured wave: identical shape, so steady state by construction.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  run_wave();
  g_count_allocs.store(false);
  ASSERT_EQ(completed, 3 * kFlows);

#if !defined(MCCS_UNDER_SANITIZER)
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "per-event hot path allocated in steady state";
#endif
}

// --- 8k-endpoint incremental vs reference -------------------------------------

TEST(NetworkSlabScale, IncrementalMatchesReferenceAt8k) {
  // The testbed-scale equivalence sweep lives in test_netsim_properties.cpp;
  // this replays the same contract on the widened 8k Clos where component
  // scoping actually has thousands of links to skip. Seeds are few (fabric
  // construction dominates) and MCCS_NETSIM_8K_SEEDS trims further for
  // instrumented runs.
  std::size_t num_seeds = 2;
  if (const char* env = std::getenv("MCCS_NETSIM_8K_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) num_seeds = static_cast<std::size_t>(v);
  }
  const auto cl = cluster::make_scaled_sim_cluster(8192);
  const std::size_t hosts = cl.host_count();

  struct Plan {
    struct Start {
      Time at;
      NodeId src, dst;
      Bytes size;
      std::uint64_t key;
    };
    std::vector<Start> starts;
    std::vector<std::pair<int, Time>> cancels;
    std::vector<std::pair<NodeId, NodeId>> background;
  };

  for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x8000);
    Plan plan;
    auto pick_nic = [&] {
      const HostId h{static_cast<std::uint32_t>(rng.below(hosts))};
      return cl.host(h).nic_nodes[rng.below(8)];
    };
    for (int b = 0; b < 2; ++b) {
      plan.background.emplace_back(pick_nic(), pick_nic());
      if (plan.background.back().first == plan.background.back().second) {
        plan.background.pop_back();
      }
    }
    for (int i = 0; i < 48; ++i) {
      Plan::Start s;
      s.at = rng.uniform() * 0.02;
      s.src = pick_nic();
      s.dst = pick_nic();
      if (s.src == s.dst) continue;
      s.size = 1_MB + rng.below(64) * 1_MB;
      s.key = rng.engine()();
      plan.starts.push_back(s);
    }
    for (int c = 0; c < 4; ++c) {
      plan.cancels.emplace_back(static_cast<int>(rng.below(plan.starts.size())),
                                0.005 + rng.uniform() * 0.02);
    }

    std::vector<std::pair<std::uint32_t, Time>> streams[2];
    for (const bool incremental : {false, true}) {
      sim::EventLoop loop;
      Network net(loop, cl.topology(), Network::Options{incremental});
      auto& stream = streams[incremental ? 1 : 0];
      for (const auto& [src, dst] : plan.background) {
        net.start_flow({.src = src, .dst = dst,
                        .background_demand = gbps(40), .on_complete = {}});
      }
      std::vector<std::optional<FlowId>> ids(plan.starts.size());
      for (std::size_t i = 0; i < plan.starts.size(); ++i) {
        loop.schedule_at(plan.starts[i].at, [&, i] {
          FlowSpec spec = simple_flow(plan.starts[i].src, plan.starts[i].dst,
                                      plan.starts[i].size);
          spec.ecmp_key = plan.starts[i].key;
          spec.on_complete = [&stream](FlowId id, Time t) {
            stream.emplace_back(id.get(), t);
          };
          ids[i] = net.start_flow(std::move(spec));
        });
      }
      for (const auto& [target, at] : plan.cancels) {
        loop.schedule_at(at, [&, target] {
          const auto t = static_cast<std::size_t>(target);
          if (ids[t] && net.flow_active(*ids[t])) net.cancel_flow(*ids[t]);
        });
      }
      loop.run();
      ASSERT_EQ(net.active_flow_count(), plan.background.size())
          << "seed " << seed;
    }

    ASSERT_EQ(streams[0].size(), streams[1].size()) << "seed " << seed;
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      EXPECT_EQ(streams[0][i].first, streams[1][i].first) << "seed " << seed;
      const Time tr = streams[0][i].second;
      const Time ti = streams[1][i].second;
      EXPECT_NEAR(ti, tr, 1e-9 * std::max(1e-3, std::abs(tr)))
          << "seed " << seed << " completion " << i;
    }
  }
}

}  // namespace
}  // namespace mccs::net
