// Property test for the warm-started IncrementalAssigner
// (policy/flow_assign.h): over randomized control-plane event streams —
// tenant arrivals, departures, priority flips, failed-link toggles,
// spurious dirty marks, reserved-route changes — the incrementally
// maintained assignment must be EXACTLY the map assign_flows() produces
// from scratch over the live tenants in ascending-comm order with the same
// options. That identity is the whole contract: the controller may switch
// between the two solvers at any event with no observable difference.
//
// The sweep runs >= 200 seeds through the deterministic task pool (the
// seed-sweep idiom of the netsim property tests). Each seed owns its
// Cluster/Routing/allocator/assigner — Routing's lazy path cache is not
// thread-safe across seeds — and failures are collected per slot and
// asserted afterwards so one bad seed reports without racing gtest.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "mccs/strategy.h"
#include "netsim/routing.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"

namespace mccs::policy {
namespace {

/// A live tenant mirrored on both sides of the comparison.
struct Tenant {
  std::vector<GpuId> gpus;
  svc::CommStrategy strategy;
  bool high_priority = false;
};

cluster::SpineLeafSpec small_clos() {
  // 4 spines x 4 leaves x 4 hosts x 2 GPUs = 32 GPUs. Small enough that the
  // from-scratch oracle is cheap per event, large enough for multi-path
  // ECMP, cross-rack rings, and non-trivial interference components.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 4;
  spec.num_leaves = 4;
  spec.hosts_per_leaf = 4;
  spec.gpus_per_host = 2;
  spec.nics_per_host = 2;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  return spec;
}

/// Drop tenants with no routed flows: assign_flows omits them from its
/// result while the warm assigner tracks them with an empty route map.
void strip_empty(std::unordered_map<std::uint32_t, RouteMap>& m) {
  for (auto it = m.begin(); it != m.end();) {
    it = it->second.empty() ? m.erase(it) : std::next(it);
  }
}

std::string diff_report(
    std::uint64_t seed, int event, const char* what,
    const std::unordered_map<std::uint32_t, RouteMap>& inc,
    const std::unordered_map<std::uint32_t, RouteMap>& full) {
  std::ostringstream os;
  os << "seed " << seed << " event " << event << " (" << what
     << "): incremental has " << inc.size() << " routed tenants, full has "
     << full.size();
  for (const auto& [id, routes] : full) {
    auto it = inc.find(id);
    if (it == inc.end()) {
      os << "; comm " << id << " missing from incremental";
    } else if (it->second != routes) {
      os << "; comm " << id << " differs (" << it->second.size() << " vs "
         << routes.size() << " routed flows)";
    }
  }
  return os.str();
}

/// One seed's event stream: returns an empty string on success, a diagnostic
/// on the first divergence.
std::string run_seed(std::uint64_t seed, int num_events) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(small_clos());
  const net::Routing routing(cluster.topology());
  cluster::GpuAllocator allocator(cluster);
  Rng rng(seed * 7919 + 17);

  IncrementalAssigner assigner(cluster, routing);
  AssignOptions options;

  std::unordered_map<std::uint32_t, Tenant> live;
  std::unordered_set<std::uint32_t> failed;  // mirrored into both solvers
  std::uint32_t next_id = 0;
  const std::size_t links = cluster.topology().link_count();
  static const std::vector<int> kSizes{2, 4, 8, 12};
  // Reserved-route regimes the stream cycles through: plain FFA, then PFA
  // with one / two reserved routes.
  static const std::vector<std::unordered_set<std::uint32_t>> kReserved{
      {}, {0}, {0, 1}};

  auto live_ids_sorted = [&] {
    std::vector<std::uint32_t> ids;
    ids.reserve(live.size());
    for (const auto& [id, t] : live) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  for (int ev = 0; ev < num_events; ++ev) {
    const double u = rng.uniform();
    const char* what = "noop";
    if (u < 0.45) {
      // Arrival. Placement policy itself is irrelevant to the identity —
      // alternate random/compact for coverage of both GPU shapes.
      what = "arrival";
      const int n = kSizes[rng.below(kSizes.size())];
      const cluster::Placement pl = rng.uniform() < 0.5
                                        ? cluster::Placement::kCompact
                                        : cluster::Placement::kRandom;
      auto placed = allocator.allocate(n, pl, rng);
      if (!placed) continue;  // full; the stream simply moves on
      Tenant t;
      t.strategy = locality_aware_strategy(*placed, cluster);
      t.gpus = std::move(*placed);
      t.high_priority = rng.uniform() < 0.25;
      const std::uint32_t id = next_id++;
      live.emplace(id, std::move(t));
      const Tenant& ref = live.at(id);
      AssignItem item;
      item.comm = CommId{id};
      item.app = AppId{id};
      item.gpus_by_rank = &ref.gpus;
      item.strategy = &ref.strategy;
      item.high_priority = ref.high_priority;
      assigner.add_item(item);
    } else if (u < 0.70) {
      what = "departure";
      if (live.empty()) continue;
      const auto ids = live_ids_sorted();
      const std::uint32_t id = ids[rng.below(ids.size())];
      allocator.release(live.at(id).gpus);
      live.erase(id);
      assigner.remove_item(CommId{id});
    } else if (u < 0.82) {
      what = "failed-link toggle";
      const std::uint32_t link = static_cast<std::uint32_t>(rng.below(links));
      if (!failed.erase(link)) failed.insert(link);
      options.failed_links = failed;
      assigner.set_failed_links(failed);
    } else if (u < 0.90) {
      // A spurious dirty mark (the netsim change-log feed firing for a link
      // whose state the policy already knows): must re-solve to the same
      // answer, never a different one.
      what = "spurious dirty link";
      assigner.mark_link_dirty(LinkId{static_cast<std::uint32_t>(rng.below(links))});
    } else if (u < 0.96) {
      what = "priority flip";
      if (live.empty()) continue;
      const auto ids = live_ids_sorted();
      const std::uint32_t id = ids[rng.below(ids.size())];
      Tenant& t = live.at(id);
      t.high_priority = !t.high_priority;
      assigner.set_high_priority(CommId{id}, t.high_priority);
    } else {
      what = "reserved-route change";
      const auto& r = kReserved[rng.below(kReserved.size())];
      options.reserved_routes = r;
      assigner.set_reserved_routes(r);
    }

    assigner.solve();

    // Oracle: from-scratch assign_flows over live tenants, ascending.
    std::vector<AssignItem> items;
    items.reserve(live.size());
    for (const std::uint32_t id : live_ids_sorted()) {
      const Tenant& t = live.at(id);
      AssignItem item;
      item.comm = CommId{id};
      item.app = AppId{id};
      item.gpus_by_rank = &t.gpus;
      item.strategy = &t.strategy;
      item.high_priority = t.high_priority;
      items.push_back(item);
    }
    auto full = assign_flows(items, cluster, routing, options);
    auto inc = assigner.assignments();
    strip_empty(full);
    strip_empty(inc);
    if (inc != full) {
      return diff_report(seed, ev, what, inc, full);
    }
  }
  return {};
}

TEST(IncrementalAssign, MatchesFullResolveOverRandomEventStreams) {
  int seeds = 200;
  if (const char* env = std::getenv("MCCS_ASSIGN_SEEDS")) {
    seeds = std::max(1, std::atoi(env));
  }
  std::vector<std::string> failures(static_cast<std::size_t>(seeds));
  par::parallel_for(static_cast<std::size_t>(seeds), 8,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t s = begin; s < end; ++s) {
                        failures[s] = run_seed(s, /*num_events=*/40);
                      }
                    });
  for (int s = 0; s < seeds; ++s) {
    EXPECT_TRUE(failures[static_cast<std::size_t>(s)].empty())
        << failures[static_cast<std::size_t>(s)];
  }
}

TEST(IncrementalAssign, CleanSolveIsANoop) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(small_clos());
  const net::Routing routing(cluster.topology());
  cluster::GpuAllocator allocator(cluster);
  Rng rng(3);

  IncrementalAssigner assigner(cluster, routing);
  auto gpus = allocator.allocate(8, cluster::Placement::kRandom, rng);
  ASSERT_TRUE(gpus.has_value());
  const svc::CommStrategy strategy = locality_aware_strategy(*gpus, cluster);
  AssignItem item;
  item.comm = CommId{0};
  item.app = AppId{0};
  item.gpus_by_rank = &*gpus;
  item.strategy = &strategy;
  assigner.add_item(item);

  const IncrementalSolveStats first = assigner.solve();
  EXPECT_EQ(first.solved_items, 1u);
  EXPECT_GT(first.flows_resolved, 0u);

  // Nothing changed since: the next solve must touch nothing.
  const IncrementalSolveStats second = assigner.solve();
  EXPECT_EQ(second.solved_items, 0u);
  EXPECT_EQ(second.flows_resolved, 0u);
  EXPECT_EQ(second.links_touched, 0u);
  EXPECT_EQ(second.live_items, 1u);
}

TEST(IncrementalAssign, RemovalDirtiesOnlyTheTouchedComponent) {
  // Two tenants on disjoint hosts in different racks are candidate-disjoint
  // (their flows' ECMP paths share no link): removing one must not re-solve
  // the other.
  const cluster::Cluster cluster = cluster::make_spine_leaf(small_clos());
  const net::Routing routing(cluster.topology());

  // Hosts 0..3 are rack 0, hosts 4..7 rack 1 (4 hosts per leaf). Two GPUs
  // per host; tenant A on hosts 0-1, tenant B on hosts 4-5 — both intra-rack.
  const std::vector<GpuId> gpus_a{GpuId{0}, GpuId{1}, GpuId{2}, GpuId{3}};
  const std::vector<GpuId> gpus_b{GpuId{8}, GpuId{9}, GpuId{10}, GpuId{11}};
  const svc::CommStrategy strat_a = locality_aware_strategy(gpus_a, cluster);
  const svc::CommStrategy strat_b = locality_aware_strategy(gpus_b, cluster);

  IncrementalAssigner assigner(cluster, routing);
  AssignItem a{CommId{0}, AppId{0}, &gpus_a, &strat_a, false};
  AssignItem b{CommId{1}, AppId{1}, &gpus_b, &strat_b, false};
  assigner.add_item(a);
  assigner.add_item(b);
  assigner.solve();

  assigner.remove_item(CommId{0});
  const IncrementalSolveStats st = assigner.solve();
  EXPECT_EQ(st.live_items, 1u);
  EXPECT_EQ(st.solved_items, 0u) << "removing an intra-rack tenant must not "
                                    "re-solve a candidate-disjoint one";
}

/// A two-tenant world with cross-rack rings (multi-path flows), for the
/// audit/fallback tests below.
struct AuditWorld {
  cluster::Cluster cluster = cluster::make_spine_leaf(small_clos());
  net::Routing routing{cluster.topology()};
  std::vector<GpuId> gpus_a{GpuId{0}, GpuId{8}, GpuId{16}, GpuId{24}};
  std::vector<GpuId> gpus_b{GpuId{2}, GpuId{10}, GpuId{18}, GpuId{26}};
  svc::CommStrategy strat_a = locality_aware_strategy(gpus_a, cluster);
  svc::CommStrategy strat_b = locality_aware_strategy(gpus_b, cluster);
  IncrementalAssigner assigner{cluster, routing};

  AuditWorld() {
    AssignItem a{CommId{0}, AppId{0}, &gpus_a, &strat_a, false};
    AssignItem b{CommId{1}, AppId{1}, &gpus_b, &strat_b, false};
    assigner.add_item(a);
    assigner.add_item(b);
    assigner.solve();
  }

  std::uint64_t oracle() {
    std::vector<AssignItem> items;
    items.push_back(AssignItem{CommId{0}, AppId{0}, &gpus_a, &strat_a, false});
    items.push_back(AssignItem{CommId{1}, AppId{1}, &gpus_b, &strat_b, false});
    return assignment_digest(assign_flows(items, cluster, routing));
  }
};

TEST(IncrementalAssignAudit, PoisonedStateIsCaughtAndHealed) {
  AuditWorld w;
  telemetry::MetricsRegistry metrics;
  w.assigner.set_audit({/*period=*/1, /*seed=*/42}, &metrics);
  ASSERT_EQ(assignment_digest(w.assigner.assignments()), w.oracle());

  ASSERT_TRUE(w.assigner.debug_poison_state(99));
  EXPECT_NE(assignment_digest(w.assigner.assignments()), w.oracle())
      << "poison must actually skew the stored assignment";

  // Poison raises no dirt, and dirtying any link in the tenants' candidate
  // sets would legitimately re-solve (and heal) the victim before the audit
  // compares. Dirty an idle host's NIC uplink instead: the closure is empty,
  // so the solve is a no-op but still counts for audit sampling, and the
  // audit sees the poisoned state.
  const NodeId idle_nic = w.cluster.nic_node_of_gpu(GpuId{4});
  w.assigner.mark_link_dirty(w.cluster.topology().out_links(idle_nic).front());
  const IncrementalSolveStats st = w.assigner.solve();
  EXPECT_TRUE(st.audited);
  EXPECT_TRUE(st.fell_back);
  EXPECT_EQ(w.assigner.audit_runs(), 1u);
  EXPECT_EQ(w.assigner.audit_mismatches(), 1u);
  EXPECT_EQ(w.assigner.fallbacks(), 1u);
  EXPECT_EQ(metrics.counter_total("policy_audit_mismatch_total"), 1u);
  EXPECT_EQ(assignment_digest(w.assigner.assignments()), w.oracle());

  // The adopted warm state must be a genuine warm start: the next solve on
  // fresh dirt still matches the oracle.
  w.assigner.mark_link_dirty(LinkId{1});
  w.assigner.solve();
  EXPECT_EQ(assignment_digest(w.assigner.assignments()), w.oracle());
}

TEST(IncrementalAssignAudit, CleanStateAuditsWithoutFallback) {
  AuditWorld w;
  w.assigner.set_audit({/*period=*/1, /*seed=*/7});
  for (int i = 0; i < 5; ++i) {
    w.assigner.mark_link_dirty(LinkId{static_cast<std::uint32_t>(i)});
    w.assigner.solve();
  }
  EXPECT_EQ(w.assigner.audit_runs(), 5u);
  EXPECT_EQ(w.assigner.audit_mismatches(), 0u);
  EXPECT_EQ(w.assigner.fallbacks(), 0u);
}

TEST(IncrementalAssignAudit, SampledPeriodAuditsRoughlyOneInN) {
  AuditWorld w;
  w.assigner.set_audit({/*period=*/4, /*seed=*/123});
  for (int i = 0; i < 200; ++i) {
    w.assigner.mark_link_dirty(LinkId{static_cast<std::uint32_t>(i % 8)});
    w.assigner.solve();
  }
  // Seeded hash sampling: expect ~50 audits out of 200 solves; accept a wide
  // band (this is a sanity check on the window math, not a statistics test).
  EXPECT_GT(w.assigner.audit_runs(), 20u);
  EXPECT_LT(w.assigner.audit_runs(), 100u);
}

TEST(IncrementalAssignAudit, InvalidateAllRebuildsFromScratch) {
  AuditWorld w;
  const std::uint64_t before = assignment_digest(w.assigner.assignments());
  w.assigner.invalidate_all();
  EXPECT_EQ(w.assigner.fallbacks(), 1u);  // a cold rebuild is a fallback
  const IncrementalSolveStats st = w.assigner.solve();
  EXPECT_EQ(st.solved_items, 2u) << "invalidate_all must dirty every item";
  EXPECT_EQ(assignment_digest(w.assigner.assignments()), before);
  EXPECT_EQ(assignment_digest(w.assigner.assignments()), w.oracle());
}

TEST(IncrementalAssignAudit, TotalLinkDemandDrainsToZero) {
  AuditWorld w;
  EXPECT_GT(w.assigner.total_link_demand(), 0.0);
  w.assigner.remove_item(CommId{0});
  w.assigner.remove_item(CommId{1});
  w.assigner.solve();
  EXPECT_NEAR(w.assigner.total_link_demand(), 0.0, 1e-3);
}

}  // namespace
}  // namespace mccs::policy
