// Property and fuzz tests of the flow-level network simulator: capacity
// conservation, max-min fairness certificates, and completion accounting
// under randomized flow churn.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs::net {
namespace {

struct FuzzFixture : ::testing::TestWithParam<std::uint64_t> {};

/// No link may carry more than its capacity (within float tolerance).
void assert_capacity_conserved(const Network& net, const Topology& topo) {
  for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id{l};
    EXPECT_LE(net.link_throughput(id), topo.link(id).capacity * (1 + 1e-9))
        << "link " << l << " oversubscribed";
  }
}

TEST_P(FuzzFixture, RandomChurnConservesCapacityAndCompletesEveryFlow) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  Rng rng(GetParam());

  const auto hosts = cl.topology().hosts();
  int started = 0;
  int completed = 0;

  // 60 flows with random endpoints/sizes/latencies, random start times.
  for (int i = 0; i < 60; ++i) {
    loop.schedule_at(rng.uniform() * 0.05, [&, i] {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = hosts[rng.below(hosts.size())];
      if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = 1 + rng.below(200'000'000);
      spec.ecmp_key = rng.engine()();
      spec.start_latency = rng.uniform() * 1e-3;
      if (rng.uniform() < 0.3) spec.rate_cap = gbps(5 + rng.uniform() * 40);
      spec.on_complete = [&](FlowId, Time) { ++completed; };
      net.start_flow(std::move(spec));
      ++started;
      (void)i;
    });
  }
  // Sample capacity conservation at random instants during the churn.
  for (int s = 0; s < 30; ++s) {
    loop.schedule_at(0.001 + rng.uniform() * 0.2, [&] {
      assert_capacity_conserved(net, cl.topology());
    });
  }
  loop.run();
  EXPECT_EQ(completed, started);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST_P(FuzzFixture, MaxMinFairnessCertificate) {
  // Static flow set: every (uncapped, unsatiated) flow must have a
  // bottleneck link — a saturated link on its path where no other flow gets
  // a strictly higher rate. This is the standard max-min optimality
  // certificate.
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  Rng rng(GetParam() ^ 0xabcdef);
  const auto hosts = cl.topology().hosts();

  std::vector<FlowId> flows;
  std::vector<double> caps;
  for (int i = 0; i < 12; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = hosts[rng.below(hosts.size())];
    if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = 1_GB;  // long-lived during the check
    spec.ecmp_key = rng.engine()();
    const bool capped = rng.uniform() < 0.25;
    spec.rate_cap = capped ? gbps(3) : std::numeric_limits<Bandwidth>::infinity();
    caps.push_back(spec.rate_cap);
    flows.push_back(net.start_flow(std::move(spec)));
  }

  // Per-link rates.
  std::map<std::uint32_t, std::vector<double>> link_rates;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (LinkId l : net.flow_path(flows[i])) {
      link_rates[l.get()].push_back(net.flow_rate(flows[i]));
    }
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double rate = net.flow_rate(flows[i]);
    EXPECT_GT(rate, 0.0);
    if (rate >= caps[i] * (1 - 1e-9)) continue;  // satisfied by its own cap
    bool has_bottleneck = false;
    for (LinkId l : net.flow_path(flows[i])) {
      const double cap = cl.topology().link(l).capacity;
      double sum = 0.0;
      double max_rate = 0.0;
      for (double r : link_rates[l.get()]) {
        sum += r;
        max_rate = std::max(max_rate, r);
      }
      if (sum >= cap * (1 - 1e-6) && rate >= max_rate * (1 - 1e-6)) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "flow " << i << " (rate " << rate << ") lacks a max-min bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFixture,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(NetworkProperties, PausedFlowFreesBandwidthForOthers) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  const FlowId f1 = net.start_flow({.src = a, .dst = b, .size = 10_GB, .on_complete = {}});
  const FlowId f2 = net.start_flow({.src = a, .dst = b, .size = 10_GB, .on_complete = {}});
  EXPECT_NEAR(net.flow_rate(f1), gbps(25), 1.0);
  net.pause_flow(f1);
  EXPECT_NEAR(net.flow_rate(f2), gbps(50), 1.0);
  net.resume_flow(f1);
  EXPECT_NEAR(net.flow_rate(f2), gbps(25), 1.0);
}

TEST(NetworkProperties, BackgroundDemandsShareProportionallyWhenOversubscribed) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  // Two background flows demanding 40G each over a 50G NIC link: weighted
  // max-min gives each 25G (equal demands).
  const FlowId b1 = net.start_flow({.src = a, .dst = b, .background_demand = gbps(40), .on_complete = {}});
  const FlowId b2 = net.start_flow({.src = a, .dst = b, .background_demand = gbps(40), .on_complete = {}});
  EXPECT_NEAR(net.flow_rate(b1), gbps(25), 1.0);
  EXPECT_NEAR(net.flow_rate(b2), gbps(25), 1.0);
}

TEST(NetworkProperties, FlowRemainingDecreasesMonotonically) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  const FlowId f = net.start_flow({.src = a, .dst = b, .size = 1_GB, .on_complete = {}});
  Bytes prev = net.flow_remaining(f);
  for (int i = 1; i <= 5; ++i) {
    loop.run_until(i * 0.02);
    if (!net.flow_active(f)) break;
    const Bytes now = net.flow_remaining(f);
    EXPECT_LE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace mccs::net
