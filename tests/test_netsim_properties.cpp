// Property and fuzz tests of the flow-level network simulator: capacity
// conservation, max-min fairness certificates, and completion accounting
// under randomized flow churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs::net {
namespace {

struct FuzzFixture : ::testing::TestWithParam<std::uint64_t> {};

/// No link may carry more than its capacity (within float tolerance).
void assert_capacity_conserved(const Network& net, const Topology& topo) {
  for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id{l};
    EXPECT_LE(net.link_throughput(id), topo.link(id).capacity * (1 + 1e-9))
        << "link " << l << " oversubscribed";
  }
}

TEST_P(FuzzFixture, RandomChurnConservesCapacityAndCompletesEveryFlow) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  Rng rng(GetParam());

  const auto hosts = cl.topology().hosts();
  int started = 0;
  int completed = 0;

  // 60 flows with random endpoints/sizes/latencies, random start times.
  for (int i = 0; i < 60; ++i) {
    loop.schedule_at(rng.uniform() * 0.05, [&, i] {
      const NodeId src = hosts[rng.below(hosts.size())];
      NodeId dst = hosts[rng.below(hosts.size())];
      if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = 1 + rng.below(200'000'000);
      spec.ecmp_key = rng.engine()();
      spec.start_latency = rng.uniform() * 1e-3;
      if (rng.uniform() < 0.3) spec.rate_cap = gbps(5 + rng.uniform() * 40);
      spec.on_complete = [&](FlowId, Time) { ++completed; };
      net.start_flow(std::move(spec));
      ++started;
      (void)i;
    });
  }
  // Sample capacity conservation at random instants during the churn.
  for (int s = 0; s < 30; ++s) {
    loop.schedule_at(0.001 + rng.uniform() * 0.2, [&] {
      assert_capacity_conserved(net, cl.topology());
    });
  }
  loop.run();
  EXPECT_EQ(completed, started);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST_P(FuzzFixture, MaxMinFairnessCertificate) {
  // Static flow set: every (uncapped, unsatiated) flow must have a
  // bottleneck link — a saturated link on its path where no other flow gets
  // a strictly higher rate. This is the standard max-min optimality
  // certificate.
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  Rng rng(GetParam() ^ 0xabcdef);
  const auto hosts = cl.topology().hosts();

  std::vector<FlowId> flows;
  std::vector<double> caps;
  for (int i = 0; i < 12; ++i) {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = hosts[rng.below(hosts.size())];
    if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = 1_GB;  // long-lived during the check
    spec.ecmp_key = rng.engine()();
    const bool capped = rng.uniform() < 0.25;
    spec.rate_cap = capped ? gbps(3) : std::numeric_limits<Bandwidth>::infinity();
    caps.push_back(spec.rate_cap);
    flows.push_back(net.start_flow(std::move(spec)));
  }

  // Per-link rates.
  std::map<std::uint32_t, std::vector<double>> link_rates;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (LinkId l : net.flow_path(flows[i])) {
      link_rates[l.get()].push_back(net.flow_rate(flows[i]));
    }
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double rate = net.flow_rate(flows[i]);
    EXPECT_GT(rate, 0.0);
    if (rate >= caps[i] * (1 - 1e-9)) continue;  // satisfied by its own cap
    bool has_bottleneck = false;
    for (LinkId l : net.flow_path(flows[i])) {
      const double cap = cl.topology().link(l).capacity;
      double sum = 0.0;
      double max_rate = 0.0;
      for (double r : link_rates[l.get()]) {
        sum += r;
        max_rate = std::max(max_rate, r);
      }
      if (sum >= cap * (1 - 1e-6) && rate >= max_rate * (1 - 1e-6)) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "flow " << i << " (rate " << rate << ") lacks a max-min bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFixture,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(NetworkProperties, PausedFlowFreesBandwidthForOthers) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  const FlowId f1 = net.start_flow({.src = a, .dst = b, .size = 10_GB, .on_complete = {}});
  const FlowId f2 = net.start_flow({.src = a, .dst = b, .size = 10_GB, .on_complete = {}});
  EXPECT_NEAR(net.flow_rate(f1), gbps(25), 1.0);
  net.pause_flow(f1);
  EXPECT_NEAR(net.flow_rate(f2), gbps(50), 1.0);
  net.resume_flow(f1);
  EXPECT_NEAR(net.flow_rate(f2), gbps(25), 1.0);
}

TEST(NetworkProperties, BackgroundDemandsShareProportionallyWhenOversubscribed) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  // Two background flows demanding 40G each over a 50G NIC link: weighted
  // max-min gives each 25G (equal demands).
  const FlowId b1 = net.start_flow({.src = a, .dst = b, .background_demand = gbps(40), .on_complete = {}});
  const FlowId b2 = net.start_flow({.src = a, .dst = b, .background_demand = gbps(40), .on_complete = {}});
  EXPECT_NEAR(net.flow_rate(b1), gbps(25), 1.0);
  EXPECT_NEAR(net.flow_rate(b2), gbps(25), 1.0);
}

// --- incremental vs reference cross-validation ------------------------------
//
// The component-scoped solver (Options::incremental, the default) must be
// observationally equivalent to the global reference solver: identical
// completion events and identical rates at any instant, under arbitrary
// churn. Both paths iterate flows in ascending id order, so disjoint
// components produce bit-identical floating point; the tolerance below only
// absorbs the measure-zero near-tie cases inside the solver.

/// Everything a churn run does, precomputed so both modes replay it exactly.
struct ChurnPlan {
  struct Start {
    Time at;
    NodeId src, dst;
    Bytes size;
    std::uint64_t ecmp_key;
    Time latency;
    Bandwidth cap;
    double weight;
  };
  struct Pulse {
    int target;  ///< index into `starts`
    Time pause_at, resume_at;
  };
  struct Cancel {
    int target;
    Time at;
  };
  std::vector<std::pair<NodeId, NodeId>> background;
  std::vector<Start> starts;
  std::vector<Pulse> pulses;
  std::vector<Cancel> cancels;
  std::vector<Time> probes;
};

ChurnPlan make_plan(const std::vector<NodeId>& hosts, Rng& rng) {
  ChurnPlan plan;
  auto pick_pair = [&] {
    const NodeId src = hosts[rng.below(hosts.size())];
    NodeId dst = hosts[rng.below(hosts.size())];
    if (dst == src) dst = hosts[(dst.get() + 1) % hosts.size()];
    return std::pair{src, dst};
  };
  for (int b = 0; b < 2; ++b) plan.background.push_back(pick_pair());
  for (int i = 0; i < 24; ++i) {
    const auto [src, dst] = pick_pair();
    ChurnPlan::Start s;
    s.at = rng.uniform() * 0.05;
    s.src = src;
    s.dst = dst;
    s.size = 1 + rng.below(100'000'000);
    s.ecmp_key = rng.engine()();
    s.latency = rng.uniform() < 0.3 ? rng.uniform() * 1e-3 : 0.0;
    s.cap = rng.uniform() < 0.25 ? gbps(3 + rng.uniform() * 30)
                                 : std::numeric_limits<Bandwidth>::infinity();
    s.weight = rng.uniform() < 0.2 ? 0.5 + rng.uniform() * 3.0 : 1.0;
    plan.starts.push_back(s);
  }
  for (int p = 0; p < 4; ++p) {
    ChurnPlan::Pulse pulse;
    pulse.target = static_cast<int>(rng.below(plan.starts.size()));
    pulse.pause_at = 0.005 + rng.uniform() * 0.05;
    pulse.resume_at = pulse.pause_at + 0.001 + rng.uniform() * 0.03;
    plan.pulses.push_back(pulse);
  }
  for (int c = 0; c < 4; ++c) {
    plan.cancels.push_back({static_cast<int>(rng.below(plan.starts.size())),
                            0.002 + rng.uniform() * 0.06});
  }
  for (int s = 0; s < 3; ++s) plan.probes.push_back(0.004 + rng.uniform() * 0.08);
  return plan;
}

struct ChurnResult {
  std::vector<std::pair<std::uint32_t, Time>> completions;  ///< by flow id
  /// Per probe instant: (start index, rate, lazily-read remaining bytes).
  std::vector<std::vector<std::tuple<int, double, Bytes>>> samples;
};

ChurnResult run_churn(const cluster::Cluster& cl, const ChurnPlan& plan,
                      bool incremental) {
  sim::EventLoop loop;
  Network net(loop, cl.topology(), Network::Options{incremental});
  ChurnResult res;
  std::vector<std::optional<FlowId>> ids(plan.starts.size());

  for (const auto& [src, dst] : plan.background) {
    net.start_flow({.src = src, .dst = dst, .background_demand = gbps(20),
                    .on_complete = {}});
  }
  for (std::size_t i = 0; i < plan.starts.size(); ++i) {
    const ChurnPlan::Start& s = plan.starts[i];
    loop.schedule_at(s.at, [&, i] {
      FlowSpec spec;
      spec.src = plan.starts[i].src;
      spec.dst = plan.starts[i].dst;
      spec.size = plan.starts[i].size;
      spec.ecmp_key = plan.starts[i].ecmp_key;
      spec.start_latency = plan.starts[i].latency;
      spec.rate_cap = plan.starts[i].cap;
      spec.weight = plan.starts[i].weight;
      spec.on_complete = [&res](FlowId id, Time at) {
        res.completions.emplace_back(id.get(), at);
      };
      ids[i] = net.start_flow(std::move(spec));
    });
  }
  for (const ChurnPlan::Pulse& p : plan.pulses) {
    loop.schedule_at(p.pause_at, [&, p] {
      if (ids[static_cast<std::size_t>(p.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(p.target)])) {
        net.pause_flow(*ids[static_cast<std::size_t>(p.target)]);
      }
    });
    loop.schedule_at(p.resume_at, [&, p] {
      if (ids[static_cast<std::size_t>(p.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(p.target)])) {
        net.resume_flow(*ids[static_cast<std::size_t>(p.target)]);
      }
    });
  }
  for (const ChurnPlan::Cancel& c : plan.cancels) {
    loop.schedule_at(c.at, [&, c] {
      if (ids[static_cast<std::size_t>(c.target)] &&
          net.flow_active(*ids[static_cast<std::size_t>(c.target)])) {
        net.cancel_flow(*ids[static_cast<std::size_t>(c.target)]);
      }
    });
  }
  for (Time t : plan.probes) {
    loop.schedule_at(t, [&] {
      std::vector<std::tuple<int, double, Bytes>> sample;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (!ids[i] || !net.flow_active(*ids[i])) continue;
        sample.emplace_back(static_cast<int>(i), net.flow_rate(*ids[i]),
                            net.flow_remaining(*ids[i]));
      }
      res.samples.push_back(std::move(sample));
    });
  }
  loop.run();
  std::sort(res.completions.begin(), res.completions.end());
  return res;
}

/// One seed of the incremental-vs-reference sweep. Returns the number of
/// completions cross-checked (gtest assertions are thread-safe on pthreads
/// platforms, so this runs under the task pool).
std::size_t check_incremental_vs_reference(const cluster::Cluster& cl,
                                           const std::vector<NodeId>& hosts,
                                           std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const ChurnPlan plan = make_plan(hosts, rng);
  const ChurnResult inc = run_churn(cl, plan, /*incremental=*/true);
  const ChurnResult ref = run_churn(cl, plan, /*incremental=*/false);

  // Completions: same flows, same (virtual) times, event for event.
  EXPECT_EQ(inc.completions.size(), ref.completions.size()) << "seed " << seed;
  if (inc.completions.size() != ref.completions.size()) return 0;
  for (std::size_t i = 0; i < inc.completions.size(); ++i) {
    EXPECT_EQ(inc.completions[i].first, ref.completions[i].first)
        << "seed " << seed;
    const Time ti = inc.completions[i].second;
    const Time tr = ref.completions[i].second;
    EXPECT_NEAR(ti, tr, 1e-9 * std::max(1e-3, std::abs(tr)))
        << "seed " << seed << " flow " << inc.completions[i].first;
  }

  // Instantaneous rates and lazily-integrated remaining bytes agree at
  // every probe instant.
  EXPECT_EQ(inc.samples.size(), ref.samples.size()) << "seed " << seed;
  if (inc.samples.size() != ref.samples.size()) return 0;
  for (std::size_t s = 0; s < inc.samples.size(); ++s) {
    EXPECT_EQ(inc.samples[s].size(), ref.samples[s].size())
        << "seed " << seed << " probe " << s;
    if (inc.samples[s].size() != ref.samples[s].size()) return 0;
    for (std::size_t k = 0; k < inc.samples[s].size(); ++k) {
      const auto& [ii, ri, bi] = inc.samples[s][k];
      const auto& [ir, rr, br] = ref.samples[s][k];
      EXPECT_EQ(ii, ir) << "seed " << seed;
      EXPECT_NEAR(ri, rr, 1e-9 * std::max(1.0, std::abs(rr)))
          << "seed " << seed << " flow idx " << ii;
      EXPECT_NEAR(static_cast<double>(bi), static_cast<double>(br),
                  1e-9 * std::max(1.0, static_cast<double>(br)) + 1.0)
          << "seed " << seed << " flow idx " << ii;
    }
  }
  return inc.completions.size();
}

TEST(NetworkProperties, IncrementalMatchesReferenceAcross1000Seeds) {
  const auto cl = cluster::make_testbed();
  const auto hosts = cl.topology().hosts();

  // Seeds are fully independent (each builds its own EventLoop/Network), so
  // the sweep fans out across the task pool. MCCS_NETSIM_PROPERTY_SEEDS
  // trims the sweep for expensive instrumented runs (TSan).
  std::size_t num_seeds = 1000;
  if (const char* env = std::getenv("MCCS_NETSIM_PROPERTY_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) num_seeds = static_cast<std::size_t>(v);
  }
  std::atomic<std::size_t> total_completions{0};
  par::parallel_for(num_seeds, 16, [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t seed = begin; seed < end; ++seed) {
      local += check_incremental_vs_reference(cl, hosts, seed);
    }
    total_completions.fetch_add(local, std::memory_order_relaxed);
  });
  // The acceptance bar: the equivalence claim is backed by real volume
  // (scaled when the sweep is trimmed via the env knob).
  EXPECT_GE(total_completions.load(), num_seeds);
}

TEST(NetworkProperties, FlowRemainingDecreasesMonotonically) {
  auto cl = cluster::make_testbed();
  sim::EventLoop loop;
  Network net(loop, cl.topology());
  const NodeId a = cl.host(HostId{0}).nic_nodes[0];
  const NodeId b = cl.host(HostId{1}).nic_nodes[0];
  const FlowId f = net.start_flow({.src = a, .dst = b, .size = 1_GB, .on_complete = {}});
  Bytes prev = net.flow_remaining(f);
  for (int i = 1; i <= 5; ++i) {
    loop.run_until(i * 0.02);
    if (!net.flow_active(f)) break;
    const Bytes now = net.flow_remaining(f);
    EXPECT_LE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace mccs::net
