// Chaos-under-churn: the workload::run_chaos_churn harness swept over seeds
// (tenant churn composed with link fault storms and mid-run kills), plus
// directed tests for the pieces the sweep leans on — the assigner's sampled
// divergence audit and fallback, change-log re-registration after a crash
// (warm replay vs trimmed-history refusal), and controller restart recovery.
//
// Seed count comes from MCCS_CHAOS_CHURN_SEEDS (default 10); scripts/check.sh
// sweeps 100. Every third seed injects a warm-state poison that only the
// audit can heal, so the sweep continuously proves the self-healing path.
// Seeds run through the deterministic task pool: each owns its whole world
// (Routing's path cache is not thread-safe across seeds), failures are
// collected per slot and asserted afterwards.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "helpers.h"
#include "netsim/network.h"
#include "policy/controller.h"
#include "workload/chaos.h"

namespace mccs::workload {
namespace {

int seed_count() {
  const char* env = std::getenv("MCCS_CHAOS_CHURN_SEEDS");
  if (env == nullptr) return 10;
  const int n = std::atoi(env);
  return n > 0 ? n : 10;
}

cluster::SpineLeafSpec small_clos() {
  // 4 spines x 4 leaves x 4 hosts x 2 GPUs = 32 GPUs: cheap enough that the
  // per-event from-scratch oracle runs at every one of ~10^2 events per
  // seed, rich enough for multi-path ECMP and cross-rack interference.
  cluster::SpineLeafSpec spec;
  spec.num_spines = 4;
  spec.num_leaves = 4;
  spec.hosts_per_leaf = 4;
  spec.gpus_per_host = 2;
  spec.nics_per_host = 2;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  return spec;
}

ChaosChurnSpec small_spec() {
  ChaosChurnSpec spec;
  spec.fabric = small_clos();
  spec.churn.horizon = 2000.0;
  spec.churn.mean_interarrival = 40.0;
  spec.churn.mean_duration = 300.0;
  spec.churn.sizes = {2, 4, 8};
  spec.churn.size_weights = {4.0, 3.0, 1.0};
  spec.churn.high_priority_fraction = 0.2;
  spec.reserved_routes = {0};
  spec.fault_episodes = 5;
  spec.flap_bursts = 1;
  spec.max_kills = 2;
  spec.kill_prob = 0.6;
  spec.audit_period = 4;
  spec.max_admission_retries = 8;
  return spec;
}

std::string check_seed(std::uint64_t seed, bool poison) {
  ChaosChurnSpec spec = small_spec();
  spec.poison = poison;
  const ChaosChurnResult res = run_chaos_churn(spec, seed);
  std::ostringstream os;
  if (!res.terminated) os << "; did not terminate";
  if (!res.exactly_once) os << "; exactly-once violated";
  if (!res.quiesced) {
    os << "; orphans after quiesce (residual demand " << res.residual_demand
       << ")";
  }
  if (!res.identity) {
    os << "; assignment diverged outside a poison window ("
       << res.divergent_events << " divergent events)";
  }
  if (!res.healed) os << "; poison window never healed";
  if (poison && res.divergent_events > 10 && res.fallbacks == 0 &&
      res.audit_mismatches == 0) {
    // A short poison window healing through the dirty closure before any
    // audit samples it is legal (and common — the next event often re-solves
    // the victim). But a window that stayed open for >10 events with audit
    // period 4 should have been sampled at least twice; zero fallbacks there
    // means the audit is not actually looking. Flag for inspection.
    os << "; long poison window (" << res.divergent_events
       << " events) healed without any audit fallback";
  }
  if (os.str().empty()) return {};
  return "seed " + std::to_string(seed) + os.str();
}

TEST(ChaosChurnFuzz, SeedSweepHoldsAllInvariants) {
  const int seeds = seed_count();
  std::vector<std::string> failures(static_cast<std::size_t>(seeds));
  par::parallel_for(static_cast<std::size_t>(seeds), 1,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t s = begin; s < end; ++s) {
                        failures[s] = check_seed(
                            0xc0ffee00u + s, /*poison=*/s % 3 == 2);
                      }
                    });
  for (const std::string& f : failures) EXPECT_EQ(f, std::string{});
}

TEST(ChaosChurn, ReconfigRetainsMoreGoodputThanRehash) {
  // Same trace, same faults; only the control plane's reaction differs.
  ChaosChurnSpec spec = small_spec();
  // One host per leaf: every multi-host tenant crosses the spine, so fabric
  // faults actually sit on routed paths (on the default small_clos a compact
  // 8-GPU tenant fits under one leaf and faults are invisible to goodput).
  spec.fabric.num_leaves = 8;
  spec.fabric.hosts_per_leaf = 1;
  spec.churn.sizes = {4, 8};
  spec.churn.size_weights = {3.0, 1.0};
  spec.audit_period = 0;
  spec.oracle_every_event = false;
  spec.max_kills = 0;
  spec.kill_prob = 0.0;
  spec.fault_episodes = 8;
  spec.degrade_prob = 0.2;
  spec.min_outage = 200.0;
  spec.max_outage = 600.0;
  double reconfig_sum = 0.0;
  double rehash_sum = 0.0;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    spec.reconfig = true;
    reconfig_sum += run_chaos_churn(spec, seed).goodput_retention;
    spec.reconfig = false;
    rehash_sum += run_chaos_churn(spec, seed).goodput_retention;
  }
  EXPECT_GT(reconfig_sum, rehash_sum);
}

TEST(ChaosChurn, StormBackpressureDefersAndRecovers) {
  ChaosChurnSpec spec = small_spec();
  spec.poison = false;
  spec.fault_episodes = 10;
  spec.degrade_prob = 0.0;  // hard downs only => storms engage backpressure
  spec.min_outage = 150.0;
  spec.max_outage = 500.0;
  // Long overlapping storms + brisk arrivals: some submit must land during
  // an outage. Sweep a few seeds so the property does not hinge on one draw.
  std::uint64_t deferred = 0;
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const ChaosChurnResult res = run_chaos_churn(spec, seed);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
    deferred += res.deferred;
  }
  EXPECT_GT(deferred, 0u);
}

TEST(ChaosChurn, BoundedRetryRejectsInsteadOfLivelocking) {
  // A zero retry budget turns every blocked queue head into a rejection the
  // moment a drain passes over it; the run must still terminate, quiesce,
  // and keep exactly-once for the tenants that did run.
  ChaosChurnSpec spec = small_spec();
  spec.max_admission_retries = 0;
  spec.churn.mean_interarrival = 15.0;  // oversubscribe so the queue forms
  const ChaosChurnResult res = run_chaos_churn(spec, 7);
  EXPECT_TRUE(res.ok());
}

TEST(ChaosChurn, AuditCountersLandInMetricsRegistry) {
  ChaosChurnSpec spec = small_spec();
  spec.audit_period = 1;  // audit every solve
  spec.poison = true;
  telemetry::MetricsRegistry metrics;
  const ChaosChurnResult res = run_chaos_churn(spec, 3, &metrics);
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.audits, 0u);
  EXPECT_EQ(metrics.counter_total("policy_audit_runs_total"), res.audits);
  EXPECT_EQ(metrics.counter_total("policy_audit_mismatch_total"),
            res.audit_mismatches);
  EXPECT_EQ(metrics.counter_total("policy_fallback_total"), res.fallbacks);
  // With an every-solve audit the poison is caught at the next solve.
  if (res.divergent_events > 0) {
    EXPECT_GT(res.fallbacks, 0u);
  }
}

// ---------------------------------------------------------------------------
// Change-log re-registration (netsim level)
// ---------------------------------------------------------------------------

struct LogWorld {
  cluster::Cluster cluster = cluster::make_spine_leaf(small_clos());
  sim::EventLoop loop;
  net::Network network{loop, cluster.topology()};
  LinkId link;
  LogWorld() { link = fabric_links(cluster).front(); }
  /// One effective down+up flap = two log entries.
  void flap(int times) {
    for (int i = 0; i < times; ++i) {
      network.set_link_state(link, net::LinkState::kDown);
      network.set_link_state(link, net::LinkState::kUp);
    }
  }
};

TEST(LinkChangeLog, ReRegisterAtRetainedCursorResumes) {
  LogWorld w;
  w.flap(3);
  const std::size_t cursor = 2;  // mid-log, retained (nothing ever trimmed)
  const auto reg = w.network.register_link_change_consumer_at(cursor);
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(w.network.link_change_cursor(reg.consumer), cursor);
  // The resumed consumer replays exactly the suffix it missed.
  EXPECT_EQ(w.network.link_change_end() - cursor, 4u);
  w.network.unregister_link_change_consumer(reg.consumer);
}

TEST(LinkChangeLog, TrimmedHistoryIsRefusedNotGapped) {
  LogWorld w;
  // Consumer A follows the log and acks everything; >1024 acked entries let
  // the trimmer advance the base past a dead consumer's old cursor.
  const int a = w.network.register_link_change_consumer();
  w.flap(600);  // 1200 entries
  w.network.ack_link_changes(a, w.network.link_change_end());
  ASSERT_GT(w.network.link_change_end() - w.network.link_changes_retained(),
            0u)
      << "log was never trimmed; the refusal path cannot be exercised";

  const auto refused = w.network.register_link_change_consumer_at(0);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.gap.requested, 0u);
  EXPECT_GT(refused.gap.earliest, 0u);
  // The refusal must not have registered anything: a fresh registration at
  // the earliest retained index succeeds.
  const auto reg =
      w.network.register_link_change_consumer_at(refused.gap.earliest);
  ASSERT_TRUE(reg.ok());
  w.network.unregister_link_change_consumer(reg.consumer);
  w.network.unregister_link_change_consumer(a);
}

TEST(LinkChangeLog, ReleasedConsumerStopsPinningTheLog) {
  LogWorld w;
  const int slow = w.network.register_link_change_consumer();
  const int fast = w.network.register_link_change_consumer();
  w.flap(600);
  w.network.ack_link_changes(fast, w.network.link_change_end());
  const std::size_t retained_before = w.network.link_changes_retained();
  // `slow` (cursor 0) pins everything. Releasing it lets the next ack trim.
  w.network.unregister_link_change_consumer(slow);
  w.flap(1);
  w.network.ack_link_changes(fast, w.network.link_change_end());
  EXPECT_LT(w.network.link_changes_retained(), retained_before);
  w.network.unregister_link_change_consumer(fast);
  // With every consumer released the log is kept whole for late joiners.
  w.flap(2);
  EXPECT_GE(w.network.link_changes_retained(), 4u);
}

// ---------------------------------------------------------------------------
// Controller crash / restart recovery (fabric level)
// ---------------------------------------------------------------------------

std::vector<GpuId> cross_rack_gpus(const cluster::Cluster& cluster, int n,
                                   int offset) {
  // One GPU per host, hosts spread round-robin across the cluster: every
  // ring edge is inter-host and most cross racks.
  std::vector<GpuId> out;
  const int hosts = static_cast<int>(cluster.gpu_count()) /
                    2;  // small_clos: 2 GPUs per host
  for (int i = 0; i < n; ++i) {
    out.push_back(GpuId{static_cast<std::uint32_t>(
        ((offset + i * 5) % hosts) * 2)});
  }
  return out;
}

std::uint64_t oracle_digest(svc::Fabric& fabric, policy::Controller& ctrl) {
  std::vector<policy::AssignItem> items;
  std::vector<svc::CommInfo> infos = fabric.list_communicators();
  std::vector<svc::CommStrategy> strategies;
  strategies.reserve(infos.size());
  for (const svc::CommInfo& info : infos) {
    strategies.push_back(fabric.strategy_of(info.id));
  }
  for (std::size_t i = 0; i < infos.size(); ++i) {
    policy::AssignItem item;
    item.comm = infos[i].id;
    item.app = infos[i].app;
    item.gpus_by_rank = &infos[i].gpus;
    item.strategy = &strategies[i];
    items.push_back(item);
  }
  policy::AssignOptions options;
  std::vector<LinkId> failed = ctrl.failed_links();
  for (LinkId l : failed) options.failed_links.insert(l.get());
  return policy::assignment_digest(policy::assign_flows(
      items, fabric.cluster(), fabric.network().routing(), options));
}

TEST(ControllerRestart, WarmReplayCoversTheOutage) {
  svc::Fabric fabric{cluster::make_spine_leaf(small_clos())};
  auto old_ctrl = std::make_unique<policy::Controller>(fabric);
  old_ctrl->set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  old_ctrl->set_incremental(true);
  old_ctrl->attach();
  mccs::test::create_comm(fabric, AppId{1},
                          cross_rack_gpus(fabric.cluster(), 4, 0));
  mccs::test::create_comm(fabric, AppId{2},
                          cross_rack_gpus(fabric.cluster(), 4, 3));

  const policy::Controller::ControllerSnapshot snap = old_ctrl->snapshot();
  EXPECT_FALSE(snap.assignments.empty());
  old_ctrl.reset();  // crash: consumer released, decisions survive in `snap`

  // Outage-era events the dead controller never saw.
  const LinkId flapped = fabric_links(fabric.cluster()).front();
  fabric.network().set_link_state(flapped, net::LinkState::kDown);
  fabric.network().set_link_state(flapped, net::LinkState::kUp);

  policy::Controller ctrl(fabric);
  ctrl.set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  ctrl.set_incremental(true);
  ctrl.attach();
  const auto outcome = ctrl.restore(snap);
  EXPECT_EQ(outcome, policy::Controller::RestoreOutcome::kWarmReplay);
  // The replayed flap dirtied the tenants crossing that link, and the
  // post-restore assignment is exactly the from-scratch result.
  EXPECT_EQ(fabric.telemetry().metrics().counter_total(
                "controller_cold_rebuild_total"),
            0u);
  EXPECT_EQ(policy::assignment_digest(ctrl.warm_assigner().assignments()),
            oracle_digest(fabric, ctrl));
}

TEST(ControllerRestart, TrimmedHistoryForcesLoudColdRebuild) {
  svc::Fabric fabric{cluster::make_spine_leaf(small_clos())};
  auto old_ctrl = std::make_unique<policy::Controller>(fabric);
  old_ctrl->set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  old_ctrl->set_incremental(true);
  old_ctrl->attach();
  mccs::test::create_comm(fabric, AppId{1},
                          cross_rack_gpus(fabric.cluster(), 4, 0));
  const policy::Controller::ControllerSnapshot snap = old_ctrl->snapshot();
  old_ctrl.reset();

  // A long outage the log cannot hold for the dead controller: another
  // consumer keeps pace and acks >1024 entries, so the trimmer advances the
  // base past the snapshot cursor.
  net::Network& network = fabric.network();
  const int pacer = network.register_link_change_consumer();
  const LinkId link = fabric_links(fabric.cluster()).front();
  for (int i = 0; i < 600; ++i) {
    network.set_link_state(link, net::LinkState::kDown);
    network.set_link_state(link, net::LinkState::kUp);
  }
  network.ack_link_changes(pacer, network.link_change_end());

  policy::Controller ctrl(fabric);
  ctrl.set_flow_policy(policy::Controller::FlowPolicy::kFfa);
  ctrl.set_incremental(true);
  ctrl.attach();
  const auto outcome = ctrl.restore(snap);
  EXPECT_EQ(outcome, policy::Controller::RestoreOutcome::kColdRebuild);
  EXPECT_EQ(fabric.telemetry().metrics().counter_total(
                "controller_cold_rebuild_total"),
            1u);
  // Cold, but correct: the rebuilt assignment matches the oracle.
  EXPECT_EQ(policy::assignment_digest(ctrl.warm_assigner().assignments()),
            oracle_digest(fabric, ctrl));
  network.unregister_link_change_consumer(pacer);
}

}  // namespace
}  // namespace mccs::workload
