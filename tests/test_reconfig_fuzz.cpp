// Randomized stress test of the reconfiguration protocol: bursts of in-place
// AllReduces interleaved with reconfiguration commands whose per-rank
// delivery delays, target strategies (reverse / rotate / algorithm flips)
// and timing are all drawn from a seeded RNG. Safety property: every
// collective completes and every sum is exact — which can only hold if no
// sequence number ever executes under mixed configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

class ReconfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconfigFuzz, RandomizedReconfigurationsNeverCorrupt) {
  Rng rng(GetParam());
  svc::Fabric::Options options;
  options.seed = GetParam();
  svc::Fabric fabric{cluster::make_testbed(), options};

  const AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);

  const std::size_t count = 512;
  std::vector<gpu::DevicePtr> buf(4);
  std::vector<double> expected(count, 0.0);
  for (int r = 0; r < 4; ++r) {
    buf[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }

  int completed = 0;
  int issued = 0;
  const int kOps = 40;
  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.7 || op < 2) {
      // One AllReduce across all ranks.
      ++issued;
      for (int r = 0; r < 4; ++r) {
        auto& rk = ranks[static_cast<std::size_t>(r)];
        rk.shim->all_reduce(comm, buf[static_cast<std::size_t>(r)],
                            buf[static_cast<std::size_t>(r)], count,
                            coll::DataType::kFloat32, coll::ReduceOp::kSum,
                            *rk.stream, [&completed](Time) { ++completed; });
      }
    } else {
      // A reconfiguration with random strategy mutation and random delays.
      svc::CommStrategy s = fabric.strategy_of(comm);
      const double mut = rng.uniform();
      if (mut < 0.4) {
        for (auto& o : s.channel_orders) o = o.reversed();
      } else if (mut < 0.7) {
        // Rotate the ring by a random amount.
        for (auto& o : s.channel_orders) {
          std::vector<int> v = o.order();
          std::rotate(v.begin(),
                      v.begin() + static_cast<std::ptrdiff_t>(1 + rng.below(v.size() - 1)),
                      v.end());
          o = coll::RingOrder(std::move(v));
        }
      } else {
        s.algorithm = s.algorithm == coll::Algorithm::kRing
                          ? coll::Algorithm::kTree
                          : coll::Algorithm::kRing;
        s.tree_pipeline_chunks = 1 + rng.below(6);
      }
      std::vector<Time> delays;
      for (int r = 0; r < 4; ++r) delays.push_back(rng.uniform() * millis(2));
      fabric.reconfigure(comm, std::move(s), std::move(delays));
    }
    // Occasionally let the system drain partially, so some reconfigurations
    // hit an idle communicator and others hit a deep queue.
    if (rng.uniform() < 0.3) {
      fabric.loop().run_until(fabric.loop().now() + rng.uniform() * millis(3));
    }
  }

  ASSERT_TRUE(
      fabric.loop().run_while_pending([&] { return completed == issued * 4; }))
      << "wedged: " << completed << "/" << issued * 4;
  fabric.loop().run();

  // Validate sums: issued in-place AllReduces multiply by 4 after the first.
  for (int r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      const double want = expected[i] * std::pow(4.0, issued - 1);
      ASSERT_NEAR(out[i], want, std::abs(want) * 1e-4)
          << "seed " << GetParam() << " rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigFuzz,
                         ::testing::Values(11, 23, 57, 101, 333, 777, 2024,
                                           31337));

}  // namespace
}  // namespace mccs
