// Tests of the binary-tree collective schedules (§5 extension) — both the
// abstract schedule properties and end-to-end numerical correctness through
// the MCCS service with a tree strategy installed.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/cluster.h"
#include "collectives/schedule.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::ChannelSchedule;
using coll::CollectiveKind;
using coll::CommStep;

// --- schedule-level properties ---------------------------------------------------

/// Message-driven abstract execution over contribution ledgers (same idea as
/// the ring-schedule tests, generalised to arbitrary peers).
using Ledger = std::vector<std::map<int, int>>;  // per chunk: contributor->count

std::vector<Ledger> run_tree(int n, CollectiveKind kind, int root,
                             std::size_t chunks) {
  std::vector<ChannelSchedule> scheds(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    scheds[static_cast<std::size_t>(r)] =
        kind == CollectiveKind::kAllReduce
            ? coll::build_tree_allreduce_schedule(n, r, chunks)
            : coll::build_tree_broadcast_schedule(n, r, root, chunks);
  }
  std::vector<Ledger> state(static_cast<std::size_t>(n), Ledger(chunks));
  for (int r = 0; r < n; ++r) {
    if (kind == CollectiveKind::kAllReduce || r == root) {
      for (std::size_t c = 0; c < chunks; ++c) {
        state[static_cast<std::size_t>(r)][c][kind == CollectiveKind::kAllReduce
                                                  ? r
                                                  : root] = 1;
      }
    }
  }

  std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
  std::vector<bool> sent(static_cast<std::size_t>(n), false);
  std::vector<std::set<int>> arrived(static_cast<std::size_t>(n));
  bool progress = true;
  auto all_done = [&] {
    for (int r = 0; r < n; ++r) {
      if (cur[static_cast<std::size_t>(r)] <
          scheds[static_cast<std::size_t>(r)].steps.size())
        return false;
    }
    return true;
  };
  while (!all_done()) {
    EXPECT_TRUE(progress) << "tree schedule deadlocked";
    if (!progress) break;
    progress = false;
    for (int r = 0; r < n; ++r) {
      auto& c = cur[static_cast<std::size_t>(r)];
      const auto& steps = scheds[static_cast<std::size_t>(r)].steps;
      if (c >= steps.size()) continue;
      const CommStep& st = steps[c];
      if (st.has_send() && !sent[static_cast<std::size_t>(r)]) {
        // Locate the receiver's matching recv to learn reduce-vs-copy (the
        // executor resolves this from the receiver's recv_info).
        const auto& peer_steps = scheds[static_cast<std::size_t>(st.send_to)].steps;
        const CommStep* match = nullptr;
        for (const CommStep& ps : peer_steps) {
          if (ps.has_recv() && ps.recv_tag == st.send_tag) {
            match = &ps;
            break;
          }
        }
        EXPECT_NE(match, nullptr) << "unmatched send tag";
        if (match == nullptr) return state;
        EXPECT_EQ(match->recv_chunk, st.send_chunk);
        EXPECT_EQ(match->recv_from, r);
        auto& dst_chunk = state[static_cast<std::size_t>(st.send_to)][st.send_chunk];
        if (match->reduce) {
          for (auto& [who, cnt] : state[static_cast<std::size_t>(r)][st.send_chunk]) {
            dst_chunk[who] += cnt;
          }
        } else {
          dst_chunk = state[static_cast<std::size_t>(r)][st.send_chunk];
        }
        arrived[static_cast<std::size_t>(st.send_to)].insert(st.send_tag);
        sent[static_cast<std::size_t>(r)] = true;
        progress = true;
      }
      const bool send_ok = !st.has_send() || sent[static_cast<std::size_t>(r)];
      const bool recv_ok =
          !st.has_recv() || arrived[static_cast<std::size_t>(r)].count(st.recv_tag) > 0;
      if (send_ok && recv_ok) {
        ++c;
        sent[static_cast<std::size_t>(r)] = false;
        progress = true;
      }
    }
  }
  return state;
}

struct TreeCase {
  int n;
  std::size_t chunks;
};

class TreeScheduleP : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeScheduleP, AllReduceSumsEveryContributionExactlyOnce) {
  const auto [n, chunks] = GetParam();
  auto state = run_tree(n, CollectiveKind::kAllReduce, 0, chunks);
  for (int r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (int who = 0; who < n; ++who) {
        ASSERT_EQ(state[static_cast<std::size_t>(r)][c][who], 1)
            << "rank " << r << " chunk " << c << " contributor " << who;
      }
    }
  }
}

TEST_P(TreeScheduleP, BroadcastDeliversRootEverywhere) {
  const auto [n, chunks] = GetParam();
  const int root = n / 3;
  auto state = run_tree(n, CollectiveKind::kBroadcast, root, chunks);
  for (int r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(state[static_cast<std::size_t>(r)][c][root], 1)
          << "rank " << r << " chunk " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeScheduleP,
                         ::testing::Values(TreeCase{2, 1}, TreeCase{3, 2},
                                           TreeCase{4, 4}, TreeCase{5, 3},
                                           TreeCase{8, 8}, TreeCase{16, 4},
                                           TreeCase{17, 5}));

TEST(TreeSchedule, DepthIsLogarithmic) {
  // A leaf's step count is O(chunks * log n), not O(chunks * n).
  const auto leaf = coll::build_tree_allreduce_schedule(64, 63, 4);
  EXPECT_LT(leaf.steps.size(), 4u * 2 * 8);
}

TEST(TreeSchedule, EdgesCoverEveryNonRootOnce) {
  const auto edges = coll::tree_edges(9, 2, CollectiveKind::kBroadcast);
  EXPECT_EQ(edges.size(), 8u);  // n-1 downward edges
  std::set<int> receivers;
  for (auto [src, dst] : edges) receivers.insert(dst);
  EXPECT_EQ(receivers.size(), 8u);
  EXPECT_EQ(receivers.count(2), 0u);  // root receives nothing
}

// --- end-to-end through the MCCS service -----------------------------------------

svc::CommStrategy tree_strategy(const std::vector<GpuId>& gpus,
                                const cluster::Cluster& cl,
                                std::size_t chunks) {
  svc::CommStrategy s = svc::nccl_default_strategy(gpus, cl);
  s.algorithm = coll::Algorithm::kTree;
  s.tree_pipeline_chunks = chunks;
  return s;
}

class TreeServiceP : public ::testing::TestWithParam<int> {};

TEST_P(TreeServiceP, AllReduceNumericallyCorrect) {
  const int n = GetParam();
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return tree_strategy(info.gpus, fabric.cluster(), 4);
  });
  AppId app{1};
  std::vector<GpuId> gpus;
  for (int r = 0; r < n; ++r) gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 999;  // not divisible by chunks or channels
  std::vector<gpu::DevicePtr> buf(gpus.size());
  std::vector<float> expected(count, 0.0f);
  for (int r = 0; r < n; ++r) {
    buf[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_reduce(comm, buf[static_cast<std::size_t>(r)],
                        buf[static_cast<std::size_t>(r)], count,
                        coll::DataType::kFloat32, coll::ReduceOp::kSum,
                        *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], expected[i]) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeServiceP, ::testing::Values(2, 3, 5, 8));

TEST(TreeService, BroadcastFromNonZeroRoot) {
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return tree_strategy(info.gpus, fabric.cluster(), 3);
  });
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}, GpuId{6}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 500;
  const int root = 3;
  std::vector<gpu::DevicePtr> buf(4);
  for (int r = 0; r < 4; ++r) {
    buf[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, buf[static_cast<std::size_t>(r)], count, r);
  }
  std::vector<float> root_data;
  {
    auto s = fabric.gpus().typed<float>(buf[root], count);
    root_data.assign(s.begin(), s.end());
  }
  int remaining = 4;
  for (int r = 0; r < 4; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->broadcast(comm, buf[static_cast<std::size_t>(r)],
                       buf[static_cast<std::size_t>(r)], count,
                       coll::DataType::kFloat32, root, *rk.stream,
                       [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < 4; ++r) {
    auto out = fabric.gpus().typed<float>(buf[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_FLOAT_EQ(out[i], root_data[i]);
  }
}

TEST(TreeService, AllGatherFallsBackToRing) {
  // Tree strategies execute AllGather on rings; the result must be correct.
  svc::Fabric fabric{cluster::make_testbed()};
  fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
    return tree_strategy(info.gpus, fabric.cluster(), 4);
  });
  AppId app{1};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}};
  const CommId comm = test::create_comm(fabric, app, gpus);
  auto ranks = test::make_ranks(fabric, app, gpus);
  const std::size_t count = 64;
  std::vector<gpu::DevicePtr> send(3), recv(3);
  int remaining = 3;
  for (int r = 0; r < 3; ++r) {
    send[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    recv[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(3 * count * sizeof(float));
    test::fill_pattern<float>(fabric, send[static_cast<std::size_t>(r)], count, r);
  }
  for (int r = 0; r < 3; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_gather(comm, send[static_cast<std::size_t>(r)],
                        recv[static_cast<std::size_t>(r)], count,
                        coll::DataType::kFloat32, *rk.stream,
                        [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(test::await(fabric, remaining));
  for (int r = 0; r < 3; ++r) {
    auto out = fabric.gpus().typed<float>(recv[static_cast<std::size_t>(r)], 3 * count);
    for (int src = 0; src < 3; ++src) {
      auto in = fabric.gpus().typed<float>(send[static_cast<std::size_t>(src)], count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(src) * count + i], in[i]);
      }
    }
  }
}

}  // namespace
}  // namespace mccs
