// Tests of the stats helpers (common/stats.h), focused on the quantile /
// p999 additions the cluster-day decision-latency metrics lean on: the
// generic quantile form must agree exactly with the percentile form it wraps,
// and TailSummary's p999 must actually read past p99 once the sample count
// supports it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/stats.h"

namespace mccs {
namespace {

TEST(Stats, QuantileMatchesPercentileExactly) {
  std::vector<double> xs{5.0, 1.0, 4.0, 2.0, 3.0};
  for (const double p : {0.0, 10.0, 25.0, 50.0, 73.5, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(quantile(xs, p / 100.0), percentile(xs, p)) << "p=" << p;
  }
}

TEST(Stats, QuantileSortedInterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};  // rank = q exactly
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
}

TEST(Stats, QuantileSingleSampleIsThatSample) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.999), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 42.0);
}

TEST(Stats, QuantileBitwiseEqualsPercentileAcrossQGrid) {
  // Property: for every grid point q = k/100, quantile_sorted(xs, q) must be
  // BITWISE equal to percentile_sorted(xs, k). Both compute rank = (k/100.0)
  // * (n-1) from the same double, so the interpolation cell and the blend
  // are identical. The old forwarding form computed percentile_sorted(xs,
  // q*100.0) instead, and q*100.0 is inexact for most k (k=29 -> p =
  // 28.999999999999996), shifting the floor/ceil cell.
  std::vector<double> xs(257);
  std::uint64_t s = 99;
  for (auto& x : xs) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<double>(s >> 40) * 1e-3;
  }
  sort_samples(xs);
  for (int k = 0; k <= 100; ++k) {
    const double q = static_cast<double>(k) / 100.0;
    const double via_q = quantile_sorted(xs, q);
    const double via_p = percentile_sorted(xs, static_cast<double>(k));
    // Bitwise, not EXPECT_DOUBLE_EQ (which tolerates 4 ulps).
    EXPECT_EQ(std::memcmp(&via_q, &via_p, sizeof(double)), 0)
        << "k=" << k << " q=" << via_q << " p=" << via_p;
  }
  // The motivating case from the fix: q = 0.29 against p = 29 on a ramp.
  std::vector<double> ramp(101);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  const double via_q = quantile_sorted(ramp, 0.29);
  const double via_p = percentile_sorted(ramp, 29.0);
  EXPECT_EQ(std::memcmp(&via_q, &via_p, sizeof(double)), 0);
}

TEST(Stats, P999ReadsTheTailNotTheP99Neighbourhood) {
  // 10000-sample ramp 0..9999: p99 ~ 9899, p999 ~ 9989 — distinct points.
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const TailSummary t = tail_summary_sorted(xs);
  EXPECT_DOUBLE_EQ(t.p50, 4999.5);
  EXPECT_NEAR(t.p99, 9899.01, 1e-9);
  EXPECT_NEAR(t.p999, 9989.001, 1e-9);
  EXPECT_LT(t.p99, t.p999);
  EXPECT_LE(t.p999, xs.back());
}

TEST(Stats, TailSummaryIsMonotoneOnRandomishData) {
  // Deterministic pseudo-random-ish data via a fixed LCG (no global RNG).
  std::vector<double> xs;
  std::uint64_t s = 12345;
  for (int i = 0; i < 5000; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    xs.push_back(static_cast<double>(s >> 40));
  }
  const TailSummary t = tail_summary(xs);  // by-value form sorts internally
  EXPECT_LE(t.p50, t.p99);
  EXPECT_LE(t.p99, t.p999);
}

TEST(Stats, TailSummaryOnFewSamplesInterpolatesTowardMax) {
  // Below 1000 samples p999 still interpolates — it lands between the last
  // two order statistics, never past the max.
  std::vector<double> xs{1.0, 2.0, 3.0, 100.0};
  const TailSummary t = tail_summary(xs);
  EXPECT_GT(t.p999, 3.0);
  EXPECT_LE(t.p999, 100.0);
  EXPECT_GE(t.p999, t.p99);
}

TEST(Stats, QuantileLadderMatchesHandComputedRanks) {
  // q = 1 - 10^-k ladder on 1001 samples: ranks land on exact indices for
  // k=1,2 and interpolate for k=3.
  std::vector<double> xs(1001);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.9), 900.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.99), 990.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.999), 999.0);
}

}  // namespace
}  // namespace mccs
