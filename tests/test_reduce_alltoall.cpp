// End-to-end tests of the Reduce (chain and tree) and AllToAll collectives.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "helpers.h"
#include "mccs/fabric.h"

namespace mccs {
namespace {

using coll::DataType;
using coll::ReduceOp;
using svc::Fabric;
using test::await;
using test::create_comm;
using test::make_ranks;

void run_reduce_and_check(Fabric& fabric, AppId app,
                          const std::vector<GpuId>& gpus, std::size_t count,
                          int root) {
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);
  const int n = static_cast<int>(gpus.size());
  std::vector<gpu::DevicePtr> send(gpus.size()), recv(gpus.size());
  std::vector<float> expected(count, 0.0f);
  std::vector<std::vector<float>> inputs(gpus.size());
  for (int r = 0; r < n; ++r) {
    send[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    recv[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, send[static_cast<std::size_t>(r)], count, r);
    auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)], count);
    inputs[static_cast<std::size_t>(r)].assign(s.begin(), s.end());
    for (std::size_t i = 0; i < count; ++i) expected[i] += s[i];
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->reduce(comm, send[static_cast<std::size_t>(r)],
                    recv[static_cast<std::size_t>(r)], count, DataType::kFloat32,
                    ReduceOp::kSum, root, *rk.stream,
                    [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));

  // Root holds the reduction; everyone's send buffer is untouched.
  auto out = fabric.gpus().typed<float>(recv[static_cast<std::size_t>(root)], count);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_FLOAT_EQ(out[i], expected[i]) << "root elem " << i;
  }
  for (int r = 0; r < n; ++r) {
    auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(s[i], inputs[static_cast<std::size_t>(r)][i])
          << "rank " << r << "'s input was clobbered";
    }
  }
}

struct ReduceCase {
  int nranks;
  int root;
  bool tree;
};

class ReduceP : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceP, ReduceToRootIsExact) {
  const auto [nranks, root, tree] = GetParam();
  Fabric fabric{cluster::make_testbed()};
  if (tree) {
    fabric.set_strategy_provider([&fabric](const svc::CommInfo& info) {
      svc::CommStrategy s = svc::nccl_default_strategy(info.gpus, fabric.cluster());
      s.algorithm = coll::Algorithm::kTree;
      s.tree_pipeline_chunks = 3;
      return s;
    });
  }
  std::vector<GpuId> gpus;
  for (int r = 0; r < nranks; ++r) gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  run_reduce_and_check(fabric, AppId{1}, gpus, 517, root);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ReduceP,
    ::testing::Values(ReduceCase{2, 0, false}, ReduceCase{2, 1, false},
                      ReduceCase{4, 0, false}, ReduceCase{4, 2, false},
                      ReduceCase{8, 5, false}, ReduceCase{2, 1, true},
                      ReduceCase{4, 3, true}, ReduceCase{8, 0, true},
                      ReduceCase{7, 4, true}));

TEST(ReduceCollective, MaxOperatorAtRoot) {
  Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}, GpuId{4}};
  const CommId comm = create_comm(fabric, AppId{1}, gpus);
  auto ranks = make_ranks(fabric, AppId{1}, gpus);
  const std::size_t count = 33;
  std::vector<gpu::DevicePtr> send(3), recv(3);
  for (int r = 0; r < 3; ++r) {
    send[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    recv[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      s[i] = static_cast<float>((r * 7 + static_cast<int>(i) * 3) % 11);
    }
  }
  int remaining = 3;
  for (int r = 0; r < 3; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->reduce(comm, send[static_cast<std::size_t>(r)],
                    recv[static_cast<std::size_t>(r)], count, DataType::kFloat32,
                    ReduceOp::kMax, 1, *rk.stream, [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  auto out = fabric.gpus().typed<float>(recv[1], count);
  for (std::size_t i = 0; i < count; ++i) {
    float want = 0;
    for (int r = 0; r < 3; ++r) {
      auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)], count);
      want = std::max(want, s[i]);
    }
    ASSERT_FLOAT_EQ(out[i], want);
  }
}

class AllToAllP : public ::testing::TestWithParam<int> {};

TEST_P(AllToAllP, EveryBlockLandsAtItsDestination) {
  const int n = GetParam();
  Fabric fabric{cluster::make_testbed()};
  AppId app{1};
  std::vector<GpuId> gpus;
  for (int r = 0; r < n; ++r) gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  const CommId comm = create_comm(fabric, app, gpus);
  auto ranks = make_ranks(fabric, app, gpus);

  const std::size_t count = 51;  // per peer, odd to exercise striping
  std::vector<gpu::DevicePtr> send(gpus.size()), recv(gpus.size());
  for (int r = 0; r < n; ++r) {
    send[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(
        count * static_cast<std::size_t>(n) * sizeof(float));
    recv[static_cast<std::size_t>(r)] = ranks[static_cast<std::size_t>(r)].shim->alloc(
        count * static_cast<std::size_t>(n) * sizeof(float));
    auto s = fabric.gpus().typed<float>(send[static_cast<std::size_t>(r)],
                                        count * static_cast<std::size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      for (std::size_t i = 0; i < count; ++i) {
        // Unique value per (source, destination, element).
        s[static_cast<std::size_t>(peer) * count + i] =
            static_cast<float>(r * 10000 + peer * 100 + static_cast<int>(i));
      }
    }
  }
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    auto& rk = ranks[static_cast<std::size_t>(r)];
    rk.shim->all_to_all(comm, send[static_cast<std::size_t>(r)],
                        recv[static_cast<std::size_t>(r)], count,
                        DataType::kFloat32, *rk.stream,
                        [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int r = 0; r < n; ++r) {
    auto out = fabric.gpus().typed<float>(recv[static_cast<std::size_t>(r)],
                                          count * static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      for (std::size_t i = 0; i < count; ++i) {
        const float want =
            static_cast<float>(src * 10000 + r * 100 + static_cast<int>(i));
        ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(src) * count + i], want)
            << "rank " << r << " block from " << src << " elem " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllToAllP, ::testing::Values(2, 3, 4, 8));

TEST(AllToAll, InPlaceIsRejected) {
  Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  const CommId comm = create_comm(fabric, AppId{1}, gpus);
  svc::Shim& shim = fabric.connect(AppId{1}, GpuId{0});
  gpu::Stream& stream = shim.create_app_stream();
  gpu::DevicePtr buf = shim.alloc(2 * 16 * sizeof(float));
  EXPECT_THROW(shim.all_to_all(comm, buf, buf, 16, DataType::kFloat32, stream),
               ContractViolation);
}

TEST(ReduceCollective, TraceRecordsReduceKind) {
  Fabric fabric{cluster::make_testbed()};
  const std::vector<GpuId> gpus{GpuId{0}, GpuId{2}};
  run_reduce_and_check(fabric, AppId{1}, gpus, 64, 0);
  const auto trace = fabric.trace(AppId{1});
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().kind, coll::CollectiveKind::kReduce);
  EXPECT_EQ(trace.front().bytes, 64 * sizeof(float));
}

}  // namespace
}  // namespace mccs

namespace mccs {
namespace {

struct StarCase {
  int nranks;
  int root;
};

class GatherScatterP : public ::testing::TestWithParam<StarCase> {};

TEST_P(GatherScatterP, GatherCollectsEveryBlockAtRoot) {
  const auto [nranks, root] = GetParam();
  Fabric fabric{cluster::make_testbed()};
  std::vector<GpuId> gpus;
  for (int r = 0; r < nranks; ++r) gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  const CommId comm = create_comm(fabric, AppId{1}, gpus);
  auto ranks = make_ranks(fabric, AppId{1}, gpus);
  const std::size_t count = 73;
  std::vector<gpu::DevicePtr> send(gpus.size());
  gpu::DevicePtr root_recv =
      ranks[static_cast<std::size_t>(root)].shim->alloc(
          count * static_cast<std::size_t>(nranks) * sizeof(float));
  gpu::DevicePtr other_recv =
      ranks[0].shim->alloc(count * sizeof(float));  // non-root recv unused
  int remaining = nranks;
  for (int r = 0; r < nranks; ++r) {
    send[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    test::fill_pattern<float>(fabric, send[static_cast<std::size_t>(r)], count, r);
  }
  for (int r = 0; r < nranks; ++r) {
    gpu::DevicePtr recv = r == root ? root_recv : other_recv;
    if (r != root && r != 0) recv = send[static_cast<std::size_t>(r)];  // ignored
    ranks[static_cast<std::size_t>(r)].shim->gather(
        comm, send[static_cast<std::size_t>(r)], recv, count,
        coll::DataType::kFloat32, root, *ranks[static_cast<std::size_t>(r)].stream,
        [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  for (int src = 0; src < nranks; ++src) {
    auto in = fabric.gpus().typed<float>(send[static_cast<std::size_t>(src)], count);
    auto out = fabric.gpus().typed<float>(
        root_recv, count * static_cast<std::size_t>(nranks));
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(src) * count + i], in[i])
          << "block " << src << " elem " << i;
    }
  }
}

TEST_P(GatherScatterP, ScatterDeliversEachBlockToItsRank) {
  const auto [nranks, root] = GetParam();
  Fabric fabric{cluster::make_testbed()};
  std::vector<GpuId> gpus;
  for (int r = 0; r < nranks; ++r) gpus.push_back(GpuId{static_cast<std::uint32_t>(r)});
  const CommId comm = create_comm(fabric, AppId{1}, gpus);
  auto ranks = make_ranks(fabric, AppId{1}, gpus);
  const std::size_t count = 61;
  gpu::DevicePtr root_send = ranks[static_cast<std::size_t>(root)].shim->alloc(
      count * static_cast<std::size_t>(nranks) * sizeof(float));
  {
    auto s = fabric.gpus().typed<float>(
        root_send, count * static_cast<std::size_t>(nranks));
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<float>(i * 3 + 1);
  }
  std::vector<gpu::DevicePtr> recv(gpus.size());
  int remaining = nranks;
  for (int r = 0; r < nranks; ++r) {
    recv[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].shim->alloc(count * sizeof(float));
    gpu::DevicePtr send = r == root ? root_send : recv[static_cast<std::size_t>(r)];
    ranks[static_cast<std::size_t>(r)].shim->scatter(
        comm, send, recv[static_cast<std::size_t>(r)], count,
        coll::DataType::kFloat32, root, *ranks[static_cast<std::size_t>(r)].stream,
        [&remaining](Time) { --remaining; });
  }
  ASSERT_TRUE(await(fabric, remaining));
  auto in = fabric.gpus().typed<float>(root_send,
                                       count * static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto out = fabric.gpus().typed<float>(recv[static_cast<std::size_t>(r)], count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FLOAT_EQ(out[i], in[static_cast<std::size_t>(r) * count + i])
          << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, GatherScatterP,
                         ::testing::Values(StarCase{2, 0}, StarCase{3, 1},
                                           StarCase{4, 2}, StarCase{8, 5}));

}  // namespace
}  // namespace mccs
