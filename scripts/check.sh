#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, then run the
# simulation-engine and datapath microbenches and validate the schema (and
# speedup gates) of their JSON output (so perf-tracking tooling downstream
# never silently breaks).
#
# SANITIZE=address,undefined ./scripts/check.sh
#   builds the suite under the given sanitizers in a separate build tree
#   (build-san/) and runs ctest there instead; benches are skipped (their
#   timings are meaningless under instrumentation). The chaos fault-injection
#   sweep still runs (it hunts memory bugs, not timings).
#
# SANITIZE=thread ./scripts/check.sh
#   builds under ThreadSanitizer and runs the parallel-subsystem subset (task
#   pool, netsim solver, collectives, determinism regressions, trimmed
#   property/chaos sweeps) with the pool forced wide (MCCS_THREADS=8) so every
#   cross-thread access pattern actually runs threaded. The full suite is
#   deliberately not run: TSan's ~10x slowdown makes the 1000-seed sweeps
#   prohibitive, and the single-threaded tests have no data races to find.
#
# CHAOS_SEEDS=N (default 100) sizes the seeded random fault-schedule sweep of
# tests/test_chaos_fuzz.cpp run in both modes. CHAOS_CHURN_SEEDS=N (default
# 100) sizes the chaos-under-churn invariant sweep of tests/test_chaos_churn.cpp
# (faults + kills composed with tenant churn; termination, exactly-once,
# zero-orphan quiesce and assignment-identity invariants per seed), which runs
# at MCCS_THREADS=1 and 8 — the seed-parallel sweep must be thread-count
# independent.
set -euo pipefail

cd "$(dirname "$0")/.."

chaos_sweep() {
  local tests_bin="$1"
  local seeds="${CHAOS_SEEDS:-100}"
  echo "== chaos sweep (${seeds} seeds) =="
  MCCS_CHAOS_SEEDS="${seeds}" "$tests_bin" \
    --gtest_filter='*ChaosFuzz*' --gtest_brief=1
}

chaos_churn_sweep() {
  local tests_bin="$1"
  local seeds="${CHAOS_CHURN_SEEDS:-100}"
  for threads in 1 8; do
    echo "== chaos-under-churn sweep (${seeds} seeds, MCCS_THREADS=${threads}) =="
    MCCS_THREADS="${threads}" MCCS_CHAOS_CHURN_SEEDS="${seeds}" "$tests_bin" \
      --gtest_filter='*ChaosChurn*:*LinkChangeLog*:*ControllerRestart*:*IncrementalAssignAudit*' \
      --gtest_brief=1
  done
}

if [[ "${SANITIZE:-}" == "thread" ]]; then
  echo "== sanitizer build: thread =="
  cmake -B build-tsan -S . -DMCCS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target mccs_tests
  echo "== parallel-subsystem tests (TSan, MCCS_THREADS=8) =="
  MCCS_THREADS=8 MCCS_NETSIM_PROPERTY_SEEDS=40 MCCS_CHAOS_SEEDS=6 \
    MCCS_NETSIM_8K_SEEDS=1 MCCS_CHAOS_CHURN_SEEDS=8 \
    MCCS_NETSIM_BATCH_SEEDS=40 \
    build-tsan/tests/mccs_tests \
    --gtest_filter='*Parallel*:*ChaosFuzz*:*ChaosChurnFuzz*:*NetworkProperties*:*FuzzFixture*:*ReduceBytes*:*Collective*:*NetworkSlab*:*NetsimBatch*' \
    --gtest_brief=1
  echo "ALL CHECKS PASSED (sanitized: thread)"
  exit 0
fi

if [[ -n "${SANITIZE:-}" ]]; then
  echo "== sanitizer build: ${SANITIZE} =="
  cmake -B build-san -S . -DMCCS_SANITIZE="${SANITIZE}" >/dev/null
  cmake --build build-san -j "$(nproc)" --target mccs_tests
  (cd build-san && ctest --output-on-failure -j "$(nproc)")
  chaos_sweep build-san/tests/mccs_tests
  # The telemetry recording path is pointer-heavy (string literals retained
  # by pointer, one shared argument arena): run its tests explicitly under
  # the sanitizers so an arena overrun or dangling key fails loudly here.
  echo "== telemetry tests (sanitized) =="
  build-san/tests/mccs_tests --gtest_filter='*Telemetry*' --gtest_brief=1
  # The warm-started control plane reuses per-link scratch across solves and
  # evicts per-comm metrics on teardown — exactly the lifetime bugs ASan/UBSan
  # catch. Run the churn smoke + the incremental-vs-full property sweep
  # explicitly (seconds-scale even under instrumentation).
  echo "== control-plane churn smoke (sanitized) =="
  MCCS_ASSIGN_SEEDS=40 build-san/tests/mccs_tests \
    --gtest_filter='*ClusterChurn*:*IncrementalAssign*' --gtest_brief=1
  # The chaos composition (faults + kills + backpressure + audit fallback +
  # restart recovery) stresses exactly the teardown/rebuild lifetimes the
  # sanitizers exist for; a trimmed sweep is seconds-scale even instrumented.
  echo "== chaos-under-churn (sanitized) =="
  MCCS_CHAOS_CHURN_SEEDS=20 build-san/tests/mccs_tests \
    --gtest_filter='*ChaosChurn*:*LinkChangeLog*:*ControllerRestart*' \
    --gtest_brief=1
  # The flow slab recycles slots and hands out interned path views — exactly
  # the use-after-free shapes ASan exists for. Run the slab suite explicitly
  # (it is also in the full ctest pass above; this keeps it visible).
  echo "== flow-slab tests (sanitized) =="
  build-san/tests/mccs_tests --gtest_filter='*NetworkSlab*' --gtest_brief=1
  # Solve coalescing cancels and re-derives completion events wholesale at
  # batch close and recycles cohort records — run the batched-vs-unbatched
  # identity sweep explicitly so a dangling event handle fails loudly here.
  echo "== solve-coalescing tests (sanitized) =="
  MCCS_NETSIM_BATCH_SEEDS=100 build-san/tests/mccs_tests \
    --gtest_filter='*NetsimBatch*' --gtest_brief=1
  echo "ALL CHECKS PASSED (sanitized: ${SANITIZE})"
  exit 0
fi

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== micro_flowsim =="
(cd build/bench && ./micro_flowsim)

json=build/bench/BENCH_flowsim.json
[[ -s "$json" ]] || { echo "FAIL: $json missing or empty" >&2; exit 1; }

# Every line must be a JSON object with exactly the expected keys; fail on
# drift so the bench's consumers (EXPERIMENTS.md, trend dashboards) notice.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$json" <<'EOF'
import json, sys

expected = {"bench", "gpus", "mode", "events", "sim_s", "wall_s",
            "events_per_sec", "speedup_vs_reference"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_flowsim.json")
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    if set(rec) != expected:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != {sorted(expected)}")
    if rec["mode"] not in ("reference", "incremental"):
        sys.exit(f"FAIL: line {i} unknown mode {rec['mode']!r}")
print(f"BENCH_flowsim.json schema OK ({len(lines)} records)")
EOF
else
  # Fallback without python3: check the key skeleton textually.
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench gpus mode events sim_s wall_s events_per_sec \
               speedup_vs_reference; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$json"
  echo "BENCH_flowsim.json schema OK (grep fallback)"
fi

# Scale points (arena-backed slab at 768/8k/32k endpoints): schema, the
# bit-reproducibility flags, an events/s floor at 8k, and 768-GPU
# non-regression against the BENCH_flowsim incremental row from the same run.
sjson=build/bench/BENCH_scale.json
[[ -s "$sjson" ]] || { echo "FAIL: $sjson missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$sjson" "$json" <<'EOF'
import json, sys

perf_keys = {"bench", "kind", "gpus", "threads", "events", "sim_s", "wall_s",
             "events_per_sec", "digest", "solves_per_event",
             "mean_batch_width"}
id_keys = {"bench", "kind", "gpus", "threads_identical",
           "identical_to_reference", "verify_events", "hot_bytes",
           "param_bytes", "cold_bytes", "bytes_per_flow_state"}
co_keys = {"bench", "kind", "gpus", "events", "solves_batched",
           "solves_unbatched", "solves_per_event_batched",
           "solves_per_event_unbatched", "mean_batch_width", "reduction",
           "digest_identical"}
perf, ident, coal = {}, {}, {}
for i, line in enumerate((l for l in open(sys.argv[1]) if l.strip()), 1):
    rec = json.loads(line)
    if rec.get("kind") == "perf":
        if set(rec) != perf_keys:
            sys.exit(f"FAIL: perf line {i} keys {sorted(rec)}")
        perf[(rec["gpus"], rec["threads"])] = rec
    elif rec.get("kind") == "identity":
        if set(rec) != id_keys:
            sys.exit(f"FAIL: identity line {i} keys {sorted(rec)}")
        ident[rec["gpus"]] = rec
    elif rec.get("kind") == "coalesce":
        if set(rec) != co_keys:
            sys.exit(f"FAIL: coalesce line {i} keys {sorted(rec)}")
        coal[rec["gpus"]] = rec
    else:
        sys.exit(f"FAIL: line {i} unknown kind {rec.get('kind')!r}")

scales = {768, 8192, 32768}
if set(ident) != scales or {g for g, _ in perf} != scales:
    sys.exit(f"FAIL: scale points missing (perf {sorted(perf)}, "
             f"identity {sorted(ident)})")
if set(coal) != scales:
    sys.exit(f"FAIL: coalesce rows missing (have {sorted(coal)})")
for gpus, rec in sorted(ident.items()):
    if not rec["threads_identical"]:
        sys.exit(f"FAIL: {gpus}-GPU completion stream differs across threads")
    if not rec["identical_to_reference"]:
        sys.exit(f"FAIL: {gpus}-GPU incremental drifted from reference oracle")
for (gpus, threads), rec in sorted(perf.items()):
    other = perf[(gpus, 1 if threads == 8 else 8)]
    if rec["digest"] != other["digest"]:
        sys.exit(f"FAIL: {gpus}-GPU digests differ between thread counts")

# Solve coalescing (DESIGN.md §15): batched and unbatched runs must complete
# every flow at the bitwise-identical virtual time, and batching must pay for
# itself — at the 8k scale the per-event solve count must drop >= 3x.
for gpus, rec in sorted(coal.items()):
    if not rec["digest_identical"]:
        sys.exit(f"FAIL: {gpus}-GPU batched completion stream diverged from "
                 f"the per-event solve baseline")
    if rec["solves_batched"] > rec["solves_unbatched"]:
        sys.exit(f"FAIL: {gpus}-GPU batching increased solves "
                 f"({rec['solves_batched']} > {rec['solves_unbatched']})")
if coal[8192]["reduction"] < 3.0:
    sys.exit(f"FAIL: 8k solve coalescing reduction "
             f"{coal[8192]['reduction']:.2f}x < 3.0x floor")

# Conservative floors (measured ~86k/s at 8k, ~1.1M/s at 768 on the CI
# class of machine): catch order-of-magnitude regressions, not noise.
if perf[(8192, 1)]["events_per_sec"] < 20000:
    sys.exit(f"FAIL: 8k events/s floor: {perf[(8192, 1)]['events_per_sec']}")
flow768 = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
flow768 = [r for r in flow768 if r["gpus"] == 768 and r["mode"] == "incremental"]
if flow768 and perf[(768, 1)]["events_per_sec"] < 0.5 * flow768[0]["events_per_sec"]:
    sys.exit(f"FAIL: 768-GPU scale row regressed vs BENCH_flowsim "
             f"({perf[(768, 1)]['events_per_sec']} vs {flow768[0]['events_per_sec']})")
print(f"BENCH_scale.json OK ({len(perf)} perf + {len(ident)} identity + "
      f"{len(coal)} coalesce rows)")
EOF
else
  # Fallback without python3: the reproducibility flags must read true.
  for gpus in 768 8192 32768; do
    grep -q "\"kind\":\"identity\",\"gpus\":${gpus},\"threads_identical\":true,\"identical_to_reference\":true" \
      "$sjson" || { echo "FAIL: identity flags not true at ${gpus} GPUs" >&2; exit 1; }
    grep "\"kind\":\"coalesce\",\"gpus\":${gpus}," "$sjson" \
      | grep -q "\"digest_identical\":true" \
      || { echo "FAIL: coalesce digest not identical at ${gpus} GPUs" >&2; exit 1; }
  done
  echo "BENCH_scale.json OK (grep fallback)"
fi

echo "== micro_datapath =="
(cd build/bench && ./micro_datapath)

dpjson=build/bench/BENCH_datapath.json
[[ -s "$dpjson" ]] || { echo "FAIL: $dpjson missing or empty" >&2; exit 1; }

# Schema per section plus the PR's perf gates: a cache hit must be >= 3x
# cheaper than building the plan, and the vectorized float32-sum reduce must
# be >= 2x the scalar reference.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$dpjson" <<'EOF'
import json, sys

expected = {
    "plan": {"bench", "section", "kind", "count", "channels",
             "cold_ns", "warm_ns", "speedup"},
    "reduce": {"bench", "section", "dtype", "op", "bytes",
               "scalar_gbps", "vector_gbps", "speedup"},
    "e2e": {"bench", "section", "plan_cache", "host_ns_per_collective",
            "hit_rate"},
}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_datapath.json")
seen = set()
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    sec = rec.get("section")
    if sec not in expected:
        sys.exit(f"FAIL: line {i} unknown section {sec!r}")
    if set(rec) != expected[sec]:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != "
                 f"{sorted(expected[sec])}")
    seen.add(sec)
    if sec == "plan" and rec["speedup"] < 3.0:
        sys.exit(f"FAIL: plan cache speedup {rec['speedup']:.2f} < 3x "
                 f"for {rec['kind']}")
    if (sec == "reduce" and rec["dtype"] == "f32" and rec["op"] == "sum"
            and rec["speedup"] < 2.0):
        sys.exit(f"FAIL: f32-sum reduce speedup {rec['speedup']:.2f} < 2x")
if seen != set(expected):
    sys.exit(f"FAIL: sections {sorted(seen)} != {sorted(expected)}")
print(f"BENCH_datapath.json schema + gates OK ({len(lines)} records)")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench section; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$dpjson"
  echo "BENCH_datapath.json schema OK (grep fallback; gates skipped)"
fi

chaos_sweep build/tests/mccs_tests
chaos_churn_sweep build/tests/mccs_tests

echo "== micro_recovery =="
(cd build/bench && ./micro_recovery)

rcjson=build/bench/BENCH_recovery.json
[[ -s "$rcjson" ]] || { echo "FAIL: $rcjson missing or empty" >&2; exit 1; }

# Schema plus the robustness gates: both recovery modes must end bit-correct
# with a finite detection + recovery time, and the full pipeline (transport
# escalation -> controller reconfiguration) must retain >= 50% goodput on the
# degraded topology.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$rcjson" <<'EOF'
import json, math, sys

expected = {"bench", "mode", "gpus", "bytes", "healthy_iter_s",
            "disrupted_iter_s", "degraded_iter_s", "time_to_detect_s",
            "time_to_recover_s", "goodput_retained", "retries",
            "escalations", "comms_reconfigured", "bit_correct"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_recovery.json")
modes = set()
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    if set(rec) != expected:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != {sorted(expected)}")
    mode = rec["mode"]
    if mode not in ("rehash", "reconfig"):
        sys.exit(f"FAIL: line {i} unknown mode {mode!r}")
    modes.add(mode)
    if rec["bit_correct"] is not True:
        sys.exit(f"FAIL: {mode} result not bit-correct after recovery")
    for key in ("time_to_detect_s", "time_to_recover_s"):
        if not (0.0 < rec[key] < math.inf):
            sys.exit(f"FAIL: {mode} {key} = {rec[key]} not finite-positive")
    if mode == "reconfig":
        if rec["goodput_retained"] < 0.5:
            sys.exit(f"FAIL: reconfig goodput_retained "
                     f"{rec['goodput_retained']:.3f} < 0.5")
        if rec["comms_reconfigured"] < 1:
            sys.exit("FAIL: reconfig mode reconfigured no communicators")
if modes != {"rehash", "reconfig"}:
    sys.exit(f"FAIL: modes {sorted(modes)} != ['reconfig', 'rehash']")
print(f"BENCH_recovery.json schema + gates OK ({len(lines)} records)")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench mode goodput_retained time_to_recover_s bit_correct; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
    grep -q '"bit_correct":true' <<<"$line" || {
      echo "FAIL: not bit-correct: $line" >&2; exit 1;
    }
  done < "$rcjson"
  echo "BENCH_recovery.json schema OK (grep fallback; gates skipped)"
fi

# With telemetry disabled (the default), every simulated result must stay
# byte-identical to the checked-in goldens: the telemetry subsystem observes
# the simulation and must never perturb it. Wall-clock output (micro_overhead)
# is compared on its virtual counters only.
#
# The loop runs once with the task pool off (MCCS_THREADS=1) and once with it
# forced wide (MCCS_THREADS=8): the pool's determinism contract says the
# thread count may never change a simulated result, so BOTH runs must match
# the same goldens byte for byte.
for threads in 1 8; do
  export MCCS_THREADS="$threads"
  echo "== telemetry-disabled golden outputs (MCCS_THREADS=${threads}) =="
  for fig in fig06_single_app fig07_reconfig fig08_multi_app fig09_qos_jct \
             fig10_dynamic_policy; do
    golden="bench/goldens/${fig}.txt"
    [[ -s "$golden" ]] || { echo "FAIL: $golden missing" >&2; exit 1; }
    (cd build/bench && "./${fig}") > "build/bench/${fig}.out"
    diff -u "$golden" "build/bench/${fig}.out" || {
      echo "FAIL: ${fig} output drifted from ${golden}" \
           "(MCCS_THREADS=${threads})" >&2; exit 1;
    }
    echo "${fig} matches golden (MCCS_THREADS=${threads})"
  done
  (cd build/bench && ./micro_overhead) 2>/dev/null \
    | grep -o 'BM_[A-Za-z_]*\|VirtualLatencyUs=[0-9.e+-]*\|OverheadUs=[0-9.e+-]*' \
    | paste -d' ' - - > build/bench/micro_overhead_virtual.out
  diff -u bench/goldens/micro_overhead_virtual.txt \
          build/bench/micro_overhead_virtual.out || {
    echo "FAIL: micro_overhead virtual latencies drifted" \
         "(MCCS_THREADS=${threads})" >&2; exit 1;
  }
  echo "micro_overhead virtual latencies match golden (MCCS_THREADS=${threads})"
done
unset MCCS_THREADS

echo "== micro_telemetry =="
(cd build/bench && ./micro_telemetry)

tljson=build/bench/BENCH_telemetry.json
[[ -s "$tljson" ]] || { echo "FAIL: $tljson missing or empty" >&2; exit 1; }

# Schema plus the PR's gates: enabled-mode telemetry must not perturb the
# simulation (virtual_identical) and must cost <= 10% host wall overhead.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$tljson" <<'EOF'
import json, sys

expected = {
    "mode": {"bench", "mode", "reps", "collectives", "min_wall_s",
             "mean_wall_s", "timeline_events", "timeline_bytes",
             "metrics_instruments"},
    "summary": {"bench", "mode", "overhead_frac", "virtual_identical",
                "chrome_trace_bytes"},
}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_telemetry.json")
seen = set()
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    mode = rec.get("mode")
    kind = "summary" if mode == "summary" else "mode"
    if mode not in ("off", "on", "summary"):
        sys.exit(f"FAIL: line {i} unknown mode {mode!r}")
    if set(rec) != expected[kind]:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != "
                 f"{sorted(expected[kind])}")
    seen.add(mode)
    if mode == "off" and rec["timeline_events"] != 0:
        sys.exit(f"FAIL: disabled mode recorded "
                 f"{rec['timeline_events']} timeline events")
    if mode == "on" and rec["timeline_events"] == 0:
        sys.exit("FAIL: enabled mode recorded no timeline events")
    if mode == "summary":
        if rec["virtual_identical"] is not True:
            sys.exit("FAIL: telemetry perturbed the simulated latencies")
        if rec["overhead_frac"] > 0.10:
            sys.exit(f"FAIL: telemetry overhead "
                     f"{rec['overhead_frac']:.4f} > 0.10")
        if rec["chrome_trace_bytes"] <= 0:
            sys.exit("FAIL: enabled mode exported an empty Chrome trace")
if seen != {"off", "on", "summary"}:
    sys.exit(f"FAIL: modes {sorted(seen)} != ['off', 'on', 'summary']")
print(f"BENCH_telemetry.json schema + gates OK ({len(lines)} records)")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench mode; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$tljson"
  grep -q '"virtual_identical":true' "$tljson" || {
    echo "FAIL: telemetry perturbed the simulated latencies" >&2; exit 1;
  }
  echo "BENCH_telemetry.json schema OK (grep fallback; overhead gate skipped)"
fi

echo "== micro_parallel =="
(cd build/bench && ./micro_parallel)

pljson=build/bench/BENCH_parallel.json
[[ -s "$pljson" ]] || { echo "FAIL: $pljson missing or empty" >&2; exit 1; }

# Schema per section plus the scaling gate: on a machine with >= 4 cores, at
# least two of the sweep sections (component_solve, sharded_reduce,
# seed_sweep) must reach >= 2x speedup at the max thread count. On smaller
# machines the records are still schema-checked but the speedup gate is
# skipped — a 1-core container cannot speed anything up.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$pljson" <<'EOF'
import json, sys

expected = {
    "dispatch": {"bench", "section", "threads", "cores", "ns_per_dispatch"},
    "component_solve": {"bench", "section", "threads", "cores", "gpus",
                        "wall_s", "speedup_vs_1thread"},
    "sharded_reduce": {"bench", "section", "threads", "cores", "buffer_mib",
                       "gbytes_per_sec", "speedup_vs_1thread"},
    "seed_sweep": {"bench", "section", "threads", "cores", "seeds", "wall_s",
                   "speedup_vs_1thread"},
}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_parallel.json")
seen = set()
cores = 1
best = {}  # sweep section -> speedup at the highest thread count
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    sec = rec.get("section")
    if sec not in expected:
        sys.exit(f"FAIL: line {i} unknown section {sec!r}")
    if set(rec) != expected[sec]:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != "
                 f"{sorted(expected[sec])}")
    seen.add(sec)
    cores = rec["cores"]
    if "speedup_vs_1thread" in rec:
        prev = best.get(sec, (0, 0.0))
        if rec["threads"] >= prev[0]:
            best[sec] = (rec["threads"], rec["speedup_vs_1thread"])
if seen != set(expected):
    sys.exit(f"FAIL: sections {sorted(seen)} != {sorted(expected)}")
if cores >= 4:
    scaled = [s for s, (_, sp) in best.items() if sp >= 2.0]
    if len(scaled) < 2:
        sys.exit(f"FAIL: only {scaled} reached >= 2x on {cores} cores "
                 f"(best: { {s: round(sp, 2) for s, (_, sp) in best.items()} })")
    print(f"BENCH_parallel.json schema + scaling gate OK "
          f"({len(lines)} records, >=2x on {sorted(scaled)})")
else:
    print(f"BENCH_parallel.json schema OK ({len(lines)} records; "
          f"speedup gate skipped on {cores} core(s))")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench section threads cores; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$pljson"
  echo "BENCH_parallel.json schema OK (grep fallback; gates skipped)"
fi

echo "== cluster_day =="
(cd build/bench && ./cluster_day)

cljson=build/bench/BENCH_cluster.json
[[ -s "$cljson" ]] || { echo "FAIL: $cljson missing or empty" >&2; exit 1; }

# Schema plus the PR's perf gates: at every scale the incremental control
# plane must produce assignments bitwise identical to the full re-solve, and
# at >= 1024 GPUs its p99 decision latency must be >= 3x better.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$cljson" <<'EOF'
import json, sys

expected = {"bench", "scale", "gpus", "mode", "seed", "events", "jobs",
            "admitted", "queued_peak", "goodput", "mean_closure_items",
            "solves_per_event", "mean_batch_width",
            "p50_us", "p99_us", "p999_us", "mean_us", "speedup_p99_vs_full",
            "assignments_identical"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_cluster.json")
modes = set()
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    if set(rec) != expected:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != {sorted(expected)}")
    mode = rec["mode"]
    if mode not in ("full", "incremental"):
        sys.exit(f"FAIL: line {i} unknown mode {mode!r}")
    modes.add(mode)
    if not (rec["p50_us"] <= rec["p99_us"] <= rec["p999_us"]):
        sys.exit(f"FAIL: {rec['scale']}/{mode} percentile ladder not "
                 f"monotone: {rec['p50_us']}/{rec['p99_us']}/{rec['p999_us']}")
    if mode == "incremental":
        if rec["assignments_identical"] is not True:
            sys.exit(f"FAIL: {rec['scale']} incremental assignment diverged "
                     "from the full re-solve")
        if rec["gpus"] >= 1024 and rec["speedup_p99_vs_full"] < 3.0:
            sys.exit(f"FAIL: {rec['scale']} p99 speedup "
                     f"{rec['speedup_p99_vs_full']:.2f} < 3x at "
                     f"{rec['gpus']} GPUs")
if modes != {"full", "incremental"}:
    sys.exit(f"FAIL: modes {sorted(modes)} != ['full', 'incremental']")
print(f"BENCH_cluster.json schema + gates OK ({len(lines)} records)")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench scale gpus mode p99_us speedup_p99_vs_full \
               solves_per_event mean_batch_width assignments_identical; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
    if grep -q '"mode":"incremental"' <<<"$line"; then
      grep -q '"assignments_identical":true' <<<"$line" || {
        echo "FAIL: incremental assignment diverged: $line" >&2; exit 1;
      }
    fi
  done < "$cljson"
  echo "BENCH_cluster.json schema OK (grep fallback; speedup gate skipped)"
fi

# Chaos-under-churn robustness gates (cluster_day writes BENCH_chaos.json in
# the same run): the fault-steering control plane must retain goodput — the
# rehash-only baseline must lose >= 2x as much — with ZERO invariant
# violations across the seed sweep, and the 4k soak must hold memory and
# telemetry-registry growth flat across 16 virtual hours while every injected
# warm-state poison heals.
chjson=build/bench/BENCH_chaos.json
[[ -s "$chjson" ]] || { echo "FAIL: $chjson missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$chjson" <<'EOF'
import json, sys

expected = {
    "chaos_churn": {"bench", "mode", "gpus", "seeds", "events",
                    "retention_mean", "violations", "divergent_events",
                    "audits", "audit_mismatches", "fallbacks", "kills",
                    "rejected", "deferred", "duplicate_departures"},
    "chaos_summary": {"bench", "retention_reconfig", "retention_rehash",
                      "loss_ratio_rehash_vs_reconfig", "violations"},
    "chaos_soak": {"bench", "gpus", "quarters", "virtual_hours", "events",
                   "violations", "divergent_events", "audits",
                   "audit_mismatches", "fallbacks", "poisons_engaged",
                   "poisons_healed", "rss_q1_mib", "rss_end_mib",
                   "rss_growth_frac", "registry_size", "registry_growth"},
}
recs = {}
modes = set()
for i, line in enumerate((l for l in open(sys.argv[1]) if l.strip()), 1):
    rec = json.loads(line)
    bench = rec.get("bench")
    if bench not in expected:
        sys.exit(f"FAIL: line {i} unknown bench {bench!r}")
    if set(rec) != expected[bench]:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != "
                 f"{sorted(expected[bench])}")
    recs.setdefault(bench, []).append(rec)
    if bench == "chaos_churn":
        modes.add(rec["mode"])
        if rec["violations"] != 0:
            sys.exit(f"FAIL: {rec['mode']} sweep has "
                     f"{rec['violations']} invariant violations")
if modes != {"reconfig", "rehash"}:
    sys.exit(f"FAIL: sweep modes {sorted(modes)} != ['reconfig', 'rehash']")
summary = recs.get("chaos_summary", [None])[0]
if summary is None:
    sys.exit("FAIL: chaos_summary record missing")
if summary["violations"] != 0:
    sys.exit(f"FAIL: {summary['violations']} invariant violations in sweep")
if summary["loss_ratio_rehash_vs_reconfig"] < 2.0:
    sys.exit(f"FAIL: goodput-loss ratio "
             f"{summary['loss_ratio_rehash_vs_reconfig']:.2f} < 2x — "
             "fault steering is not earning its keep")
soak = recs.get("chaos_soak", [None])[0]
if soak is None:
    sys.exit("FAIL: chaos_soak record missing")
if soak["violations"] != 0:
    sys.exit(f"FAIL: soak has {soak['violations']} invariant violations")
if soak["poisons_engaged"] < 1:
    sys.exit("FAIL: soak never engaged a warm-state poison (vacuous)")
if soak["poisons_healed"] is not True:
    sys.exit("FAIL: a soak poison window never healed")
if soak["rss_growth_frac"] > 0.25:
    sys.exit(f"FAIL: soak RSS grew {soak['rss_growth_frac']:.1%} past "
             "quarter-1 steady state — control plane is leaking")
if soak["registry_size"] > 8:
    sys.exit(f"FAIL: soak registry holds {soak['registry_size']} "
             "instruments — must stay O(1), not O(tenants)")
if soak["registry_growth"] != 0:
    sys.exit(f"FAIL: soak registry grew by {soak['registry_growth']} "
             "instruments after quarter 1")
print(f"BENCH_chaos.json schema + gates OK "
      f"(loss ratio {summary['loss_ratio_rehash_vs_reconfig']:.1f}x, "
      f"soak rss {soak['rss_growth_frac']:+.1%}, "
      f"{soak['poisons_engaged']} poisons healed)")
EOF
else
  grep -q '"bench":"chaos_summary"' "$chjson" || {
    echo "FAIL: chaos_summary record missing" >&2; exit 1;
  }
  grep -q '"violations":0' "$chjson" || {
    echo "FAIL: chaos invariant violations" >&2; exit 1;
  }
  grep -q '"poisons_healed":true' "$chjson" || {
    echo "FAIL: soak poison never healed" >&2; exit 1;
  }
  echo "BENCH_chaos.json schema OK (grep fallback; ratio/growth gates skipped)"
fi

echo "== ext_collectives (plan compiler) =="
(cd build/bench && ./ext_collectives)

# Compiler gates: every selectable AllReduce algorithm must have been
# measured, and the algorithm-choice pass must pick a non-ring algorithm for
# at least one payload size AND that pick must win in the measured
# simulation — the selection pass is vacuous otherwise.
cpjson=build/bench/BENCH_compiler.json
[[ -s "$cpjson" ]] || { echo "FAIL: $cpjson missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$cpjson" <<'EOF'
import json, sys

expected = {
    "algo": {"bench", "section", "kind", "algo", "bytes", "sim_us",
             "busbw_gbps"},
    "selection": {"bench", "section", "kind", "bytes", "selected",
                  "model_selected_us", "model_ring_us", "sim_selected_us",
                  "sim_ring_us"},
}
algo_rows, sel_rows = [], []
for i, line in enumerate((l for l in open(sys.argv[1]) if l.strip()), 1):
    rec = json.loads(line)
    sec = rec.get("section")
    if sec not in expected:
        sys.exit(f"FAIL: line {i} unknown section {sec!r}")
    if set(rec) != expected[sec]:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != "
                 f"{sorted(expected[sec])}")
    (algo_rows if sec == "algo" else sel_rows).append(rec)
if not algo_rows or not sel_rows:
    sys.exit("FAIL: BENCH_compiler.json missing a section")
algos = {"ring", "tree", "dbtree", "pairwise"}
for size in {r["bytes"] for r in algo_rows}:
    seen = {r["algo"] for r in algo_rows if r["bytes"] == size}
    if seen != algos:
        sys.exit(f"FAIL: algorithms {sorted(seen)} measured at {size}B, "
                 f"want {sorted(algos)}")
for r in algo_rows + sel_rows:
    for key in r:
        if key.endswith("_us") or key == "sim_us":
            if not r[key] > 0:
                sys.exit(f"FAIL: non-positive time {key}={r[key]} at "
                         f"{r['bytes']}B")
for r in sel_rows:
    if r["model_selected_us"] > r["model_ring_us"]:
        sys.exit(f"FAIL: selection at {r['bytes']}B is not the model argmin")
wins = [r for r in sel_rows
        if r["selected"] != "ring" and r["sim_selected_us"] < r["sim_ring_us"]]
if not wins:
    sys.exit("FAIL: the compiler never selected a non-ring algorithm with a "
             "measured simulated-time win")
print(f"BENCH_compiler.json schema + gates OK ({len(algo_rows)} algo + "
      f"{len(sel_rows)} selection rows; non-ring wins at "
      f"{sorted(r['bytes'] for r in wins)})")
EOF
else
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench section kind bytes; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$cpjson"
  grep -q '"selected":"ring"' "$cpjson" && grep -qv '"selected":"ring"' \
    <<<"$(grep '"section":"selection"' "$cpjson")" || {
    echo "FAIL: no non-ring selection row" >&2; exit 1;
  }
  echo "BENCH_compiler.json schema OK (grep fallback; win gate skipped)"
fi

# Fail loudly if any BENCH_*.json this script gates went missing: a bench
# that silently stopped writing its file must fail the run, not skip its
# gates on the next one.
bench_manifest=(BENCH_flowsim.json BENCH_scale.json BENCH_datapath.json
                BENCH_recovery.json BENCH_telemetry.json BENCH_parallel.json
                BENCH_cluster.json BENCH_chaos.json BENCH_compiler.json)
for f in "${bench_manifest[@]}"; do
  [[ -s "build/bench/$f" ]] || {
    echo "FAIL: build/bench/$f missing or empty after the bench pass" >&2
    exit 1
  }
done
echo "BENCH manifest complete (${#bench_manifest[@]} files)"

echo "ALL CHECKS PASSED"
