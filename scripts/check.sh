#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the test suite, then run the
# simulation-engine microbench and validate the schema of its JSON output
# (so perf-tracking tooling downstream never silently breaks).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== micro_flowsim =="
(cd build/bench && ./micro_flowsim)

json=build/bench/BENCH_flowsim.json
[[ -s "$json" ]] || { echo "FAIL: $json missing or empty" >&2; exit 1; }

# Every line must be a JSON object with exactly the expected keys; fail on
# drift so the bench's consumers (EXPERIMENTS.md, trend dashboards) notice.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$json" <<'EOF'
import json, sys

expected = {"bench", "gpus", "mode", "events", "sim_s", "wall_s",
            "events_per_sec", "speedup_vs_reference"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("FAIL: no records in BENCH_flowsim.json")
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    if set(rec) != expected:
        sys.exit(f"FAIL: line {i} keys {sorted(rec)} != {sorted(expected)}")
    if rec["mode"] not in ("reference", "incremental"):
        sys.exit(f"FAIL: line {i} unknown mode {rec['mode']!r}")
print(f"BENCH_flowsim.json schema OK ({len(lines)} records)")
EOF
else
  # Fallback without python3: check the key skeleton textually.
  while IFS= read -r line; do
    [[ -z "$line" ]] && continue
    for key in bench gpus mode events sim_s wall_s events_per_sec \
               speedup_vs_reference; do
      grep -q "\"$key\":" <<<"$line" || {
        echo "FAIL: missing key '$key' in: $line" >&2; exit 1;
      }
    done
  done < "$json"
  echo "BENCH_flowsim.json schema OK (grep fallback)"
fi

echo "ALL CHECKS PASSED"
