
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cpp" "tests/CMakeFiles/mccs_tests.dir/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_analytic.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/mccs_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_event_loop.cpp" "tests/CMakeFiles/mccs_tests.dir/test_event_loop.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_event_loop.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/mccs_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_gpusim.cpp" "tests/CMakeFiles/mccs_tests.dir/test_gpusim.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_gpusim.cpp.o.d"
  "/root/repo/tests/test_ipc.cpp" "tests/CMakeFiles/mccs_tests.dir/test_ipc.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_ipc.cpp.o.d"
  "/root/repo/tests/test_management.cpp" "tests/CMakeFiles/mccs_tests.dir/test_management.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_management.cpp.o.d"
  "/root/repo/tests/test_mccs_service.cpp" "tests/CMakeFiles/mccs_tests.dir/test_mccs_service.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_mccs_service.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/mccs_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_netsim_properties.cpp" "tests/CMakeFiles/mccs_tests.dir/test_netsim_properties.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_netsim_properties.cpp.o.d"
  "/root/repo/tests/test_p2p.cpp" "tests/CMakeFiles/mccs_tests.dir/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/test_policy.cpp" "tests/CMakeFiles/mccs_tests.dir/test_policy.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_policy.cpp.o.d"
  "/root/repo/tests/test_qos.cpp" "tests/CMakeFiles/mccs_tests.dir/test_qos.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_qos.cpp.o.d"
  "/root/repo/tests/test_reconfig.cpp" "tests/CMakeFiles/mccs_tests.dir/test_reconfig.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_reconfig.cpp.o.d"
  "/root/repo/tests/test_reconfig_fuzz.cpp" "tests/CMakeFiles/mccs_tests.dir/test_reconfig_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_reconfig_fuzz.cpp.o.d"
  "/root/repo/tests/test_reduce_alltoall.cpp" "tests/CMakeFiles/mccs_tests.dir/test_reduce_alltoall.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_reduce_alltoall.cpp.o.d"
  "/root/repo/tests/test_service_misuse.cpp" "tests/CMakeFiles/mccs_tests.dir/test_service_misuse.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_service_misuse.cpp.o.d"
  "/root/repo/tests/test_tree.cpp" "tests/CMakeFiles/mccs_tests.dir/test_tree.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_tree.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/mccs_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/mccs_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mccs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mccs_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/mccs/CMakeFiles/mccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mccs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/mccs_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/mccs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mccs_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
