# Empty dependencies file for mccs_tests.
# This may be replaced when dependencies are built.
