file(REMOVE_RECURSE
  "CMakeFiles/moe_expert_parallel.dir/moe_expert_parallel.cpp.o"
  "CMakeFiles/moe_expert_parallel.dir/moe_expert_parallel.cpp.o.d"
  "moe_expert_parallel"
  "moe_expert_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_expert_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
