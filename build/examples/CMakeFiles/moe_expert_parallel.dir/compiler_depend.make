# Empty compiler generated dependencies file for moe_expert_parallel.
# This may be replaced when dependencies are built.
