# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for moe_expert_parallel.
