# Empty compiler generated dependencies file for dynamic_reconfig.
# This may be replaced when dependencies are built.
