file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reconfig.dir/dynamic_reconfig.cpp.o"
  "CMakeFiles/dynamic_reconfig.dir/dynamic_reconfig.cpp.o.d"
  "dynamic_reconfig"
  "dynamic_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
