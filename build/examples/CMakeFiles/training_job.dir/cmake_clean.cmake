file(REMOVE_RECURSE
  "CMakeFiles/training_job.dir/training_job.cpp.o"
  "CMakeFiles/training_job.dir/training_job.cpp.o.d"
  "training_job"
  "training_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
