# Empty compiler generated dependencies file for training_job.
# This may be replaced when dependencies are built.
