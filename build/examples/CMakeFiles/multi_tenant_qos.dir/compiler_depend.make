# Empty compiler generated dependencies file for multi_tenant_qos.
# This may be replaced when dependencies are built.
