# Empty dependencies file for mccs_workload.
# This may be replaced when dependencies are built.
