file(REMOVE_RECURSE
  "CMakeFiles/mccs_workload.dir/flowsim.cpp.o"
  "CMakeFiles/mccs_workload.dir/flowsim.cpp.o.d"
  "CMakeFiles/mccs_workload.dir/models.cpp.o"
  "CMakeFiles/mccs_workload.dir/models.cpp.o.d"
  "CMakeFiles/mccs_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/mccs_workload.dir/traffic_gen.cpp.o.d"
  "libmccs_workload.a"
  "libmccs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
