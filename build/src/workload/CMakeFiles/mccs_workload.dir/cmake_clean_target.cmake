file(REMOVE_RECURSE
  "libmccs_workload.a"
)
