# Empty dependencies file for mccs_collectives.
# This may be replaced when dependencies are built.
