file(REMOVE_RECURSE
  "libmccs_collectives.a"
)
