file(REMOVE_RECURSE
  "CMakeFiles/mccs_collectives.dir/ring.cpp.o"
  "CMakeFiles/mccs_collectives.dir/ring.cpp.o.d"
  "CMakeFiles/mccs_collectives.dir/schedule.cpp.o"
  "CMakeFiles/mccs_collectives.dir/schedule.cpp.o.d"
  "libmccs_collectives.a"
  "libmccs_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
