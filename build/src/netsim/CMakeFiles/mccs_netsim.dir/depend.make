# Empty dependencies file for mccs_netsim.
# This may be replaced when dependencies are built.
