file(REMOVE_RECURSE
  "CMakeFiles/mccs_netsim.dir/network.cpp.o"
  "CMakeFiles/mccs_netsim.dir/network.cpp.o.d"
  "CMakeFiles/mccs_netsim.dir/routing.cpp.o"
  "CMakeFiles/mccs_netsim.dir/routing.cpp.o.d"
  "libmccs_netsim.a"
  "libmccs_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
