file(REMOVE_RECURSE
  "libmccs_netsim.a"
)
