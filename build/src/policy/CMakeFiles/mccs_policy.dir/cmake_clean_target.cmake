file(REMOVE_RECURSE
  "libmccs_policy.a"
)
