
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/controller.cpp" "src/policy/CMakeFiles/mccs_policy.dir/controller.cpp.o" "gcc" "src/policy/CMakeFiles/mccs_policy.dir/controller.cpp.o.d"
  "/root/repo/src/policy/flow_assign.cpp" "src/policy/CMakeFiles/mccs_policy.dir/flow_assign.cpp.o" "gcc" "src/policy/CMakeFiles/mccs_policy.dir/flow_assign.cpp.o.d"
  "/root/repo/src/policy/ring_config.cpp" "src/policy/CMakeFiles/mccs_policy.dir/ring_config.cpp.o" "gcc" "src/policy/CMakeFiles/mccs_policy.dir/ring_config.cpp.o.d"
  "/root/repo/src/policy/traffic_schedule.cpp" "src/policy/CMakeFiles/mccs_policy.dir/traffic_schedule.cpp.o" "gcc" "src/policy/CMakeFiles/mccs_policy.dir/traffic_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mccs/CMakeFiles/mccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mccs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/mccs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mccs_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/mccs_collectives.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
