file(REMOVE_RECURSE
  "CMakeFiles/mccs_policy.dir/controller.cpp.o"
  "CMakeFiles/mccs_policy.dir/controller.cpp.o.d"
  "CMakeFiles/mccs_policy.dir/flow_assign.cpp.o"
  "CMakeFiles/mccs_policy.dir/flow_assign.cpp.o.d"
  "CMakeFiles/mccs_policy.dir/ring_config.cpp.o"
  "CMakeFiles/mccs_policy.dir/ring_config.cpp.o.d"
  "CMakeFiles/mccs_policy.dir/traffic_schedule.cpp.o"
  "CMakeFiles/mccs_policy.dir/traffic_schedule.cpp.o.d"
  "libmccs_policy.a"
  "libmccs_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
