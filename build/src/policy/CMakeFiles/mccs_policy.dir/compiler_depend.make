# Empty compiler generated dependencies file for mccs_policy.
# This may be replaced when dependencies are built.
