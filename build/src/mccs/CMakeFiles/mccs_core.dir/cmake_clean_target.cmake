file(REMOVE_RECURSE
  "libmccs_core.a"
)
