
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mccs/fabric.cpp" "src/mccs/CMakeFiles/mccs_core.dir/fabric.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/fabric.cpp.o.d"
  "/root/repo/src/mccs/frontend_engine.cpp" "src/mccs/CMakeFiles/mccs_core.dir/frontend_engine.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/frontend_engine.cpp.o.d"
  "/root/repo/src/mccs/proxy_engine.cpp" "src/mccs/CMakeFiles/mccs_core.dir/proxy_engine.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/proxy_engine.cpp.o.d"
  "/root/repo/src/mccs/service.cpp" "src/mccs/CMakeFiles/mccs_core.dir/service.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/service.cpp.o.d"
  "/root/repo/src/mccs/shim.cpp" "src/mccs/CMakeFiles/mccs_core.dir/shim.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/shim.cpp.o.d"
  "/root/repo/src/mccs/strategy.cpp" "src/mccs/CMakeFiles/mccs_core.dir/strategy.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/strategy.cpp.o.d"
  "/root/repo/src/mccs/trace_export.cpp" "src/mccs/CMakeFiles/mccs_core.dir/trace_export.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/trace_export.cpp.o.d"
  "/root/repo/src/mccs/transport_engine.cpp" "src/mccs/CMakeFiles/mccs_core.dir/transport_engine.cpp.o" "gcc" "src/mccs/CMakeFiles/mccs_core.dir/transport_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/mccs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mccs_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/mccs_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mccs_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
