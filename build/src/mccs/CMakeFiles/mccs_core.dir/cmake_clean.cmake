file(REMOVE_RECURSE
  "CMakeFiles/mccs_core.dir/fabric.cpp.o"
  "CMakeFiles/mccs_core.dir/fabric.cpp.o.d"
  "CMakeFiles/mccs_core.dir/frontend_engine.cpp.o"
  "CMakeFiles/mccs_core.dir/frontend_engine.cpp.o.d"
  "CMakeFiles/mccs_core.dir/proxy_engine.cpp.o"
  "CMakeFiles/mccs_core.dir/proxy_engine.cpp.o.d"
  "CMakeFiles/mccs_core.dir/service.cpp.o"
  "CMakeFiles/mccs_core.dir/service.cpp.o.d"
  "CMakeFiles/mccs_core.dir/shim.cpp.o"
  "CMakeFiles/mccs_core.dir/shim.cpp.o.d"
  "CMakeFiles/mccs_core.dir/strategy.cpp.o"
  "CMakeFiles/mccs_core.dir/strategy.cpp.o.d"
  "CMakeFiles/mccs_core.dir/trace_export.cpp.o"
  "CMakeFiles/mccs_core.dir/trace_export.cpp.o.d"
  "CMakeFiles/mccs_core.dir/transport_engine.cpp.o"
  "CMakeFiles/mccs_core.dir/transport_engine.cpp.o.d"
  "libmccs_core.a"
  "libmccs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
