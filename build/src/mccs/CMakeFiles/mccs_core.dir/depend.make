# Empty dependencies file for mccs_core.
# This may be replaced when dependencies are built.
