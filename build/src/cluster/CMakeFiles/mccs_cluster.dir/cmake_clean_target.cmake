file(REMOVE_RECURSE
  "libmccs_cluster.a"
)
