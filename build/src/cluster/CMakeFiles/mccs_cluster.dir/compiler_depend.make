# Empty compiler generated dependencies file for mccs_cluster.
# This may be replaced when dependencies are built.
