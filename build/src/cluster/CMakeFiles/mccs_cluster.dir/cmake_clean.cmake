file(REMOVE_RECURSE
  "CMakeFiles/mccs_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mccs_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mccs_cluster.dir/placement.cpp.o"
  "CMakeFiles/mccs_cluster.dir/placement.cpp.o.d"
  "libmccs_cluster.a"
  "libmccs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
