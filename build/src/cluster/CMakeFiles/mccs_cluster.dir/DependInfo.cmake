
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/mccs_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/mccs_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/placement.cpp" "src/cluster/CMakeFiles/mccs_cluster.dir/placement.cpp.o" "gcc" "src/cluster/CMakeFiles/mccs_cluster.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/mccs_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
