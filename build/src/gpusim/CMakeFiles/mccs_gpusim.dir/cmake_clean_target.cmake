file(REMOVE_RECURSE
  "libmccs_gpusim.a"
)
