# Empty compiler generated dependencies file for mccs_gpusim.
# This may be replaced when dependencies are built.
