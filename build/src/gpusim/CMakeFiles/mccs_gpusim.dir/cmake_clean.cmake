file(REMOVE_RECURSE
  "CMakeFiles/mccs_gpusim.dir/stream.cpp.o"
  "CMakeFiles/mccs_gpusim.dir/stream.cpp.o.d"
  "libmccs_gpusim.a"
  "libmccs_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccs_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
