file(REMOVE_RECURSE
  "CMakeFiles/abl_reconfig_protocol.dir/abl_reconfig_protocol.cpp.o"
  "CMakeFiles/abl_reconfig_protocol.dir/abl_reconfig_protocol.cpp.o.d"
  "abl_reconfig_protocol"
  "abl_reconfig_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reconfig_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
