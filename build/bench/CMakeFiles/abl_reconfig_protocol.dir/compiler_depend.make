# Empty compiler generated dependencies file for abl_reconfig_protocol.
# This may be replaced when dependencies are built.
