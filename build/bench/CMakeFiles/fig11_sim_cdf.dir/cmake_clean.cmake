file(REMOVE_RECURSE
  "CMakeFiles/fig11_sim_cdf.dir/fig11_sim_cdf.cpp.o"
  "CMakeFiles/fig11_sim_cdf.dir/fig11_sim_cdf.cpp.o.d"
  "fig11_sim_cdf"
  "fig11_sim_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sim_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
