# Empty compiler generated dependencies file for fig11_sim_cdf.
# This may be replaced when dependencies are built.
