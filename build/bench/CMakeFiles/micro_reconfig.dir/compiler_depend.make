# Empty compiler generated dependencies file for micro_reconfig.
# This may be replaced when dependencies are built.
