file(REMOVE_RECURSE
  "CMakeFiles/micro_reconfig.dir/micro_reconfig.cpp.o"
  "CMakeFiles/micro_reconfig.dir/micro_reconfig.cpp.o.d"
  "micro_reconfig"
  "micro_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
