# Empty compiler generated dependencies file for ext_collectives.
# This may be replaced when dependencies are built.
