file(REMOVE_RECURSE
  "CMakeFiles/ext_collectives.dir/ext_collectives.cpp.o"
  "CMakeFiles/ext_collectives.dir/ext_collectives.cpp.o.d"
  "ext_collectives"
  "ext_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
