# Empty dependencies file for abl_channels.
# This may be replaced when dependencies are built.
