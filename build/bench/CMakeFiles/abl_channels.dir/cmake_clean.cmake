file(REMOVE_RECURSE
  "CMakeFiles/abl_channels.dir/abl_channels.cpp.o"
  "CMakeFiles/abl_channels.dir/abl_channels.cpp.o.d"
  "abl_channels"
  "abl_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
