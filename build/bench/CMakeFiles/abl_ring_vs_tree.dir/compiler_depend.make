# Empty compiler generated dependencies file for abl_ring_vs_tree.
# This may be replaced when dependencies are built.
