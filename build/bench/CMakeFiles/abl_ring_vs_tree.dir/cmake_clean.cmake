file(REMOVE_RECURSE
  "CMakeFiles/abl_ring_vs_tree.dir/abl_ring_vs_tree.cpp.o"
  "CMakeFiles/abl_ring_vs_tree.dir/abl_ring_vs_tree.cpp.o.d"
  "abl_ring_vs_tree"
  "abl_ring_vs_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ring_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
