# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abl_ring_vs_tree.
