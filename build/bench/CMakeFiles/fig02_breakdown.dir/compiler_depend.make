# Empty compiler generated dependencies file for fig02_breakdown.
# This may be replaced when dependencies are built.
