file(REMOVE_RECURSE
  "CMakeFiles/fig02_breakdown.dir/fig02_breakdown.cpp.o"
  "CMakeFiles/fig02_breakdown.dir/fig02_breakdown.cpp.o.d"
  "fig02_breakdown"
  "fig02_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
