file(REMOVE_RECURSE
  "CMakeFiles/micro_schedule_cost.dir/micro_schedule_cost.cpp.o"
  "CMakeFiles/micro_schedule_cost.dir/micro_schedule_cost.cpp.o.d"
  "micro_schedule_cost"
  "micro_schedule_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_schedule_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
