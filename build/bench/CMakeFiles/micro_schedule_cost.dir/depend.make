# Empty dependencies file for micro_schedule_cost.
# This may be replaced when dependencies are built.
