file(REMOVE_RECURSE
  "CMakeFiles/fig10_dynamic_policy.dir/fig10_dynamic_policy.cpp.o"
  "CMakeFiles/fig10_dynamic_policy.dir/fig10_dynamic_policy.cpp.o.d"
  "fig10_dynamic_policy"
  "fig10_dynamic_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dynamic_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
