# Empty compiler generated dependencies file for fig10_dynamic_policy.
# This may be replaced when dependencies are built.
