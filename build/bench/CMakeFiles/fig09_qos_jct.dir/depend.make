# Empty dependencies file for fig09_qos_jct.
# This may be replaced when dependencies are built.
