file(REMOVE_RECURSE
  "CMakeFiles/fig09_qos_jct.dir/fig09_qos_jct.cpp.o"
  "CMakeFiles/fig09_qos_jct.dir/fig09_qos_jct.cpp.o.d"
  "fig09_qos_jct"
  "fig09_qos_jct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_qos_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
