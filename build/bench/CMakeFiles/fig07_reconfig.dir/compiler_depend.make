# Empty compiler generated dependencies file for fig07_reconfig.
# This may be replaced when dependencies are built.
