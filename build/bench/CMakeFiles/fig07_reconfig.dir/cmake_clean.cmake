file(REMOVE_RECURSE
  "CMakeFiles/fig07_reconfig.dir/fig07_reconfig.cpp.o"
  "CMakeFiles/fig07_reconfig.dir/fig07_reconfig.cpp.o.d"
  "fig07_reconfig"
  "fig07_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
