file(REMOVE_RECURSE
  "CMakeFiles/fig03_crossrack.dir/fig03_crossrack.cpp.o"
  "CMakeFiles/fig03_crossrack.dir/fig03_crossrack.cpp.o.d"
  "fig03_crossrack"
  "fig03_crossrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_crossrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
