# Empty compiler generated dependencies file for fig03_crossrack.
# This may be replaced when dependencies are built.
