
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_overhead.cpp" "bench/CMakeFiles/micro_overhead.dir/micro_overhead.cpp.o" "gcc" "bench/CMakeFiles/micro_overhead.dir/micro_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mccs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mccs_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/mccs/CMakeFiles/mccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mccs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/mccs_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/mccs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mccs_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
