file(REMOVE_RECURSE
  "CMakeFiles/fig08_multi_app.dir/fig08_multi_app.cpp.o"
  "CMakeFiles/fig08_multi_app.dir/fig08_multi_app.cpp.o.d"
  "fig08_multi_app"
  "fig08_multi_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
