# Empty dependencies file for fig08_multi_app.
# This may be replaced when dependencies are built.
