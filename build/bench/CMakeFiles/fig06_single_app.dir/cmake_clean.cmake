file(REMOVE_RECURSE
  "CMakeFiles/fig06_single_app.dir/fig06_single_app.cpp.o"
  "CMakeFiles/fig06_single_app.dir/fig06_single_app.cpp.o.d"
  "fig06_single_app"
  "fig06_single_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_single_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
