# Empty compiler generated dependencies file for fig06_single_app.
# This may be replaced when dependencies are built.
