#pragma once
// Virtual-time span/event timeline, exported as Chrome trace-event JSON (the
// legacy "traceEvents" format Perfetto and chrome://tracing load directly).
//
// Tracks map the service's layers onto the viewer's process/thread axes: a
// track is a (process name, thread name) pair, interned once and addressed
// by a small integer afterwards. Events reference tracks by that handle, so
// the hot recording path does no string hashing.
//
// Spans are recorded on completion (begin and end both known) and exported
// as async begin/end pairs ("ph":"b"/"e") with a per-span id — collective
// launches, chunk sends, and network flows all overlap freely on one track,
// which nestable async events represent faithfully where complete ("X")
// events would imply a call-stack nesting that does not exist.
//
// Recording is designed to be allocation-free per event: events are POD
// rows, their arguments live in one shared arena, and category / name /
// argument-key strings are retained BY POINTER. Callers therefore pass
// string literals (or storage that outlives the timeline) for those — the
// engines' call sites all do; dynamic strings appear only as interned track
// names and as std::string argument *values*.
//
// Timestamps convert virtual seconds to the format's microsecond unit at
// export; values are serialized shortest-round-trip (telemetry/json.h).

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace mccs::telemetry {

/// One span/instant argument value. String values are retained as pointers
/// to constants outliving the timeline; keeping every alternative trivial
/// makes Arg trivially copyable, so recording an event is a handful of
/// stores and vector growth is a memcpy.
using ArgValue =
    std::variant<const char*, double, std::int64_t, std::uint64_t, bool>;

/// One argument. The key must outlive the timeline (a string literal).
struct Arg {
  const char* key;
  ArgValue value;
};
static_assert(std::is_trivially_copyable_v<Arg>);

class Timeline {
 public:
  /// "No prior sample" sentinel for counter() coalescing.
  static constexpr std::size_t kNoSample = std::numeric_limits<std::size_t>::max();

  /// Intern a (process, thread) track; returns a stable handle.
  int track(std::string_view process, std::string_view thread);

  /// A completed span [begin, end] on a track (async begin/end pair).
  /// `cat` and `name` are retained by pointer — literals / static storage.
  /// Inline: this is the datapath engines' per-event recording cost.
  void span(int track, const char* cat, const char* name, Time begin, Time end,
            std::initializer_list<Arg> args = {}) {
    MCCS_ASSERT(track >= 0 && static_cast<std::size_t>(track) < tracks_.size());
    MCCS_ASSERT(end >= begin);
    const auto args_begin = static_cast<std::uint32_t>(args_.size());
    const std::uint32_t args_end = push_args(args);
    events_.push_back(
        Event{Kind::kSpan, track, cat, name, begin, end, args_begin, args_end});
  }

  /// A zero-duration instant event (policy decisions, failures, retries).
  void instant(int track, const char* cat, const char* name, Time t,
               std::initializer_list<Arg> args = {}) {
    MCCS_ASSERT(track >= 0 && static_cast<std::size_t>(track) < tracks_.size());
    const auto args_begin = static_cast<std::uint32_t>(args_.size());
    const std::uint32_t args_end = push_args(args);
    events_.push_back(
        Event{Kind::kInstant, track, cat, name, t, t, args_begin, args_end});
  }

  /// A counter sample (rendered as a stacked area chart per counter name).
  /// Returns the sample's event index. If `coalesce` names a counter event
  /// recorded at the same timestamp with the same arity, its values are
  /// overwritten in place instead (burst coalescing: only the final rates of
  /// a same-virtual-instant reallocation cascade survive) — pass the
  /// previous sample's index, or kNoSample for none.
  std::size_t counter(int track, const char* name, Time t,
                      std::initializer_list<Arg> values,
                      std::size_t coalesce = kNoSample) {
    return counter(track, name, t, values.begin(), values.end(), coalesce);
  }

  /// Range form of counter() for samples whose series set is only known at
  /// run time (e.g. the changed links of one reallocation, batched into a
  /// single event). Coalescing additionally requires the previous sample to
  /// carry the same keys, so a burst touching a different link set appends
  /// rather than erasing the earlier links' values.
  std::size_t counter(int track, const char* name, Time t, const Arg* begin,
                      const Arg* end, std::size_t coalesce = kNoSample) {
    MCCS_ASSERT(track >= 0 && static_cast<std::size_t>(track) < tracks_.size());
    const auto n = static_cast<std::size_t>(end - begin);
    if (coalesce < events_.size()) {
      Event& prev = events_[coalesce];
      if (prev.kind == Kind::kCounter && prev.begin == t &&
          prev.track == track && prev.name == name &&
          prev.args_end - prev.args_begin == n) {
        bool same_keys = true;
        for (std::uint32_t i = 0; i < n; ++i) {
          if (args_[prev.args_begin + i].key != begin[i].key) {
            same_keys = false;
            break;
          }
        }
        if (same_keys) {
          for (std::uint32_t i = 0; i < n; ++i) {
            args_[prev.args_begin + i] = begin[i];
          }
          return coalesce;
        }
      }
    }
    const auto args_begin = static_cast<std::uint32_t>(args_.size());
    args_.insert(args_.end(), begin, end);
    const auto args_end = static_cast<std::uint32_t>(args_.size());
    events_.push_back(
        Event{Kind::kCounter, track, nullptr, name, t, t, args_begin, args_end});
    return events_.size() - 1;
  }

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }

  /// Append this timeline's events (plus process/thread metadata) to a
  /// Chrome trace-event array body. `first` tracks comma placement across
  /// multiple appenders writing into the same array; `pid_base` offsets this
  /// timeline's process ids so independent timelines can share one file.
  void append_chrome_events(std::string& out, int pid_base, bool& first) const;

  /// This timeline alone as a complete Chrome trace JSON document.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Approximate retained size, for overhead accounting in benches.
  [[nodiscard]] std::size_t approximate_bytes() const;

  /// Preallocate and fault in capacity for about `events` events with
  /// `args_per_event` arguments each, so recording up to that volume pays
  /// neither allocator growth nor first-touch page faults. The buffers are
  /// touched by resizing, so this only grows capacity while the timeline is
  /// empty (the enable-time case); on a non-empty timeline it is a no-op.
  void reserve(std::size_t events, std::size_t args_per_event);

  void clear();

 private:
  enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };

  struct Event {
    Kind kind;
    int track;
    const char* cat;   ///< not owned; nullptr for counters
    const char* name;  ///< not owned
    Time begin = 0.0;
    Time end = 0.0;  ///< spans only
    std::uint32_t args_begin = 0;  ///< range into args_
    std::uint32_t args_end = 0;
  };

  struct Track {
    std::string process;
    std::string thread;
    int pid;
    int tid;
  };

  std::uint32_t push_args(std::initializer_list<Arg> args) {
    args_.insert(args_.end(), args.begin(), args.end());
    return static_cast<std::uint32_t>(args_.size());
  }

  std::vector<Track> tracks_;
  std::unordered_map<std::string, int> track_by_key_;
  std::unordered_map<std::string, int> pid_by_process_;
  std::unordered_map<int, int> next_tid_by_pid_;
  std::vector<Event> events_;
  std::vector<Arg> args_;  ///< shared argument arena
};

}  // namespace mccs::telemetry
