#pragma once
// Minimal JSON emission helpers shared by every exporter in the repository
// (metrics registry dumps, Chrome trace events, the management snapshots in
// mccs/trace_export.cpp). Hand-rolled on purpose — no third-party JSON
// dependency — but centralised so the two classic hand-rolled-JSON bugs
// (lossy doubles, unescaped strings) are fixed in exactly one place.

#include <string>
#include <string_view>

namespace mccs::telemetry {

/// Escape a string for inclusion inside JSON double quotes: `"` and `\` are
/// backslash-escaped, the short-form control escapes (\b \f \n \r \t) are
/// used where they exist, and every other control character becomes \u00XX.
/// Returns the escaped body only — the caller supplies the quotes.
[[nodiscard]] std::string escape_json(std::string_view s);

/// Append escape_json(s) to `out` without an intermediate string.
void append_escaped_json(std::string& out, std::string_view s);

/// Shortest-round-trip decimal serialization of a double (std::to_chars):
/// the minimal digit string that parses back to exactly the same bits, so
/// virtual timestamps survive an export/import cycle byte-identically.
/// Non-finite values (which JSON cannot represent) become "null".
[[nodiscard]] std::string format_double(double v);

/// Append format_double(v) to `out`.
void append_double(std::string& out, double v);

}  // namespace mccs::telemetry
