#pragma once
// The telemetry facade every engine holds a pointer to (via ServiceContext):
// a MetricsRegistry that is always live — the replaced ad-hoc counters
// (transport retries, plan-cache hits) must keep working with telemetry off —
// and a virtual-time Timeline plus samplers that engines only touch behind
// `enabled()`, the single cheap branch the disabled mode pays.
//
// Depends only on common/ so netsim, mccs and policy can all link it.

#include "telemetry/metrics.h"
#include "telemetry/timeline.h"

namespace mccs::telemetry {

class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(bool enabled) : enabled_(enabled) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Gates every timeline/sampler touch point. Counters are NOT gated.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Enabling preallocates (and faults in) the timeline's recording buffers,
  /// the way kernel tracers size their ring buffers up front: steady-state
  /// recording then never pays allocator growth or first-touch page faults.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (enabled) timeline_.reserve(kReserveEvents, kReserveArgsPerEvent);
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Timeline& timeline() { return timeline_; }
  [[nodiscard]] const Timeline& timeline() const { return timeline_; }

 private:
  /// Initial ring sizing: ~32k events with ~4 args each (≈4.7 MB). The
  /// buffers still grow past this if a run records more.
  static constexpr std::size_t kReserveEvents = 32768;
  static constexpr std::size_t kReserveArgsPerEvent = 4;

  bool enabled_ = false;
  MetricsRegistry metrics_;
  Timeline timeline_;
};

}  // namespace mccs::telemetry
