#include "telemetry/json.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mccs::telemetry {

void append_escaped_json(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped_json(out, s);
  return out;
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // std::to_chars with no precision argument emits the shortest string that
  // round-trips to the same double.
  std::array<char, 32> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

std::string format_double(double v) {
  std::string out;
  append_double(out, v);
  return out;
}

}  // namespace mccs::telemetry
