#pragma once
// MetricsRegistry: the service-wide numeric-metrics half of the telemetry
// subsystem (DESIGN.md §9). Prometheus-shaped instruments — monotonic
// counters, last-value gauges, fixed-bucket histograms — keyed by a metric
// name plus a small label set (tenant / comm / link / host / nic).
//
// Instruments are interned: the first lookup of a (name, labels) pair
// creates the instrument, later lookups return the same one, and handles
// stay valid until the instrument is explicitly dropped (heap storage, no
// reallocation). Engines therefore resolve their instruments once at
// construction and afterwards pay a single add on the hot path — cheap
// enough that the replaced ad-hoc counters (transport retry/stall counts,
// plan-cache hit rates) stay registry-backed even with the timeline
// disabled.
//
// Lifecycle: per-entity instruments (e.g. plan-cache counters labeled by
// comm id) are dropped when the entity is torn down, so a registry under
// tenant churn stays bounded by the LIVE entity population instead of the
// all-time one. drop() invalidates only the dropped instrument's handles;
// the owner must not touch them afterwards.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"

namespace mccs::telemetry {

/// Label set of one instrument. Order-insensitive: the registry sorts by key
/// on intern, so {a=1,b=2} and {b=2,a=1} name the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void increment(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i]; one implicit +inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; i == bounds().size() is +inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    MCCS_EXPECTS(i < counts_.size());
    return counts_[i];
  }

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Intern an instrument: same (name, labels) — in any label order —
  /// returns the same object; handles never move.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// `bounds` must be ascending, and must match the original bounds when
  /// re-interning an existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {});

  /// Drop the instrument(s) interned under exactly (name, labels) — counter,
  /// gauge, and/or histogram. Handles to them dangle afterwards; any later
  /// lookup re-interns a zeroed instrument. Returns how many instruments
  /// were erased (0 when the pair was never interned). Accumulated values
  /// are lost by design: the registry reports live entities, and keeping
  /// dead tenants' series would grow it without bound under churn.
  std::size_t drop(std::string_view name, Labels labels);

  /// Sum of a counter over every label set it was interned with (e.g. total
  /// transport retries across all NICs). 0 if the name is unknown.
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;
  /// Number of label sets a counter name was interned with.
  [[nodiscard]] std::size_t counter_series(std::string_view name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// The whole registry as one JSON object, deterministically ordered
  /// (sorted by name, then by label key/value).
  [[nodiscard]] std::string to_json() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;  ///< sorted by key
    std::unique_ptr<T> instrument;
  };

  // std::map keyed by "name\x1fk\x1ev\x1f..." gives stable iteration order
  // for the JSON export; values are heap-allocated so handles are stable.
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace mccs::telemetry
