#include "telemetry/timeline.h"

#include "common/check.h"
#include "telemetry/json.h"

namespace mccs::telemetry {
namespace {

void append_arg_value(std::string& out, const ArgValue& v) {
  if (const auto* c = std::get_if<const char*>(&v)) {
    out += "\"";
    append_escaped_json(out, *c);
    out += "\"";
  } else if (const auto* d = std::get_if<double>(&v)) {
    append_double(out, *d);
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    out += std::to_string(*u);
  } else {
    out += std::get<bool>(v) ? "true" : "false";
  }
}

void append_event_prefix(std::string& out, bool& first) {
  if (!first) out += ",";
  first = false;
}

/// Microsecond timestamp in virtual time (the trace-event unit).
void append_ts(std::string& out, Time t) { append_double(out, t * 1e6); }

}  // namespace

int Timeline::track(std::string_view process, std::string_view thread) {
  std::string key(process);
  key += '\x1f';
  key += thread;
  auto it = track_by_key_.find(key);
  if (it != track_by_key_.end()) return it->second;

  auto pit = pid_by_process_.find(std::string(process));
  int pid;
  if (pit == pid_by_process_.end()) {
    pid = static_cast<int>(pid_by_process_.size()) + 1;
    pid_by_process_.emplace(std::string(process), pid);
  } else {
    pid = pit->second;
  }
  const int tid = ++next_tid_by_pid_[pid];

  const int handle = static_cast<int>(tracks_.size());
  tracks_.push_back(Track{std::string(process), std::string(thread), pid, tid});
  track_by_key_.emplace(std::move(key), handle);
  return handle;
}

void Timeline::append_chrome_events(std::string& out, int pid_base,
                                    bool& first) const {
  // Process/thread name metadata, once per process and per track.
  for (const auto& [process, pid] : pid_by_process_) {
    append_event_prefix(out, first);
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid_base + pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped_json(out, process);
    out += "\"}}";
  }
  for (const Track& t : tracks_) {
    append_event_prefix(out, first);
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(pid_base + t.pid);
    out += ",\"tid\":";
    out += std::to_string(t.tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped_json(out, t.thread);
    out += "\"}}";
  }

  const auto append_args = [this, &out](const Event& e) {
    out += "{";
    for (std::uint32_t i = e.args_begin; i < e.args_end; ++i) {
      if (i != e.args_begin) out += ",";
      out += "\"";
      append_escaped_json(out, args_[i].key);
      out += "\":";
      append_arg_value(out, args_[i].value);
    }
    out += "}";
  };

  std::uint64_t next_span_id = 1;
  for (const Event& e : events_) {
    const Track& t = tracks_[static_cast<std::size_t>(e.track)];
    const std::string pid = std::to_string(pid_base + t.pid);
    const std::string tid = std::to_string(t.tid);
    switch (e.kind) {
      case Kind::kSpan: {
        // Async begin/end pair: overlapping spans on one track are legal.
        const std::uint64_t id = next_span_id++;
        append_event_prefix(out, first);
        out += "{\"ph\":\"b\",\"cat\":\"";
        append_escaped_json(out, e.cat);
        out += "\",\"name\":\"";
        append_escaped_json(out, e.name);
        out += "\",\"id\":" + std::to_string(id);
        out += ",\"pid\":" + pid + ",\"tid\":" + tid + ",\"ts\":";
        append_ts(out, e.begin);
        out += ",\"args\":";
        append_args(e);
        out += "}";
        append_event_prefix(out, first);
        out += "{\"ph\":\"e\",\"cat\":\"";
        append_escaped_json(out, e.cat);
        out += "\",\"name\":\"";
        append_escaped_json(out, e.name);
        out += "\",\"id\":" + std::to_string(id);
        out += ",\"pid\":" + pid + ",\"tid\":" + tid + ",\"ts\":";
        append_ts(out, e.end);
        out += "}";
        break;
      }
      case Kind::kInstant: {
        append_event_prefix(out, first);
        out += "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"";
        append_escaped_json(out, e.cat);
        out += "\",\"name\":\"";
        append_escaped_json(out, e.name);
        out += "\",\"pid\":" + pid + ",\"tid\":" + tid + ",\"ts\":";
        append_ts(out, e.begin);
        out += ",\"args\":";
        append_args(e);
        out += "}";
        break;
      }
      case Kind::kCounter: {
        append_event_prefix(out, first);
        out += "{\"ph\":\"C\",\"name\":\"";
        append_escaped_json(out, e.name);
        out += "\",\"pid\":" + pid + ",\"tid\":" + tid + ",\"ts\":";
        append_ts(out, e.begin);
        out += ",\"args\":";
        append_args(e);
        out += "}";
        break;
      }
    }
  }
}

std::string Timeline::chrome_trace_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  append_chrome_events(out, 0, first);
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::size_t Timeline::approximate_bytes() const {
  std::size_t bytes = events_.capacity() * sizeof(Event) +
                      args_.capacity() * sizeof(Arg);
  for (const Track& t : tracks_) {
    bytes += t.process.capacity() + t.thread.capacity();
  }
  return bytes;
}

void Timeline::reserve(std::size_t events, std::size_t args_per_event) {
  if (!events_.empty() || !args_.empty()) return;
  if (events_.capacity() < events) {
    events_.resize(events);  // resize (not reserve) to fault the pages in
    events_.clear();
  }
  const std::size_t args = events * args_per_event;
  if (args_.capacity() < args) {
    args_.resize(args);
    args_.clear();
  }
}

void Timeline::clear() {
  events_.clear();
  args_.clear();
}

}  // namespace mccs::telemetry
