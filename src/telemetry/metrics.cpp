#include "telemetry/metrics.h"

#include <algorithm>

#include "telemetry/json.h"

namespace mccs::telemetry {
namespace {

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

/// Intern key: name and sorted labels joined with control separators that
/// cannot appear in a sane metric name (and are harmless if they do — the
/// key is internal only).
std::string intern_key(std::string_view name, const Labels& sorted) {
  std::string key(name);
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped_json(out, k);
    out += "\":\"";
    append_escaped_json(out, v);
    out += "\"";
  }
  out += "}";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  MCCS_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) {
  // Buckets are few and fixed; a linear scan beats binary search at the
  // typical 5-10 bounds and has no branch-misprediction cliff.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  sort_labels(labels);
  const std::string key = intern_key(name, labels);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, Entry<Counter>{std::string(name), std::move(labels),
                                          std::make_unique<Counter>()})
             .first;
  }
  return *it->second.instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  sort_labels(labels);
  const std::string key = intern_key(name, labels);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(key, Entry<Gauge>{std::string(name), std::move(labels),
                                        std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  sort_labels(labels);
  const std::string key = intern_key(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key,
                      Entry<Histogram>{std::string(name), std::move(labels),
                                       std::make_unique<Histogram>(
                                           std::move(bounds))})
             .first;
  } else {
    MCCS_CHECK(it->second.instrument->bounds() == bounds,
               "histogram re-interned with different bucket bounds");
  }
  return *it->second.instrument;
}

std::size_t MetricsRegistry::drop(std::string_view name, Labels labels) {
  sort_labels(labels);
  const std::string key = intern_key(name, labels);
  return counters_.erase(key) + gauges_.erase(key) + histograms_.erase(key);
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [key, entry] : counters_) {
    if (entry.name == name) total += entry.instrument->value();
  }
  return total;
}

std::size_t MetricsRegistry::counter_series(std::string_view name) const {
  std::size_t n = 0;
  for (const auto& [key, entry] : counters_) {
    if (entry.name == name) ++n;
  }
  return n;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped_json(out, entry.name);
    out += "\",\"labels\":";
    append_labels_json(out, entry.labels);
    out += ",\"value\":" + std::to_string(entry.instrument->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped_json(out, entry.name);
    out += "\",\"labels\":";
    append_labels_json(out, entry.labels);
    out += ",\"value\":";
    append_double(out, entry.instrument->value());
    out += "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    if (!first) out += ",";
    first = false;
    const Histogram& h = *entry.instrument;
    out += "{\"name\":\"";
    append_escaped_json(out, entry.name);
    out += "\",\"labels\":";
    append_labels_json(out, entry.labels);
    out += ",\"count\":" + std::to_string(h.count());
    out += ",\"sum\":";
    append_double(out, h.sum());
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out += ",";
      append_double(out, h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.bucket_count(i));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace mccs::telemetry
