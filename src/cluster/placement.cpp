#include "cluster/placement.h"

#include <algorithm>
#include <map>

namespace mccs::cluster {

std::optional<std::vector<GpuId>> GpuAllocator::allocate(int n,
                                                         Placement placement,
                                                         Rng& rng) {
  MCCS_EXPECTS(n > 0);
  if (static_cast<std::size_t>(n) > free_) return std::nullopt;

  std::vector<GpuId> chosen;
  chosen.reserve(static_cast<std::size_t>(n));

  if (placement == Placement::kRandom) {
    std::vector<GpuId> free_gpus;
    for (std::uint32_t g = 0; g < in_use_.size(); ++g) {
      if (!in_use_[g]) free_gpus.push_back(GpuId{g});
    }
    rng.shuffle(free_gpus);
    chosen.assign(free_gpus.begin(), free_gpus.begin() + n);
  } else {
    // Compact: repeatedly take the rack with the most free GPUs (a rack that
    // fits the whole remainder wins outright), packing rack by rack.
    std::map<std::uint32_t, std::vector<GpuId>> by_rack;
    for (std::uint32_t g = 0; g < in_use_.size(); ++g) {
      if (!in_use_[g]) by_rack[cluster_->rack_of_gpu(GpuId{g}).get()].push_back(GpuId{g});
    }
    int remaining = n;
    while (remaining > 0) {
      // Prefer the smallest rack that still fits everything; otherwise the
      // fullest rack.
      std::uint32_t best_rack = 0;
      std::size_t best_size = 0;
      bool found_fit = false;
      std::size_t fit_size = static_cast<std::size_t>(-1);
      for (const auto& [rack, gpus] : by_rack) {
        if (gpus.empty()) continue;
        if (gpus.size() >= static_cast<std::size_t>(remaining) &&
            gpus.size() < fit_size) {
          found_fit = true;
          fit_size = gpus.size();
          best_rack = rack;
        }
        if (!found_fit && gpus.size() > best_size) {
          best_size = gpus.size();
          best_rack = rack;
        }
      }
      auto& gpus = by_rack[best_rack];
      const int take = std::min<int>(remaining, static_cast<int>(gpus.size()));
      // Deterministic order within the rack keeps hosts contiguous.
      std::sort(gpus.begin(), gpus.end());
      chosen.insert(chosen.end(), gpus.begin(), gpus.begin() + take);
      gpus.erase(gpus.begin(), gpus.begin() + take);
      remaining -= take;
    }
  }

  for (GpuId g : chosen) {
    MCCS_CHECK(!in_use_[g.get()], "allocator chose an occupied GPU");
    in_use_[g.get()] = true;
  }
  free_ -= static_cast<std::size_t>(n);
  return chosen;
}

void GpuAllocator::release(const std::vector<GpuId>& gpus) {
  for (GpuId g : gpus) {
    MCCS_EXPECTS(in_use_[g.get()]);
    in_use_[g.get()] = false;
  }
  free_ += gpus.size();
}

}  // namespace mccs::cluster
