#include "cluster/cluster.h"

#include <string>

namespace mccs::cluster {

Cluster make_spine_leaf(const SpineLeafSpec& spec) {
  MCCS_EXPECTS(spec.num_spines >= 1 && spec.num_leaves >= 1);
  MCCS_EXPECTS(spec.hosts_per_leaf >= 1 && spec.gpus_per_host >= 1);
  MCCS_EXPECTS(spec.nics_per_host >= 1);

  Cluster c;
  net::Topology& topo = c.mutable_topology();
  {
    // Pre-size so a 32k-GPU build does not regrow its node/link stores.
    const std::size_t nics = static_cast<std::size_t>(spec.num_leaves) *
                             spec.hosts_per_leaf * spec.nics_per_host;
    const std::size_t nodes = static_cast<std::size_t>(spec.num_spines) +
                              static_cast<std::size_t>(spec.num_leaves) + nics;
    const std::size_t links =
        2 * (static_cast<std::size_t>(spec.num_leaves) * spec.num_spines + nics);
    topo.reserve(nodes, links);
  }

  std::vector<NodeId> spines;
  spines.reserve(static_cast<std::size_t>(spec.num_spines));
  for (int s = 0; s < spec.num_spines; ++s) {
    spines.push_back(topo.add_switch(net::NodeKind::kSpineSwitch,
                                     "spine" + std::to_string(s)));
  }

  for (int l = 0; l < spec.num_leaves; ++l) {
    const NodeId leaf = topo.add_switch(net::NodeKind::kLeafSwitch,
                                        "leaf" + std::to_string(l));
    for (NodeId spine : spines) {
      topo.add_duplex_link(leaf, spine, spec.fabric_link);
    }
    const RackId rack{static_cast<std::uint32_t>(l)};
    const PodId pod{0};
    for (int h = 0; h < spec.hosts_per_leaf; ++h) {
      const int host_index = l * spec.hosts_per_leaf + h;
      std::vector<NodeId> nics;
      nics.reserve(static_cast<std::size_t>(spec.nics_per_host));
      for (int n = 0; n < spec.nics_per_host; ++n) {
        const NodeId nic = topo.add_host(
            "host" + std::to_string(host_index) + "/nic" + std::to_string(n),
            rack, pod);
        topo.add_duplex_link(nic, leaf, spec.nic_link);
        nics.push_back(nic);
      }
      c.add_host(rack, pod, spec.gpus_per_host, std::move(nics));
    }
  }
  return c;
}

Cluster make_testbed() {
  SpineLeafSpec spec;
  spec.num_spines = 2;
  spec.num_leaves = 2;
  spec.hosts_per_leaf = 2;
  spec.gpus_per_host = 2;
  spec.nics_per_host = 2;
  spec.nic_link = gbps(50);
  spec.fabric_link = gbps(50);
  return make_spine_leaf(spec);
}

Cluster make_large_sim_cluster() {
  SpineLeafSpec spec;
  spec.num_spines = 16;
  spec.num_leaves = 24;
  spec.hosts_per_leaf = 4;
  spec.gpus_per_host = 8;
  spec.nics_per_host = 8;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  return make_spine_leaf(spec);
}

Cluster make_scaled_sim_cluster(int num_gpus) {
  SpineLeafSpec spec;
  spec.gpus_per_host = 8;
  spec.nics_per_host = 8;
  spec.nic_link = gbps(200);
  spec.fabric_link = gbps(200);
  switch (num_gpus) {
    case 768:
      return make_large_sim_cluster();
    case 4096:
      spec.num_spines = 16;
      spec.num_leaves = 32;
      spec.hosts_per_leaf = 16;
      break;
    case 8192:
      spec.num_spines = 32;
      spec.num_leaves = 64;
      spec.hosts_per_leaf = 16;
      break;
    case 32768:
      spec.num_spines = 64;
      spec.num_leaves = 128;
      spec.hosts_per_leaf = 32;
      break;
    default:
      MCCS_CHECK(false, "unsupported scaled-sim GPU count");
  }
  return make_spine_leaf(spec);
}

Cluster make_switch_ring(int num_switches, int gpus_per_host, int nics_per_host,
                         Bandwidth link_bw) {
  MCCS_EXPECTS(num_switches >= 3);
  Cluster c;
  net::Topology& topo = c.mutable_topology();

  std::vector<NodeId> switches;
  switches.reserve(static_cast<std::size_t>(num_switches));
  for (int s = 0; s < num_switches; ++s) {
    switches.push_back(topo.add_switch(net::NodeKind::kGenericSwitch,
                                       "sw" + std::to_string(s)));
  }
  for (int s = 0; s < num_switches; ++s) {
    topo.add_duplex_link(switches[static_cast<std::size_t>(s)],
                         switches[static_cast<std::size_t>((s + 1) % num_switches)],
                         link_bw);
  }
  for (int s = 0; s < num_switches; ++s) {
    std::vector<NodeId> nics;
    for (int n = 0; n < nics_per_host; ++n) {
      const NodeId nic = topo.add_host(
          "host" + std::to_string(s) + "/nic" + std::to_string(n),
          RackId{static_cast<std::uint32_t>(s)}, PodId{0});
      topo.add_duplex_link(nic, switches[static_cast<std::size_t>(s)], link_bw);
      nics.push_back(nic);
    }
    c.add_host(RackId{static_cast<std::uint32_t>(s)}, PodId{0}, gpus_per_host,
               std::move(nics));
  }
  return c;
}

Cluster make_fat_tree(const FatTreeSpec& spec) {
  MCCS_EXPECTS(spec.num_pods >= 1 && spec.spines_per_pod >= 1);
  MCCS_EXPECTS(spec.leaves_per_pod >= 1 && spec.num_cores >= 1);
  MCCS_EXPECTS(spec.hosts_per_leaf >= 1 && spec.gpus_per_host >= 1);
  MCCS_EXPECTS(spec.nics_per_host >= 1);

  Cluster c;
  net::Topology& topo = c.mutable_topology();

  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(spec.num_cores));
  for (int k = 0; k < spec.num_cores; ++k) {
    cores.push_back(topo.add_switch(net::NodeKind::kSpineSwitch,
                                    "core" + std::to_string(k)));
  }

  int rack_index = 0;
  int host_index = 0;
  for (int p = 0; p < spec.num_pods; ++p) {
    const PodId pod{static_cast<std::uint32_t>(p)};
    std::vector<NodeId> pod_spines;
    for (int s = 0; s < spec.spines_per_pod; ++s) {
      const NodeId spine = topo.add_switch(
          net::NodeKind::kSpineSwitch,
          "pod" + std::to_string(p) + "/spine" + std::to_string(s));
      for (NodeId core : cores) {
        topo.add_duplex_link(spine, core, spec.core_link);
      }
      pod_spines.push_back(spine);
    }
    for (int l = 0; l < spec.leaves_per_pod; ++l) {
      const NodeId leaf = topo.add_switch(
          net::NodeKind::kLeafSwitch,
          "pod" + std::to_string(p) + "/leaf" + std::to_string(l));
      for (NodeId spine : pod_spines) {
        topo.add_duplex_link(leaf, spine, spec.pod_link);
      }
      const RackId rack{static_cast<std::uint32_t>(rack_index++)};
      for (int h = 0; h < spec.hosts_per_leaf; ++h) {
        std::vector<NodeId> nics;
        for (int n = 0; n < spec.nics_per_host; ++n) {
          const NodeId nic = topo.add_host(
              "host" + std::to_string(host_index) + "/nic" + std::to_string(n),
              rack, pod);
          topo.add_duplex_link(nic, leaf, spec.nic_link);
          nics.push_back(nic);
        }
        c.add_host(rack, pod, spec.gpus_per_host, std::move(nics));
        ++host_index;
      }
    }
  }
  return c;
}

}  // namespace mccs::cluster
