#pragma once
// Cluster model: the inventory of hosts, GPUs and NICs, their locality
// (rack / pod), and how they attach to a network Topology.
//
// NICs are the topology endpoints: each NIC is a host-kind node with its own
// uplink, so per-vNIC rate limits (the testbed emulates two 50 Gbps vNICs
// per host, §6.1) and multi-NIC hosts (8 NICs/host in the 768-GPU
// simulation, §6.5) fall out of link capacities instead of special cases.
// GPU i of a host sends through NIC (i mod nics_per_host), mirroring the
// paper's one-NIC-per-GPU pairing.

#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "netsim/topology.h"

namespace mccs::cluster {

struct HostInfo {
  HostId id;
  RackId rack;
  PodId pod;
  std::vector<GpuId> gpus;        ///< cluster-global GPU ids, local order
  std::vector<NodeId> nic_nodes;  ///< topology endpoint per NIC, local order
};

class Cluster {
 public:
  Cluster() = default;

  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t gpu_count() const { return gpu_to_host_.size(); }

  [[nodiscard]] const HostInfo& host(HostId id) const {
    MCCS_EXPECTS(id.get() < hosts_.size());
    return hosts_[id.get()];
  }

  [[nodiscard]] HostId host_of_gpu(GpuId gpu) const {
    MCCS_EXPECTS(gpu.get() < gpu_to_host_.size());
    return gpu_to_host_[gpu.get()];
  }

  /// Index of a GPU within its host.
  [[nodiscard]] int local_index(GpuId gpu) const {
    const HostInfo& h = host(host_of_gpu(gpu));
    for (std::size_t i = 0; i < h.gpus.size(); ++i) {
      if (h.gpus[i] == gpu) return static_cast<int>(i);
    }
    MCCS_CHECK(false, "gpu not found on its host");
    return -1;
  }

  /// The topology endpoint this GPU's traffic leaves through.
  [[nodiscard]] NodeId nic_node_of_gpu(GpuId gpu) const {
    const HostInfo& h = host(host_of_gpu(gpu));
    const auto li = static_cast<std::size_t>(local_index(gpu));
    return h.nic_nodes[li % h.nic_nodes.size()];
  }

  [[nodiscard]] RackId rack_of_gpu(GpuId gpu) const {
    return host(host_of_gpu(gpu)).rack;
  }

  [[nodiscard]] bool same_host(GpuId a, GpuId b) const {
    return host_of_gpu(a) == host_of_gpu(b);
  }

  [[nodiscard]] std::vector<GpuId> all_gpus() const {
    std::vector<GpuId> out;
    out.reserve(gpu_to_host_.size());
    for (std::uint32_t i = 0; i < gpu_to_host_.size(); ++i) out.push_back(GpuId{i});
    return out;
  }

  // --- construction (used by the builders below) -----------------------------

  net::Topology& mutable_topology() { return topo_; }

  HostId add_host(RackId rack, PodId pod, int num_gpus,
                  std::vector<NodeId> nic_nodes) {
    MCCS_EXPECTS(num_gpus > 0 && !nic_nodes.empty());
    HostInfo h;
    h.id = HostId{static_cast<std::uint32_t>(hosts_.size())};
    h.rack = rack;
    h.pod = pod;
    h.nic_nodes = std::move(nic_nodes);
    for (int g = 0; g < num_gpus; ++g) {
      const GpuId gid{static_cast<std::uint32_t>(gpu_to_host_.size())};
      h.gpus.push_back(gid);
      gpu_to_host_.push_back(h.id);
    }
    hosts_.push_back(std::move(h));
    return hosts_.back().id;
  }

 private:
  net::Topology topo_;
  std::vector<HostInfo> hosts_;
  std::vector<HostId> gpu_to_host_;
};

// --- builders ----------------------------------------------------------------

struct SpineLeafSpec {
  int num_spines = 2;
  int num_leaves = 2;
  int hosts_per_leaf = 2;
  int gpus_per_host = 2;
  int nics_per_host = 2;
  Bandwidth nic_link = gbps(50);     ///< per-NIC uplink to the leaf
  Bandwidth fabric_link = gbps(50);  ///< each leaf<->spine link
};

/// Two-tier Clos (spine-leaf) fabric; every leaf connects to every spine.
Cluster make_spine_leaf(const SpineLeafSpec& spec);

/// The paper's 4-node testbed (Fig. 5a): 2 racks x 2 hosts, 2 GPUs and two
/// 50 Gbps vNICs per host, 2 spine paths of 50 Gbps — oversubscription 2.
Cluster make_testbed();

/// The paper's 768-GPU simulation fabric (§6.5): 16 spines, 24 leaves,
/// 4 hosts per leaf, 8 GPUs + 8 NICs per host, all links 200 Gbps.
Cluster make_large_sim_cluster();

/// Scaled-up two-tier Clos fabrics for the 8k/32k-endpoint simulations
/// (ROADMAP item 5): same 8-GPU/8-NIC hosts and 200 Gbps links as the
/// paper's §6.5 fabric, widened spine/leaf tiers. Supported sizes:
///   768   -> the §6.5 fabric (16 spines x 24 leaves x 4 hosts)
///   4096  -> 16 spines x 32 leaves x 16 hosts   (zero-alloc guard scale)
///   8192  -> 32 spines x 64 leaves x 16 hosts
///   32768 -> 64 spines x 128 leaves x 32 hosts  (~82k directed links)
Cluster make_scaled_sim_cluster(int num_gpus);

/// Fig. 7's scenario: `num_switches` switches wired as a ring, one host per
/// switch; used to showcase ring-direction reconfiguration around a
/// background flow.
Cluster make_switch_ring(int num_switches, int gpus_per_host, int nics_per_host,
                         Bandwidth link_bw);

struct FatTreeSpec {
  int num_pods = 2;
  int spines_per_pod = 2;   ///< pod-local (aggregation) switches
  int leaves_per_pod = 2;   ///< one rack per leaf
  int num_cores = 2;        ///< core switches interconnecting the pods
  int hosts_per_leaf = 2;
  int gpus_per_host = 4;
  int nics_per_host = 4;
  Bandwidth nic_link = gbps(100);
  Bandwidth pod_link = gbps(100);   ///< leaf <-> pod spine
  Bandwidth core_link = gbps(100);  ///< pod spine <-> core
};

/// Three-tier fat-tree (leaf / pod-spine / core): the topology where the
/// locality policy's pod grouping matters — cross-pod traffic pays an extra
/// oversubscribed tier beyond cross-rack traffic.
Cluster make_fat_tree(const FatTreeSpec& spec);

}  // namespace mccs::cluster
