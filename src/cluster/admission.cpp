#include "cluster/admission.h"

#include <algorithm>

namespace mccs::cluster {

std::optional<std::vector<GpuId>> AdmissionQueue::submit(JobId job, int gpus,
                                                         Rng& rng) {
  MCCS_EXPECTS(gpus > 0);
  MCCS_EXPECTS(running_.count(job.get()) == 0);
  if (queue_.empty()) {
    if (auto placed = allocator_.allocate(gpus, placement_, rng)) {
      running_[job.get()] = *placed;
      ++admitted_total_;
      return placed;
    }
  }
  queue_.push_back(Waiting{job, gpus});
  return std::nullopt;
}

std::vector<AdmissionQueue::Admission> AdmissionQueue::finish(JobId job,
                                                              Rng& rng) {
  std::vector<Admission> admitted;
  auto it = running_.find(job.get());
  if (it != running_.end()) {
    allocator_.release(it->second);
    running_.erase(it);
    drain(admitted, rng);
    return admitted;
  }
  // Departed while still waiting (the trace outlived its patience): drop it
  // from the queue. Its removal can unblock the jobs behind it.
  auto queued = std::find_if(queue_.begin(), queue_.end(),
                             [&](const Waiting& w) { return w.job == job; });
  MCCS_CHECK(queued != queue_.end(), "finishing a job that was never admitted");
  const bool was_head = queued == queue_.begin();
  queue_.erase(queued);
  if (was_head) drain(admitted, rng);
  return admitted;
}

void AdmissionQueue::drain(std::vector<Admission>& out, Rng& rng) {
  while (!queue_.empty()) {
    const Waiting& head = queue_.front();
    auto placed = allocator_.allocate(head.gpus, placement_, rng);
    if (!placed) break;  // head still blocked; FIFO means everyone waits
    running_[head.job.get()] = *placed;
    ++admitted_total_;
    out.push_back(Admission{head.job, std::move(*placed)});
    queue_.pop_front();
  }
}

const std::vector<GpuId>* AdmissionQueue::placement_of(JobId job) const {
  auto it = running_.find(job.get());
  return it == running_.end() ? nullptr : &it->second;
}

}  // namespace mccs::cluster
