#include "cluster/admission.h"

#include <algorithm>

namespace mccs::cluster {

std::optional<std::vector<GpuId>> AdmissionQueue::submit(JobId job, int gpus,
                                                         Rng& rng) {
  MCCS_EXPECTS(running_.count(job.get()) == 0);
  // Malformed request: zero/negative GPUs, or more than the cluster owns.
  // Queueing it would wedge the FIFO head forever (it can never fit), so it
  // is rejected here — loudly counted, never silently dropped.
  if (gpus <= 0 || static_cast<std::size_t>(gpus) > total_gpus_) {
    reject(job);
    return std::nullopt;
  }
  if (backpressure_) {
    ++deferred_total_;
    queue_.push_back(Waiting{job, gpus, 0});
    return std::nullopt;
  }
  if (queue_.empty()) {
    if (auto placed = allocator_.allocate(gpus, placement_, rng)) {
      running_[job.get()] = *placed;
      ++admitted_total_;
      return placed;
    }
  }
  queue_.push_back(Waiting{job, gpus, 0});
  return std::nullopt;
}

std::vector<AdmissionQueue::Admission> AdmissionQueue::finish(JobId job,
                                                              Rng& rng) {
  std::vector<Admission> admitted;
  auto it = running_.find(job.get());
  if (it != running_.end()) {
    allocator_.release(it->second);
    running_.erase(it);
    if (!backpressure_) drain(admitted, rng);
    return admitted;
  }
  // Departed while still waiting (the trace outlived its patience): drop it
  // from the queue. Its removal can unblock the jobs behind it.
  auto queued = std::find_if(queue_.begin(), queue_.end(),
                             [&](const Waiting& w) { return w.job == job; });
  if (queued == queue_.end()) {
    // Unknown job: already finished (a chaos kill followed by the trace's
    // natural departure), rejected at submit, or never submitted. Idempotent
    // by design — under fault injection duplicate departures are routine.
    ++duplicate_finish_total_;
    return admitted;
  }
  const bool was_head = queued == queue_.begin();
  queue_.erase(queued);
  if (was_head && !backpressure_) drain(admitted, rng);
  return admitted;
}

std::vector<AdmissionQueue::Admission> AdmissionQueue::drain_deferred(
    Rng& rng) {
  std::vector<Admission> admitted;
  if (!backpressure_) drain(admitted, rng);
  return admitted;
}

void AdmissionQueue::drain(std::vector<Admission>& out, Rng& rng) {
  while (!queue_.empty()) {
    Waiting& head = queue_.front();
    auto placed = allocator_.allocate(head.gpus, placement_, rng);
    if (!placed) {
      ++retry_total_;
      if (max_retries_ >= 0 && ++head.retries > max_retries_) {
        // Retry budget exhausted: reject rather than livelock the queue
        // behind a head that free capacity may never again cover.
        reject(head.job);
        queue_.pop_front();
        continue;
      }
      break;  // head still blocked; FIFO means everyone waits
    }
    running_[head.job.get()] = *placed;
    ++admitted_total_;
    out.push_back(Admission{head.job, std::move(*placed)});
    queue_.pop_front();
  }
}

void AdmissionQueue::reject(JobId job) {
  rejected_.push_back(job);
  ++rejected_total_;
}

std::vector<JobId> AdmissionQueue::take_rejected() {
  std::vector<JobId> out;
  out.swap(rejected_);
  return out;
}

const std::vector<GpuId>* AdmissionQueue::placement_of(JobId job) const {
  auto it = running_.find(job.get());
  return it == running_.end() ? nullptr : &it->second;
}

bool AdmissionQueue::is_waiting(JobId job) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Waiting& w) { return w.job == job; });
}

}  // namespace mccs::cluster
