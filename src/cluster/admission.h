#pragma once
// Admission control for cluster-day churn: a strict-FIFO queue in front of
// the GpuAllocator. Jobs that fit when they arrive are placed immediately;
// jobs that don't — or that arrive behind a waiting job — queue, and every
// departure drains the queue head-first into the freed capacity.
//
// Head-of-line order is deliberate: a small job never bypasses a blocked
// large one. Backfilling would raise utilization a little but starves wide
// jobs under a steady trickle of narrow ones, and makes admission order
// depend on the whole queue state; FIFO is starvation-free and makes the
// admitted set a deterministic function of the event sequence — which the
// churn harness and the warm-start identity tests rely on.
//
// Robustness contract (chaos composition): a departure for a job the queue
// has never heard of — or has already finished — is an idempotent no-op, not
// an abort. Under fault injection the same tenant can die twice (killed by
// the chaos plan, then departed by the trace); the second event must not
// take the control plane down. Malformed requests (zero or impossible GPU
// counts) are rejected on submit for the same reason.
//
// Backpressure: while engaged, nothing is admitted — submits queue, and
// departures release capacity without draining. The controller raises it
// during recovery storms (links flapping, warm state rebuilding) so a burst
// of arrivals defers instead of racing the re-solve; drain_deferred() admits
// the backlog in FIFO order once the storm clears. Bounded retry keeps the
// deferral from becoming a livelock: a head job that fails placement more
// than max_retries times is rejected (reported via take_rejected()) and the
// queue moves on.

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/placement.h"
#include "common/ids.h"

namespace mccs::cluster {

class AdmissionQueue {
 public:
  /// One job granted GPUs (either at submit or when a departure drained it).
  struct Admission {
    JobId job;
    std::vector<GpuId> gpus;  ///< rank order, as GpuAllocator returned it
  };

  AdmissionQueue(const Cluster& cluster, Placement placement)
      : allocator_(cluster),
        placement_(placement),
        total_gpus_(cluster.gpu_count()) {}

  /// Job arrival. Placed immediately (and returned) only when backpressure is
  /// off, the queue is empty, and `gpus` fit; otherwise the job waits its
  /// FIFO turn. Requests for zero GPUs or more GPUs than the cluster has are
  /// rejected outright (counted, reported via take_rejected(), never queued).
  std::optional<std::vector<GpuId>> submit(JobId job, int gpus, Rng& rng);

  /// Job departure — running (GPUs released), still queued (dequeued), or
  /// unknown (idempotent no-op, counted in duplicate_finish_total()).
  /// Returns every waiting job the freed capacity admits, in queue order
  /// (always empty under backpressure).
  std::vector<Admission> finish(JobId job, Rng& rng);

  // --- backpressure ------------------------------------------------------
  /// Engage/release admission backpressure. Releasing does not admit by
  /// itself — call drain_deferred() to admit the backlog.
  void set_backpressure(bool on) { backpressure_ = on; }
  [[nodiscard]] bool backpressure() const { return backpressure_; }
  /// Admit every queued job the current capacity allows, head first
  /// (subject to bounded retry). No-op while backpressure is engaged.
  std::vector<Admission> drain_deferred(Rng& rng);

  /// Bound the per-job placement retries: a queue head that fails placement
  /// more than `n` times is rejected instead of blocking forever. Negative
  /// (the default) means unlimited — classic FIFO head-of-line blocking.
  void set_max_retries(int n) { max_retries_ = n; }

  /// Jobs rejected since the last call (malformed submits + retry-budget
  /// exhaustion), in rejection order. Clears the pending list.
  std::vector<JobId> take_rejected();

  /// The running job's placement, or null when unknown / still queued.
  [[nodiscard]] const std::vector<GpuId>* placement_of(JobId job) const;
  [[nodiscard]] bool is_waiting(JobId job) const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t free_gpus() const { return allocator_.free_count(); }
  /// All-time admissions (immediate + drained), for goodput accounting.
  [[nodiscard]] std::uint64_t admitted_total() const { return admitted_total_; }
  /// All-time rejections (malformed + retry-budget exhausted).
  [[nodiscard]] std::uint64_t rejected_total() const { return rejected_total_; }
  /// Departures for jobs that were neither running nor queued.
  [[nodiscard]] std::uint64_t duplicate_finish_total() const {
    return duplicate_finish_total_;
  }
  /// Submits that queued because backpressure was engaged.
  [[nodiscard]] std::uint64_t deferred_total() const { return deferred_total_; }
  /// Failed head-of-queue placement attempts (retries consumed).
  [[nodiscard]] std::uint64_t retry_total() const { return retry_total_; }

 private:
  struct Waiting {
    JobId job;
    int gpus = 0;
    int retries = 0;  ///< failed placement attempts while at the head
  };

  /// Admit as many queued jobs as the current free capacity allows, head
  /// first. A head that does not fit consumes one retry; past the budget it
  /// is rejected and the next job gets its chance.
  void drain(std::vector<Admission>& out, Rng& rng);
  void reject(JobId job);

  GpuAllocator allocator_;
  Placement placement_;
  std::size_t total_gpus_ = 0;
  std::deque<Waiting> queue_;
  std::unordered_map<std::uint32_t, std::vector<GpuId>> running_;
  bool backpressure_ = false;
  int max_retries_ = -1;  ///< <0: unlimited
  std::vector<JobId> rejected_;
  std::uint64_t admitted_total_ = 0;
  std::uint64_t rejected_total_ = 0;
  std::uint64_t duplicate_finish_total_ = 0;
  std::uint64_t deferred_total_ = 0;
  std::uint64_t retry_total_ = 0;
};

}  // namespace mccs::cluster
