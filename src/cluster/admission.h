#pragma once
// Admission control for cluster-day churn: a strict-FIFO queue in front of
// the GpuAllocator. Jobs that fit when they arrive are placed immediately;
// jobs that don't — or that arrive behind a waiting job — queue, and every
// departure drains the queue head-first into the freed capacity.
//
// Head-of-line order is deliberate: a small job never bypasses a blocked
// large one. Backfilling would raise utilization a little but starves wide
// jobs under a steady trickle of narrow ones, and makes admission order
// depend on the whole queue state; FIFO is starvation-free and makes the
// admitted set a deterministic function of the event sequence — which the
// churn harness and the warm-start identity tests rely on.

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/placement.h"
#include "common/ids.h"

namespace mccs::cluster {

class AdmissionQueue {
 public:
  /// One job granted GPUs (either at submit or when a departure drained it).
  struct Admission {
    JobId job;
    std::vector<GpuId> gpus;  ///< rank order, as GpuAllocator returned it
  };

  AdmissionQueue(const Cluster& cluster, Placement placement)
      : allocator_(cluster), placement_(placement) {}

  /// Job arrival. Placed immediately (and returned) only when the queue is
  /// empty and `gpus` fit; otherwise the job waits its FIFO turn.
  std::optional<std::vector<GpuId>> submit(JobId job, int gpus, Rng& rng);

  /// Job departure — running (GPUs released) or still queued (dequeued).
  /// Returns every waiting job the freed capacity admits, in queue order.
  std::vector<Admission> finish(JobId job, Rng& rng);

  /// The running job's placement, or null when unknown / still queued.
  [[nodiscard]] const std::vector<GpuId>* placement_of(JobId job) const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t free_gpus() const { return allocator_.free_count(); }
  /// All-time admissions (immediate + drained), for goodput accounting.
  [[nodiscard]] std::uint64_t admitted_total() const { return admitted_total_; }

 private:
  struct Waiting {
    JobId job;
    int gpus = 0;
  };

  /// Admit as many queued jobs as the current free capacity allows, head
  /// first, stopping at the first job that does not fit.
  void drain(std::vector<Admission>& out, Rng& rng);

  GpuAllocator allocator_;
  Placement placement_;
  std::deque<Waiting> queue_;
  std::unordered_map<std::uint32_t, std::vector<GpuId>> running_;
  std::uint64_t admitted_total_ = 0;
};

}  // namespace mccs::cluster
