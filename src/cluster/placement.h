#pragma once
// Job placement (§6.5): random placement scatters a job's GPUs anywhere in
// the cluster; compact placement packs a job into as few racks as possible.
// The allocator tracks per-GPU occupancy so jobs queue when the cluster is
// full (50 jobs of 16/32 GPUs oversubscribe the 768-GPU cluster).

#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "common/rng.h"

namespace mccs::cluster {

enum class Placement { kRandom, kCompact };

class GpuAllocator {
 public:
  explicit GpuAllocator(const Cluster& cluster)
      : cluster_(&cluster), in_use_(cluster.gpu_count(), false), free_(cluster.gpu_count()) {}

  [[nodiscard]] std::size_t free_count() const { return free_; }

  /// Allocate `n` GPUs under the given policy; nullopt when fewer than n are
  /// free. The returned list is the job's rank order (rank r = result[r]).
  std::optional<std::vector<GpuId>> allocate(int n, Placement placement, Rng& rng);

  void release(const std::vector<GpuId>& gpus);

 private:
  const Cluster* cluster_;
  std::vector<bool> in_use_;
  std::size_t free_;
};

}  // namespace mccs::cluster
