#pragma once
// Deterministic discrete-event simulation kernel.
//
// Every component of the reproduction (network flows, GPU kernels, MCCS
// engines, controller policies) advances on a single EventLoop. Events
// scheduled for the same virtual time fire in schedule order, which makes
// entire experiments bit-reproducible — a property the tests for the Fig.-4
// reconfiguration protocol rely on to replay message races.
//
// Storage is a generation-tagged slab with a free list: schedule and cancel
// are O(1) with no hash lookups on the hot path (the flow-level simulator
// cancels and reschedules completion events on every rate change, so this is
// the hottest allocation site in the repo). Cancelling leaves a dead entry in
// the heap; dead entries are skipped on pop and the heap is compacted in one
// pass whenever they outnumber the live ones. A slot's generation is bumped
// every time it is released, so a stale Handle can never cancel an unrelated
// event that happens to reuse the slot.
//
// Determinism contract: events with equal time fire in schedule order. The
// heap tie-breaks on a monotone sequence number assigned at schedule time
// (never on slot index, which slab reuse would scramble), so the firing
// order is a pure function of the schedule-call sequence — compaction and
// cancellation cannot perturb it.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace mccs::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle used to cancel a scheduled event. Encodes slab slot and
  /// generation; 0 is the invalid handle.
  struct Handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const { return id != 0; }
  };

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (>= now).
  Handle schedule_at(Time t, Callback cb) {
    MCCS_EXPECTS(t >= now_);
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    MCCS_ASSERT(!s.live);
    s.cb = std::move(cb);
    s.live = true;
    heap_.push_back(Entry{t, ++next_seq_, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return Handle{make_id(slot, s.gen)};
  }

  /// Schedule `cb` after a relative delay `dt` (>= 0).
  Handle schedule_after(Time dt, Callback cb) {
    MCCS_EXPECTS(dt >= 0.0);
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (the common case when a completion event races
  /// a rate change). O(1): the heap entry goes dead in place and is reclaimed
  /// by the skip-on-pop path or by compaction.
  void cancel(Handle h) {
    const std::uint32_t slot = slot_of(h.id);
    if (slot >= slots_.size()) return;  // invalid or never-issued handle
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen_of(h.id)) return;  // fired, cancelled, reused
    release(slot);
    ++dead_in_heap_;
    maybe_compact();
  }

  /// Whether an event handle is still pending.
  [[nodiscard]] bool pending(Handle h) const {
    const std::uint32_t slot = slot_of(h.id);
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].gen == gen_of(h.id);
  }

  /// Number of live (non-cancelled, not-yet-fired) events. Dead heap entries
  /// awaiting reclamation are NOT counted.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Run the next event. Returns false when no events remain.
  bool step() {
    while (!heap_.empty()) {
      const Entry e = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      Slot& s = slots_[e.slot];
      if (!s.live || s.gen != e.gen) {  // cancelled
        MCCS_ASSERT(dead_in_heap_ > 0);
        --dead_in_heap_;
        continue;
      }
      Callback cb = std::move(s.cb);
      release(e.slot);
      MCCS_CHECK(e.time >= now_, "event loop time went backwards");
      now_ = e.time;
      cb();
      return true;
    }
    MCCS_ASSERT(live_ == 0 && dead_in_heap_ == 0);
    return false;
  }

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Time t) {
    MCCS_EXPECTS(t >= now_);
    while (!heap_.empty()) {
      // Skip dead entries at the head so peeking sees a live event; otherwise
      // a cancelled head scheduled before `t` would stall the loop below `t`.
      const Entry& e = heap_.front();
      const Slot& s = slots_[e.slot];
      if (!s.live || s.gen != e.gen) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        MCCS_ASSERT(dead_in_heap_ > 0);
        --dead_in_heap_;
        continue;
      }
      if (e.time > t) break;
      step();
    }
    MCCS_ASSERT(heap_.size() == live_ + dead_in_heap_);
    now_ = t;
  }

  /// Run until `pred()` is true or no events remain. Returns pred().
  bool run_while_pending(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) return false;
    }
    return true;
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // schedule order; breaks time ties deterministically
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Min-heap comparator: `a` fires strictly later than `b`.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;  // bumped on every release; 0 never used
    bool live = false;
  };

  static std::uint64_t make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | (slot + 1ull);
  }
  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffull) - 1;  // 0 -> huge
  }
  static std::uint32_t gen_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Mark a slot dead and return it to the free list. The heap entry (if any)
  /// stays behind and is recognised as dead by its stale generation.
  void release(std::uint32_t slot) {
    Slot& s = slots_[slot];
    MCCS_ASSERT(s.live);
    s.cb = nullptr;
    s.live = false;
    ++s.gen;
    free_.push_back(slot);
    MCCS_ASSERT(live_ > 0);
    --live_;
  }

  /// Drop dead entries once they outnumber live ones. One O(n) pass +
  /// make_heap; ordering is unaffected because (time, seq) totally orders
  /// entries independent of heap layout.
  void maybe_compact() {
    if (dead_in_heap_ <= heap_.size() / 2 || heap_.size() < 64) return;
    std::erase_if(heap_, [this](const Entry& e) {
      const Slot& s = slots_[e.slot];
      return !s.live || s.gen != e.gen;
    });
    MCCS_CHECK(heap_.size() == live_, "heap compaction lost a live event");
    dead_in_heap_ = 0;
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;         // binary min-heap on (time, seq)
  std::vector<Slot> slots_;         // slab; index = Handle slot
  std::vector<std::uint32_t> free_; // released slot indices
  std::size_t live_ = 0;            // live events (== size())
  std::size_t dead_in_heap_ = 0;    // cancelled entries still in the heap
};

}  // namespace mccs::sim
