#pragma once
// Deterministic discrete-event simulation kernel.
//
// Every component of the reproduction (network flows, GPU kernels, MCCS
// engines, controller policies) advances on a single EventLoop. Events
// scheduled for the same virtual time fire in schedule order, which makes
// entire experiments bit-reproducible — a property the tests for the Fig.-4
// reconfiguration protocol rely on to replay message races.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace mccs::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle used to cancel a scheduled event.
  struct Handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const { return id != 0; }
  };

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (>= now).
  Handle schedule_at(Time t, Callback cb) {
    MCCS_EXPECTS(t >= now_);
    const std::uint64_t id = ++next_id_;
    callbacks_.emplace(id, std::move(cb));
    queue_.push(Entry{t, id});
    return Handle{id};
  }

  /// Schedule `cb` after a relative delay `dt` (>= 0).
  Handle schedule_after(Time dt, Callback cb) {
    MCCS_EXPECTS(dt >= 0.0);
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op (the common case when a completion event races
  /// a rate change).
  void cancel(Handle h) { callbacks_.erase(h.id); }

  /// Whether an event handle is still pending.
  [[nodiscard]] bool pending(Handle h) const { return callbacks_.count(h.id) > 0; }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }
  [[nodiscard]] bool empty() const { return callbacks_.empty(); }

  /// Run the next event. Returns false when no events remain.
  bool step() {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      queue_.pop();
      auto it = callbacks_.find(e.id);
      if (it == callbacks_.end()) continue;  // cancelled
      Callback cb = std::move(it->second);
      callbacks_.erase(it);
      MCCS_CHECK(e.time >= now_, "event loop time went backwards");
      now_ = e.time;
      cb();
      return true;
    }
    return false;
  }

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Time t) {
    MCCS_EXPECTS(t >= now_);
    while (!queue_.empty()) {
      // Skip cancelled entries at the head so peeking sees a live event.
      const Entry e = queue_.top();
      if (callbacks_.count(e.id) == 0) {
        queue_.pop();
        continue;
      }
      if (e.time > t) break;
      step();
    }
    now_ = t;
  }

  /// Run until `pred()` is true or no events remain. Returns pred().
  bool run_while_pending(const std::function<bool()>& pred) {
    while (!pred()) {
      if (!step()) return false;
    }
    return true;
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t id;  // schedule order; breaks time ties deterministically
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace mccs::sim
