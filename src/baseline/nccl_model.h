#pragma once
// NCCL baseline model (§6.1 "Baselines").
//
// The paper compares MCCS against NCCL v2.17.1 and against NCCL(OR) — NCCL
// whose inter-host ring the user hand-configured with the output of the
// locality-aware algorithm. What the comparison needs from NCCL is its
// *decision procedure and cost structure*, not its kernels:
//
//   * strategy frozen at communicator init; no runtime reconfiguration;
//   * inter-host ring follows the user-assigned rank order (NCCL cannot see
//     the physical topology from inside a tenant, §2.2);
//   * flows routed by ECMP — NCCL opens parallel connections assuming they
//     spread over distinct paths, but the fabric may hash them together;
//   * an in-process library: no shim/service IPC hops on the datapath, a
//     leaner per-collective launch cost than the MCCS prototype.
//
// We therefore run the same engine machinery with a library-cost
// ServiceConfig and the appropriate strategy provider. This keeps the
// NCCL-vs-MCCS comparison apples-to-apples on the shared substrates: the
// differences measured are exactly the ones the paper attributes (ring
// quality, flow placement, service datapath latency).

#include "cluster/cluster.h"
#include "mccs/config.h"
#include "mccs/fabric.h"
#include "mccs/strategy.h"

namespace mccs::baseline {

/// Timing model of an in-process collective library. The 50-80 us MCCS
/// datapath overhead (§6.2) is absent; kernel launch and per-step transport
/// costs match a tuned library.
inline svc::ServiceConfig nccl_library_config() {
  svc::ServiceConfig c;
  c.shim_to_service_latency = 0.0;   // library call, same address space
  c.service_to_shim_latency = 0.0;
  c.engine_hop_latency = 0.0;
  c.transport_step_overhead = micros(6);  // proxy-thread post/poll
  c.comm_kernel_launch = micros(10);      // kernel launch + fifo handoff
  c.intra_host_hop_latency = micros(4);
  c.network_hop_latency = micros(5);
  c.connection_setup_time = micros(500);
  c.control_hop_latency = micros(20);
  c.bootstrap_latency = millis(2);
  return c;
}

/// Strategy provider for plain NCCL: user rank order, ECMP.
inline std::function<svc::CommStrategy(const svc::CommInfo&)>
nccl_strategy_provider(const cluster::Cluster& cluster) {
  return [&cluster](const svc::CommInfo& info) {
    return svc::nccl_default_strategy(info.gpus, cluster);
  };
}

}  // namespace mccs::baseline
