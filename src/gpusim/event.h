#pragma once
// CUDA-event analogue.
//
// Semantics mirror cudaEvent_t as used by MCCS (§4.1 "Synchronization"):
//  * record(stream) enqueues a marker; when the stream reaches it, the event
//    becomes signalled and carries the virtual timestamp;
//  * a stream can enqueue a wait on an event recorded on a *different*
//    stream — even one owned by a different process, because events are
//    shareable through inter-process handles (unlike streams).
//
// GpuEvent is the shared state; EventHandle is the IPC-handle analogue that
// the MCCS shim and service exchange.

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace mccs::gpu {

class GpuEvent {
 public:
  explicit GpuEvent(GpuId device) : device_(device) {}

  [[nodiscard]] GpuId device() const { return device_; }
  [[nodiscard]] bool signalled() const { return signalled_; }
  [[nodiscard]] Time timestamp() const { return timestamp_; }

  /// Arm the event for a new record (called when a record op is enqueued).
  /// Waits enqueued after this block until the new record completes.
  void arm() {
    signalled_ = false;
    ++generation_;
  }

  /// Mark the event signalled at time `now` and release waiters.
  void signal(Time now) {
    signalled_ = true;
    timestamp_ = now;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) w();
  }

  /// Invoke `fn` once the event signals (immediately if already signalled).
  void on_signal(std::function<void()> fn) {
    if (signalled_) {
      fn();
    } else {
      waiters_.push_back(std::move(fn));
    }
  }

 private:
  GpuId device_;
  bool signalled_ = false;
  Time timestamp_ = 0.0;
  std::uint64_t generation_ = 0;
  std::vector<std::function<void()>> waiters_;
};

/// Inter-process event handle: opening it yields the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::shared_ptr<GpuEvent> ev) : event_(std::move(ev)) {}

  [[nodiscard]] bool valid() const { return event_ != nullptr; }
  [[nodiscard]] std::shared_ptr<GpuEvent> open() const { return event_; }

 private:
  std::shared_ptr<GpuEvent> event_;
};

}  // namespace mccs::gpu
