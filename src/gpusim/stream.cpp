#include "gpusim/stream.h"

#include <algorithm>

namespace mccs::gpu {

void Stream::enqueue_compute(Time duration, std::string name,
                             std::function<void()> on_complete) {
  MCCS_EXPECTS(duration >= 0.0);
  Op op;
  op.kind = OpKind::kCompute;
  op.duration = duration;
  op.name = std::move(name);
  op.callback = std::move(on_complete);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::enqueue_memcpy(Bytes bytes, Bandwidth bandwidth,
                            std::function<void()> on_complete) {
  MCCS_EXPECTS(bandwidth > 0.0);
  Op op;
  op.kind = OpKind::kMemcpy;
  op.duration = static_cast<double>(bytes) / bandwidth;
  op.name = "memcpy";
  op.callback = std::move(on_complete);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::enqueue_callback(std::function<void()> fn) {
  MCCS_EXPECTS(fn != nullptr);
  Op op;
  op.kind = OpKind::kCallback;
  op.name = "callback";
  op.callback = std::move(fn);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::record_event(std::shared_ptr<GpuEvent> event) {
  MCCS_EXPECTS(event != nullptr);
  event->arm();
  Op op;
  op.kind = OpKind::kRecord;
  op.name = "record";
  op.event = std::move(event);
  ops_.push_back(std::move(op));
  pump();
}

void Stream::wait_event(std::shared_ptr<GpuEvent> event) {
  MCCS_EXPECTS(event != nullptr);
  Op op;
  op.kind = OpKind::kWait;
  op.name = "wait";
  op.event = std::move(event);
  ops_.push_back(std::move(op));
  pump();
}

ExternalOpToken Stream::enqueue_external(std::string name,
                                         std::function<void()> on_start) {
  const std::uint64_t token = next_external_token_++;
  Op op;
  op.kind = OpKind::kExternal;
  op.name = std::move(name);
  op.callback = std::move(on_start);
  op.external_token = token;
  ops_.push_back(std::move(op));
  pump();
  return ExternalOpToken{token};
}

void Stream::complete_external(ExternalOpToken token) {
  MCCS_EXPECTS(token.valid());
  if (running_ && running_external_token_ == token.value) {
    running_external_token_ = 0;
    // Defer to the event loop so completion ordering is deterministic and
    // callers never re-enter the stream mid-operation.
    loop_->schedule_after(0.0, [this] { finish_current(); });
  } else {
    early_completions_.push_back(token.value);
  }
}

void Stream::pump() {
  if (running_ || ops_.empty()) return;
  running_ = true;
  Op& op = ops_.front();
  switch (op.kind) {
    case OpKind::kCompute:
    case OpKind::kMemcpy: {
      if (op.kind == OpKind::kCompute) {
        compute_busy_ += op.duration;
      } else {
        memcpy_busy_ += op.duration;
      }
      loop_->schedule_after(op.duration, [this] { finish_current(); });
      break;
    }
    case OpKind::kCallback:
    case OpKind::kRecord: {
      loop_->schedule_after(0.0, [this] { finish_current(); });
      break;
    }
    case OpKind::kWait: {
      op.event->on_signal([this] { finish_current(); });
      break;
    }
    case OpKind::kExternal: {
      const std::uint64_t token = op.external_token;
      if (op.callback) op.callback();  // may complete the op synchronously
      auto early = std::find(early_completions_.begin(), early_completions_.end(),
                             token);
      if (early != early_completions_.end()) {
        early_completions_.erase(early);
        loop_->schedule_after(0.0, [this] { finish_current(); });
      } else {
        running_external_token_ = op.external_token;
      }
      break;
    }
  }
}

void Stream::finish_current() {
  MCCS_CHECK(running_ && !ops_.empty(), "stream completion without running op");
  Op op = std::move(ops_.front());
  ops_.pop_front();
  running_ = false;
  running_external_token_ = 0;

  switch (op.kind) {
    case OpKind::kRecord:
      op.event->signal(loop_->now());
      break;
    case OpKind::kCallback:
      op.callback();
      break;
    case OpKind::kCompute:
    case OpKind::kMemcpy:
      if (op.callback) op.callback();
      break;
    case OpKind::kWait:
    case OpKind::kExternal:
      break;
  }
  pump();
}

}  // namespace mccs::gpu
