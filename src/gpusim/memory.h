#pragma once
// Device memory primitives.
//
// Allocations hold real bytes (host-backed), so collective results are
// numerically checkable end-to-end. DevicePtr is the analogue of a CUDA
// device pointer: an (allocation, offset) pair. MemHandle is the analogue
// of cudaIpcMemHandle_t: the MCCS service allocates on behalf of a tenant
// and exports a handle that the tenant's shim opens (§4.1 "Memory
// Management").

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace mccs::gpu {

/// Analogue of a CUDA device pointer visible to applications.
struct DevicePtr {
  GpuId gpu;
  MemId mem;
  Bytes offset = 0;

  [[nodiscard]] bool valid() const { return gpu.valid() && mem.valid(); }

  /// Pointer arithmetic, like `ptr + n` on a byte pointer.
  [[nodiscard]] DevicePtr at_offset(Bytes delta) const {
    return DevicePtr{gpu, mem, offset + delta};
  }

  friend bool operator==(const DevicePtr& a, const DevicePtr& b) {
    return a.gpu == b.gpu && a.mem == b.mem && a.offset == b.offset;
  }
};

/// Analogue of cudaIpcMemHandle_t: shareable across process boundaries.
struct MemHandle {
  GpuId gpu;
  MemId mem;
  [[nodiscard]] bool valid() const { return gpu.valid() && mem.valid(); }
};

namespace detail {
struct Allocation {
  std::vector<std::byte> data;  ///< empty when the allocation is timing-only
  Bytes size = 0;
  bool materialized = true;
  int refcount = 1;
};
}  // namespace detail

}  // namespace mccs::gpu
