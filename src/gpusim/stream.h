#pragma once
// CUDA-stream analogue: an in-order queue of operations executed by a
// simulated GPU. Independent streams run concurrently (the overlap of
// compute and communication that Fig. 2's breakdown measures comes from
// this). Operations:
//
//   compute kernel  — occupies the stream for a caller-supplied duration;
//   memcpy          — duration = bytes / copy-bandwidth;
//   record event    — signals a GpuEvent when reached;
//   wait event      — blocks the stream until a GpuEvent signals;
//   host callback   — runs a host function when reached (in stream order);
//   external op     — blocks the stream until an external component
//                     completes it (how MCCS communication kernels, driven
//                     by proxy/transport engines, occupy the communicator
//                     stream).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "gpusim/event.h"
#include "sim/event_loop.h"

namespace mccs::gpu {

/// Token identifying an in-flight external op on a stream.
struct ExternalOpToken {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

class Stream {
 public:
  Stream(sim::EventLoop& loop, GpuId device, StreamId id)
      : loop_(&loop), device_(device), id_(id) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] StreamId id() const { return id_; }
  [[nodiscard]] GpuId device() const { return device_; }

  /// True when no operation is queued or running.
  [[nodiscard]] bool idle() const { return ops_.empty() && !running_; }

  /// Enqueue a compute kernel of fixed duration.
  void enqueue_compute(Time duration, std::string name = "kernel",
                       std::function<void()> on_complete = {});

  /// Enqueue a host<->device copy (duration = bytes / bandwidth).
  void enqueue_memcpy(Bytes bytes, Bandwidth bandwidth,
                      std::function<void()> on_complete = {});

  /// Enqueue a host callback that runs when the stream reaches it.
  void enqueue_callback(std::function<void()> fn);

  /// Enqueue an event record; `event->arm()` is called now, and the event
  /// signals when the stream reaches the marker.
  void record_event(std::shared_ptr<GpuEvent> event);

  /// Enqueue a wait: subsequent ops do not start until `event` signals.
  void wait_event(std::shared_ptr<GpuEvent> event);

  /// Enqueue an externally-completed operation (e.g., an MCCS communication
  /// kernel). `on_start` fires when the stream reaches the op; the op — and
  /// the stream — completes only when complete_external() is called.
  ExternalOpToken enqueue_external(std::string name,
                                   std::function<void()> on_start = {});

  /// Complete a previously enqueued external op. Safe to call before the
  /// stream reaches the op (completion is remembered).
  void complete_external(ExternalOpToken token);

  /// Total busy time accumulated by compute ops (used by Fig. 2's breakdown).
  [[nodiscard]] Time compute_busy_time() const { return compute_busy_; }
  [[nodiscard]] Time memcpy_busy_time() const { return memcpy_busy_; }

 private:
  enum class OpKind { kCompute, kMemcpy, kCallback, kRecord, kWait, kExternal };

  struct Op {
    OpKind kind;
    Time duration = 0.0;
    std::string name;
    std::function<void()> callback;          // completion / host callback
    std::shared_ptr<GpuEvent> event;         // record / wait
    std::uint64_t external_token = 0;        // external
  };

  void pump();
  void finish_current();

  sim::EventLoop* loop_;
  GpuId device_;
  StreamId id_;
  std::deque<Op> ops_;
  bool running_ = false;                     // head op in flight
  std::uint64_t next_external_token_ = 1;
  // External ops completed before the stream reached them.
  std::deque<std::uint64_t> early_completions_;
  std::uint64_t running_external_token_ = 0;
  Time compute_busy_ = 0.0;
  Time memcpy_busy_ = 0.0;
};

}  // namespace mccs::gpu
