#pragma once
// Simulated GPU devices and the runtime that owns them.
//
// This is the CUDA substitute required by the reproduction: devices expose
// memory allocation with IPC handles, in-order streams, shareable events and
// timed kernels — the exact primitives §4.1 of the paper builds on. Timing
// is virtual (driven by the shared EventLoop); data is real bytes.

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "gpusim/event.h"
#include "gpusim/memory.h"
#include "gpusim/stream.h"
#include "sim/event_loop.h"

namespace mccs::gpu {

struct DeviceConfig {
  /// Host<->device copy bandwidth (PCIe-class).
  Bandwidth copy_bandwidth = gibytes_per_sec(12.0);
  /// Fixed overhead per kernel launch.
  Time kernel_launch_latency = micros(5);
  /// Bandwidth of intra-host GPU<->GPU transfers through shared host memory
  /// (the paper's prototype uses host-shared-memory channels intra-host).
  Bandwidth intra_host_bandwidth = gibytes_per_sec(20.0);

  /// When false, allocations are timing-only: they track sizes and handles
  /// but back no bytes (large-message benches; tests keep real data).
  bool materialize_memory = true;
};

class Gpu {
 public:
  Gpu(sim::EventLoop& loop, GpuId id, DeviceConfig config)
      : loop_(&loop), id_(id), config_(config) {}

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  [[nodiscard]] GpuId id() const { return id_; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  // --- memory ---------------------------------------------------------------

  /// Allocate `size` bytes of device memory (zero-initialised).
  DevicePtr allocate(Bytes size) {
    MCCS_EXPECTS(size > 0);
    const MemId id{next_mem_id_++};
    auto alloc = std::make_unique<detail::Allocation>();
    alloc->size = size;
    alloc->materialized = config_.materialize_memory;
    if (alloc->materialized) alloc->data.resize(size);
    allocations_.emplace(id.get(), std::move(alloc));
    return DevicePtr{id_, id, 0};
  }

  /// Drop one reference; memory is released when the count reaches zero.
  void release(MemId mem) {
    auto it = allocations_.find(mem.get());
    MCCS_EXPECTS(it != allocations_.end());
    if (--it->second->refcount == 0) allocations_.erase(it);
  }

  /// Export an IPC handle for an allocation.
  [[nodiscard]] MemHandle export_handle(MemId mem) const {
    MCCS_EXPECTS(allocations_.count(mem.get()) > 0);
    return MemHandle{id_, mem};
  }

  /// Open an IPC handle (adds a reference); returns a device pointer to the
  /// base of the allocation.
  DevicePtr open_handle(MemHandle handle) {
    MCCS_EXPECTS(handle.gpu == id_);
    auto it = allocations_.find(handle.mem.get());
    MCCS_EXPECTS(it != allocations_.end());
    ++it->second->refcount;
    return DevicePtr{id_, handle.mem, 0};
  }

  [[nodiscard]] bool mem_valid(MemId mem) const {
    return allocations_.count(mem.get()) > 0;
  }

  [[nodiscard]] Bytes mem_size(MemId mem) const {
    auto it = allocations_.find(mem.get());
    MCCS_EXPECTS(it != allocations_.end());
    return it->second->size;
  }

  /// Raw bytes of an allocation from `ptr.offset` for `len` bytes.
  /// Bounds-checked — the MCCS service relies on this to validate tenant
  /// buffers before operating on them.
  std::span<std::byte> bytes(DevicePtr ptr, Bytes len) {
    MCCS_EXPECTS(ptr.gpu == id_);
    auto it = allocations_.find(ptr.mem.get());
    MCCS_EXPECTS(it != allocations_.end());
    MCCS_EXPECTS(it->second->materialized);
    auto& data = it->second->data;
    MCCS_EXPECTS(ptr.offset + len <= data.size());
    return std::span<std::byte>(data.data() + ptr.offset, len);
  }

  // --- streams & events -------------------------------------------------------

  Stream& create_stream() {
    const StreamId sid{next_stream_id_++};
    auto stream = std::make_unique<Stream>(*loop_, id_, sid);
    Stream& ref = *stream;
    streams_.emplace(sid.get(), std::move(stream));
    return ref;
  }

  Stream& stream(StreamId sid) {
    auto it = streams_.find(sid.get());
    MCCS_EXPECTS(it != streams_.end());
    return *it->second;
  }

  std::shared_ptr<GpuEvent> create_event() {
    return std::make_shared<GpuEvent>(id_);
  }

  [[nodiscard]] std::size_t allocation_count() const { return allocations_.size(); }

 private:
  sim::EventLoop* loop_;
  GpuId id_;
  DeviceConfig config_;
  std::uint32_t next_mem_id_ = 0;
  std::uint32_t next_stream_id_ = 0;
  std::unordered_map<std::uint32_t, std::unique_ptr<detail::Allocation>> allocations_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Stream>> streams_;
};

/// Owns all simulated GPUs in the cluster, indexed by cluster-global GpuId.
class GpuRuntime {
 public:
  GpuRuntime(sim::EventLoop& loop, std::size_t num_gpus,
             DeviceConfig config = {}) {
    gpus_.reserve(num_gpus);
    for (std::size_t i = 0; i < num_gpus; ++i) {
      gpus_.push_back(std::make_unique<Gpu>(loop, GpuId{static_cast<std::uint32_t>(i)}, config));
    }
  }

  [[nodiscard]] std::size_t gpu_count() const { return gpus_.size(); }

  Gpu& gpu(GpuId id) {
    MCCS_EXPECTS(id.get() < gpus_.size());
    return *gpus_[id.get()];
  }

  /// Typed view over device memory (e.g., floats of an AllReduce buffer).
  template <class T>
  std::span<T> typed(DevicePtr ptr, std::size_t count) {
    auto raw = gpu(ptr.gpu).bytes(ptr, count * sizeof(T));
    return std::span<T>(reinterpret_cast<T*>(raw.data()), count);
  }

 private:
  std::vector<std::unique_ptr<Gpu>> gpus_;
};

}  // namespace mccs::gpu
