#pragma once
// Chaos-under-churn harness: the control plane's crash-test rig.
//
// Composes the cluster-day Poisson churn trace (arrivals, departures,
// admission queueing) with a seeded FaultPlan (link down / degrade / flap
// storms, mid-run tenant kills) into ONE time-sorted event stream, and
// replays it through FIFO admission + the warm-started IncrementalAssigner,
// checking after EVERY event that the warm assignment is bitwise identical
// to a from-scratch re-solve. Tests sweep seeds; bench/cluster_day runs the
// same harness at 4k-GPU scale for the goodput-retention and soak numbers.
//
// Invariants checked per seed (ChaosChurnResult::ok() folds them):
//  1. termination — the replay finishes (bounded admission retry keeps a
//     recovery storm from livelocking the queue);
//  2. exactly-once completion — every surviving (non-killed, admitted)
//     tenant is admitted exactly once and completes exactly once; a chaos
//     kill followed by the trace's natural departure is a no-op, not a
//     double release;
//  3. zero orphans after quiesce — once the stream drains, no running or
//     queued job remains, every GPU is free, the assigner holds no items
//     and no residual link demand;
//  4. assignment identity — after every event the incremental assignment
//     digests equal to the full re-solve's (with state poisoning enabled,
//     divergence is allowed only inside the poison window and must heal).
//
// Two control-plane modes share all workload state:
//   reconfig    — faults feed the assigner (failed links steer placement,
//                 changed links dirty their tenants) — MCCS's behaviour;
//   rehash-only — routes react to churn but never to faults (the ECMP-ish
//                 baseline). Goodput retention reconfig / rehash is the
//                 headline robustness number.
//
// Goodput model: a tenant's collective moves at its slowest flow (a ring is
// gated by its bottleneck edge), so per-tenant goodput factor = min over its
// routed flows of the path's surviving-capacity factor (down = 0, degraded =
// fraction, up = 1); single-host tenants run at 1. GPU-time-weighted and
// integrated between events; retention = faulted / fault-free.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "telemetry/metrics.h"
#include "workload/arrivals.h"

namespace mccs::workload {

struct ChaosChurnSpec {
  cluster::SpineLeafSpec fabric;
  ChurnSpec churn;

  // --- chaos shape (FaultPlan::random over the fabric's switch links) ------
  int fault_episodes = 6;
  int flap_bursts = 1;
  int flaps_per_burst = 4;
  double degrade_prob = 0.4;
  Time min_outage = 0.0;  ///< 0 => horizon / 50
  Time max_outage = 0.0;  ///< 0 => horizon / 4
  int max_kills = 2;
  double kill_prob = 0.5;

  // --- control plane -------------------------------------------------------
  bool reconfig = true;  ///< false: rehash-only baseline (no fault steering)
  /// Sampled divergence audit (0 disables); fed to IncrementalAssigner.
  std::uint32_t audit_period = 0;
  /// Inject a warm-state corruption (debug_poison_state) one third of the
  /// way through the stream — the audit must catch and heal it. The poison
  /// needs a live tenant with a multi-path flow; if none exists at the
  /// injection point the harness retries at each following event until one
  /// does (ChaosChurnResult::poisoned reports whether it ever engaged).
  bool poison = false;
  /// Defer admission while any link is hard-down; drain when the storm
  /// clears. Bounded by max_admission_retries.
  bool storm_backpressure = true;
  int max_admission_retries = -1;  ///< <0: unlimited
  std::unordered_set<std::uint32_t> reserved_routes;
  /// Digest the assignment against the full re-solve after every event
  /// (reconfig mode only). Affordable at test scale; the 4k soak turns it
  /// off and checks identity at sampled points + quiesce.
  bool oracle_every_event = true;
  /// When oracle_every_event is off, audit identity every N events (0: only
  /// at quiesce).
  std::size_t oracle_stride = 0;
};

struct ChaosChurnResult {
  // population
  std::size_t events = 0;       ///< churn + fault events replayed
  std::size_t jobs = 0;         ///< jobs in the trace
  std::uint64_t admitted = 0;   ///< admissions (immediate + drained)
  std::size_t completed = 0;    ///< departures of live tenants (incl. kills)
  std::size_t killed = 0;       ///< chaos kills that hit a live tenant
  std::uint64_t rejected = 0;   ///< admission rejections (retry budget)
  std::uint64_t deferred = 0;   ///< submits queued under backpressure
  std::uint64_t duplicate_departures = 0;
  std::size_t queued_peak = 0;

  // audit / fallback
  std::uint64_t audits = 0;
  std::uint64_t audit_mismatches = 0;
  std::uint64_t fallbacks = 0;

  // invariants
  bool terminated = false;
  bool exactly_once = true;
  bool quiesced = false;
  bool identity = true;      ///< no digest mismatch outside a poison window
  bool healed = true;        ///< poison window closed before the end
  /// The poison actually corrupted a victim (it needs a live tenant with a
  /// multi-path flow; healed is vacuous when this is false).
  bool poisoned = false;
  std::size_t divergent_events = 0;  ///< events spent inside poison windows
  double residual_demand = 0.0;      ///< assigner link demand after quiesce

  // goodput
  double goodput_retention = 1.0;
  double faulted_gpu_time = 0.0;
  double fault_free_gpu_time = 0.0;
  double mean_closure = 0.0;

  [[nodiscard]] bool ok() const {
    return terminated && exactly_once && quiesced && identity && healed;
  }
};

/// Replay one seeded chaos-under-churn run. Deterministic: same (spec, seed)
/// => same result, at any MCCS_THREADS. `metrics` (optional) receives the
/// assigner's audit counters; per-tenant goodput gauges are NOT kept there,
/// so registry size stays O(1) in the tenant count.
ChaosChurnResult run_chaos_churn(const ChaosChurnSpec& spec, std::uint64_t seed,
                                 telemetry::MetricsRegistry* metrics = nullptr);

/// The fabric's switch-to-switch links (leaf<->spine) — the chaos target
/// set. NIC uplinks are excluded: they have no path diversity, so steering
/// cannot help and every mode degrades identically.
std::vector<LinkId> fabric_links(const cluster::Cluster& cluster);

}  // namespace mccs::workload
