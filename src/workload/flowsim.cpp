#include "workload/flowsim.h"

#include <algorithm>

#include "policy/ring_config.h"

namespace mccs::workload {

FlowSimJob::FlowSimJob(sim::EventLoop& loop, net::Network& network,
                       const cluster::Cluster& cluster, SimJobSpec spec, Rng& rng)
    : loop_(&loop), network_(&network), cluster_(&cluster), spec_(std::move(spec)),
      ecmp_salt_(rng.engine()()) {
  MCCS_EXPECTS(spec_.gpus.size() >= 2);

  // Base rank order per the ring choice.
  std::vector<int> base(spec_.gpus.size());
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<int>(i);
  switch (spec_.ring) {
    case RingChoice::kRandomGpuOrder:
      rng.shuffle(base);
      break;
    case RingChoice::kRandomHostOrder: {
      // Group ranks by host, then shuffle the host groups.
      std::unordered_map<std::uint32_t, std::vector<int>> by_host;
      std::vector<std::uint32_t> hosts;
      for (int r : base) {
        const std::uint32_t h =
            cluster_->host_of_gpu(spec_.gpus[static_cast<std::size_t>(r)]).get();
        if (by_host.find(h) == by_host.end()) hosts.push_back(h);
        by_host[h].push_back(r);
      }
      rng.shuffle(hosts);
      base.clear();
      for (std::uint32_t h : hosts) {
        base.insert(base.end(), by_host[h].begin(), by_host[h].end());
      }
      break;
    }
    case RingChoice::kOptimal:
      base = policy::locality_aware_order(spec_.gpus, *cluster_);
      break;
  }

  // One ring per NIC on the busiest host of the job.
  int max_local = 1;
  std::unordered_map<std::uint32_t, int> per_host;
  for (GpuId g : spec_.gpus) {
    max_local = std::max(max_local, ++per_host[cluster_->host_of_gpu(g).get()]);
  }
  const int nics = static_cast<int>(
      cluster_->host(cluster_->host_of_gpu(spec_.gpus.front())).nic_nodes.size());
  const int channels = std::min(max_local, nics);
  strategy_.channel_orders =
      svc::make_channel_orders(base, spec_.gpus, *cluster_, channels);
}

void FlowSimJob::start(std::function<void(JobId, Time)> on_done) {
  on_done_ = std::move(on_done);
  start_iteration();
}

void FlowSimJob::start_iteration() {
  if (iteration_ >= spec_.iterations) {
    done_ = true;
    if (on_done_) on_done_(spec_.id, loop_->now());
    return;
  }
  ++iteration_;
  loop_->schedule_after(spec_.compute_gap, [this] {
    iter_start_ = loop_->now();
    const int n = static_cast<int>(spec_.gpus.size());
    const int channels = strategy_.num_channels();
    const double edge_volume =
        coll::allreduce_edge_volume(n, spec_.model_bytes) / channels;

    flows_outstanding_ = 0;
    for (int c = 0; c < channels; ++c) {
      const coll::RingOrder& order =
          strategy_.channel_orders[static_cast<std::size_t>(c)];
      for (int p = 0; p < n; ++p) {
        const int src_rank = order.rank_at(p);
        const int dst_rank = order.rank_at(p + 1);
        const GpuId a = spec_.gpus[static_cast<std::size_t>(src_rank)];
        const GpuId b = spec_.gpus[static_cast<std::size_t>(dst_rank)];
        if (cluster_->same_host(a, b)) continue;

        net::FlowSpec flow;
        flow.src = cluster_->nic_node_of_gpu(a);
        flow.dst = cluster_->nic_node_of_gpu(b);
        flow.size = static_cast<Bytes>(edge_volume);
        flow.job = spec_.id;
        auto rit = routes_.find(svc::CommStrategy::route_key(c, src_rank, dst_rank));
        if (rit != routes_.end()) {
          flow.route = rit->second;
        } else {
          flow.ecmp_key = net::Routing::ecmp_hash(
              ecmp_salt_ ^ (static_cast<std::uint64_t>(c) << 32) ^
              static_cast<std::uint64_t>(p));
        }
        flow.on_complete = [this](FlowId, Time) { on_flow_done(); };
        network_->start_flow(std::move(flow));
        ++flows_outstanding_;
      }
    }
    if (flows_outstanding_ == 0) {
      // Single-host job: intra-host AllReduce is not network bound; model a
      // fixed fast local collective.
      loop_->schedule_after(millis(2), [this] {
        allreduce_times_.push_back(loop_->now() - iter_start_);
        start_iteration();
      });
    }
  });
}

void FlowSimJob::on_flow_done() {
  if (--flows_outstanding_ == 0) {
    allreduce_times_.push_back(loop_->now() - iter_start_);
    start_iteration();
  }
}

Time FlowSimJob::avg_allreduce_time() const {
  MCCS_EXPECTS(!allreduce_times_.empty());
  double sum = 0.0;
  for (Time t : allreduce_times_) sum += t;
  return sum / static_cast<double>(allreduce_times_.size());
}

}  // namespace mccs::workload
