#include "workload/arrivals.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace mccs::workload {

std::vector<JobSpec> poisson_jobs(const ChurnSpec& spec, std::uint64_t seed) {
  MCCS_EXPECTS(spec.horizon > 0.0);
  MCCS_EXPECTS(spec.mean_interarrival > 0.0 && spec.mean_duration > 0.0);
  MCCS_EXPECTS(!spec.sizes.empty() &&
               spec.sizes.size() == spec.size_weights.size());
  const double total_weight = std::accumulate(spec.size_weights.begin(),
                                              spec.size_weights.end(), 0.0);
  MCCS_EXPECTS(total_weight > 0.0);

  Rng rng(seed);
  std::vector<JobSpec> jobs;
  std::uint32_t next_id = 0;
  Time t = 0.0;
  for (;;) {
    t += rng.exponential(spec.mean_interarrival);
    if (t >= spec.horizon) break;
    JobSpec j;
    j.job = JobId{next_id++};
    j.arrive = t;
    j.depart = t + rng.exponential(spec.mean_duration);
    // Weighted size draw by cumulative mass (one uniform per job).
    double u = rng.uniform() * total_weight;
    std::size_t pick = 0;
    while (pick + 1 < spec.sizes.size() && u >= spec.size_weights[pick]) {
      u -= spec.size_weights[pick];
      ++pick;
    }
    j.gpus = spec.sizes[pick];
    j.high_priority = rng.uniform() < spec.high_priority_fraction;
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<ChurnEvent> churn_events(const std::vector<JobSpec>& jobs) {
  std::vector<ChurnEvent> events;
  events.reserve(jobs.size() * 2);
  for (const JobSpec& j : jobs) {
    events.push_back(ChurnEvent{j.arrive, j.job, true});
    events.push_back(ChurnEvent{j.depart, j.job, false});
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.arrival != b.arrival) return !a.arrival;  // departs first
              return a.job < b.job;
            });
  return events;
}

}  // namespace mccs::workload
