#pragma once
// Training workload models.
//
// The paper profiles real frameworks (PyTorch + DeepSpeed + Megatron-LM,
// §6.1) to collect traces of a VGG-19 data-parallel job and a 2.7B-parameter
// GPT tensor-parallel finetune, and uses a ResNet-50 DDP workload (after
// NetHint) in the large-scale simulation. We cannot run those frameworks
// here, so each model's iteration structure is synthesised from published
// model arithmetic; the parameters below are documented so the substitution
// is auditable (DESIGN.md, substitution table).
//
//  * VGG-19: 143.7 M parameters -> ~574 MB of fp32 gradients, bucketed into
//    25 MB DDP buckets that AllReduce progressively during the backward
//    pass (overlapped communication).
//  * GPT-2.7B tensor parallel: 32 layers, hidden 2560; each layer's forward
//    and backward performs an activation AllReduce (Megatron: 2 per layer
//    per pass); finetuning batch keeps activations ~20 MB per collective.
//    Communication is on the critical path (no overlap) — exactly why the
//    paper uses it as a network-sensitive workload.
//  * ResNet-50: 25.6 M parameters; the paper rounds the DDP transfer to a
//    100 MB model for the flow-level simulation (§6.5).
//
// Compute durations are representative single-GPU step times; absolute
// values only scale the communication/computation ratio, which is the
// property the QoS experiments depend on.

#include <string>
#include <vector>

#include "common/units.h"

namespace mccs::workload {

enum class Parallelism {
  kDataParallel,    ///< gradient AllReduce, overlapped with backward
  kTensorParallel,  ///< per-layer activation AllReduce on the critical path
  kPipelineParallel,///< stages exchange activations via P2P (GPipe-style)
  kExpertParallel,  ///< MoE: AllToAll dispatch/combine around expert compute
};

struct TrainingModelSpec {
  std::string name;
  Parallelism parallelism = Parallelism::kDataParallel;

  // Per-iteration compute structure.
  Time forward_compute = 0.0;   ///< total forward time (split across layers)
  Time backward_compute = 0.0;  ///< total backward time
  Time optimizer_compute = 0.0;
  int layers = 1;  ///< granularity of compute slices / TP collectives

  // Host<->device traffic (input pipeline) and exposed idle per iteration.
  Bytes h2d_bytes_per_iter = 0;
  Time input_stall = 0.0;

  // Data parallel: gradient buckets AllReduced during backward.
  std::vector<Bytes> grad_buckets;

  // Tensor parallel: activation AllReduce sizes per layer (fwd and bwd).
  Bytes tp_activation_bytes = 0;
  int tp_collectives_per_layer = 2;  ///< Megatron: 2 per pass

  // Pipeline parallel: microbatch activations exchanged between stages.
  int pp_microbatches = 4;
  Bytes pp_activation_bytes = 0;  ///< per microbatch, per stage boundary

  // Expert parallel: token payload of each AllToAll (per peer), 2 AllToAlls
  // (dispatch + combine) per MoE layer per pass.
  Bytes moe_tokens_per_peer_bytes = 0;

  [[nodiscard]] Bytes total_comm_bytes_per_iter() const {
    switch (parallelism) {
      case Parallelism::kDataParallel: {
        Bytes total = 0;
        for (Bytes b : grad_buckets) total += b;
        return total;
      }
      case Parallelism::kTensorParallel:
        return static_cast<Bytes>(layers) * 2 *
               static_cast<Bytes>(tp_collectives_per_layer) * tp_activation_bytes;
      case Parallelism::kPipelineParallel:
        // fwd + bwd activation per microbatch per boundary (boundaries depend
        // on the rank count; report the per-boundary volume).
        return static_cast<Bytes>(pp_microbatches) * 2 * pp_activation_bytes;
      case Parallelism::kExpertParallel:
        return static_cast<Bytes>(layers) * 2 * 2 * moe_tokens_per_peer_bytes;
    }
    return 0;
  }
};

/// Workload A (§6.4): VGG-19 trained from scratch, data parallel.
TrainingModelSpec vgg19_data_parallel();

/// Workloads B and C (§6.4): GPT-2.7B finetune, tensor parallel.
TrainingModelSpec gpt27b_tensor_parallel();

/// §6.5 simulation workload: ResNet-50 DDP, 100 MB model.
TrainingModelSpec resnet50_ddp();

/// Extension workload: GPT pipeline-parallel training — stages exchange
/// activations over the service's P2P path.
TrainingModelSpec gpt_pipeline_parallel();

/// Extension workload: Mixture-of-Experts training — AllToAll dispatch and
/// combine around expert compute (the dominant traffic of MoE models).
TrainingModelSpec moe_expert_parallel();

/// Fig. 2: four representative production model profiles (groups A-D) with
/// distinct compute/communication/memcpy/idle balances.
std::vector<TrainingModelSpec> production_model_groups();

}  // namespace mccs::workload
