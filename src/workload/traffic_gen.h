#pragma once
// Traffic generator (§6.1): replays a training model's iteration structure
// through the MCCS shim — the C++ equivalent of the paper's Rust traffic
// generator driven by profiled traces.
//
// Data-parallel jobs overlap communication with the backward pass the way
// DDP does: backward compute slices run on the compute stream, each gradient
// bucket's AllReduce is issued on a separate app stream ordered after its
// slice via GPU events, and the optimizer waits for all buckets. Tensor-
// parallel jobs alternate per-layer compute and activation AllReduces on one
// stream (communication on the critical path).

#include <functional>
#include <memory>
#include <vector>

#include "mccs/fabric.h"
#include "policy/controller.h"
#include "workload/models.h"

namespace mccs::workload {

/// Per-iteration time breakdown, Fig. 2 style.
struct BreakdownReport {
  double compute_frac = 0.0;
  double memcpy_frac = 0.0;
  double comm_frac = 0.0;  ///< exposed (non-overlapped) communication
  double idle_frac = 0.0;
};

class TrainingJob {
 public:
  struct Options {
    int iterations = 10;
  };

  TrainingJob(svc::Fabric& fabric, AppId app, std::vector<GpuId> gpus,
              TrainingModelSpec model, Options options);

  TrainingJob(const TrainingJob&) = delete;
  TrainingJob& operator=(const TrainingJob&) = delete;

  /// Create the communicator and start iterating. `on_complete` fires when
  /// every rank has finished all iterations. Asynchronous: the caller runs
  /// the fabric's event loop.
  void start(std::function<void(Time)> on_complete = {});

  [[nodiscard]] bool finished() const { return finished_ranks_ == nranks(); }
  [[nodiscard]] Time start_time() const { return start_time_; }
  [[nodiscard]] Time completion_time() const { return completion_time_; }
  /// Rank-0 iteration end timestamps.
  [[nodiscard]] const std::vector<Time>& iteration_end_times() const {
    return iteration_ends_;
  }
  [[nodiscard]] const TrainingModelSpec& model() const { return model_; }
  [[nodiscard]] AppId app() const { return app_; }
  [[nodiscard]] CommId comm() const { return comm_; }

  /// Iterations completed (rank 0) in the half-open window [a, b).
  [[nodiscard]] int iterations_in_window(Time a, Time b) const;

  /// Fig.-2-style fractions over the whole run (rank 0's streams).
  [[nodiscard]] BreakdownReport breakdown() const;

 private:
  struct Rank {
    svc::Shim* shim = nullptr;
    gpu::Stream* compute = nullptr;
    gpu::Stream* comm = nullptr;  ///< app-side stream collectives ride on
    std::vector<gpu::DevicePtr> buffers;
    std::vector<gpu::DevicePtr> aux_buffers;  ///< second buffer set (PP in / EP recv)
    int iteration = 0;
  };

  [[nodiscard]] int nranks() const { return static_cast<int>(gpus_.size()); }
  void begin_iteration(int rank);
  void enqueue_iteration(int rank);
  void enqueue_pipeline_iteration(int rank);
  void enqueue_expert_iteration(int rank);
  void on_iteration_done(int rank);

  svc::Fabric* fabric_;
  AppId app_;
  std::vector<GpuId> gpus_;
  TrainingModelSpec model_;
  Options options_;

  CommId comm_;
  std::vector<Rank> ranks_;
  int ready_ranks_ = 0;
  int finished_ranks_ = 0;
  Time start_time_ = 0.0;
  Time completion_time_ = 0.0;
  std::vector<Time> iteration_ends_;
  std::function<void(Time)> on_complete_;
};

/// Administrator loop for traffic-scheduling QoS: profile `prio_job`'s
/// iteration period from its recent iteration timestamps and confine
/// `others` to the complement of its busy intervals, re-anchoring every
/// `interval` (the prioritised job's phase drifts as TS speeds it up).
/// Stops automatically when the prioritised job finishes (and lifts the
/// schedule). Returns immediately; runs on the fabric's event loop.
void run_periodic_traffic_scheduling(svc::Fabric& fabric,
                                     policy::Controller& controller,
                                     const TrainingJob& prio_job,
                                     std::vector<AppId> others,
                                     Time interval = seconds(0.25),
                                     Time guard = millis(0.5));

}  // namespace mccs::workload
