#include "workload/traffic_gen.h"

#include <algorithm>

namespace mccs::workload {

using coll::DataType;
using coll::ReduceOp;

TrainingJob::TrainingJob(svc::Fabric& fabric, AppId app, std::vector<GpuId> gpus,
                         TrainingModelSpec model, Options options)
    : fabric_(&fabric), app_(app), gpus_(std::move(gpus)),
      model_(std::move(model)), options_(options) {
  MCCS_EXPECTS(!gpus_.empty());
  MCCS_EXPECTS(options_.iterations > 0);
}

void TrainingJob::start(std::function<void(Time)> on_complete) {
  on_complete_ = std::move(on_complete);
  start_time_ = fabric_->loop().now();

  ranks_.resize(gpus_.size());
  const svc::UniqueId uid = fabric_->new_unique_id();
  for (int r = 0; r < nranks(); ++r) {
    Rank& rank = ranks_[static_cast<std::size_t>(r)];
    rank.shim = &fabric_->connect(app_, gpus_[static_cast<std::size_t>(r)]);
    rank.compute = &rank.shim->create_app_stream();
    rank.comm = &rank.shim->create_app_stream();

    // Allocate communication buffers.
    switch (model_.parallelism) {
      case Parallelism::kDataParallel:
        for (Bytes b : model_.grad_buckets) {
          rank.buffers.push_back(rank.shim->alloc(b));  // in-place AllReduce
        }
        break;
      case Parallelism::kTensorParallel:
        rank.buffers.push_back(rank.shim->alloc(model_.tp_activation_bytes));
        break;
      case Parallelism::kPipelineParallel:
        // Per-microbatch out/in activation buffers: a sent activation must
        // stay stable while in flight, so microbatches do not share.
        for (int m = 0; m < model_.pp_microbatches; ++m) {
          rank.buffers.push_back(rank.shim->alloc(model_.pp_activation_bytes));
          rank.aux_buffers.push_back(rank.shim->alloc(model_.pp_activation_bytes));
        }
        break;
      case Parallelism::kExpertParallel: {
        const Bytes total =
            model_.moe_tokens_per_peer_bytes * static_cast<Bytes>(nranks());
        rank.buffers.push_back(rank.shim->alloc(total));      // dispatch out
        rank.aux_buffers.push_back(rank.shim->alloc(total));  // dispatch in
        break;
      }
    }

    rank.shim->comm_init_rank(uid, nranks(), r, [this, r](CommId id) {
      comm_ = id;
      if (++ready_ranks_ == nranks()) {
        for (int rr = 0; rr < nranks(); ++rr) begin_iteration(rr);
      }
      (void)r;
    });
  }
}

void TrainingJob::begin_iteration(int rank) {
  // The input-pipeline stall shows up as pure idle time before the
  // iteration's work is enqueued.
  if (model_.input_stall > 0.0) {
    fabric_->loop().schedule_after(model_.input_stall,
                                   [this, rank] { enqueue_iteration(rank); });
  } else {
    enqueue_iteration(rank);
  }
}

void TrainingJob::enqueue_iteration(int rank) {
  Rank& rk = ranks_[static_cast<std::size_t>(rank)];
  gpu::Gpu& dev = fabric_->gpus().gpu(gpus_[static_cast<std::size_t>(rank)]);
  const Bandwidth copy_bw = dev.config().copy_bandwidth;

  if (model_.h2d_bytes_per_iter > 0) {
    rk.compute->enqueue_memcpy(model_.h2d_bytes_per_iter, copy_bw);
  }

  if (model_.parallelism == Parallelism::kPipelineParallel) {
    enqueue_pipeline_iteration(rank);
    return;
  }
  if (model_.parallelism == Parallelism::kExpertParallel) {
    enqueue_expert_iteration(rank);
    return;
  }
  if (model_.parallelism == Parallelism::kDataParallel) {
    // Forward pass: one compute burst, no communication.
    rk.compute->enqueue_compute(model_.forward_compute, "fwd");

    // Backward pass: per-bucket slices; each bucket's AllReduce is ordered
    // after its slice via an event and issued on the dedicated comm stream
    // so it overlaps subsequent backward compute (DDP-style).
    const std::size_t buckets = model_.grad_buckets.size();
    const Time slice = model_.backward_compute / static_cast<double>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      rk.compute->enqueue_compute(slice, "bwd");
      auto ready = dev.create_event();
      rk.compute->record_event(ready);
      rk.comm->wait_event(ready);
      const std::size_t count = model_.grad_buckets[b] / sizeof(float);
      rk.shim->all_reduce(comm_, rk.buffers[b], rk.buffers[b], count,
                          DataType::kFloat32, ReduceOp::kSum, *rk.comm);
    }

    // Optimizer waits for every bucket's AllReduce (the comm stream reaches
    // this record only after all done-events).
    auto all_reduced = dev.create_event();
    rk.comm->record_event(all_reduced);
    rk.compute->wait_event(all_reduced);
    rk.compute->enqueue_compute(model_.optimizer_compute, "opt",
                                [this, rank] { on_iteration_done(rank); });
  } else {
    // Tensor parallel: per-layer compute and activation AllReduces strictly
    // alternate on one stream (communication on the critical path).
    const Time fwd_slice = model_.forward_compute / model_.layers;
    const Time bwd_slice = model_.backward_compute / model_.layers;
    const std::size_t count = model_.tp_activation_bytes / sizeof(float);
    for (int pass = 0; pass < 2; ++pass) {
      const Time slice = pass == 0 ? fwd_slice : bwd_slice;
      for (int l = 0; l < model_.layers; ++l) {
        rk.compute->enqueue_compute(slice, pass == 0 ? "fwd" : "bwd");
        for (int c = 0; c < model_.tp_collectives_per_layer; ++c) {
          rk.shim->all_reduce(comm_, rk.buffers[0], rk.buffers[0], count,
                              DataType::kFloat32, ReduceOp::kSum, *rk.compute);
        }
      }
    }
    rk.compute->enqueue_compute(model_.optimizer_compute, "opt",
                                [this, rank] { on_iteration_done(rank); });
  }
}

void TrainingJob::enqueue_pipeline_iteration(int rank) {
  // GPipe-style schedule: all microbatches forward, then all backward.
  // Activations flow between neighbouring stages over the service's P2P
  // path; sends ride a separate stream so the next microbatch's compute is
  // not serialized behind the transfer.
  Rank& rk = ranks_[static_cast<std::size_t>(rank)];
  gpu::Gpu& dev = fabric_->gpus().gpu(gpus_[static_cast<std::size_t>(rank)]);
  const int stage = rank;
  const int stages = nranks();
  const int mb = model_.pp_microbatches;
  const Time f_slice = model_.forward_compute / mb;
  const Time b_slice = model_.backward_compute / mb;
  const std::size_t count = model_.pp_activation_bytes / sizeof(float);

  for (int pass = 0; pass < 2; ++pass) {
    const bool fwd = pass == 0;
    const int from = fwd ? stage - 1 : stage + 1;
    const int to = fwd ? stage + 1 : stage - 1;
    for (int m = 0; m < mb; ++m) {
      auto& in = rk.aux_buffers[static_cast<std::size_t>(m)];
      auto& out = rk.buffers[static_cast<std::size_t>(m)];
      if (from >= 0 && from < stages) {
        rk.shim->recv(comm_, from, in, count, DataType::kFloat32, *rk.compute);
      }
      rk.compute->enqueue_compute(fwd ? f_slice : b_slice, fwd ? "fwd" : "bwd");
      if (to >= 0 && to < stages) {
        auto ready = dev.create_event();
        rk.compute->record_event(ready);
        rk.comm->wait_event(ready);
        rk.shim->send(comm_, to, out, count, DataType::kFloat32, *rk.comm);
      }
    }
  }

  // Optimizer runs once every in-flight send drained (the comm stream
  // reaches this record only after the last send's done-event).
  auto sends_done = dev.create_event();
  rk.comm->record_event(sends_done);
  rk.compute->wait_event(sends_done);
  rk.compute->enqueue_compute(model_.optimizer_compute, "opt",
                              [this, rank] { on_iteration_done(rank); });
}

void TrainingJob::enqueue_expert_iteration(int rank) {
  // MoE: per layer and pass, an AllToAll dispatches tokens to experts, the
  // expert computes, and a second AllToAll combines the results. Strictly
  // serial on the compute stream (the routing output feeds the expert).
  Rank& rk = ranks_[static_cast<std::size_t>(rank)];
  const std::size_t count = model_.moe_tokens_per_peer_bytes / sizeof(float);
  const Time f_slice = model_.forward_compute / (2 * model_.layers);
  const Time b_slice = model_.backward_compute / (2 * model_.layers);
  auto& out = rk.buffers[0];
  auto& in = rk.aux_buffers[0];

  for (int pass = 0; pass < 2; ++pass) {
    const Time slice = pass == 0 ? f_slice : b_slice;
    for (int l = 0; l < model_.layers; ++l) {
      rk.compute->enqueue_compute(slice, "router");
      rk.shim->all_to_all(comm_, out, in, count, DataType::kFloat32, *rk.compute);
      rk.compute->enqueue_compute(slice, "expert");
      rk.shim->all_to_all(comm_, in, out, count, DataType::kFloat32, *rk.compute);
    }
  }
  rk.compute->enqueue_compute(model_.optimizer_compute, "opt",
                              [this, rank] { on_iteration_done(rank); });
}

void TrainingJob::on_iteration_done(int rank) {
  Rank& rk = ranks_[static_cast<std::size_t>(rank)];
  ++rk.iteration;
  if (rank == 0) iteration_ends_.push_back(fabric_->loop().now());

  if (rk.iteration < options_.iterations) {
    begin_iteration(rank);
    return;
  }
  if (++finished_ranks_ == nranks()) {
    completion_time_ = fabric_->loop().now();
    if (on_complete_) on_complete_(completion_time_);
  }
}

int TrainingJob::iterations_in_window(Time a, Time b) const {
  int count = 0;
  for (Time t : iteration_ends_) {
    if (t >= a && t < b) ++count;
  }
  return count;
}

BreakdownReport TrainingJob::breakdown() const {
  MCCS_EXPECTS(finished());
  const Time total = completion_time_ - start_time_;
  const Rank& r0 = ranks_.front();
  const Time compute = r0.compute->compute_busy_time();
  const Time memcpy_time = r0.compute->memcpy_busy_time();
  const Time idle = model_.input_stall * options_.iterations;
  const Time comm = std::max(0.0, total - compute - memcpy_time - idle);
  BreakdownReport rep;
  rep.compute_frac = compute / total;
  rep.memcpy_frac = memcpy_time / total;
  rep.idle_frac = idle / total;
  rep.comm_frac = comm / total;
  return rep;
}

void run_periodic_traffic_scheduling(svc::Fabric& fabric,
                                     policy::Controller& controller,
                                     const TrainingJob& prio_job,
                                     std::vector<AppId> others, Time interval,
                                     Time guard) {
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&fabric, &controller, &prio_job, others, interval, guard, tick] {
    if (prio_job.finished()) {
      controller.clear_time_schedule(others);
      return;
    }
    const auto& ends = prio_job.iteration_end_times();
    if (ends.size() >= 3) {
      const std::size_t k = std::min<std::size_t>(ends.size() - 1, 3);
      const Time period =
          (ends.back() - ends[ends.size() - 1 - k]) / static_cast<double>(k);
      controller.apply_profiled_schedule(prio_job.app(), others, period,
                                         ends.back(), guard);
    }
    fabric.loop().schedule_after(interval, *tick);
  };
  fabric.loop().schedule_after(0.0, *tick);
}

}  // namespace mccs::workload
