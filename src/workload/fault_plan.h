#pragma once
// Scripted fault injection: a time-ordered list of link failures,
// degradations, restorations, and tenant kills that tests, workloads, and
// benchmarks schedule against a Fabric before (or while) running it. Plans
// are plain data — building one has no side effects; schedule() registers
// one event-loop callback per fault, so injection composes with any
// workload without touching its code.
//
// random() builds a seeded chaos script with a termination guarantee: every
// link-down / degrade is paired with a restore inside the horizon, so a
// collective stalled on a dead link always regains a working path (NIC
// uplinks in the testbed have no path diversity — without the restore a
// run could legitimately never finish).

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace mccs::svc {
class Fabric;
}

namespace mccs::workload {

struct FaultEvent {
  enum class Kind { kLinkDown, kLinkDegrade, kLinkRestore, kKillApp };
  Time at = 0.0;
  Kind kind = Kind::kLinkDown;
  LinkId link{};          ///< link events only
  double fraction = 1.0;  ///< kLinkDegrade: surviving capacity fraction (0,1]
  AppId app{};            ///< kKillApp only
};

class FaultPlan {
 public:
  /// Fluent builders; events may be added in any order.
  FaultPlan& link_down(Time at, LinkId link);
  FaultPlan& link_degrade(Time at, LinkId link, double fraction);
  FaultPlan& link_restore(Time at, LinkId link);
  FaultPlan& kill_app(Time at, AppId app);

  struct RandomOptions {
    Time horizon = millis(100);  ///< all events land strictly inside [0, horizon)
    std::size_t link_count = 0;  ///< candidate links: ids in [0, link_count)
    /// Explicit candidate links (overrides link_count sampling when
    /// non-empty). Lets a churn harness target links its tenants actually
    /// cross — by the time an event fires the tenant may already have
    /// departed, which the consumer must treat as a no-op, never an abort.
    std::vector<LinkId> targets;
    int episodes = 3;            ///< link fault episodes (down/degrade + restore)
    double degrade_prob = 0.5;   ///< degrade (vs hard down) per episode
    Time min_outage = micros(500);
    Time max_outage = millis(5);
    /// Flap bursts: rapid down/up trains on one link (change-log stress).
    /// Each burst contributes `flaps_per_burst` short outages back to back.
    int flap_bursts = 0;
    int flaps_per_burst = 4;
    std::vector<AppId> killable;  ///< tenants eligible for a kill
    double kill_prob = 0.25;      ///< chance the plan kills one of them
    int max_kills = 1;            ///< independent kill draws
  };

  /// Deterministic seeded chaos plan (same seed + options => same plan).
  ///
  /// Per-link episode windows never interleave: when two drawn episodes
  /// overlap on the same link they are merged (earliest fault, latest
  /// restore, down beats degrade). Without the merge, an inner episode's
  /// restore would resurrect the link mid-outage of the outer one — the
  /// outer restore then fires against an already-up link, and under churn
  /// composition a consumer tracking outage state sees a restore with no
  /// matching fault. Merged plans keep the invariant: each link's events
  /// strictly alternate fault, restore, fault, restore, ...
  static FaultPlan random(std::uint64_t seed, const RandomOptions& options);

  /// Register every event on the fabric's loop (at max(at, now)). Call once;
  /// the plan object may be destroyed afterwards (events are copied).
  void schedule(svc::Fabric& fabric) const;

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mccs::workload
