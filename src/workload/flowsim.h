#pragma once
// Flow-level DDP job simulator — the §6.5 methodology.
//
// The paper's large-scale results do not run the MCCS prototype; they come
// from a flow-level simulator with per-flow fairness. This module is that
// simulator: each job iterates { compute gap -> ring AllReduce }, and each
// AllReduce is realised in aggregate as one flow per inter-host ring edge
// per channel carrying the edge volume 2(n-1)/n * S / channels. Ring
// orderings (random vs optimal) and flow routing (ECMP vs FFA-assigned
// explicit routes) are the experiment's knobs.

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/ring.h"
#include "common/rng.h"
#include "mccs/strategy.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs::workload {

enum class RingChoice {
  /// Random rank permutation over all GPUs — what a tenant gets when
  /// virtualization also hides the intra-host topology (§4.2).
  kRandomGpuOrder,
  /// Random host order with intra-host GPUs contiguous — NCCL with working
  /// intra-host detection but an arbitrary inter-host rank order.
  kRandomHostOrder,
  /// Locality-aware provider ordering.
  kOptimal,
};

struct SimJobSpec {
  JobId id;
  std::vector<GpuId> gpus;  ///< rank order
  Bytes model_bytes = 100'000'000;
  int iterations = 20;
  Time compute_gap = millis(90);  ///< fwd+bwd compute between AllReduces
  RingChoice ring = RingChoice::kRandomHostOrder;
};

/// Explicit-route map keyed by CommStrategy::route_key(channel, position).
using SimRouteMap = std::unordered_map<std::uint64_t, RouteId>;

/// One flow-level job.
class FlowSimJob {
 public:
  FlowSimJob(sim::EventLoop& loop, net::Network& network, const cluster::Cluster& cluster,
             SimJobSpec spec, Rng& rng);

  FlowSimJob(const FlowSimJob&) = delete;
  FlowSimJob& operator=(const FlowSimJob&) = delete;

  /// Install explicit routes computed by the FFA policy (empty = ECMP). New
  /// iterations pick up the latest map; in-flight flows keep their path.
  void set_routes(SimRouteMap routes) { routes_ = std::move(routes); }

  void start(std::function<void(JobId, Time)> on_done);

  [[nodiscard]] const SimJobSpec& spec() const { return spec_; }
  [[nodiscard]] const svc::CommStrategy& strategy() const { return strategy_; }
  /// Mean AllReduce completion time across finished iterations.
  [[nodiscard]] Time avg_allreduce_time() const;
  [[nodiscard]] bool finished() const { return done_; }

 private:
  void start_iteration();
  void on_flow_done();

  sim::EventLoop* loop_;
  net::Network* network_;
  const cluster::Cluster* cluster_;
  SimJobSpec spec_;
  svc::CommStrategy strategy_;
  SimRouteMap routes_;
  std::uint64_t ecmp_salt_;

  int iteration_ = 0;
  int flows_outstanding_ = 0;
  Time iter_start_ = 0.0;
  std::vector<Time> allreduce_times_;
  bool done_ = false;
  std::function<void(JobId, Time)> on_done_;
};

}  // namespace mccs::workload
