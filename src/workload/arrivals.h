#pragma once
// Cluster-day arrival traces: a seeded Poisson process of job arrivals with
// exponential lifetimes and a weighted size mix. The generator emits the
// whole trace up front (jobs, then a time-sorted event stream), so a churn
// harness replays the identical workload against different control planes —
// the warm-started and full-re-solve modes of bench/cluster_day see the
// same arrivals to the microsecond.

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace mccs::workload {

/// Shape of one cluster-day workload.
struct ChurnSpec {
  Time horizon = 86400.0;         ///< stop drawing arrivals at this time (s)
  Time mean_interarrival = 60.0;  ///< Poisson arrival process mean gap (s)
  Time mean_duration = 1800.0;    ///< exponential job lifetime mean (s)
  /// Job size mix: sizes[i] GPUs with probability weights[i]/sum(weights).
  std::vector<int> sizes{8, 16, 32, 64};
  std::vector<double> size_weights{4.0, 3.0, 2.0, 1.0};
  double high_priority_fraction = 0.0;  ///< PFA tenants
};

/// One job of the trace. Departure may exceed the horizon (jobs running at
/// end-of-day still depart in the event stream).
struct JobSpec {
  JobId job;
  Time arrive = 0.0;
  Time depart = 0.0;
  int gpus = 0;
  bool high_priority = false;
};

/// The trace as a control-plane event stream, time-sorted. Ties order
/// departures before arrivals (freed capacity is visible to a same-instant
/// arrival), then ascending job id — total and deterministic.
struct ChurnEvent {
  Time at = 0.0;
  JobId job;
  bool arrival = false;
};

/// Draw the full trace for one seed. Same (spec, seed) => identical trace.
std::vector<JobSpec> poisson_jobs(const ChurnSpec& spec, std::uint64_t seed);

/// Expand jobs into the sorted event stream (two events per job).
std::vector<ChurnEvent> churn_events(const std::vector<JobSpec>& jobs);

}  // namespace mccs::workload
