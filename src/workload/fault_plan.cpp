#include "workload/fault_plan.h"

#include <algorithm>

#include "mccs/fabric.h"

namespace mccs::workload {
namespace {

// splitmix64: small, seedable, and stable across platforms — the plan must
// be a pure function of (seed, options) everywhere the chaos sweep runs.
std::uint64_t next_u64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan& FaultPlan::link_down(Time at, LinkId link) {
  MCCS_EXPECTS(at >= 0.0 && link.valid());
  events_.push_back(FaultEvent{at, FaultEvent::Kind::kLinkDown, link, 0.0, {}});
  return *this;
}

FaultPlan& FaultPlan::link_degrade(Time at, LinkId link, double fraction) {
  MCCS_EXPECTS(at >= 0.0 && link.valid());
  MCCS_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  events_.push_back(
      FaultEvent{at, FaultEvent::Kind::kLinkDegrade, link, fraction, {}});
  return *this;
}

FaultPlan& FaultPlan::link_restore(Time at, LinkId link) {
  MCCS_EXPECTS(at >= 0.0 && link.valid());
  events_.push_back(
      FaultEvent{at, FaultEvent::Kind::kLinkRestore, link, 1.0, {}});
  return *this;
}

FaultPlan& FaultPlan::kill_app(Time at, AppId app) {
  MCCS_EXPECTS(at >= 0.0 && app.valid());
  events_.push_back(FaultEvent{at, FaultEvent::Kind::kKillApp, {}, 1.0, app});
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomOptions& options) {
  MCCS_EXPECTS(options.link_count > 0 || !options.targets.empty());
  MCCS_EXPECTS(options.horizon > 0.0);
  MCCS_EXPECTS(options.min_outage > 0.0 &&
               options.max_outage >= options.min_outage);
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 1;
  FaultPlan plan;

  auto draw_link = [&]() -> LinkId {
    if (!options.targets.empty()) {
      return options.targets[next_u64(state) % options.targets.size()];
    }
    return LinkId{static_cast<std::uint32_t>(next_u64(state) %
                                             options.link_count)};
  };

  // Draw episodes first; emission happens after per-link overlap merging.
  struct Episode {
    LinkId link{};
    Time at = 0.0;
    Time restore = 0.0;
    bool down = false;       ///< hard down (vs degrade)
    double fraction = 1.0;   ///< degrade only
  };
  std::vector<Episode> episodes;

  for (int e = 0; e < options.episodes; ++e) {
    Episode ep;
    ep.link = draw_link();
    const Time outage =
        options.min_outage +
        uniform(state) * (options.max_outage - options.min_outage);
    // The episode (fault + restore) fits strictly inside the horizon.
    const Time span = std::max(options.horizon - outage, 0.0);
    ep.at = uniform(state) * span;
    ep.restore = ep.at + outage;
    if (uniform(state) < options.degrade_prob) {
      // Surviving fraction in [0.05, 0.5]: harsh enough to matter, alive
      // enough that flows keep trickling (exercises the watermark path).
      ep.down = false;
      ep.fraction = 0.05 + 0.45 * uniform(state);
    } else {
      ep.down = true;
    }
    episodes.push_back(ep);
  }

  // Flap bursts: trains of short outages on one link, spaced so consecutive
  // flaps never overlap (each down is genuinely followed by its restore).
  for (int b = 0; b < options.flap_bursts; ++b) {
    const LinkId link = draw_link();
    const int flaps = std::max(options.flaps_per_burst, 1);
    const Time flap = options.min_outage;
    const Time burst_span = flap * 2.0 * static_cast<double>(flaps);
    const Time start =
        uniform(state) * std::max(options.horizon - burst_span, 0.0);
    for (int f = 0; f < flaps; ++f) {
      Episode ep;
      ep.link = link;
      ep.at = start + flap * 2.0 * static_cast<double>(f);
      ep.restore = ep.at + flap;
      ep.down = true;
      episodes.push_back(ep);
    }
  }

  // Merge overlapping episodes per link: without this, an inner episode's
  // restore resurrects the link mid-outage of the outer one and the outer
  // restore then targets an already-up link. Merged, every link's event
  // sequence strictly alternates fault / restore.
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) {
              if (a.link.get() != b.link.get()) return a.link < b.link;
              return a.at < b.at;
            });
  std::vector<Episode> merged;
  for (const Episode& ep : episodes) {
    if (!merged.empty() && merged.back().link == ep.link &&
        ep.at <= merged.back().restore) {
      Episode& prev = merged.back();
      prev.restore = std::max(prev.restore, ep.restore);
      if (ep.down) prev.down = true;  // down beats degrade
      if (!prev.down) prev.fraction = std::min(prev.fraction, ep.fraction);
      continue;
    }
    merged.push_back(ep);
  }
  for (const Episode& ep : merged) {
    if (ep.down) {
      plan.link_down(ep.at, ep.link);
    } else {
      plan.link_degrade(ep.at, ep.link, ep.fraction);
    }
    plan.link_restore(ep.restore, ep.link);
  }

  const int kill_draws = std::max(options.max_kills, 0);
  for (int k = 0; k < kill_draws && !options.killable.empty(); ++k) {
    if (uniform(state) >= options.kill_prob) continue;
    const std::size_t victim = next_u64(state) % options.killable.size();
    plan.kill_app(uniform(state) * options.horizon, options.killable[victim]);
  }

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

void FaultPlan::schedule(svc::Fabric& fabric) const {
  // Fault events sharing an exact timestamp (a correlated failure epoch —
  // e.g. one switch taking several links down at once) apply through one
  // loop event inside one solve batch, in tape order: every administrative
  // change lands, the link-change log records each one, and the affected
  // bottleneck components re-solve once at epoch close instead of once per
  // event. kill_app's own batch nests under the epoch's.
  svc::Fabric* f = &fabric;
  std::size_t i = 0;
  while (i < events_.size()) {
    std::size_t j = i + 1;
    while (j < events_.size() && events_[j].at == events_[i].at) ++j;
    const Time at = std::max(events_[i].at, fabric.loop().now());
    std::vector<FaultEvent> epoch(events_.begin() + static_cast<std::ptrdiff_t>(i),
                                  events_.begin() + static_cast<std::ptrdiff_t>(j));
    fabric.loop().schedule_at(at, [f, epoch = std::move(epoch)] {
      net::Network::SolveBatch batch(f->network());
      for (const FaultEvent& e : epoch) {
        switch (e.kind) {
          case FaultEvent::Kind::kLinkDown:
            f->network().set_link_state(e.link, net::LinkState::kDown);
            break;
          case FaultEvent::Kind::kLinkDegrade:
            f->network().set_link_state(e.link, net::LinkState::kDegraded,
                                        e.fraction);
            break;
          case FaultEvent::Kind::kLinkRestore:
            f->network().set_link_state(e.link, net::LinkState::kUp);
            break;
          case FaultEvent::Kind::kKillApp:
            f->kill_app(e.app);
            break;
        }
      }
    });
    i = j;
  }
}

}  // namespace mccs::workload
