#include "workload/chaos.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cluster/admission.h"
#include "common/rng.h"
#include "netsim/routing.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"
#include "workload/fault_plan.h"

namespace mccs::workload {
namespace {

/// One admitted tenant, as the control plane sees it.
struct LiveJob {
  std::vector<GpuId> gpus;
  svc::CommStrategy strategy;
  std::vector<policy::PendingFlow> flows;  ///< routed set, for goodput
  bool high_priority = false;
  Time admitted_at = 0.0;
};

/// Merged replay step: faults first at equal times (a restore and an arrival
/// at the same instant must see the restored fabric), then churn; within a
/// source the original (time-sorted) order is preserved.
struct Step {
  Time at = 0.0;
  int source = 0;  ///< 0: fault, 1: churn
  std::size_t idx = 0;
};

}  // namespace

std::vector<LinkId> fabric_links(const cluster::Cluster& cluster) {
  const net::Topology& topo = cluster.topology();
  std::vector<LinkId> out;
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const net::Link& link = topo.link(LinkId{static_cast<std::uint32_t>(i)});
    if (topo.node(link.src).kind != net::NodeKind::kHost &&
        topo.node(link.dst).kind != net::NodeKind::kHost) {
      out.push_back(link.id);
    }
  }
  return out;
}

ChaosChurnResult run_chaos_churn(const ChaosChurnSpec& spec, std::uint64_t seed,
                                 telemetry::MetricsRegistry* metrics) {
  const cluster::Cluster cluster = cluster::make_spine_leaf(spec.fabric);
  const net::Routing routing(cluster.topology());
  cluster::AdmissionQueue admission(cluster, cluster::Placement::kCompact);
  admission.set_max_retries(spec.max_admission_retries);
  Rng rng(seed ^ 0x5eedu);

  const std::vector<JobSpec> jobs = poisson_jobs(spec.churn, seed);
  const std::vector<ChurnEvent> churn = churn_events(jobs);

  FaultPlan::RandomOptions fo;
  fo.horizon = spec.churn.horizon;
  fo.targets = fabric_links(cluster);
  fo.episodes = spec.fault_episodes;
  fo.degrade_prob = spec.degrade_prob;
  fo.min_outage =
      spec.min_outage > 0.0 ? spec.min_outage : spec.churn.horizon / 50.0;
  fo.max_outage =
      spec.max_outage > 0.0 ? spec.max_outage : spec.churn.horizon / 4.0;
  fo.flap_bursts = spec.flap_bursts;
  fo.flaps_per_burst = spec.flaps_per_burst;
  fo.max_kills = spec.max_kills;
  fo.kill_prob = spec.kill_prob;
  fo.killable.reserve(jobs.size());
  for (const JobSpec& j : jobs) fo.killable.push_back(AppId{j.job.get()});
  const FaultPlan plan = FaultPlan::random(seed * 0x9e3779b97f4a7c15ull + 0xfa,
                                           fo);
  const std::vector<FaultEvent>& faults = plan.events();

  std::vector<Step> steps;
  steps.reserve(faults.size() + churn.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    steps.push_back(Step{faults[i].at, 0, i});
  }
  for (std::size_t i = 0; i < churn.size(); ++i) {
    steps.push_back(Step{churn[i].at, 1, i});
  }
  std::sort(steps.begin(), steps.end(), [](const Step& a, const Step& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.source != b.source) return a.source < b.source;
    return a.idx < b.idx;
  });

  policy::IncrementalAssigner assigner(cluster, routing);
  assigner.set_reserved_routes(spec.reserved_routes);
  if (spec.audit_period > 0) {
    assigner.set_audit({spec.audit_period, seed}, metrics);
  }

  ChaosChurnResult res;
  res.jobs = jobs.size();
  res.events = steps.size();

  std::unordered_map<std::uint32_t, LiveJob> live;
  std::unordered_set<std::uint32_t> killed_jobs;
  std::unordered_map<std::uint32_t, int> admitted_count;
  std::unordered_map<std::uint32_t, int> completed_count;
  std::vector<double> link_factor(cluster.topology().link_count(), 1.0);
  std::unordered_set<std::uint32_t> down_links;
  double closure_total = 0.0;
  std::size_t solves = 0;
  bool poison_window = false;  ///< warm state known-stale, audit not yet hit
  const std::size_t poison_at = spec.poison ? steps.size() / 3 : steps.size();

  auto activate = [&](JobId job, std::vector<GpuId> gpus, Time now,
                      std::vector<std::uint32_t>& started) {
    const JobSpec& js = jobs[job.get()];
    LiveJob lj;
    lj.strategy = policy::locality_aware_strategy(gpus, cluster);
    lj.gpus = std::move(gpus);
    lj.high_priority = js.high_priority;
    lj.admitted_at = now;
    policy::AssignItem item;
    item.comm = CommId{job.get()};
    item.app = AppId{job.get()};
    item.gpus_by_rank = &lj.gpus;
    item.strategy = &lj.strategy;
    item.high_priority = lj.high_priority;
    lj.flows = policy::enumerate_flows(item, cluster);
    live.emplace(job.get(), std::move(lj));
    ++admitted_count[job.get()];
    started.push_back(job.get());
  };

  auto depart = [&](std::uint32_t id) {
    live.erase(id);
    ++completed_count[id];
    ++res.completed;
    assigner.remove_item(CommId{id});
  };

  // Per-tenant goodput factor under the current link state: the collective
  // moves at its slowest routed flow.
  auto tenant_factor = [&](std::uint32_t id, const LiveJob& lj) -> double {
    if (lj.flows.empty()) return 1.0;  // single-host tenant
    const policy::RouteMap& routes = assigner.routes_of(CommId{id});
    double factor = 1.0;
    for (const policy::PendingFlow& f : lj.flows) {
      auto rit = routes.find(f.route_key);
      if (rit == routes.end()) continue;  // not yet solved (same instant)
      double path_factor = 1.0;
      for (LinkId l : routing.paths(f.src, f.dst)[rit->second.get()]) {
        path_factor = std::min(path_factor, link_factor[l.get()]);
      }
      factor = std::min(factor, path_factor);
      if (factor <= 0.0) break;
    }
    return factor;
  };

  auto oracle_digest = [&]() -> std::uint64_t {
    std::vector<std::uint32_t> ids;
    ids.reserve(live.size());
    for (const auto& [id, lj] : live) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    std::vector<policy::AssignItem> items;
    items.reserve(ids.size());
    for (std::uint32_t id : ids) {
      const LiveJob& lj = live.at(id);
      policy::AssignItem item;
      item.comm = CommId{id};
      item.app = AppId{id};
      item.gpus_by_rank = &lj.gpus;
      item.strategy = &lj.strategy;
      item.high_priority = lj.high_priority;
      items.push_back(item);
    }
    policy::AssignOptions options;
    options.reserved_routes = spec.reserved_routes;
    if (spec.reconfig) options.failed_links = down_links;
    return policy::assignment_digest(
        policy::assign_flows(items, cluster, routing, options));
  };

  for (std::size_t si = 0; si < steps.size(); ++si) {
    const Step& step = steps[si];
    std::vector<std::uint32_t> started;

    if (step.source == 0) {
      const FaultEvent& ev = faults[step.idx];
      switch (ev.kind) {
        case FaultEvent::Kind::kLinkDown:
          link_factor[ev.link.get()] = 0.0;
          down_links.insert(ev.link.get());
          break;
        case FaultEvent::Kind::kLinkDegrade:
          link_factor[ev.link.get()] = ev.fraction;
          break;
        case FaultEvent::Kind::kLinkRestore:
          link_factor[ev.link.get()] = 1.0;
          down_links.erase(ev.link.get());
          break;
        case FaultEvent::Kind::kKillApp: {
          // Mid-run tenant kill. The victim may be live (forced departure),
          // queued (cancel), or long gone (no-op) — all must be safe.
          const std::uint32_t id = ev.app.get();
          killed_jobs.insert(id);
          auto it = live.find(id);
          if (it != live.end()) {
            ++res.killed;
            depart(id);
          }
          for (cluster::AdmissionQueue::Admission& adm :
               admission.finish(JobId{id}, rng)) {
            activate(adm.job, std::move(adm.gpus), ev.at, started);
          }
          break;
        }
      }
      if (ev.kind != FaultEvent::Kind::kKillApp && spec.reconfig) {
        assigner.mark_link_dirty(ev.link);
        assigner.set_failed_links(down_links);
      }
      if (spec.storm_backpressure) {
        if (!down_links.empty()) {
          admission.set_backpressure(true);
        } else if (admission.backpressure()) {
          // Storm cleared: admit the deferred backlog in FIFO order.
          admission.set_backpressure(false);
          for (cluster::AdmissionQueue::Admission& adm :
               admission.drain_deferred(rng)) {
            activate(adm.job, std::move(adm.gpus), step.at, started);
          }
        }
      }
    } else {
      const ChurnEvent& ev = churn[step.idx];
      if (ev.arrival) {
        if (auto placed =
                admission.submit(ev.job, jobs[ev.job.get()].gpus, rng)) {
          activate(ev.job, std::move(*placed), ev.at, started);
        }
      } else {
        // Natural departure. For a killed tenant this is the duplicate the
        // queue absorbs idempotently.
        if (live.count(ev.job.get()) > 0) depart(ev.job.get());
        for (cluster::AdmissionQueue::Admission& adm :
             admission.finish(ev.job, rng)) {
          activate(adm.job, std::move(adm.gpus), ev.at, started);
        }
      }
    }
    res.queued_peak = std::max(res.queued_peak, admission.queue_depth());

    // Control-plane decision: fold the started tenants in and re-solve the
    // dirty closure (faults above already seeded their dirt).
    for (std::uint32_t id : started) {
      const LiveJob& lj = live.at(id);
      policy::AssignItem item;
      item.comm = CommId{id};
      item.app = AppId{id};
      item.gpus_by_rank = &lj.gpus;
      item.strategy = &lj.strategy;
      item.high_priority = lj.high_priority;
      assigner.add_item(item);
    }
    const policy::IncrementalSolveStats st = assigner.solve(step.at);
    if (st.solved_items > 0) {
      closure_total += static_cast<double>(st.solved_items);
      ++solves;
    }

    if (spec.reconfig && !res.poisoned && si >= poison_at) {
      // Latch until a multi-path victim exists: at low load (or with purely
      // intra-rack tenants) the nominal injection point may have nothing to
      // corrupt, and a no-op poison would make the heal invariant vacuous.
      res.poisoned = assigner.debug_poison_state(seed);
      poison_window = res.poisoned;
    }

    // Identity invariant: warm assignment == from-scratch re-solve, after
    // every event (or on the configured stride). Divergence is legal only
    // inside a poison window, and the window must close (audit fallback or
    // the closure happening to re-solve the victim).
    const bool check_now =
        spec.reconfig &&
        (spec.oracle_every_event ||
         (spec.oracle_stride > 0 && si % spec.oracle_stride == 0));
    if (check_now) {
      const bool same =
          policy::assignment_digest(assigner.assignments()) == oracle_digest();
      if (!same) {
        ++res.divergent_events;
        if (!poison_window) res.identity = false;
      } else {
        poison_window = false;  // healed
      }
    }

    // Goodput integration over [this event, next event).
    if (si + 1 < steps.size()) {
      const double dt = steps[si + 1].at - step.at;
      if (dt > 0.0 && !live.empty()) {
        for (const auto& [id, lj] : live) {
          const double gpus = static_cast<double>(lj.gpus.size());
          res.fault_free_gpu_time += gpus * dt;
          res.faulted_gpu_time += gpus * dt * tenant_factor(id, lj);
        }
      }
    }
  }

  // Quiesce: the trace has drained every tenant; release any remaining
  // backpressure and let stragglers (deferred arrivals whose storm never
  // cleared before their departure passed — the queue cancelled those) out.
  admission.set_backpressure(false);
  for (cluster::AdmissionQueue::Admission& adm : admission.drain_deferred(rng)) {
    // A job admitted only now was already cancelled-or-departed upstream;
    // grant and immediately release so accounting stays exactly-once.
    ++admitted_count[adm.job.get()];
    ++completed_count[adm.job.get()];
    ++res.completed;
    admission.finish(adm.job, rng);
  }

  res.terminated = true;
  res.admitted = admission.admitted_total();
  res.rejected = admission.rejected_total();
  res.deferred = admission.deferred_total();
  res.duplicate_departures = admission.duplicate_finish_total();
  res.audits = assigner.audit_runs();
  res.audit_mismatches = assigner.audit_mismatches();
  res.fallbacks = assigner.fallbacks();
  res.mean_closure =
      solves > 0 ? closure_total / static_cast<double>(solves) : 0.0;
  res.healed = !poison_window;

  // Exactly-once: every admitted surviving tenant completed exactly once;
  // nobody was admitted twice.
  for (const JobSpec& j : jobs) {
    const int adm = admitted_count.count(j.job.get()) > 0
                        ? admitted_count.at(j.job.get())
                        : 0;
    const int fin = completed_count.count(j.job.get()) > 0
                        ? completed_count.at(j.job.get())
                        : 0;
    if (adm > 1 || fin > adm) res.exactly_once = false;
    if (killed_jobs.count(j.job.get()) > 0) continue;
    if (adm == 1 && fin != 1) res.exactly_once = false;
  }

  // Zero orphans after quiesce.
  res.residual_demand = assigner.total_link_demand();
  res.quiesced = admission.running_count() == 0 &&
                 admission.queue_depth() == 0 &&
                 admission.free_gpus() == cluster.gpu_count() &&
                 assigner.item_count() == 0 && live.empty() &&
                 std::abs(res.residual_demand) < 1e-3;

  if (spec.reconfig) {
    // Final identity at quiesce: both solvers agree on the empty cluster —
    // and, more usefully, the assigner's digest path ran clean to the end.
    const bool same =
        policy::assignment_digest(assigner.assignments()) == oracle_digest();
    if (!same && !poison_window) res.identity = false;
  }

  res.goodput_retention =
      res.fault_free_gpu_time > 0.0
          ? res.faulted_gpu_time / res.fault_free_gpu_time
          : 1.0;
  return res;
}

}  // namespace mccs::workload
