#include "workload/models.h"

namespace mccs::workload {

TrainingModelSpec vgg19_data_parallel() {
  TrainingModelSpec m;
  m.name = "VGG-19/DP";
  m.parallelism = Parallelism::kDataParallel;
  // 143.7M fp32 parameters -> ~574.8 MB of gradients in 25 MB DDP buckets
  // (the last bucket takes the remainder).
  const Bytes total_grads = 574'800'000;
  const Bytes bucket = 25'000'000;
  Bytes left = total_grads;
  while (left > 0) {
    const Bytes b = left > bucket ? bucket : left;
    m.grad_buckets.push_back(b);
    left -= b;
  }
  m.layers = static_cast<int>(m.grad_buckets.size());
  m.forward_compute = millis(35);
  m.backward_compute = millis(70);
  m.optimizer_compute = millis(10);
  m.h2d_bytes_per_iter = 90_MB;  // input images
  m.input_stall = millis(4);
  return m;
}

TrainingModelSpec gpt27b_tensor_parallel() {
  TrainingModelSpec m;
  m.name = "GPT-2.7B/TP";
  m.parallelism = Parallelism::kTensorParallel;
  m.layers = 32;
  // Finetune micro-batch: activations ~ batch(2) x seq(640) x hidden(2560) x
  // 2B (fp16) = 6 MB per activation AllReduce; 2 per layer per pass. Compute
  // dominates per layer (finetuning is compute-bound), which leaves the idle
  // cycles the traffic-scheduling policy interleaves other tenants into.
  m.tp_activation_bytes = 6'291'456;
  m.tp_collectives_per_layer = 2;
  m.forward_compute = millis(96);   // 3 ms per layer
  m.backward_compute = millis(192);
  m.optimizer_compute = millis(10);
  m.h2d_bytes_per_iter = 8_MB;  // token batches are small
  m.input_stall = millis(1);
  return m;
}

TrainingModelSpec resnet50_ddp() {
  TrainingModelSpec m;
  m.name = "ResNet-50/DDP";
  m.parallelism = Parallelism::kDataParallel;
  // The paper's simulation uses a 100 MB model (§6.5), AllReduced per
  // iteration in 25 MB buckets.
  for (int i = 0; i < 4; ++i) m.grad_buckets.push_back(25'000'000);
  m.layers = 4;
  m.forward_compute = millis(30);
  m.backward_compute = millis(60);
  m.optimizer_compute = millis(8);
  m.h2d_bytes_per_iter = 64_MB;
  m.input_stall = millis(3);
  return m;
}

TrainingModelSpec gpt_pipeline_parallel() {
  TrainingModelSpec m;
  m.name = "GPT/PP";
  m.parallelism = Parallelism::kPipelineParallel;
  m.layers = 8;  // layers per stage
  m.pp_microbatches = 4;
  // Activation per microbatch crossing a stage boundary:
  // batch(1) x seq(1024) x hidden(2560) x 2B = 5 MB.
  m.pp_activation_bytes = 5'242'880;
  m.forward_compute = millis(48);   // per stage, all microbatches
  m.backward_compute = millis(96);
  m.optimizer_compute = millis(8);
  m.h2d_bytes_per_iter = 4_MB;
  m.input_stall = millis(1);
  return m;
}

TrainingModelSpec moe_expert_parallel() {
  TrainingModelSpec m;
  m.name = "MoE/EP";
  m.parallelism = Parallelism::kExpertParallel;
  m.layers = 8;  // MoE layers
  // Tokens routed to each expert per AllToAll: tokens(1024) x hidden(2560) x
  // 2B / experts(=ranks) — per-peer block of ~1.3 MB at 4-way EP.
  m.moe_tokens_per_peer_bytes = 1'310'720;
  m.forward_compute = millis(56);
  m.backward_compute = millis(112);
  m.optimizer_compute = millis(8);
  m.h2d_bytes_per_iter = 4_MB;
  m.input_stall = millis(1);
  return m;
}

std::vector<TrainingModelSpec> production_model_groups() {
  // Four anonymised product groups (Fig. 2) with different balances:
  // ranking models are memcpy/input heavy; content-understanding models are
  // compute heavy; large recommenders are communication heavy.
  std::vector<TrainingModelSpec> groups;

  {  // Group A: communication-heavy recommender.
    TrainingModelSpec m = vgg19_data_parallel();
    m.name = "GroupA";
    m.forward_compute = millis(25);
    m.backward_compute = millis(50);
    m.input_stall = millis(10);
    groups.push_back(m);
  }
  {  // Group B: balanced vision model.
    TrainingModelSpec m = resnet50_ddp();
    m.name = "GroupB";
    groups.push_back(m);
  }
  {  // Group C: compute-dominated language model.
    TrainingModelSpec m = gpt27b_tensor_parallel();
    m.name = "GroupC";
    m.forward_compute = millis(120);
    m.backward_compute = millis(240);
    groups.push_back(m);
  }
  {  // Group D: input-bound ranking model (heavy memcpy + idle).
    TrainingModelSpec m = resnet50_ddp();
    m.name = "GroupD";
    m.h2d_bytes_per_iter = 512_MB;
    m.input_stall = millis(25);
    m.forward_compute = millis(20);
    m.backward_compute = millis(40);
    groups.push_back(m);
  }
  return groups;
}

}  // namespace mccs::workload
