#pragma once
// Shared wiring for all MCCS service components on a fabric: the event loop,
// the simulated network and GPUs, the cluster inventory, the timing config,
// and fabric-level lookups (peer proxies, control-plane messaging). Owned by
// the Fabric; every engine holds a reference.

#include <cstdint>
#include <functional>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "gpusim/runtime.h"
#include "mccs/config.h"
#include "netsim/network.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mccs::svc {

class ProxyEngine;

/// A transport engine's escalation after exhausting its silent retry ladder
/// on one chunk: the provider-side signal that a path is persistently dead
/// (the controller cross-checks the reported links against the network's
/// monitoring plane and reconfigures around confirmed failures).
struct StallReport {
  AppId app{};
  HostId host{};
  GpuId src_gpu{};
  GpuId dst_gpu{};
  Bytes bytes = 0;
  int attempts = 0;               ///< completed no-progress windows so far
  std::vector<LinkId> path;       ///< path of the attempt that stalled
};

struct ServiceContext {
  sim::EventLoop* loop = nullptr;
  net::Network* network = nullptr;
  gpu::GpuRuntime* gpus = nullptr;
  const cluster::Cluster* cluster = nullptr;
  ServiceConfig config;
  std::uint64_t seed = 1;  ///< fabric seed; perturbs ECMP hashing per trial

  /// Fabric-wide telemetry (always non-null under a Fabric; wired before any
  /// service is created). Counters are always live; timeline recording sites
  /// check telemetry->enabled() first.
  telemetry::Telemetry* telemetry = nullptr;

  /// Proxy engine serving a GPU anywhere in the cluster.
  std::function<ProxyEngine&(GpuId)> proxy_for;

  /// Deliver a control-plane message between hosts after `extra` delay on
  /// top of the configured control-hop latency.
  std::function<void(HostId from, HostId to, std::function<void()> fn, Time extra)>
      send_control;

  /// Escalation sink for transport stalls (set via Fabric::set_stall_handler,
  /// typically by a policy::Controller with fault recovery enabled). Null =>
  /// transports keep retrying on their own.
  std::function<void(const StallReport&)> on_transport_stall;
};

}  // namespace mccs::svc
