#pragma once
// Shared wiring for all MCCS service components on a fabric: the event loop,
// the simulated network and GPUs, the cluster inventory, the timing config,
// and fabric-level lookups (peer proxies, control-plane messaging). Owned by
// the Fabric; every engine holds a reference.

#include <cstdint>
#include <functional>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "gpusim/runtime.h"
#include "mccs/config.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs::svc {

class ProxyEngine;

struct ServiceContext {
  sim::EventLoop* loop = nullptr;
  net::Network* network = nullptr;
  gpu::GpuRuntime* gpus = nullptr;
  const cluster::Cluster* cluster = nullptr;
  ServiceConfig config;
  std::uint64_t seed = 1;  ///< fabric seed; perturbs ECMP hashing per trial

  /// Proxy engine serving a GPU anywhere in the cluster.
  std::function<ProxyEngine&(GpuId)> proxy_for;

  /// Deliver a control-plane message between hosts after `extra` delay on
  /// top of the configured control-hop latency.
  std::function<void(HostId from, HostId to, std::function<void()> fn, Time extra)>
      send_control;
};

}  // namespace mccs::svc
