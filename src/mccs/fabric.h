#pragma once
// Fabric: one complete MCCS deployment — the simulated substrate (event
// loop, network, GPUs) plus a per-host Service, the communicator bootstrap
// rendezvous, and the provider-facing management API of §4.3 that external
// controllers (src/policy) drive:
//
//   * list communicators with their GPU placements and current strategies;
//   * reconfigure a communicator's strategy at runtime (delivered to every
//     rank's proxy with independent control-plane delays — the Fig. 4 race);
//   * install per-tenant traffic schedules on the transport engines;
//   * retrieve per-application collective traces.

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "common/units.h"
#include "gpusim/runtime.h"
#include "mccs/context.h"
#include "mccs/service.h"
#include "mccs/strategy.h"
#include "mccs/trace.h"
#include "mccs/transport_engine.h"
#include "netsim/network.h"
#include "sim/event_loop.h"

namespace mccs::svc {

/// Communicator metadata exposed to controllers.
struct CommInfo {
  CommId id;
  AppId app;
  int nranks = 0;
  std::vector<GpuId> gpus;  ///< by rank
};

/// What a tenant kill tore down (observability for tests and chaos runs).
struct KillReport {
  AppId app{};
  std::size_t comms = 0;        ///< communicators removed from the registry
  std::size_t collectives = 0;  ///< active + held collectives aborted
  std::size_t sends = 0;        ///< in-flight transport sends cancelled
};

class Fabric {
 public:
  struct Options {
    ServiceConfig config{};
    gpu::DeviceConfig gpu_config{};
    std::uint64_t seed = 1;
    /// Forwarded to the simulated Network (e.g. `incremental = false` builds
    /// a fabric on the reference max-min oracle for cross-validation runs).
    net::Network::Options network{};
  };

  explicit Fabric(cluster::Cluster cluster);
  Fabric(cluster::Cluster cluster, Options options);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- substrate access ---------------------------------------------------------
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] gpu::GpuRuntime& gpus() { return *gpus_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const ServiceConfig& config() const { return context_.config; }

  [[nodiscard]] Service& service(HostId host);
  /// Convenience: attach an application process to the service of the host
  /// owning `gpu`.
  Shim& connect(AppId app, GpuId gpu);

  // --- communicator bootstrap -----------------------------------------------------
  UniqueId new_unique_id();

  /// Provider hook choosing the initial strategy for a new communicator.
  /// Defaults to the NCCL-model strategy (user rank order, ECMP).
  void set_strategy_provider(std::function<CommStrategy(const CommInfo&)> provider);

  /// Called by shims; when all `nranks` ranks of `uid` joined, installs the
  /// communicator on every rank's proxy after the bootstrap latency.
  void bootstrap_join(UniqueId uid, int nranks, int rank, AppId app, GpuId gpu,
                      std::function<void(CommId)> on_ready);

  // --- management API (§4.3) --------------------------------------------------------
  [[nodiscard]] std::vector<CommInfo> list_communicators() const;
  [[nodiscard]] const CommInfo& comm_info(CommId comm) const;

  /// Tolerant lookup for datapath races: null when the communicator was torn
  /// down by kill_app (the issuing tenant may not have learned of the kill
  /// yet). A communicator that never existed or was destroyed in an orderly
  /// way still fails loudly — only a kill excuses a dangling reference.
  [[nodiscard]] const CommInfo* find_comm_info(CommId comm) const;

  /// Current strategy as seen by rank 0's proxy.
  [[nodiscard]] const CommStrategy& strategy_of(CommId comm);

  /// Send a reconfiguration command to every rank's proxy. `delays[r]` adds
  /// extra control-plane delay for rank r (tests use this to force the
  /// Fig.-4 race); empty means the configured control latency only.
  void reconfigure(CommId comm, CommStrategy strategy,
                   std::vector<Time> delays = {});

  /// Install / clear a traffic-scheduling QoS window for a tenant on every
  /// transport engine in the cluster.
  void set_traffic_schedule(AppId app, const TrafficSchedule& schedule);
  void clear_traffic_schedule(AppId app);

  /// All collective trace records of one application, cluster-wide.
  [[nodiscard]] std::vector<TraceRecord> trace(AppId app) const;

  /// Every collective trace record in the cluster (all applications), sorted
  /// by (comm, seq, rank) — the proxy-layer span source for the Chrome trace
  /// export (trace_export.h).
  [[nodiscard]] std::vector<TraceRecord> trace_all() const;

  // --- telemetry ---------------------------------------------------------------
  /// Fabric-wide telemetry. The metrics registry is always live (engines
  /// record through it unconditionally); the span/event timeline records only
  /// when enabled — ServiceConfig::enable_telemetry seeds the switch, and
  /// telemetry().set_enabled() flips it at runtime.
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }

  /// Machine-readable JSON snapshot of the fabric: virtual time, the metrics
  /// registry, per-link state / allocated throughput / cumulative bytes, live
  /// flows, and per-communicator progress. The programmatic counterpart of
  /// the human-oriented debug_dump.
  [[nodiscard]] std::string telemetry_snapshot();

  /// One link's slice of the telemetry snapshot, as structured data: the
  /// monitoring plane's view (administrative state plus the utilization
  /// sampler's throughput / flow-count / byte readings). Policy consumers —
  /// notably the controller's recovery confirmation — observe links through
  /// this sampler rather than poking the raw network, so what they decide on
  /// is exactly what the snapshot reports.
  struct LinkSample {
    net::LinkState state = net::LinkState::kUp;
    double capacity_fraction = 1.0;
    double throughput = 0.0;  ///< allocated rate over the link right now
    std::size_t flows = 0;    ///< flows currently crossing the link
    double bytes = 0.0;       ///< cumulative bytes carried (utilization integral)
  };
  [[nodiscard]] LinkSample sample_link(LinkId link) const;

  /// Management-path communicator teardown: destroys the communicator on
  /// every rank's proxy (after the control latency) and removes it from the
  /// registry, so policies stop planning for it. Outstanding collectives on
  /// any rank make the teardown fail loudly.
  void destroy_communicator(CommId comm);

  /// Failure injection: forcibly tear down everything an application owns —
  /// its communicators (on every rank's proxy, immediately, no control-plane
  /// grace), its in-flight transport sends, and its QoS schedules. Unlike
  /// destroy_communicator, outstanding work is ABORTED: completion callbacks
  /// of dropped collectives never fire, and peers' in-flight messages to the
  /// dead communicator are dropped on arrival. Idempotent.
  KillReport kill_app(AppId app);

  /// Install the escalation sink for transport stall reports (see
  /// ServiceContext::on_transport_stall). Pass nullptr to detach.
  void set_stall_handler(std::function<void(const StallReport&)> handler);

  /// Human-readable snapshot of sim time, pending events, live flows, link
  /// states, and per-communicator progress — printed by test harnesses when
  /// an await times out.
  void debug_dump(std::ostream& os);

  // --- internal wiring ------------------------------------------------------------
  [[nodiscard]] ProxyEngine& proxy_for(GpuId gpu);
  [[nodiscard]] ServiceContext& context() { return context_; }

 private:
  struct BootstrapEntry {
    int rank;
    AppId app;
    GpuId gpu;
    std::function<void(CommId)> on_ready;
  };
  struct BootstrapState {
    int nranks = 0;
    std::vector<BootstrapEntry> joined;
  };

  void finish_bootstrap(UniqueId uid, BootstrapState state);

  cluster::Cluster cluster_;
  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<gpu::GpuRuntime> gpus_;
  ServiceContext context_;
  // Declared before services_ so engines (which hold pointers to it through
  // the context) are destroyed first.
  telemetry::Telemetry telemetry_;
  std::vector<std::unique_ptr<Service>> services_;  ///< by HostId
  std::function<CommStrategy(const CommInfo&)> strategy_provider_;

  std::unordered_map<std::uint64_t, BootstrapState> bootstraps_;
  std::unordered_map<std::uint32_t, CommInfo> comms_;
  std::unordered_map<std::uint32_t, std::uint64_t> reconfig_rounds_;  ///< per comm
  std::unordered_set<std::uint32_t> killed_comms_;  ///< tombstones from kill_app
  std::uint64_t next_unique_id_ = 1;
  std::uint32_t next_comm_id_ = 0;
};

}  // namespace mccs::svc
