#include "mccs/frontend_engine.h"

#include <string>

namespace mccs::svc {

gpu::DevicePtr FrontendEngine::handle_alloc(GpuId gpu, Bytes size) {
  MCCS_EXPECTS(size > 0);
  gpu::Gpu& dev = ctx_->gpus->gpu(gpu);
  // The service allocates, exports an IPC handle, and the shim opens it; the
  // tenant ends up with a device pointer it can use freely for compute while
  // the service retains access for collectives.
  const gpu::DevicePtr service_ptr = dev.allocate(size);
  const gpu::MemHandle handle = dev.export_handle(service_ptr.mem);
  const gpu::DevicePtr app_ptr = dev.open_handle(handle);
  registry_.emplace(key(gpu, app_ptr.mem), AllocInfo{gpu, size});
  return app_ptr;
}

void FrontendEngine::handle_free(gpu::DevicePtr ptr) {
  auto it = registry_.find(key(ptr.gpu, ptr.mem));
  MCCS_CHECK(it != registry_.end(), "free of unregistered tenant buffer");
  MCCS_EXPECTS(ptr.offset == 0);
  registry_.erase(it);
  gpu::Gpu& dev = ctx_->gpus->gpu(ptr.gpu);
  dev.release(ptr.mem);  // shim closes its handle...
  dev.release(ptr.mem);  // ...then the service releases the allocation
}

bool FrontendEngine::validate(gpu::DevicePtr ptr, Bytes len) const {
  auto it = registry_.find(key(ptr.gpu, ptr.mem));
  if (it == registry_.end()) return false;
  return ptr.offset + len <= it->second.size;
}

void FrontendEngine::handle_collective(CommId comm, GpuId gpu,
                                       WorkRequest request, int nranks) {
  const CollectiveArgs& args = request.args;
  const Bytes esize = coll::dtype_size(args.dtype);
  const Bytes count = args.count;
  const Bytes nb = static_cast<Bytes>(nranks);

  Bytes send_len = 0;
  Bytes recv_len = 0;
  switch (args.kind) {
    case coll::CollectiveKind::kAllReduce:
      send_len = count * esize;
      recv_len = count * esize;
      break;
    case coll::CollectiveKind::kAllGather:
      send_len = count * esize;
      recv_len = count * nb * esize;
      break;
    case coll::CollectiveKind::kReduceScatter:
      send_len = count * nb * esize;
      recv_len = count * esize;
      break;
    case coll::CollectiveKind::kBroadcast:
      send_len = count * esize;
      recv_len = count * esize;
      break;
    case coll::CollectiveKind::kReduce:
      send_len = count * esize;
      recv_len = count * esize;  // only read at the root, validated anyway
      break;
    case coll::CollectiveKind::kAllToAll:
      send_len = count * nb * esize;
      recv_len = count * nb * esize;
      break;
    case coll::CollectiveKind::kGather:
      // recv only matters at the root; the service bounds-checks the root's
      // larger access at apply time.
      send_len = count * esize;
      recv_len = count * esize;
      break;
    case coll::CollectiveKind::kScatter:
      send_len = count * esize;  // full size only read at the root
      recv_len = count * esize;
      break;
  }

  MCCS_CHECK(validate(args.recv, recv_len),
             "collective recv buffer is not a valid tenant allocation");
  // Broadcast's send buffer is only read at the root; non-roots typically
  // alias it to recv, which the recv check already covered.
  if (args.kind != coll::CollectiveKind::kBroadcast || !(args.send == args.recv)) {
    MCCS_CHECK(validate(args.send, send_len),
               "collective send buffer is not a valid tenant allocation");
  }

  if (ctx_->telemetry != nullptr && ctx_->telemetry->enabled()) {
    // Validation + the engine hop to the proxy, as a frontend-layer span.
    telemetry::Timeline& tl = ctx_->telemetry->timeline();
    if (track_ < 0) {
      track_ = tl.track("host " + std::to_string(host_.get()),
                        "frontend app " + std::to_string(app_.get()));
    }
    const Time now = ctx_->loop->now();
    tl.span(track_, "frontend", coll::kind_name(args.kind), now,
            now + ctx_->config.engine_hop_latency,
            {{"comm", static_cast<std::int64_t>(comm.get())},
             {"gpu", static_cast<std::int64_t>(gpu.get())},
             {"bytes", static_cast<std::uint64_t>(send_len)}});
  }

  ProxyEngine& proxy = ctx_->proxy_for(gpu);
  ctx_->loop->schedule_after(
      ctx_->config.engine_hop_latency,
      [&proxy, comm, request = std::move(request)]() mutable {
        proxy.issue_collective(comm, std::move(request));
      });
}

void FrontendEngine::handle_p2p(CommId comm, GpuId gpu, P2pRequest request) {
  const Bytes len = request.count * coll::dtype_size(request.dtype);
  MCCS_CHECK(validate(request.buffer, len),
             "P2P buffer is not a valid tenant allocation");
  ProxyEngine& proxy = ctx_->proxy_for(gpu);
  ctx_->loop->schedule_after(
      ctx_->config.engine_hop_latency,
      [&proxy, comm, request = std::move(request)]() mutable {
        proxy.issue_p2p(comm, std::move(request));
      });
}

CommandQueue<ShimCommand>& FrontendEngine::command_queue(GpuId gpu) {
  auto it = queues_.find(gpu.get());
  if (it == queues_.end()) {
    it = queues_
             .emplace(gpu.get(),
                      std::make_unique<CommandQueue<ShimCommand>>(
                          *ctx_->loop, ctx_->config.shim_to_service_latency,
                          ctx_->config.ipc_queue_capacity,
                          [this](ShimCommand c) { consume(std::move(c)); }))
             .first;
  }
  return *it->second;
}

void FrontendEngine::consume(ShimCommand command) {
  std::visit(
      [this](auto&& cmd) {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, CollectiveCommand>) {
          handle_collective(cmd.comm, cmd.gpu, std::move(cmd.request), cmd.nranks);
        } else {
          handle_p2p(cmd.comm, cmd.gpu, std::move(cmd.request));
        }
      },
      std::move(command));
}

}  // namespace mccs::svc
