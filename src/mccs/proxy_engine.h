#pragma once
// Proxy engine (§4.2): one per GPU. Bridges high-level communicators to
// low-level resources:
//
//  * executes collectives as per-channel ring step machines, moving real
//    bytes between the ranks' work buffers (intra-host via shared-memory
//    channels it manages directly; inter-host via the transport engines);
//  * serialises collectives of a communicator on a service-owned
//    communicator stream, synchronised with the application's streams
//    through shared GPU events (§4.1);
//  * assigns the monotonically increasing per-communicator sequence numbers
//    and implements the reconfiguration barrier of Fig. 4: on a provider
//    reconfiguration request it holds new launches, runs an AllGather of
//    last-launched sequence numbers over the per-communicator control ring,
//    drains every collective up to the maximum, then tears down and
//    re-establishes peer connections under the new strategy.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "collectives/types.h"
#include "common/ids.h"
#include "gpusim/runtime.h"
#include "mccs/api.h"
#include "mccs/coll_plan.h"
#include "mccs/context.h"
#include "mccs/strategy.h"
#include "mccs/trace.h"
#include "mccs/transport_engine.h"

namespace mccs::svc {

/// Everything a proxy needs to serve one rank of a communicator.
struct CommSetup {
  CommId id;
  AppId app;
  int rank = 0;
  int nranks = 0;
  std::vector<GpuId> gpus;  ///< by rank
  CommStrategy strategy;
};

/// A validated collective work request handed over by the frontend engine.
struct WorkRequest {
  CollectiveArgs args;
  std::shared_ptr<gpu::GpuEvent> ready_event;  ///< recorded on the app stream
  std::shared_ptr<gpu::GpuEvent> done_event;   ///< recorded on the comm stream
  CompletionCallback on_complete;              ///< optional shim notification
};

/// A point-to-point operation (§5: "P2P communication"). P2P transfers ride
/// their own per-peer operation counters, independent of the collective
/// sequence space — they do not use the ring/tree strategy, so they neither
/// gate nor are gated by reconfigurations.
struct P2pRequest {
  int peer = -1;  ///< remote rank
  bool is_send = false;
  gpu::DevicePtr buffer;
  std::size_t count = 0;
  coll::DataType dtype = coll::DataType::kFloat32;
  std::shared_ptr<gpu::GpuEvent> ready_event;
  std::shared_ptr<gpu::GpuEvent> done_event;
  CompletionCallback on_complete;
};

class ProxyEngine {
 public:
  /// `transport_for_nic(i)` returns this host's transport engine for NIC i.
  ProxyEngine(ServiceContext& ctx, HostId host, GpuId gpu,
              std::function<TransportEngine&(int)> transport_for_nic);

  ProxyEngine(const ProxyEngine&) = delete;
  ProxyEngine& operator=(const ProxyEngine&) = delete;

  [[nodiscard]] GpuId gpu() const { return gpu_; }
  [[nodiscard]] HostId host() const { return host_; }

  // --- communicator lifecycle -------------------------------------------------
  void install_communicator(const CommSetup& setup);
  void destroy_communicator(CommId comm);

  /// Forced teardown (tenant kill): drop the rank's state for `comm`
  /// unconditionally — active collectives, held launches, pending
  /// deliveries, P2P rendezvous, barrier rounds. Completion callbacks of the
  /// dropped work never fire; late control/data messages addressed to the
  /// dead communicator are ignored on arrival. Returns the number of
  /// launched-or-held collectives dropped. No-op (returns 0) if the
  /// communicator is not installed here.
  std::size_t abort_communicator(CommId comm);
  [[nodiscard]] bool has_communicator(CommId comm) const {
    return comms_.count(comm.get()) > 0;
  }
  [[nodiscard]] const CommStrategy& strategy(CommId comm) const;

  // --- data path ---------------------------------------------------------------
  /// Issue a collective (from the frontend engine). Assigns the sequence
  /// number; launches immediately unless a reconfiguration holds it.
  void issue_collective(CommId comm, WorkRequest request);

  /// Issue a point-to-point send or receive (from the frontend engine).
  void issue_p2p(CommId comm, P2pRequest request);

  /// Rendezvous: the k-th send from `src_rank` announces itself to the
  /// receiving proxy; the transfer starts once the matching k-th recv is
  /// posted here.
  void on_p2p_send_request(CommId comm, int src_rank, std::uint64_t op_index,
                           Bytes bytes, gpu::DevicePtr src_buffer, GpuId src_gpu);
  /// The sender learns that the receiver posted the matching buffer.
  void on_p2p_recv_posted(CommId comm, int dst_rank, std::uint64_t op_index,
                          gpu::DevicePtr dst_buffer);

  /// Data arrival from a peer rank (invoked by the sender's transport /
  /// proxy when a chunk lands in this rank's memory space). The receiver
  /// resolves what to do with the transfer (chunk, reduce-vs-copy) from its
  /// own schedule by tag.
  void deliver_chunk(CommId comm, std::uint64_t seq, int channel,
                     int transfer_tag, std::size_t src_chunk,
                     gpu::DevicePtr src_workbuf, GpuId src_gpu);

  // --- control path (provider / peers) ----------------------------------------
  /// Provider reconfiguration command (arrives via the control plane, at
  /// arbitrary per-rank times — the race Fig. 4 illustrates). Rounds are
  /// assigned monotonically per communicator by the controller (Fabric) and
  /// applied strictly in order at every rank.
  void request_reconfigure(CommId comm, std::uint64_t round,
                           CommStrategy new_strategy);

  /// Control-ring AllGather traffic for one reconfiguration round:
  /// `origin`'s last-launched sequence number, forwarded hop by hop.
  void on_control_value(CommId comm, std::uint64_t round, int origin_rank,
                        std::int64_t last_launched);

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] std::int64_t last_completed(CommId comm) const;
  [[nodiscard]] std::int64_t last_launched(CommId comm) const;
  [[nodiscard]] bool reconfig_in_progress(CommId comm) const;
  [[nodiscard]] const std::vector<TraceRecord>& trace() const { return trace_; }

  /// Number of currently outstanding (launched, unfinished) collectives.
  [[nodiscard]] std::size_t active_count(CommId comm) const;

  /// Number of issued-but-held launches (waiting on a reconfiguration
  /// barrier). Diagnostics (test::await dumps).
  [[nodiscard]] std::size_t held_count(CommId comm) const;

  /// Plan-cache counters of one communicator (see coll_plan.h).
  [[nodiscard]] CollPlanCache::Stats plan_cache_stats(CommId comm) const;
  /// Number of plans currently cached for one communicator.
  [[nodiscard]] std::size_t plan_cache_size(CommId comm) const;
  /// The cached plan for a shape under the current strategy, or nullptr.
  /// Test/bench hook; never builds.
  [[nodiscard]] std::shared_ptr<const CollPlan> cached_plan(
      CommId comm, coll::CollectiveKind kind, std::size_t count,
      coll::DataType dtype, int root) const;

 private:
  static constexpr std::int64_t kNone = -1;

  /// Mutable per-channel cursor + arrival state; everything structural lives
  /// in the shared CollPlan. Flat and reusable — instances are pooled per
  /// communicator so a warm launch allocates nothing here.
  struct ChannelExec {
    int channel = 0;
    std::size_t cur = 0;
    bool send_done = false;
    bool started = false;
    bool finished = false;
    std::vector<std::uint8_t> arrived;  ///< by plan recv-slot index
  };

  struct Delivery {
    int channel;
    int transfer_tag;
    std::size_t src_chunk;  ///< chunk index in the sender's read-side buffer
    gpu::DevicePtr src_workbuf;
    GpuId src_gpu;
  };

  struct ActiveColl {
    std::uint64_t seq = 0;
    WorkRequest req;
    gpu::DevicePtr workbuf;      ///< write side (results land here)
    gpu::DevicePtr read_buf;     ///< read side for outgoing transfers
                                 ///< (== workbuf except AllToAll)
    gpu::DevicePtr scratch;  ///< ReduceScatter / Reduce working copy
    bool executing = false;
    std::shared_ptr<const CollPlan> plan;  ///< launch-invariant structure
    std::vector<ChannelExec> channels;
    int channels_remaining = 0;
    gpu::ExternalOpToken token;
    std::size_t trace_index = 0;
  };

  /// Barrier state of one reconfiguration round (Fig. 4).
  struct RoundState {
    CommStrategy strategy;        ///< valid once the request arrived
    bool request_pending = false; ///< command received, not yet processed
    bool activated = false;       ///< command processed: launches held,
                                  ///< own value contributed to the barrier
    bool have_max = false;
    bool updating = false;  ///< connections being torn down / re-established
    std::vector<std::int64_t> values;
    int values_received = 0;
    std::int64_t max_seq = kNone;
  };

  /// One outstanding local P2P operation.
  struct P2pOp {
    P2pRequest req;
    bool launched = false;
  };
  /// Rendezvous state per (peer, direction) pair.
  struct P2pPeerState {
    std::uint64_t next_send_index = 0;
    std::uint64_t next_recv_index = 0;
    std::map<std::uint64_t, P2pOp> sends;  ///< by op index
    std::map<std::uint64_t, P2pOp> recvs;
    /// Send announcements that arrived before the recv was posted.
    struct PendingSend {
      Bytes bytes;
      gpu::DevicePtr src_buffer;
      GpuId src_gpu;
    };
    std::map<std::uint64_t, PendingSend> announced;
  };

  /// A collective issued while a reconfiguration barrier holds launches.
  /// Carries the trace index assigned at issue time so the eventual launch
  /// is O(1) — it never searches the trace log.
  struct HeldLaunch {
    std::uint64_t seq = 0;
    std::size_t trace_index = 0;
    WorkRequest request;
  };

  struct CommRank {
    CommSetup setup;
    CommStrategy strategy;
    gpu::Stream* comm_stream = nullptr;
    std::uint64_t next_seq = 0;
    std::int64_t last_launched_seq = kNone;
    std::int64_t last_completed_seq = kNone;
    std::uint64_t epoch = 0;  ///< connection generation (re-rolls ECMP)
    // Launch-path lookups are by exact sequence number and never iterated,
    // so hashed containers replace the ordered maps here.
    std::unordered_map<std::uint64_t, ActiveColl> active;
    std::deque<HeldLaunch> held;
    std::unordered_map<std::uint64_t, std::vector<Delivery>> pending_deliveries;
    CollPlanCache plan_cache;  ///< epoch-keyed (see coll_plan.h)
    /// Retired channel-exec vectors, reused to make warm launches
    /// allocation-free.
    std::vector<std::vector<ChannelExec>> exec_pool;
    std::map<std::uint64_t, RoundState> rounds;  ///< un-applied reconfig rounds
    std::uint64_t last_applied_round = 0;
    std::map<int, P2pPeerState> p2p;  ///< by peer rank
  };

  CommRank& comm_state(CommId comm);
  const CommRank& comm_state(CommId comm) const;
  /// Evict this rank's registry-backed per-comm instruments (plan-cache
  /// counters). Called by both teardown paths — orderly destroy and kill —
  /// after the CommRank is gone, so the registry tracks live comms only.
  void drop_comm_metrics(CommId comm);
  /// Tolerant lookup for entry points that can legitimately race with a
  /// tenant kill (late control messages, in-flight deliveries): null when
  /// the communicator was torn down by abort_communicator. A comm that was
  /// never installed here — or went away through the orderly destroy path —
  /// is still a contract violation: only a kill excuses dangling messages.
  CommRank* find_comm(CommId comm);

  void launch(CommRank& st, std::uint64_t seq, std::size_t trace_index,
              WorkRequest request);
  void begin_execution(CommId comm, std::uint64_t seq);
  void start_step(CommRank& st, ActiveColl& a, ChannelExec& ch);
  void check_advance(CommRank& st, ActiveColl& a, ChannelExec& ch);
  void finish_channel(CommRank& st, ActiveColl& a, ChannelExec& ch);
  void complete_collective(CommRank& st, std::uint64_t seq);
  void apply_delivery(CommRank& st, ActiveColl& a, const Delivery& d);

  // P2P helpers.
  void p2p_launch(CommRank& st, int peer, std::uint64_t op_index, bool is_send);
  void p2p_try_start_transfer(CommRank& st, int src_rank,
                              std::uint64_t op_index);
  void p2p_complete(CommId comm, int peer, std::uint64_t op_index,
                    bool is_send);

  // Reconfiguration protocol helpers.
  RoundState& get_round(CommRank& st, std::uint64_t round);
  /// The round currently gating launches (last_applied+1 if activated).
  RoundState* active_round(CommRank& st);
  void try_activate(CommRank& st);
  void send_control_to_successor(CommRank& st, std::uint64_t round, int origin,
                                 std::int64_t value);
  void check_barrier(CommRank& st, std::uint64_t round);
  void drain_and_maybe_update(CommRank& st, std::uint64_t round);
  void maybe_begin_update(CommRank& st);
  void begin_update(CommRank& st, std::uint64_t round);
  void finish_update(CommId comm, std::uint64_t round);

  ServiceContext* ctx_;
  HostId host_;
  GpuId gpu_;
  std::function<TransportEngine&(int)> transport_for_nic_;
  std::unordered_map<std::uint32_t, CommRank> comms_;
  /// Tombstones of comms removed by abort_communicator; find_comm tolerates
  /// exactly these (a killed tenant's in-flight messages are not errors).
  std::unordered_set<std::uint32_t> aborted_;
  std::vector<TraceRecord> trace_;
};

}  // namespace mccs::svc
