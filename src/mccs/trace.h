#pragma once
// Collective tracing (§4.3): the service records every collective an
// application issues so an external controller can learn computation /
// communication patterns (the traffic-scheduling policy consumes these to
// find a prioritised tenant's idle cycles).

#include <vector>

#include "collectives/types.h"
#include "common/ids.h"
#include "common/units.h"

namespace mccs::svc {

struct TraceRecord {
  AppId app;
  CommId comm;
  int rank = 0;
  std::uint64_t seq = 0;
  coll::CollectiveKind kind = coll::CollectiveKind::kAllReduce;
  Bytes bytes = 0;         ///< output-buffer bytes
  Time issued = 0.0;       ///< command received by the proxy engine
  Time launched = 0.0;     ///< enqueued on the communicator stream
  Time started = 0.0;      ///< first data transfer began
  Time completed = 0.0;    ///< last transfer applied, stream op finished
};

}  // namespace mccs::svc
