#include "mccs/shim.h"

#include "mccs/fabric.h"
#include "mccs/service.h"

namespace mccs::svc {

Shim::Shim(ServiceContext& ctx, Service& service, AppId app, GpuId gpu)
    : ctx_(&ctx), service_(&service), app_(app), gpu_(gpu) {}

gpu::DevicePtr Shim::alloc(Bytes size) {
  // Control-path operation: routed through the frontend synchronously (the
  // round-trip latency is irrelevant to the experiments, which measure the
  // collective datapath).
  return service_->frontend(app_).handle_alloc(gpu_, size);
}

void Shim::free(gpu::DevicePtr ptr) {
  service_->frontend(app_).handle_free(ptr);
}

gpu::Stream& Shim::create_app_stream() {
  return ctx_->gpus->gpu(gpu_).create_stream();
}

void Shim::comm_init_rank(UniqueId uid, int nranks, int rank,
                          std::function<void(CommId)> on_ready) {
  Fabric& fabric = service_->fabric();
  ctx_->loop->schedule_after(
      ctx_->config.shim_to_service_latency,
      [&fabric, uid, nranks, rank, app = app_, gpu = gpu_,
       on_ready = std::move(on_ready)]() mutable {
        fabric.bootstrap_join(uid, nranks, rank, app, gpu, std::move(on_ready));
      });
}

void Shim::comm_destroy(CommId comm) {
  ProxyEngine* proxy = &ctx_->proxy_for(gpu_);
  ctx_->loop->schedule_after(ctx_->config.shim_to_service_latency,
                             [proxy, comm] { proxy->destroy_communicator(comm); });
}

void Shim::collective(CommId comm, CollectiveArgs args, gpu::Stream& app_stream,
                      CompletionCallback on_complete) {
  MCCS_EXPECTS(app_stream.device() == gpu_);
  // A tenant races its own teardown: an issue that arrives after the
  // provider killed the communicator is dropped — the callback never fires,
  // matching the fate of collectives that were in flight at the kill. The
  // app stream is left untouched so surviving work on it proceeds.
  const CommInfo* info = service_->fabric().find_comm_info(comm);
  if (info == nullptr) return;
  gpu::Gpu& dev = ctx_->gpus->gpu(gpu_);

  // Dependency capture (§4.1): the collective must wait for compute already
  // enqueued on the app stream; subsequent app-stream work must wait for the
  // collective. Events are shareable across the process boundary.
  WorkRequest req;
  req.args = args;
  req.ready_event = dev.create_event();
  req.done_event = dev.create_event();
  req.on_complete = std::move(on_complete);
  app_stream.record_event(req.ready_event);
  app_stream.wait_event(req.done_event);

  CollectiveCommand cmd;
  cmd.comm = comm;
  cmd.gpu = gpu_;
  cmd.nranks = info->nranks;
  cmd.request = std::move(req);
  service_->frontend(app_).command_queue(gpu_).push(std::move(cmd));
}

void Shim::all_reduce(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                      std::size_t count, coll::DataType dtype, coll::ReduceOp op,
                      gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kAllReduce;
  a.send = send;
  a.recv = recv;
  a.count = count;
  a.dtype = dtype;
  a.op = op;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::all_gather(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                      std::size_t send_count, coll::DataType dtype,
                      gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kAllGather;
  a.send = send;
  a.recv = recv;
  a.count = send_count;
  a.dtype = dtype;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::reduce_scatter(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                          std::size_t recv_count, coll::DataType dtype,
                          coll::ReduceOp op, gpu::Stream& stream,
                          CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kReduceScatter;
  a.send = send;
  a.recv = recv;
  a.count = recv_count;
  a.dtype = dtype;
  a.op = op;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::broadcast(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                     std::size_t count, coll::DataType dtype, int root,
                     gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kBroadcast;
  a.send = send;
  a.recv = recv;
  a.count = count;
  a.dtype = dtype;
  a.root = root;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::reduce(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                  std::size_t count, coll::DataType dtype, coll::ReduceOp op,
                  int root, gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kReduce;
  a.send = send;
  a.recv = recv;
  a.count = count;
  a.dtype = dtype;
  a.op = op;
  a.root = root;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::all_to_all(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                      std::size_t count_per_peer, coll::DataType dtype,
                      gpu::Stream& stream, CompletionCallback on_complete) {
  MCCS_EXPECTS(!(send == recv));  // blocks move between different indices
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kAllToAll;
  a.send = send;
  a.recv = recv;
  a.count = count_per_peer;
  a.dtype = dtype;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::gather(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                  std::size_t count, coll::DataType dtype, int root,
                  gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kGather;
  a.send = send;
  a.recv = recv;
  a.count = count;
  a.dtype = dtype;
  a.root = root;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::scatter(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                   std::size_t count, coll::DataType dtype, int root,
                   gpu::Stream& stream, CompletionCallback on_complete) {
  CollectiveArgs a;
  a.kind = coll::CollectiveKind::kScatter;
  a.send = send;
  a.recv = recv;
  a.count = count;
  a.dtype = dtype;
  a.root = root;
  collective(comm, a, stream, std::move(on_complete));
}

void Shim::send(CommId comm, int peer, gpu::DevicePtr buffer, std::size_t count,
                coll::DataType dtype, gpu::Stream& stream,
                CompletionCallback on_complete) {
  MCCS_EXPECTS(stream.device() == gpu_);
  gpu::Gpu& dev = ctx_->gpus->gpu(gpu_);
  P2pRequest req;
  req.peer = peer;
  req.is_send = true;
  req.buffer = buffer;
  req.count = count;
  req.dtype = dtype;
  req.ready_event = dev.create_event();
  req.done_event = dev.create_event();
  req.on_complete = std::move(on_complete);
  stream.record_event(req.ready_event);
  stream.wait_event(req.done_event);
  P2pCommand cmd;
  cmd.comm = comm;
  cmd.gpu = gpu_;
  cmd.request = std::move(req);
  service_->frontend(app_).command_queue(gpu_).push(std::move(cmd));
}

void Shim::recv(CommId comm, int peer, gpu::DevicePtr buffer, std::size_t count,
                coll::DataType dtype, gpu::Stream& stream,
                CompletionCallback on_complete) {
  MCCS_EXPECTS(stream.device() == gpu_);
  gpu::Gpu& dev = ctx_->gpus->gpu(gpu_);
  P2pRequest req;
  req.peer = peer;
  req.is_send = false;
  req.buffer = buffer;
  req.count = count;
  req.dtype = dtype;
  req.ready_event = dev.create_event();
  req.done_event = dev.create_event();
  req.on_complete = std::move(on_complete);
  stream.record_event(req.ready_event);
  stream.wait_event(req.done_event);
  P2pCommand cmd;
  cmd.comm = comm;
  cmd.gpu = gpu_;
  cmd.request = std::move(req);
  service_->frontend(app_).command_queue(gpu_).push(std::move(cmd));
}

}  // namespace mccs::svc
