#pragma once
// Collective execution plans: the immutable, precomputed half of a proxy
// engine's per-collective work (§4.2 datapath fast path).
//
// In a training loop the same collective (communicator, kind, count, dtype,
// root) is launched millions of times, yet everything the proxy derives from
// those parameters — the per-channel step schedules, every step's byte
// range within the logical work buffer, the tag→receive-action tables, the
// destination GPU of every send — is invariant until the provider swaps the
// communicator's strategy. A CollPlan captures that invariant state once;
// ActiveColl/ChannelExec in the proxy engine then hold only cursors and
// arrival bitmaps referencing the shared plan (the GC3/HiCCL
// plan-once/execute-many structure, arXiv:2201.11840 / 2408.05962).
//
// Invalidation contract: plans are valid for exactly one connection *epoch*.
// The Fig.-4 reconfiguration barrier bumps the epoch when it tears down peer
// connections (begin_update; also the unsafe ablation path), which is also
// the only moment the strategy — and therefore any plan content — can
// change. CollPlanCache compares its epoch against the communicator's on
// every acquire and drops all entries on mismatch, so a stale plan can never
// outlive the configuration it was compiled for.
//
// Deliberately NOT part of a plan (looked up live per send instead): the
// explicit route table and the connection ECMP key. Both are cheap, and the
// unsafe_immediate_reconfig ablation swaps the strategy while collectives
// are in flight — caching them would change that ablation's (intentionally
// broken) modelled behaviour.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "collectives/schedule.h"
#include "collectives/types.h"
#include "common/ids.h"
#include "common/units.h"
#include "telemetry/metrics.h"

namespace mccs::svc {

struct CommSetup;
struct CommStrategy;

/// Byte range within the logical work buffer.
struct PlanByteRange {
  Bytes offset = 0;
  Bytes len = 0;

  friend bool operator==(const PlanByteRange&, const PlanByteRange&) = default;
};

/// Everything launch-invariant about one collective shape on one rank.
struct CollPlan {
  /// One step of a channel's step machine, fully resolved: the send half
  /// carries its destination and byte range, the recv half is a dense index
  /// into the channel's receive-slot table.
  struct Step {
    int send_to = -1;                        ///< destination rank; -1 = none
    std::size_t send_chunk = coll::kNoChunk; ///< buffer chunk (sender side)
    int send_tag = -1;
    PlanByteRange send_range;                ///< bytes read for the send
    GpuId send_gpu{};                        ///< destination rank's GPU
    bool send_same_host = false;             ///< shared-memory channel?
    std::int32_t recv_slot = -1;             ///< dense recv index; -1 = none

    [[nodiscard]] bool has_send() const { return send_to >= 0; }
    [[nodiscard]] bool has_recv() const { return recv_slot >= 0; }

    friend bool operator==(const Step&, const Step&) = default;
  };

  /// What to do with an incoming transfer, resolved from *our* schedule.
  struct RecvSlot {
    int tag = -1;
    std::size_t chunk = coll::kNoChunk;  ///< destination buffer chunk
    bool reduce = false;                 ///< reduce into local (vs overwrite)
    PlanByteRange range;                 ///< destination byte range

    friend bool operator==(const RecvSlot&, const RecvSlot&) = default;
  };

  struct Channel {
    bool is_ring = false;
    int my_position = 0;  ///< ring mode only
    std::vector<Step> steps;
    std::vector<RecvSlot> recv_slots;
    /// Dense tag → recv-slot index (-1 = tag not expected). Tags are small
    /// (bounded by step/chunk counts), so a flat vector replaces the old
    /// per-launch std::map<int, RecvInfo>.
    std::vector<std::int32_t> tag_to_slot;
    /// Byte range of every buffer chunk within this channel's stripe, for
    /// resolving the sender-side chunk index carried by a delivery.
    std::vector<PlanByteRange> chunk_ranges;
    /// ReduceScatter finalization: scratch range holding this rank's fully
    /// reduced stripe, and where it lands in the user's recv buffer.
    PlanByteRange rs_src;
    PlanByteRange rs_dst;

    friend bool operator==(const Channel&, const Channel&) = default;
  };

  coll::CollectiveKind kind = coll::CollectiveKind::kAllReduce;
  std::size_t count = 0;
  coll::DataType dtype = coll::DataType::kFloat32;
  int root = 0;
  std::size_t num_chunks = 0;
  std::vector<Channel> channels;

  friend bool operator==(const CollPlan&, const CollPlan&) = default;
};

/// Cache key. `root` only matters for rooted collectives but is always part
/// of the key (callers pass 0 otherwise); the reduction op never is — it
/// affects the arithmetic applied to delivered bytes, not the plan. The
/// `algorithm` and compiler `fingerprint` ARE part of the key: plans are
/// compiled from the strategy, and an epoch alone does not distinguish two
/// strategies that produce different schedules for the same shape. A
/// shape-only key turned a same-epoch algorithm swap into silent execution
/// of the old algorithm's cached plan (the stale-plan hazard
/// test_plan_cache.cpp regresses).
struct PlanKey {
  coll::CollectiveKind kind = coll::CollectiveKind::kAllReduce;
  std::size_t count = 0;
  coll::DataType dtype = coll::DataType::kFloat32;
  int root = 0;
  int num_channels = 0;
  coll::Algorithm algorithm = coll::Algorithm::kRing;
  std::uint32_t fingerprint = 0;  ///< coll::compiler_fingerprint(...)

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// The cache key a strategy produces for one collective shape.
PlanKey make_plan_key(const CommStrategy& strategy, coll::CollectiveKind kind,
                      std::size_t count, coll::DataType dtype, int root);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(k.kind));
    mix(k.count);
    mix(static_cast<std::uint64_t>(k.dtype));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.root)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.num_channels)));
    mix(static_cast<std::uint64_t>(k.algorithm));
    mix(static_cast<std::uint64_t>(k.fingerprint));
    return static_cast<std::size_t>(h);
  }
};

/// Compile one collective shape into a plan for `setup.rank` under
/// `strategy`. Pure function of its arguments — the property tests rely on
/// a rebuilt plan being structurally identical to a cached one.
std::shared_ptr<const CollPlan> build_coll_plan(
    const CommSetup& setup, const CommStrategy& strategy,
    const cluster::Cluster& cluster, coll::CollectiveKind kind,
    std::size_t count, coll::DataType dtype, int root);

/// Per-communicator-rank plan cache, keyed by the connection epoch.
class CollPlanCache {
 public:
  /// Counter snapshot. Backed by the fabric's MetricsRegistry once
  /// bind_registry ran (proxy engines bind at install_communicator, labeled
  /// by gpu/comm); standalone caches fall back to privately owned counters,
  /// so the accessor works identically either way.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          ///< plan built (cache disabled or absent)
    std::uint64_t invalidations = 0;   ///< epoch flushes that dropped entries
  };

  /// Redirect the cache's counters to registry-interned instruments. Must be
  /// called before the first acquire (counts are not migrated).
  void bind_registry(telemetry::Counter& hits, telemetry::Counter& misses,
                     telemetry::Counter& invalidations) {
    hits_ = &hits;
    misses_ = &misses;
    invalidations_ = &invalidations;
  }

  /// Return the plan for the given shape, building (and, if `enabled`,
  /// retaining) it on a miss. An `epoch` different from the cache's drops
  /// every entry first — see the invalidation contract above.
  std::shared_ptr<const CollPlan> acquire(std::uint64_t epoch, bool enabled,
                                          const CommSetup& setup,
                                          const CommStrategy& strategy,
                                          const cluster::Cluster& cluster,
                                          coll::CollectiveKind kind,
                                          std::size_t count,
                                          coll::DataType dtype, int root);

  /// The cached plan for a shape under `strategy`, or nullptr (never
  /// builds). Test hook. Keyed through make_plan_key, so a strategy whose
  /// algorithm or compiler fingerprint differs from the cached plan's sees
  /// nullptr, not the other strategy's plan.
  [[nodiscard]] std::shared_ptr<const CollPlan> peek(
      const CommStrategy& strategy, coll::CollectiveKind kind,
      std::size_t count, coll::DataType dtype, int root) const;

  [[nodiscard]] Stats stats() const {
    return Stats{hits().value(), misses().value(), invalidations().value()};
  }
  [[nodiscard]] std::size_t size() const { return plans_.size(); }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  // Null registry pointers fall back to the owned counters — by accessor,
  // not by pointing at them, so the cache stays safely movable (CommRank
  // instances move into their container on install).
  [[nodiscard]] telemetry::Counter& hits() const {
    return hits_ != nullptr ? *hits_ : own_hits_;
  }
  [[nodiscard]] telemetry::Counter& misses() const {
    return misses_ != nullptr ? *misses_ : own_misses_;
  }
  [[nodiscard]] telemetry::Counter& invalidations() const {
    return invalidations_ != nullptr ? *invalidations_ : own_invalidations_;
  }

  std::uint64_t epoch_ = 0;
  std::unordered_map<PlanKey, std::shared_ptr<const CollPlan>, PlanKeyHash>
      plans_;
  mutable telemetry::Counter own_hits_, own_misses_, own_invalidations_;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* invalidations_ = nullptr;
};

}  // namespace mccs::svc
