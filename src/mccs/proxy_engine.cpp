#include "mccs/proxy_engine.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "netsim/routing.h"

namespace mccs::svc {
namespace {

std::uint64_t connection_ecmp_key(CommId comm, int channel, int src_rank,
                                  int dst_rank, std::uint64_t epoch,
                                  std::uint64_t seed) {
  std::uint64_t k = seed;
  k = net::Routing::ecmp_hash(k ^ comm.get());
  k = net::Routing::ecmp_hash(k ^ static_cast<std::uint64_t>(channel));
  k = net::Routing::ecmp_hash(k ^ static_cast<std::uint64_t>(src_rank));
  k = net::Routing::ecmp_hash(k ^ static_cast<std::uint64_t>(dst_rank));
  k = net::Routing::ecmp_hash(k ^ epoch);
  return k;
}

}  // namespace

ProxyEngine::ProxyEngine(ServiceContext& ctx, HostId host, GpuId gpu,
                         std::function<TransportEngine&(int)> transport_for_nic)
    : ctx_(&ctx), host_(host), gpu_(gpu),
      transport_for_nic_(std::move(transport_for_nic)) {}

ProxyEngine::CommRank& ProxyEngine::comm_state(CommId comm) {
  auto it = comms_.find(comm.get());
  MCCS_EXPECTS(it != comms_.end());
  return it->second;
}

const ProxyEngine::CommRank& ProxyEngine::comm_state(CommId comm) const {
  auto it = comms_.find(comm.get());
  MCCS_EXPECTS(it != comms_.end());
  return it->second;
}

ProxyEngine::CommRank* ProxyEngine::find_comm(CommId comm) {
  auto it = comms_.find(comm.get());
  if (it != comms_.end()) return &it->second;
  MCCS_CHECK(aborted_.count(comm.get()) > 0,
             "message for an unknown communicator");
  return nullptr;
}

void ProxyEngine::install_communicator(const CommSetup& setup) {
  MCCS_EXPECTS(setup.nranks >= 1);
  MCCS_EXPECTS(setup.gpus.size() == static_cast<std::size_t>(setup.nranks));
  MCCS_EXPECTS(setup.rank >= 0 && setup.rank < setup.nranks);
  MCCS_EXPECTS(setup.gpus[static_cast<std::size_t>(setup.rank)] == gpu_);
  MCCS_CHECK(comms_.count(setup.id.get()) == 0, "communicator already installed");
  MCCS_EXPECTS(!setup.strategy.channel_orders.empty());

  CommRank st;
  st.setup = setup;
  st.strategy = setup.strategy;
  st.comm_stream = &ctx_->gpus->gpu(gpu_).create_stream();
  auto [it, inserted] = comms_.emplace(setup.id.get(), std::move(st));
  if (ctx_->telemetry != nullptr) {
    // Registry-backed plan-cache counters, labeled per (comm, gpu) so the
    // registry can aggregate per communicator or per device. Bound after the
    // CommRank reached its final address (bind before the move would not
    // matter for registry pointers, but keep the orderings aligned).
    telemetry::MetricsRegistry& reg = ctx_->telemetry->metrics();
    const telemetry::Labels labels{
        {"comm", std::to_string(setup.id.get())},
        {"gpu", std::to_string(gpu_.get())}};
    it->second.plan_cache.bind_registry(
        reg.counter("plan_cache_hits", labels),
        reg.counter("plan_cache_misses", labels),
        reg.counter("plan_cache_invalidations", labels));
  }
}

void ProxyEngine::destroy_communicator(CommId comm) {
  CommRank& st = comm_state(comm);
  MCCS_CHECK(st.active.empty() && st.held.empty(),
             "destroying a communicator with outstanding collectives");
  for (const auto& [peer, p2p] : st.p2p) {
    MCCS_CHECK(p2p.sends.empty() && p2p.recvs.empty(),
               "destroying a communicator with outstanding P2P operations");
  }
  comms_.erase(comm.get());
  drop_comm_metrics(comm);
}

std::size_t ProxyEngine::abort_communicator(CommId comm) {
  auto it = comms_.find(comm.get());
  if (it == comms_.end()) return 0;
  CommRank& st = it->second;
  const std::size_t dropped = st.active.size() + st.held.size();
  // Scratch buffers of active collectives would leak with the tenant gone;
  // everything else (events, tokens, rounds) dies with the CommRank. The
  // communicator stream simply never advances past its dangling external
  // ops — it belongs to the killed tenant's communicator, so nobody waits.
  for (auto& [seq, a] : st.active) {
    if (a.scratch.valid()) ctx_->gpus->gpu(gpu_).release(a.scratch.mem);
  }
  comms_.erase(it);
  aborted_.insert(comm.get());
  drop_comm_metrics(comm);
  return dropped;
}

void ProxyEngine::drop_comm_metrics(CommId comm) {
  // The registry-backed plan-cache counters are labeled per (comm, gpu);
  // with the CommRank (and its cache, which held the handles) gone, keeping
  // the series would leak one entry per communicator ever created. Dropping
  // here bounds the registry by the live communicator population under
  // churn. Must run AFTER the CommRank is erased — the cache's bound
  // handles point into the registry.
  if (ctx_->telemetry == nullptr) return;
  telemetry::MetricsRegistry& reg = ctx_->telemetry->metrics();
  const telemetry::Labels labels{{"comm", std::to_string(comm.get())},
                                 {"gpu", std::to_string(gpu_.get())}};
  reg.drop("plan_cache_hits", labels);
  reg.drop("plan_cache_misses", labels);
  reg.drop("plan_cache_invalidations", labels);
}

const CommStrategy& ProxyEngine::strategy(CommId comm) const {
  return comm_state(comm).strategy;
}

std::int64_t ProxyEngine::last_completed(CommId comm) const {
  return comm_state(comm).last_completed_seq;
}

std::int64_t ProxyEngine::last_launched(CommId comm) const {
  return comm_state(comm).last_launched_seq;
}

bool ProxyEngine::reconfig_in_progress(CommId comm) const {
  const CommRank& st = comm_state(comm);
  for (const auto& [round, rs] : st.rounds) {
    if (rs.request_pending || rs.activated || rs.values_received > 0) return true;
  }
  return false;
}

std::size_t ProxyEngine::active_count(CommId comm) const {
  return comm_state(comm).active.size();
}

std::size_t ProxyEngine::held_count(CommId comm) const {
  return comm_state(comm).held.size();
}

CollPlanCache::Stats ProxyEngine::plan_cache_stats(CommId comm) const {
  return comm_state(comm).plan_cache.stats();
}

std::size_t ProxyEngine::plan_cache_size(CommId comm) const {
  return comm_state(comm).plan_cache.size();
}

std::shared_ptr<const CollPlan> ProxyEngine::cached_plan(
    CommId comm, coll::CollectiveKind kind, std::size_t count,
    coll::DataType dtype, int root) const {
  const CommRank& st = comm_state(comm);
  return st.plan_cache.peek(st.strategy, kind, count, dtype, root);
}

// --- issue / launch -----------------------------------------------------------

void ProxyEngine::issue_collective(CommId comm, WorkRequest request) {
  // Tolerant lookup: the frontend hands requests over after an engine hop, so
  // a tenant kill can land while a request is in flight. Dropping it is the
  // correct semantics — the tenant is gone.
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;
  CommRank& st = *stp;
  MCCS_EXPECTS(request.args.count > 0);
  const std::uint64_t seq = st.next_seq++;

  TraceRecord rec;
  rec.app = st.setup.app;
  rec.comm = comm;
  rec.rank = st.setup.rank;
  rec.seq = seq;
  rec.kind = request.args.kind;
  rec.bytes = request.args.output_bytes(st.setup.nranks);
  rec.issued = ctx_->loop->now();
  // The trace index is assigned here, carried through any barrier hold, and
  // used directly at launch — never searched for (the old backward scan was
  // O(trace length) per launch, quadratic over a long run).
  const std::size_t trace_index = trace_.size();
  trace_.push_back(rec);

  const RoundState* gate = active_round(st);
  const bool allowed = gate == nullptr ||
                       (gate->have_max && !gate->updating &&
                        static_cast<std::int64_t>(seq) <= gate->max_seq);
  if (!allowed) {
    st.held.push_back(HeldLaunch{seq, trace_index, std::move(request)});
    return;
  }
  launch(st, seq, trace_index, std::move(request));
}

void ProxyEngine::launch(CommRank& st, std::uint64_t seq,
                         std::size_t trace_index, WorkRequest request) {
  const CommId comm = st.setup.id;
  MCCS_ASSERT(trace_index < trace_.size() &&
              trace_[trace_index].comm == comm &&
              trace_[trace_index].seq == seq);
  trace_[trace_index].launched = ctx_->loop->now();

  ActiveColl a;
  a.seq = seq;
  a.req = std::move(request);
  a.trace_index = trace_index;
  auto [it, inserted] = st.active.emplace(seq, std::move(a));
  MCCS_CHECK(inserted, "sequence number launched twice");

  st.last_launched_seq = static_cast<std::int64_t>(seq);

  // Communicator-stream sequence: wait for the app's compute to finish, run
  // the communication "kernel" (externally completed by the step machines),
  // then record the done event the app stream is waiting on (§4.1).
  gpu::Stream& stream = *st.comm_stream;
  stream.wait_event(it->second.req.ready_event);
  it->second.token = stream.enqueue_external(
      "coll#" + std::to_string(seq),
      [this, comm, seq] { begin_execution(comm, seq); });
  stream.record_event(it->second.req.done_event);
}

void ProxyEngine::begin_execution(CommId comm, std::uint64_t seq) {
  // The comm stream fires this through an external-op callback; both the
  // communicator and the collective may have been torn down by a tenant kill.
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;
  CommRank& st = *stp;
  {
    const RoundState* gate = active_round(st);
    MCCS_CHECK(gate == nullptr || !gate->updating,
               "collective executing during connection update");
  }
  auto it = st.active.find(seq);
  if (it == st.active.end()) return;
  ActiveColl& a = it->second;
  a.executing = true;
  trace_[a.trace_index].started = ctx_->loop->now();

  const CollectiveArgs& args = a.req.args;
  const int n = st.setup.nranks;
  const int rank = st.setup.rank;
  const std::size_t esize = coll::dtype_size(args.dtype);
  gpu::GpuRuntime& gpus = *ctx_->gpus;
  gpu::Gpu& dev = gpus.gpu(gpu_);

  // Prepare the logical work buffer.
  const bool move_data = ctx_->config.move_data;
  switch (args.kind) {
    case coll::CollectiveKind::kAllReduce: {
      a.workbuf = args.recv;
      if (move_data && !(args.send == args.recv)) {
        auto src = dev.bytes(args.send, args.count * esize);
        auto dst = dev.bytes(args.recv, args.count * esize);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kAllGather: {
      a.workbuf = args.recv;
      if (move_data) {
        auto src = dev.bytes(args.send, args.count * esize);
        auto dst = dev.bytes(
            args.recv.at_offset(static_cast<Bytes>(rank) * args.count * esize),
            args.count * esize);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kReduceScatter: {
      const Bytes total = static_cast<Bytes>(args.count) * static_cast<Bytes>(n) * esize;
      a.scratch = dev.allocate(total);
      a.workbuf = a.scratch;
      if (move_data) {
        auto src = dev.bytes(args.send, total);
        auto dst = dev.bytes(a.scratch, total);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kBroadcast: {
      a.workbuf = args.recv;
      if (move_data && rank == args.root && !(args.send == args.recv)) {
        auto src = dev.bytes(args.send, args.count * esize);
        auto dst = dev.bytes(args.recv, args.count * esize);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kReduce: {
      // The root accumulates in its recv buffer; everyone else accumulates
      // in a private copy of its input (the user's send buffer must stay
      // intact while partial sums flow through).
      if (rank == args.root) {
        a.workbuf = args.recv;
        if (move_data && !(args.send == args.recv)) {
          auto src = dev.bytes(args.send, args.count * esize);
          auto dst = dev.bytes(args.recv, args.count * esize);
          std::memcpy(dst.data(), src.data(), src.size());
        }
      } else {
        a.scratch = dev.allocate(args.count * esize);
        a.workbuf = a.scratch;
        if (move_data) {
          auto src = dev.bytes(args.send, args.count * esize);
          auto dst = dev.bytes(a.scratch, args.count * esize);
          std::memcpy(dst.data(), src.data(), src.size());
        }
      }
      break;
    }
    case coll::CollectiveKind::kAllToAll: {
      // Results land in recv blocks; outgoing transfers read the (untouched)
      // send buffer. The rank's own block moves locally.
      a.workbuf = args.recv;
      a.read_buf = args.send;
      if (move_data) {
        const Bytes block = args.count * esize;
        auto src = dev.bytes(
            args.send.at_offset(static_cast<Bytes>(rank) * block), block);
        auto dst = dev.bytes(
            args.recv.at_offset(static_cast<Bytes>(rank) * block), block);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kGather: {
      a.workbuf = args.recv;
      a.read_buf = args.send;
      if (move_data && rank == args.root) {
        const Bytes block = args.count * esize;
        auto src = dev.bytes(args.send, block);
        auto dst = dev.bytes(
            args.recv.at_offset(static_cast<Bytes>(rank) * block), block);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
    case coll::CollectiveKind::kScatter: {
      a.workbuf = args.recv;
      a.read_buf = args.send;
      if (move_data && rank == args.root) {
        const Bytes block = args.count * esize;
        auto src = dev.bytes(
            args.send.at_offset(static_cast<Bytes>(rank) * block), block);
        auto dst = dev.bytes(args.recv, block);
        std::memcpy(dst.data(), src.data(), src.size());
      }
      break;
    }
  }
  if (!a.read_buf.valid()) a.read_buf = a.workbuf;

  if (n == 1) {
    // Single-participant communicator: the local copy is the collective.
    ctx_->loop->schedule_after(ctx_->config.comm_kernel_launch,
                               [this, comm, seq] {
                                 CommRank* s = find_comm(comm);
                                 if (s == nullptr) return;
                                 complete_collective(*s, seq);
                               });
    return;
  }

  // Attach the (cached) collective plan and reset pooled per-channel cursor
  // state — on a warm cache this allocates nothing.
  a.plan = st.plan_cache.acquire(st.epoch, ctx_->config.enable_plan_cache,
                                 st.setup, st.strategy, *ctx_->cluster,
                                 args.kind, args.count, args.dtype, args.root);
  const int num_channels = static_cast<int>(a.plan->channels.size());
  if (!st.exec_pool.empty()) {
    a.channels = std::move(st.exec_pool.back());
    st.exec_pool.pop_back();
  }
  a.channels.resize(static_cast<std::size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    ChannelExec& ch = a.channels[static_cast<std::size_t>(c)];
    ch.channel = c;
    ch.cur = 0;
    ch.send_done = false;
    ch.started = false;
    ch.finished = false;
    ch.arrived.assign(
        a.plan->channels[static_cast<std::size_t>(c)].recv_slots.size(), 0);
  }
  a.channels_remaining = num_channels;

  // Replay chunks that arrived from faster peers before we were ready.
  auto pend = st.pending_deliveries.find(seq);
  if (pend != st.pending_deliveries.end()) {
    std::vector<Delivery> deliveries = std::move(pend->second);
    st.pending_deliveries.erase(pend);
    for (const Delivery& d : deliveries) apply_delivery(st, a, d);
  }

  // Kick the step machines after the kernel-launch overhead. All channels'
  // first chunk flows post at this one instant, so they share a solve batch
  // (and, being latent, one activation cohort): one re-solve for the whole
  // launch, not one per chunk.
  ctx_->loop->schedule_after(ctx_->config.comm_kernel_launch, [this, comm, seq] {
    CommRank* s = find_comm(comm);
    if (s == nullptr) return;
    auto ait = s->active.find(seq);
    if (ait == s->active.end()) return;
    net::Network::SolveBatch batch(*ctx_->network);
    for (ChannelExec& ch : ait->second.channels) {
      ch.started = true;
      start_step(*s, ait->second, ch);
    }
  });
}

void ProxyEngine::start_step(CommRank& st, ActiveColl& a, ChannelExec& ch) {
  if (ch.finished) return;
  const CollPlan::Channel& pc =
      a.plan->channels[static_cast<std::size_t>(ch.channel)];
  if (ch.cur >= pc.steps.size()) {
    finish_channel(st, a, ch);
    return;
  }
  const CollPlan::Step& step = pc.steps[ch.cur];

  if (step.has_send()) {
    ProxyEngine* recv_proxy = &ctx_->proxy_for(step.send_gpu);
    const CommId comm = st.setup.id;
    const std::uint64_t seq = a.seq;
    const int channel = ch.channel;
    auto deliver = [recv_proxy, comm, seq, channel, tag = step.send_tag,
                    src_chunk = step.send_chunk, read_buf = a.read_buf,
                    src_gpu = gpu_] {
      recv_proxy->deliver_chunk(comm, seq, channel, tag, src_chunk, read_buf,
                                src_gpu);
    };
    auto on_sent = [this, comm, seq, channel] {
      // In-flight completions of a killed tenant's sends land here after the
      // CommRank is gone (intra-host hops bypass the transport's abort sweep).
      CommRank* s = find_comm(comm);
      if (s == nullptr) return;
      auto it = s->active.find(seq);
      if (it == s->active.end()) return;
      ChannelExec& c = it->second.channels[static_cast<std::size_t>(channel)];
      c.send_done = true;
      check_advance(*s, it->second, c);
    };

    if (step.send_same_host) {
      // Intra-host shared-memory channel, managed by the proxy directly.
      const gpu::DeviceConfig& dc = ctx_->gpus->gpu(gpu_).config();
      const Time dt =
          ctx_->config.intra_host_hop_latency +
          static_cast<double>(step.send_range.len) / dc.intra_host_bandwidth;
      ctx_->loop->schedule_after(dt, [deliver = std::move(deliver),
                                      on_sent = std::move(on_sent)] {
        deliver();
        on_sent();
      });
    } else {
      ChunkTransfer t;
      t.app = st.setup.app;
      t.src_gpu = gpu_;
      t.dst_gpu = step.send_gpu;
      t.bytes = step.send_range.len;
      // Route and ECMP key are resolved live (not from the plan): the
      // unsafe-reconfig ablation swaps strategy/epoch mid-flight and must
      // keep observing the swap, exactly as before the plan cache.
      auto rit = st.strategy.routes.find(
          CommStrategy::route_key(ch.channel, st.setup.rank, step.send_to));
      if (rit != st.strategy.routes.end()) t.route = rit->second;
      t.ecmp_key =
          connection_ecmp_key(st.setup.id, ch.channel, st.setup.rank,
                              step.send_to, st.epoch, ctx_->seed);
      t.deliver = std::move(deliver);
      t.on_sent = std::move(on_sent);

      const int local = ctx_->cluster->local_index(gpu_);
      const int nics = static_cast<int>(
          ctx_->cluster->host(host_).nic_nodes.size());
      transport_for_nic_(local % nics).post_send(std::move(t));
    }
  } else {
    ch.send_done = true;
  }
  check_advance(st, a, ch);
}

void ProxyEngine::check_advance(CommRank& st, ActiveColl& a, ChannelExec& ch) {
  const CollPlan::Channel& pc =
      a.plan->channels[static_cast<std::size_t>(ch.channel)];
  if (!ch.started || ch.finished || ch.cur >= pc.steps.size()) return;
  const CollPlan::Step& step = pc.steps[ch.cur];
  const bool send_ok = !step.has_send() || ch.send_done;
  const bool recv_ok =
      !step.has_recv() || ch.arrived[static_cast<std::size_t>(step.recv_slot)];
  if (send_ok && recv_ok) {
    ++ch.cur;
    ch.send_done = false;
    start_step(st, a, ch);
  }
}

void ProxyEngine::deliver_chunk(CommId comm, std::uint64_t seq, int channel,
                                int transfer_tag, std::size_t src_chunk,
                                gpu::DevicePtr src_workbuf, GpuId src_gpu) {
  // All ranks of a killed tenant's communicator are aborted together, so a
  // chunk arriving for a missing comm is a self-delivery of that teardown:
  // drop it before touching any (possibly released) source buffer.
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;
  CommRank& st = *stp;
  Delivery d{channel, transfer_tag, src_chunk, src_workbuf, src_gpu};
  auto it = st.active.find(seq);
  if (it == st.active.end() || !it->second.executing) {
    // The peer ran ahead of us (we have not launched / begun this
    // collective yet). Safe to defer: ring dependencies guarantee the
    // sender cannot overwrite the sent chunk until we participate.
    st.pending_deliveries[seq].push_back(d);
    return;
  }
  apply_delivery(st, it->second, d);
}

void ProxyEngine::apply_delivery(CommRank& st, ActiveColl& a, const Delivery& d) {
  const CollectiveArgs& args = a.req.args;
  ChannelExec& ch = a.channels[static_cast<std::size_t>(d.channel)];
  const CollPlan::Channel& pc =
      a.plan->channels[static_cast<std::size_t>(d.channel)];
  const std::int32_t slot_idx =
      (d.transfer_tag >= 0 &&
       static_cast<std::size_t>(d.transfer_tag) < pc.tag_to_slot.size())
          ? pc.tag_to_slot[static_cast<std::size_t>(d.transfer_tag)]
          : -1;
  MCCS_CHECK(slot_idx >= 0,
             "transfer tag not expected by the receiver's schedule");
  const CollPlan::RecvSlot& slot =
      pc.recv_slots[static_cast<std::size_t>(slot_idx)];
  // Source and destination chunk indices differ for AllToAll (sender reads
  // its block for *us*, we store it at the sender's block index).
  MCCS_EXPECTS(d.src_chunk < pc.chunk_ranges.size());
  const PlanByteRange& src_range = pc.chunk_ranges[d.src_chunk];
  MCCS_CHECK(src_range.len == slot.range.len, "transfer length mismatch");
  if (ctx_->config.move_data && slot.range.len > 0) {
    auto src = ctx_->gpus->gpu(d.src_gpu).bytes(
        d.src_workbuf.at_offset(src_range.offset), src_range.len);
    auto dst = ctx_->gpus->gpu(gpu_).bytes(
        a.workbuf.at_offset(slot.range.offset), slot.range.len);
    if (slot.reduce) {
      coll::reduce_bytes(dst, src, args.dtype, args.op);
    } else {
      std::memcpy(dst.data(), src.data(), src.size());
    }
  }
  ch.arrived[static_cast<std::size_t>(slot_idx)] = 1;
  check_advance(st, a, ch);
}

void ProxyEngine::finish_channel(CommRank& st, ActiveColl& a, ChannelExec& ch) {
  MCCS_CHECK(!ch.finished, "channel finished twice");
  ch.finished = true;
  const CollectiveArgs& args = a.req.args;

  if (args.kind == coll::CollectiveKind::kReduceScatter) {
    // Copy this rank's fully-reduced chunk (this channel's stripe) from the
    // scratch buffer to the user's recv buffer; ranges are precomputed (and
    // ownership asserted) at plan-build time.
    const CollPlan::Channel& pc =
        a.plan->channels[static_cast<std::size_t>(ch.channel)];
    if (ctx_->config.move_data && pc.rs_src.len > 0) {
      auto src = ctx_->gpus->gpu(gpu_).bytes(a.scratch.at_offset(pc.rs_src.offset),
                                             pc.rs_src.len);
      auto dst = ctx_->gpus->gpu(gpu_).bytes(
          args.recv.at_offset(pc.rs_dst.offset), pc.rs_dst.len);
      std::memcpy(dst.data(), src.data(), src.size());
    }
  }

  if (--a.channels_remaining == 0) complete_collective(st, a.seq);
}

void ProxyEngine::complete_collective(CommRank& st, std::uint64_t seq) {
  auto it = st.active.find(seq);
  MCCS_EXPECTS(it != st.active.end());
  ActiveColl& a = it->second;

  trace_[a.trace_index].completed = ctx_->loop->now();
  st.last_completed_seq = static_cast<std::int64_t>(seq);

  if (a.scratch.valid()) ctx_->gpus->gpu(gpu_).release(a.scratch.mem);

  st.comm_stream->complete_external(a.token);

  if (a.req.on_complete) {
    const Time completed = ctx_->loop->now();
    ctx_->loop->schedule_after(ctx_->config.service_to_shim_latency,
                               [cb = std::move(a.req.on_complete), completed] {
                                 cb(completed);
                               });
  }

  MCCS_CHECK(st.pending_deliveries.count(seq) == 0,
             "collective completed with unapplied deliveries");
  if (!a.channels.empty()) st.exec_pool.push_back(std::move(a.channels));
  st.active.erase(it);

  maybe_begin_update(st);
}

// --- point-to-point (§5) --------------------------------------------------------

void ProxyEngine::issue_p2p(CommId comm, P2pRequest request) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // tenant killed while the request was in flight
  CommRank& st = *stp;
  MCCS_EXPECTS(request.peer >= 0 && request.peer < st.setup.nranks);
  MCCS_EXPECTS(request.peer != st.setup.rank);
  MCCS_EXPECTS(request.count > 0);

  P2pPeerState& peer = st.p2p[request.peer];
  const bool is_send = request.is_send;
  const std::uint64_t index =
      is_send ? peer.next_send_index++ : peer.next_recv_index++;

  P2pOp op;
  op.req = std::move(request);
  auto& slot = is_send ? peer.sends : peer.recvs;
  auto [it, inserted] = slot.emplace(index, std::move(op));
  MCCS_CHECK(inserted, "duplicate P2P op index");

  // Unlike collectives, P2P operations do NOT serialize on a service stream:
  // each op launches as soon as its own app-stream dependency (the ready
  // event) signals, and completion signals its done event directly. This is
  // the grouped-send/recv semantics: an application may issue a send and a
  // recv back to back without deadlocking on either side's ordering.
  const int peer_rank = it->second.req.peer;
  it->second.req.ready_event->on_signal(
      [this, comm, peer_rank, index, is_send] {
        CommRank* s = find_comm(comm);
        if (s == nullptr) return;  // tenant killed before its compute finished
        p2p_launch(*s, peer_rank, index, is_send);
      });
}

void ProxyEngine::p2p_launch(CommRank& st, int peer, std::uint64_t op_index,
                             bool is_send) {
  P2pPeerState& ps = st.p2p.at(peer);
  if (is_send) {
    P2pOp& op = ps.sends.at(op_index);
    op.launched = true;
    // Announce to the receiving proxy (rendezvous step 1).
    const GpuId peer_gpu = st.setup.gpus[static_cast<std::size_t>(peer)];
    ProxyEngine* remote = &ctx_->proxy_for(peer_gpu);
    const CommId comm = st.setup.id;
    const int my_rank = st.setup.rank;
    const Bytes bytes = op.req.count * coll::dtype_size(op.req.dtype);
    ctx_->send_control(host_, ctx_->cluster->host_of_gpu(peer_gpu),
                       [remote, comm, my_rank, op_index, bytes,
                        buf = op.req.buffer, gpu = gpu_] {
                         remote->on_p2p_send_request(comm, my_rank, op_index,
                                                     bytes, buf, gpu);
                       },
                       0.0);
  } else {
    ps.recvs.at(op_index).launched = true;
    p2p_try_start_transfer(st, peer, op_index);
  }
}

void ProxyEngine::on_p2p_send_request(CommId comm, int src_rank,
                                      std::uint64_t op_index, Bytes bytes,
                                      gpu::DevicePtr src_buffer, GpuId src_gpu) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // rendezvous raced with a tenant kill
  CommRank& st = *stp;
  P2pPeerState& ps = st.p2p[src_rank];
  ps.announced[op_index] = P2pPeerState::PendingSend{bytes, src_buffer, src_gpu};
  p2p_try_start_transfer(st, src_rank, op_index);
}

void ProxyEngine::p2p_try_start_transfer(CommRank& st, int src_rank,
                                         std::uint64_t op_index) {
  // Runs at the RECEIVER: needs both the sender's announcement and a
  // launched local recv of the same index.
  P2pPeerState& ps = st.p2p[src_rank];
  auto ann = ps.announced.find(op_index);
  auto recv = ps.recvs.find(op_index);
  if (ann == ps.announced.end() || recv == ps.recvs.end() ||
      !recv->second.launched) {
    return;
  }
  const Bytes recv_bytes =
      recv->second.req.count * coll::dtype_size(recv->second.req.dtype);
  MCCS_CHECK(recv_bytes == ann->second.bytes,
             "P2P send/recv sizes disagree");

  // Tell the sender where to put the data (rendezvous step 2).
  const GpuId src_gpu = st.setup.gpus[static_cast<std::size_t>(src_rank)];
  ProxyEngine* remote = &ctx_->proxy_for(src_gpu);
  const CommId comm = st.setup.id;
  const int my_rank = st.setup.rank;
  ctx_->send_control(host_, ctx_->cluster->host_of_gpu(src_gpu),
                     [remote, comm, my_rank, op_index,
                      dst = recv->second.req.buffer] {
                       remote->on_p2p_recv_posted(comm, my_rank, op_index, dst);
                     },
                     0.0);
  ps.announced.erase(ann);
}

void ProxyEngine::on_p2p_recv_posted(CommId comm, int dst_rank,
                                     std::uint64_t op_index,
                                     gpu::DevicePtr dst_buffer) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // rendezvous raced with a tenant kill
  CommRank& st = *stp;
  auto pit = st.p2p.find(dst_rank);
  if (pit == st.p2p.end()) return;
  P2pPeerState& ps = pit->second;
  auto oit = ps.sends.find(op_index);
  if (oit == ps.sends.end()) return;
  P2pOp& op = oit->second;
  const Bytes bytes = op.req.count * coll::dtype_size(op.req.dtype);
  const GpuId dst_gpu = st.setup.gpus[static_cast<std::size_t>(dst_rank)];
  ProxyEngine* remote = &ctx_->proxy_for(dst_gpu);
  const CommId comm_id = st.setup.id;
  const int my_rank = st.setup.rank;

  auto finish = [this, remote, comm_id, my_rank, dst_rank, op_index, bytes,
                 src = op.req.buffer, dst = dst_buffer, src_gpu = gpu_,
                 dst_gpu] {
    // A kill aborts every rank of the comm, so one check suffices; skipping
    // the copy keeps us off buffers the teardown may have released.
    if (find_comm(comm_id) == nullptr) return;
    if (ctx_->config.move_data) {
      auto s = ctx_->gpus->gpu(src_gpu).bytes(src, bytes);
      auto d = ctx_->gpus->gpu(dst_gpu).bytes(dst, bytes);
      std::memcpy(d.data(), s.data(), s.size());
    }
    p2p_complete(comm_id, dst_rank, op_index, /*is_send=*/true);
    remote->p2p_complete(comm_id, my_rank, op_index, /*is_send=*/false);
  };

  if (ctx_->cluster->same_host(gpu_, dst_gpu)) {
    const gpu::DeviceConfig& dc = ctx_->gpus->gpu(gpu_).config();
    const Time dt = ctx_->config.intra_host_hop_latency +
                    static_cast<double>(bytes) / dc.intra_host_bandwidth;
    ctx_->loop->schedule_after(dt, finish);
  } else {
    ChunkTransfer t;
    t.app = st.setup.app;
    t.src_gpu = gpu_;
    t.dst_gpu = dst_gpu;
    t.bytes = bytes;
    t.ecmp_key = connection_ecmp_key(comm_id, 0x7FFF, my_rank, dst_rank,
                                     st.epoch, ctx_->seed);
    t.deliver = finish;
    t.on_sent = [] {};
    const int local = ctx_->cluster->local_index(gpu_);
    const int nics =
        static_cast<int>(ctx_->cluster->host(host_).nic_nodes.size());
    transport_for_nic_(local % nics).post_send(std::move(t));
  }
}

void ProxyEngine::p2p_complete(CommId comm, int peer, std::uint64_t op_index,
                               bool is_send) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // transfer completed into a killed tenant
  auto pit = stp->p2p.find(peer);
  if (pit == stp->p2p.end()) return;
  P2pPeerState& ps = pit->second;
  auto& slot = is_send ? ps.sends : ps.recvs;
  auto it = slot.find(op_index);
  if (it == slot.end()) return;
  it->second.req.done_event->signal(ctx_->loop->now());
  if (it->second.req.on_complete) {
    ctx_->loop->schedule_after(
        ctx_->config.service_to_shim_latency,
        [cb = std::move(it->second.req.on_complete), now = ctx_->loop->now()] {
          cb(now);
        });
  }
  slot.erase(it);
}

// --- reconfiguration protocol (Fig. 4) -----------------------------------------

ProxyEngine::RoundState& ProxyEngine::get_round(CommRank& st, std::uint64_t round) {
  auto it = st.rounds.find(round);
  if (it == st.rounds.end()) {
    RoundState rs;
    rs.values.assign(static_cast<std::size_t>(st.setup.nranks),
                     std::numeric_limits<std::int64_t>::min());
    it = st.rounds.emplace(round, std::move(rs)).first;
  }
  return it->second;
}

ProxyEngine::RoundState* ProxyEngine::active_round(CommRank& st) {
  auto it = st.rounds.find(st.last_applied_round + 1);
  if (it == st.rounds.end() || !it->second.activated) return nullptr;
  return &it->second;
}

void ProxyEngine::request_reconfigure(CommId comm, std::uint64_t round,
                                      CommStrategy new_strategy) {
  // Tolerate a comm torn down before the controller's command landed (kill
  // racing a failure-triggered reconfiguration); stale rounds for a LIVE comm
  // are still a contract violation below.
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;
  CommRank& st = *stp;
  MCCS_EXPECTS(new_strategy.num_channels() >= 1);
  if (ctx_->config.unsafe_immediate_reconfig) {
    // Ablation mode: swap the strategy with no synchronization. Ranks that
    // have not yet launched the same sequence number will now use a
    // different configuration — the Fig.-4 failure case.
    st.strategy = std::move(new_strategy);
    st.last_applied_round = std::max(st.last_applied_round, round);
    ++st.epoch;
    return;
  }
  MCCS_CHECK(round > st.last_applied_round,
             "stale reconfiguration round delivered");
  RoundState& rs = get_round(st, round);
  MCCS_CHECK(!rs.request_pending && !rs.activated,
             "duplicate reconfiguration command for a round");
  rs.request_pending = true;
  rs.strategy = std::move(new_strategy);
  try_activate(st);
}

void ProxyEngine::try_activate(CommRank& st) {
  // Rounds are processed strictly in order: only the round right after the
  // last applied one may activate. A request for a later round waits (its
  // peers' barrier values are buffered per round meanwhile).
  const std::uint64_t round = st.last_applied_round + 1;
  auto it = st.rounds.find(round);
  if (it == st.rounds.end()) return;
  RoundState& rs = it->second;
  if (!rs.request_pending || rs.activated) return;
  rs.activated = true;

  const int rank = st.setup.rank;
  MCCS_CHECK(rs.values[static_cast<std::size_t>(rank)] ==
                 std::numeric_limits<std::int64_t>::min(),
             "own barrier value contributed twice");
  rs.values[static_cast<std::size_t>(rank)] = st.last_launched_seq;
  ++rs.values_received;
  send_control_to_successor(st, round, rank, st.last_launched_seq);
  check_barrier(st, round);
}

void ProxyEngine::on_control_value(CommId comm, std::uint64_t round,
                                   int origin_rank, std::int64_t value) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // barrier value arrived after a tenant kill
  CommRank& st = *stp;
  if (round <= st.last_applied_round) return;  // late echo of a done round
  RoundState& rs = get_round(st, round);
  auto& slot = rs.values[static_cast<std::size_t>(origin_rank)];
  if (slot == std::numeric_limits<std::int64_t>::min()) {
    slot = value;
    ++rs.values_received;
    const int succ = (st.setup.rank + 1) % st.setup.nranks;
    if (succ != origin_rank) {
      send_control_to_successor(st, round, origin_rank, value);
    }
  }
  check_barrier(st, round);
}

void ProxyEngine::send_control_to_successor(CommRank& st, std::uint64_t round,
                                            int origin, std::int64_t value) {
  const int succ = (st.setup.rank + 1) % st.setup.nranks;
  const GpuId succ_gpu = st.setup.gpus[static_cast<std::size_t>(succ)];
  ProxyEngine* peer = &ctx_->proxy_for(succ_gpu);
  const HostId to = ctx_->cluster->host_of_gpu(succ_gpu);
  const CommId comm = st.setup.id;
  ctx_->send_control(host_, to,
                     [peer, comm, round, origin, value] {
                       peer->on_control_value(comm, round, origin, value);
                     },
                     0.0);
}

void ProxyEngine::check_barrier(CommRank& st, std::uint64_t round) {
  if (round != st.last_applied_round + 1) return;  // not this round's turn
  auto it = st.rounds.find(round);
  if (it == st.rounds.end()) return;
  RoundState& rs = it->second;
  if (!rs.activated || rs.have_max) return;
  if (rs.values_received < st.setup.nranks) return;
  rs.have_max = true;
  rs.max_seq = *std::max_element(rs.values.begin(), rs.values.end());
  drain_and_maybe_update(st, round);
}

void ProxyEngine::drain_and_maybe_update(CommRank& st, std::uint64_t round) {
  RoundState& rs = st.rounds.at(round);
  // Launch every held collective that must still run under the old
  // configuration (sequence number <= barrier maximum).
  while (!st.held.empty() &&
         static_cast<std::int64_t>(st.held.front().seq) <= rs.max_seq) {
    HeldLaunch h = std::move(st.held.front());
    st.held.pop_front();
    launch(st, h.seq, h.trace_index, std::move(h.request));
  }
  maybe_begin_update(st);
}

void ProxyEngine::maybe_begin_update(CommRank& st) {
  const std::uint64_t round = st.last_applied_round + 1;
  auto it = st.rounds.find(round);
  if (it == st.rounds.end()) return;
  RoundState& rs = it->second;
  if (rs.activated && rs.have_max && !rs.updating &&
      st.last_completed_seq == rs.max_seq) {
    begin_update(st, round);
  }
}

void ProxyEngine::begin_update(CommRank& st, std::uint64_t round) {
  MCCS_CHECK(st.active.empty(),
             "connection update starting with active collectives");
  RoundState& rs = st.rounds.at(round);
  rs.updating = true;
  // Tear down peer-to-peer connections: bump the epoch so re-established
  // connections re-roll their ECMP placement, and pay the setup time.
  ++st.epoch;
  const CommId comm = st.setup.id;
  ctx_->loop->schedule_after(ctx_->config.connection_setup_time,
                             [this, comm, round] { finish_update(comm, round); });
}

void ProxyEngine::finish_update(CommId comm, std::uint64_t round) {
  CommRank* stp = find_comm(comm);
  if (stp == nullptr) return;  // killed during the connection update
  CommRank& st = *stp;
  auto it = st.rounds.find(round);
  MCCS_CHECK(it != st.rounds.end() && it->second.updating,
             "finish_update without begin_update");
  st.strategy = std::move(it->second.strategy);
  st.rounds.erase(it);
  st.last_applied_round = round;

  // Resume: if the next round is already pending, activating it first keeps
  // everything issued during this update held until its own barrier — its
  // contributed value correctly reflects only launches that really happened.
  try_activate(st);

  // Release held collectives that the (possibly new) gate allows.
  const RoundState* gate = active_round(st);
  while (!st.held.empty()) {
    const std::int64_t seq = static_cast<std::int64_t>(st.held.front().seq);
    const bool allowed =
        gate == nullptr || (gate->have_max && !gate->updating && seq <= gate->max_seq);
    if (!allowed) break;
    HeldLaunch h = std::move(st.held.front());
    st.held.pop_front();
    launch(st, h.seq, h.trace_index, std::move(h.request));
  }
  maybe_begin_update(st);
}

}  // namespace mccs::svc
