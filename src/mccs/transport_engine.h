#pragma once
// Transport engine (§4.2): executes inter-host chunk transfers for the proxy
// engines as network flows, stamping each connection's explicit route (the
// policy-based-routing mechanism of §5) and enforcing traffic-scheduling QoS
// windows (§4.3, example #4) by gating and pausing tenant flows.
//
// One transport engine exists per (host, NIC); the proxy engine picks the
// engine paired with the sending GPU.

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "gpusim/memory.h"
#include "mccs/context.h"

namespace mccs::svc {

/// Periodic send windows for one application (CASSINI-style interleaving).
/// An empty `allowed` list with period > 0 blocks the app entirely.
struct TrafficSchedule {
  struct Window {
    Time begin = 0.0;  ///< offset within the period
    Time end = 0.0;
  };
  Time t0 = 0.0;      ///< phase reference
  Time period = 0.0;  ///< <= 0 means unrestricted
  std::vector<Window> allowed;

  [[nodiscard]] bool unrestricted() const { return period <= 0.0; }
  [[nodiscard]] bool open_at(Time t) const;
  /// Earliest time >= t at which sending is allowed.
  [[nodiscard]] Time next_open(Time t) const;
  /// Next schedule boundary strictly after t (window edge), for re-arming.
  [[nodiscard]] Time next_boundary(Time t) const;
};

/// One chunk transfer posted by a proxy engine.
struct ChunkTransfer {
  AppId app;
  GpuId src_gpu;
  GpuId dst_gpu;
  Bytes bytes = 0;
  RouteId route{};              ///< explicit route; invalid => ECMP
  std::uint64_t ecmp_key = 0;
  std::function<void()> deliver;  ///< receiver-side apply + notify
  std::function<void()> on_sent;  ///< sender-side step completion
};

class TransportEngine {
 public:
  /// Detection / retry counters (fault-tolerance observability). All zero on
  /// the healthy path with detection disabled. Snapshot assembled from the
  /// fabric's MetricsRegistry — the registry's labeled counters (host/nic)
  /// are the backing store, this struct is the accessor-compatible view.
  struct Stats {
    std::uint64_t deadline_checks = 0;  ///< deadline timers that fired
    std::uint64_t retries = 0;          ///< re-posts after a no-progress window
    std::uint64_t escalations = 0;      ///< stall reports sent to the handler
  };

  TransportEngine(ServiceContext& ctx, HostId host, int nic_index);

  TransportEngine(const TransportEngine&) = delete;
  TransportEngine& operator=(const TransportEngine&) = delete;

  /// Post an inter-host send. Applies the traffic schedule of the owning
  /// app, then starts a network flow; on completion the receiver's deliver
  /// callback runs before the sender's on_sent (RDMA-write-then-CQE order).
  /// With stall detection enabled (ServiceConfig::chunk_deadline_slack > 0)
  /// the send also gets a no-progress deadline and a bounded retry ladder.
  void post_send(ChunkTransfer transfer);

  /// Install / replace the QoS traffic schedule for an app. Active flows of
  /// that app are paused or resumed to match the schedule immediately.
  void set_schedule(AppId app, TrafficSchedule schedule);
  void clear_schedule(AppId app);

  /// Tenant teardown: cancel every in-flight flow, pending deadline timer,
  /// and gated send owned by `app`. Their deliver/on_sent callbacks never
  /// run. Returns the number of sends dropped.
  std::size_t abort_app(AppId app);

  /// In-flight (posted, not yet delivered) sends of one app on this engine.
  [[nodiscard]] std::size_t inflight_count(AppId app) const;

  [[nodiscard]] Stats stats() const {
    return Stats{deadline_checks_->value(), retries_->value(),
                 escalations_->value()};
  }
  [[nodiscard]] int nic_index() const { return nic_index_; }

 private:
  /// One posted send for its whole lifetime (across retries): the transfer's
  /// callbacks, the current network flow, and the detection state.
  struct Inflight {
    ChunkTransfer transfer;
    FlowId flow{};
    int attempts = 0;        ///< completed no-progress windows (retry count)
    Bytes watermark = 0;     ///< flow_remaining at the last deadline check
    Time deadline_dt = 0.0;  ///< per-arm deadline window
    Time posted = 0.0;       ///< when post_send accepted it (telemetry span)
    sim::EventLoop::Handle deadline;
  };

  struct AppGate {
    TrafficSchedule schedule;
    std::vector<std::uint64_t> active_sends;  ///< send ids with a live flow
    std::deque<std::uint64_t> waiting;  ///< posted while the window is closed
    sim::EventLoop::Handle timer;
    bool gated_closed = false;
  };

  void start_flow(std::uint64_t sid, AppGate* gate);
  void finish_send(std::uint64_t sid);
  void arm_deadline(std::uint64_t sid);
  void on_deadline(std::uint64_t sid);
  void arm_timer(AppId app, AppGate& gate);
  void on_boundary(AppId app);

  ServiceContext* ctx_;
  HostId host_;
  int nic_index_;
  std::unordered_map<std::uint32_t, AppGate> gates_;      ///< by AppId
  std::unordered_map<std::uint64_t, Inflight> inflight_;  ///< by send id
  std::uint64_t next_send_id_ = 0;
  // Registry-backed counters, interned once at construction (labels:
  // host/nic). Fallback-owned when no telemetry is wired (bare-engine tests).
  telemetry::Counter* deadline_checks_ = nullptr;
  telemetry::Counter* retries_ = nullptr;
  telemetry::Counter* escalations_ = nullptr;
  telemetry::Histogram* send_latency_us_ = nullptr;  ///< enabled mode only
  telemetry::Counter own_deadline_checks_, own_retries_, own_escalations_;
  int track_ = -1;  ///< lazily interned timeline track (enabled mode only)
};

}  // namespace mccs::svc
