#pragma once
// Provider observability tooling on top of the management API (§4.3): export
// collective traces and communicator state as JSON lines, the format an
// external controller, dashboard, or offline profiler would ingest.
//
// Writing JSON by hand (no third-party dependency) keeps the repository
// self-contained; the emitter covers exactly the value shapes these records
// need (strings, integers, floats, flat arrays).

#include <string>
#include <vector>

#include "mccs/fabric.h"
#include "mccs/trace.h"

namespace mccs::svc {

/// One trace record as a JSON object (single line, no trailing newline).
std::string trace_record_to_json(const TraceRecord& record);

/// All records as JSON-lines text (one object per line).
std::string trace_to_json_lines(const std::vector<TraceRecord>& records);

/// A communicator's provider-visible state: placement + current strategy.
std::string comm_info_to_json(const CommInfo& info, const CommStrategy& strategy);

/// Full management snapshot of a fabric: every communicator with its
/// strategy, as a JSON array.
std::string management_snapshot_json(Fabric& fabric);

}  // namespace mccs::svc
