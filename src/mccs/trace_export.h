#pragma once
// Provider observability tooling on top of the management API (§4.3): export
// collective traces and communicator state as JSON lines, the format an
// external controller, dashboard, or offline profiler would ingest; plus the
// Chrome trace-event export that merges the fabric's telemetry timeline with
// the collective TraceRecords into one file Perfetto loads directly.
//
// Writing JSON by hand (no third-party dependency) keeps the repository
// self-contained; string escaping and shortest-round-trip double formatting
// come from telemetry/json.h so exported virtual timestamps parse back
// bit-identically.

#include <string>
#include <vector>

#include "mccs/fabric.h"
#include "mccs/trace.h"

namespace mccs::svc {

/// One trace record as a JSON object (single line, no trailing newline).
std::string trace_record_to_json(const TraceRecord& record);

/// All records as JSON-lines text (one object per line).
std::string trace_to_json_lines(const std::vector<TraceRecord>& records);

/// A communicator's provider-visible state: placement + current strategy.
std::string comm_info_to_json(const CommInfo& info, const CommStrategy& strategy);

/// Full management snapshot of a fabric: every communicator with its
/// strategy, as a JSON array.
std::string management_snapshot_json(Fabric& fabric);

/// The fabric's whole run as one Chrome trace-event JSON document: every
/// telemetry timeline event (frontend/transport/netsim/policy spans, policy
/// and recovery instants, link counters) plus every completed collective
/// TraceRecord as a "proxy" span on a per-(comm, rank) track. Loads in
/// Perfetto / chrome://tracing. Timeline events require the fabric to have
/// run with ServiceConfig::enable_telemetry; the TraceRecord spans are
/// always present.
std::string chrome_trace_json(Fabric& fabric);

}  // namespace mccs::svc
