#include "mccs/service.h"

#include "mccs/fabric.h"

namespace mccs::svc {

Service::Service(ServiceContext& ctx, Fabric& fabric, HostId host)
    : ctx_(&ctx), fabric_(&fabric), host_(host) {
  const cluster::HostInfo& info = ctx_->cluster->host(host);
  for (GpuId gpu : info.gpus) {
    proxies_.emplace(gpu.get(),
                     std::make_unique<ProxyEngine>(
                         ctx, host, gpu,
                         [this](int nic) -> TransportEngine& { return transport(nic); }));
  }
  transports_.reserve(info.nic_nodes.size());
  for (std::size_t nic = 0; nic < info.nic_nodes.size(); ++nic) {
    transports_.push_back(
        std::make_unique<TransportEngine>(ctx, host, static_cast<int>(nic)));
  }
}

Shim& Service::connect(AppId app, GpuId gpu) {
  MCCS_EXPECTS(ctx_->cluster->host_of_gpu(gpu) == host_);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(app.get()) << 32) | gpu.get();
  auto it = shims_.find(key);
  if (it == shims_.end()) {
    it = shims_.emplace(key, std::make_unique<Shim>(*ctx_, *this, app, gpu)).first;
  }
  return *it->second;
}

ProxyEngine& Service::proxy(GpuId gpu) {
  auto it = proxies_.find(gpu.get());
  MCCS_EXPECTS(it != proxies_.end());
  return *it->second;
}

TransportEngine& Service::transport(int nic_index) {
  MCCS_EXPECTS(nic_index >= 0 &&
               static_cast<std::size_t>(nic_index) < transports_.size());
  return *transports_[static_cast<std::size_t>(nic_index)];
}

FrontendEngine& Service::frontend(AppId app) {
  auto it = frontends_.find(app.get());
  if (it == frontends_.end()) {
    it = frontends_
             .emplace(app.get(),
                      std::make_unique<FrontendEngine>(*ctx_, host_, app))
             .first;
  }
  return *it->second;
}

std::vector<TraceRecord> Service::collect_trace() const {
  std::vector<TraceRecord> out;
  for (const auto& [id, proxy] : proxies_) {
    const auto& t = proxy->trace();
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace mccs::svc
