#include "mccs/trace_export.h"

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace mccs::svc {
namespace {

void append_kv(std::string& out, const char* key, const std::string& value,
               bool quote, bool first = false) {
  if (!first) out += ",";
  out += "\"";
  telemetry::append_escaped_json(out, key);
  out += "\":";
  if (quote) {
    out += "\"";
    telemetry::append_escaped_json(out, value);
    out += "\"";
  } else {
    out += value;
  }
}

std::string num(double v) { return telemetry::format_double(v); }

}  // namespace

std::string trace_record_to_json(const TraceRecord& record) {
  std::string out = "{";
  append_kv(out, "app", std::to_string(record.app.get()), false, true);
  append_kv(out, "comm", std::to_string(record.comm.get()), false);
  append_kv(out, "rank", std::to_string(record.rank), false);
  append_kv(out, "seq", std::to_string(record.seq), false);
  append_kv(out, "kind", coll::to_string(record.kind), true);
  append_kv(out, "bytes", std::to_string(record.bytes), false);
  append_kv(out, "issued", num(record.issued), false);
  append_kv(out, "launched", num(record.launched), false);
  append_kv(out, "started", num(record.started), false);
  append_kv(out, "completed", num(record.completed), false);
  out += "}";
  return out;
}

std::string trace_to_json_lines(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const TraceRecord& r : records) {
    out += trace_record_to_json(r);
    out += "\n";
  }
  return out;
}

std::string comm_info_to_json(const CommInfo& info, const CommStrategy& strategy) {
  std::string out = "{";
  append_kv(out, "comm", std::to_string(info.id.get()), false, true);
  append_kv(out, "app", std::to_string(info.app.get()), false);
  append_kv(out, "nranks", std::to_string(info.nranks), false);
  out += ",\"gpus\":[";
  for (std::size_t r = 0; r < info.gpus.size(); ++r) {
    if (r > 0) out += ",";
    out += std::to_string(info.gpus[r].get());
  }
  out += "]";
  append_kv(out, "algorithm", coll::algorithm_name(strategy.algorithm), true);
  append_kv(out, "channels", std::to_string(strategy.num_channels()), false);
  out += ",\"channel_orders\":[";
  for (std::size_t c = 0; c < strategy.channel_orders.size(); ++c) {
    if (c > 0) out += ",";
    out += "[";
    const auto& order = strategy.channel_orders[c].order();
    for (std::size_t p = 0; p < order.size(); ++p) {
      if (p > 0) out += ",";
      out += std::to_string(order[p]);
    }
    out += "]";
  }
  out += "]";
  append_kv(out, "explicit_routes", std::to_string(strategy.routes.size()), false);
  out += "}";
  return out;
}

std::string management_snapshot_json(Fabric& fabric) {
  std::string out = "[";
  bool first = true;
  for (const CommInfo& info : fabric.list_communicators()) {
    if (!first) out += ",";
    first = false;
    out += comm_info_to_json(info, fabric.strategy_of(info.id));
  }
  out += "]";
  return out;
}

std::string chrome_trace_json(Fabric& fabric) {
  // Collective records become "proxy" spans on per-(comm, rank) tracks in a
  // side timeline merged with the runtime one under a disjoint pid block.
  telemetry::Timeline records;
  for (const TraceRecord& r : fabric.trace_all()) {
    if (r.completed < r.issued) continue;  // issued but never completed
    const int t = records.track("comm " + std::to_string(r.comm.get()),
                                "rank " + std::to_string(r.rank));
    records.span(t, "proxy", coll::kind_name(r.kind), r.issued, r.completed,
                 {{"seq", r.seq},
                  {"bytes", r.bytes},
                  {"launched_us", r.launched * 1e6},
                  {"started_us", r.started * 1e6}});
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  fabric.telemetry().timeline().append_chrome_events(out, /*pid_base=*/0, first);
  records.append_chrome_events(out, /*pid_base=*/1000, first);
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace mccs::svc
