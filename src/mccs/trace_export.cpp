#include "mccs/trace_export.h"

#include <sstream>

namespace mccs::svc {
namespace {

void append_kv(std::ostringstream& os, const char* key, const std::string& value,
               bool quote, bool first = false) {
  if (!first) os << ",";
  os << "\"" << key << "\":";
  if (quote) {
    os << "\"" << value << "\"";
  } else {
    os << value;
  }
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

std::string trace_record_to_json(const TraceRecord& record) {
  std::ostringstream os;
  os << "{";
  append_kv(os, "app", std::to_string(record.app.get()), false, true);
  append_kv(os, "comm", std::to_string(record.comm.get()), false);
  append_kv(os, "rank", std::to_string(record.rank), false);
  append_kv(os, "seq", std::to_string(record.seq), false);
  append_kv(os, "kind", coll::to_string(record.kind), true);
  append_kv(os, "bytes", std::to_string(record.bytes), false);
  append_kv(os, "issued", num(record.issued), false);
  append_kv(os, "launched", num(record.launched), false);
  append_kv(os, "started", num(record.started), false);
  append_kv(os, "completed", num(record.completed), false);
  os << "}";
  return os.str();
}

std::string trace_to_json_lines(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  for (const TraceRecord& r : records) os << trace_record_to_json(r) << "\n";
  return os.str();
}

std::string comm_info_to_json(const CommInfo& info, const CommStrategy& strategy) {
  std::ostringstream os;
  os << "{";
  append_kv(os, "comm", std::to_string(info.id.get()), false, true);
  append_kv(os, "app", std::to_string(info.app.get()), false);
  append_kv(os, "nranks", std::to_string(info.nranks), false);
  os << ",\"gpus\":[";
  for (std::size_t r = 0; r < info.gpus.size(); ++r) {
    if (r > 0) os << ",";
    os << info.gpus[r].get();
  }
  os << "]";
  append_kv(os, "algorithm",
            strategy.algorithm == coll::Algorithm::kRing ? "ring" : "tree", true);
  append_kv(os, "channels", std::to_string(strategy.num_channels()), false);
  os << ",\"channel_orders\":[";
  for (std::size_t c = 0; c < strategy.channel_orders.size(); ++c) {
    if (c > 0) os << ",";
    os << "[";
    const auto& order = strategy.channel_orders[c].order();
    for (std::size_t p = 0; p < order.size(); ++p) {
      if (p > 0) os << ",";
      os << order[p];
    }
    os << "]";
  }
  os << "]";
  append_kv(os, "explicit_routes", std::to_string(strategy.routes.size()), false);
  os << "}";
  return os.str();
}

std::string management_snapshot_json(Fabric& fabric) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const CommInfo& info : fabric.list_communicators()) {
    if (!first) os << ",";
    first = false;
    os << comm_info_to_json(info, fabric.strategy_of(info.id));
  }
  os << "]";
  return os.str();
}

}  // namespace mccs::svc
