#pragma once
// Public collective-communication API types for MCCS.
//
// The shim exposes an NCCL-shaped interface (§4.1): communicators are
// created from a UniqueId rendezvous (the ncclUniqueId analogue), and each
// collective call names device buffers, an element count, a datatype, a
// reduction operator, and the application stream that orders the collective
// against the app's compute kernels.
//
// Buffer-count semantics match NCCL:
//   AllReduce      send[count]        -> recv[count]
//   AllGather      send[count]        -> recv[count * nranks]
//   ReduceScatter  send[count*nranks] -> recv[count]
//   Broadcast      send[count]@root   -> recv[count]  (in-place allowed)
//   Reduce         send[count]        -> recv[count]@root
//   AllToAll       send[count*nranks] -> recv[count*nranks] (count per peer)
//   Gather         send[count]        -> recv[count*nranks]@root
//   Scatter        send[count*nranks]@root -> recv[count]

#include <cstdint>
#include <functional>

#include "collectives/types.h"
#include "common/ids.h"
#include "common/units.h"
#include "gpusim/memory.h"

namespace mccs::svc {

/// Rendezvous token for communicator creation (ncclUniqueId analogue).
struct UniqueId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(UniqueId a, UniqueId b) { return a.value == b.value; }
};

/// Arguments of one collective operation as issued by the application.
struct CollectiveArgs {
  coll::CollectiveKind kind = coll::CollectiveKind::kAllReduce;
  gpu::DevicePtr send;
  gpu::DevicePtr recv;
  std::size_t count = 0;  ///< elements; see header comment for per-op meaning
  coll::DataType dtype = coll::DataType::kFloat32;
  coll::ReduceOp op = coll::ReduceOp::kSum;
  int root = 0;  ///< broadcast only

  /// Total payload bytes moved per rank, as the paper's "data size" axis
  /// measures it (output buffer size; see §6.2).
  [[nodiscard]] Bytes output_bytes(int nranks) const {
    const Bytes e = coll::dtype_size(dtype);
    switch (kind) {
      case coll::CollectiveKind::kAllGather:
      case coll::CollectiveKind::kAllToAll:
      case coll::CollectiveKind::kGather:
      case coll::CollectiveKind::kScatter:
        return static_cast<Bytes>(count) * static_cast<Bytes>(nranks) * e;
      default:
        return static_cast<Bytes>(count) * e;
    }
  }
};

/// Completion callback: virtual time at which the collective completed.
using CompletionCallback = std::function<void(Time)>;

}  // namespace mccs::svc
