#pragma once
// MCCS shim library (§4.1): the thin, NCCL-shaped client linked into tenant
// applications. It forwards memory management and collective invocations to
// the MCCS service over the (latency-modelled) shared-memory command queue,
// and wires up the event-based stream synchronisation:
//
//   issue:   record `ready` on the app stream  ->  comm stream waits on it
//   finish:  comm stream records `done`        ->  app stream waits on it
//
// so the tenant keeps ordinary CUDA stream semantics while the service owns
// the communication.

#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "gpusim/runtime.h"
#include "mccs/api.h"
#include "mccs/context.h"

namespace mccs::svc {

class Service;

class Shim {
 public:
  Shim(ServiceContext& ctx, Service& service, AppId app, GpuId gpu);

  Shim(const Shim&) = delete;
  Shim& operator=(const Shim&) = delete;

  [[nodiscard]] AppId app() const { return app_; }
  [[nodiscard]] GpuId gpu() const { return gpu_; }

  // --- memory (redirected to the service) ------------------------------------
  gpu::DevicePtr alloc(Bytes size);
  void free(gpu::DevicePtr ptr);

  /// An application-owned stream on this rank's GPU (plain CUDA analogue;
  /// not visible to the service except through shared events).
  gpu::Stream& create_app_stream();

  // --- communicators -----------------------------------------------------------
  /// Join a communicator rendezvous. `on_ready(comm)` fires once every rank
  /// has joined and the service installed the communicator.
  void comm_init_rank(UniqueId uid, int nranks, int rank,
                      std::function<void(CommId)> on_ready);
  void comm_destroy(CommId comm);

  // --- collectives ---------------------------------------------------------------
  /// Generic entry point; the named wrappers below are the public API.
  void collective(CommId comm, CollectiveArgs args, gpu::Stream& app_stream,
                  CompletionCallback on_complete = {});

  void all_reduce(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                  std::size_t count, coll::DataType dtype, coll::ReduceOp op,
                  gpu::Stream& stream, CompletionCallback on_complete = {});
  void all_gather(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                  std::size_t send_count, coll::DataType dtype,
                  gpu::Stream& stream, CompletionCallback on_complete = {});
  void reduce_scatter(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                      std::size_t recv_count, coll::DataType dtype,
                      coll::ReduceOp op, gpu::Stream& stream,
                      CompletionCallback on_complete = {});
  void broadcast(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                 std::size_t count, coll::DataType dtype, int root,
                 gpu::Stream& stream, CompletionCallback on_complete = {});
  void reduce(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
              std::size_t count, coll::DataType dtype, coll::ReduceOp op,
              int root, gpu::Stream& stream, CompletionCallback on_complete = {});
  void all_to_all(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
                  std::size_t count_per_peer, coll::DataType dtype,
                  gpu::Stream& stream, CompletionCallback on_complete = {});

  void gather(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
              std::size_t count, coll::DataType dtype, int root,
              gpu::Stream& stream, CompletionCallback on_complete = {});
  void scatter(CommId comm, gpu::DevicePtr send, gpu::DevicePtr recv,
               std::size_t count, coll::DataType dtype, int root,
               gpu::Stream& stream, CompletionCallback on_complete = {});

  // --- point-to-point (§5) ----------------------------------------------------
  /// Send `count` elements to `peer`; pairs with the peer's k-th recv from
  /// this rank. Independent of the collective sequence space.
  void send(CommId comm, int peer, gpu::DevicePtr buffer, std::size_t count,
            coll::DataType dtype, gpu::Stream& stream,
            CompletionCallback on_complete = {});
  /// Receive `count` elements from `peer`.
  void recv(CommId comm, int peer, gpu::DevicePtr buffer, std::size_t count,
            coll::DataType dtype, gpu::Stream& stream,
            CompletionCallback on_complete = {});

 private:
  ServiceContext* ctx_;
  Service* service_;
  AppId app_;
  GpuId gpu_;
};

}  // namespace mccs::svc
