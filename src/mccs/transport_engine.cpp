#include "mccs/transport_engine.h"

#include <algorithm>
#include <cmath>

namespace mccs::svc {

bool TrafficSchedule::open_at(Time t) const {
  if (unrestricted()) return true;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  for (const Window& w : allowed) {
    if (phase >= w.begin && phase < w.end) return true;
  }
  return false;
}

Time TrafficSchedule::next_open(Time t) const {
  if (unrestricted() || open_at(t)) return t;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  Time best = kTimeInfinity;
  for (const Window& w : allowed) {
    const double delta = w.begin >= phase ? w.begin - phase : w.begin + period - phase;
    best = std::min(best, t + delta);
  }
  return best;  // kTimeInfinity if no windows at all (fully blocked)
}

Time TrafficSchedule::next_boundary(Time t) const {
  if (unrestricted()) return kTimeInfinity;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  Time best = t + (period - phase);  // period wrap is always a boundary
  for (const Window& w : allowed) {
    for (double edge : {w.begin, w.end}) {
      const double delta = edge > phase ? edge - phase : edge + period - phase;
      if (delta > 1e-12) best = std::min(best, t + delta);
    }
  }
  return best;
}

void TransportEngine::post_send(ChunkTransfer transfer) {
  MCCS_EXPECTS(transfer.deliver && transfer.on_sent);
  auto it = gates_.find(transfer.app.get());
  AppGate* gate = it == gates_.end() ? nullptr : &it->second;
  if (gate != nullptr && !gate->schedule.open_at(ctx_->loop->now())) {
    const AppId app = transfer.app;
    gate->waiting.push_back(std::move(transfer));
    arm_timer(app, *gate);
    return;
  }
  start_flow(std::move(transfer), gate);
}

void TransportEngine::start_flow(ChunkTransfer transfer, AppGate* gate) {
  const AppId gate_app = transfer.app;
  const cluster::Cluster& cl = *ctx_->cluster;
  net::FlowSpec spec;
  spec.src = cl.nic_node_of_gpu(transfer.src_gpu);
  spec.dst = cl.nic_node_of_gpu(transfer.dst_gpu);
  spec.size = std::max<Bytes>(transfer.bytes, 1);  // zero-byte steps still sync
  spec.route = transfer.route;
  spec.ecmp_key = transfer.ecmp_key;
  spec.app = transfer.app;
  spec.start_latency =
      ctx_->config.network_hop_latency + ctx_->config.transport_step_overhead;

  const AppId app = transfer.app;
  auto deliver = std::move(transfer.deliver);
  auto on_sent = std::move(transfer.on_sent);
  spec.on_complete = [this, app, deliver = std::move(deliver),
                      on_sent = std::move(on_sent)](FlowId id, Time) {
    auto git = gates_.find(app.get());
    if (git != gates_.end()) {
      auto& fl = git->second.active_flows;
      fl.erase(std::remove(fl.begin(), fl.end(), id), fl.end());
    }
    deliver();   // RDMA write lands at the receiver...
    on_sent();   // ...then the sender sees its completion event
  };

  const FlowId fid = ctx_->network->start_flow(std::move(spec));
  if (gate != nullptr) {
    gate->active_flows.push_back(fid);
    arm_timer(gate_app, *gate);  // pause this flow at the next window close
  }
}

void TransportEngine::set_schedule(AppId app, TrafficSchedule schedule) {
  AppGate& gate = gates_[app.get()];
  gate.schedule = std::move(schedule);
  on_boundary(app);  // apply immediately and arm the timer
}

void TransportEngine::clear_schedule(AppId app) {
  auto it = gates_.find(app.get());
  if (it == gates_.end()) return;
  AppGate& gate = it->second;
  ctx_->loop->cancel(gate.timer);
  // Release everything that was held back.
  if (gate.gated_closed) {
    for (FlowId f : gate.active_flows) {
      if (ctx_->network->flow_active(f)) ctx_->network->resume_flow(f);
    }
  }
  std::deque<ChunkTransfer> waiting = std::move(gate.waiting);
  gates_.erase(it);
  for (auto& t : waiting) start_flow(std::move(t), nullptr);
}

void TransportEngine::arm_timer(AppId app, AppGate& gate) {
  if (ctx_->loop->pending(gate.timer)) return;
  // Only keep a timer while there is something to gate: pending sends, or
  // in-flight flows that must pause at the next close. Otherwise the event
  // loop would never drain.
  if (gate.waiting.empty() && gate.active_flows.empty()) return;
  Time boundary = gate.schedule.next_boundary(ctx_->loop->now());
  if (boundary >= kTimeInfinity) return;
  // Guarantee strictly-future firing: floating-point folding can place the
  // boundary at (or epsilon before) `now`, which would livelock the loop.
  boundary = std::max(boundary, ctx_->loop->now() + nanos(100));
  gate.timer = ctx_->loop->schedule_at(boundary, [this, app] { on_boundary(app); });
}

void TransportEngine::on_boundary(AppId app) {
  auto it = gates_.find(app.get());
  if (it == gates_.end()) return;
  AppGate& gate = it->second;
  const bool open = gate.schedule.open_at(ctx_->loop->now());

  // Pause or resume in-flight flows to track the window state.
  gate.active_flows.erase(
      std::remove_if(gate.active_flows.begin(), gate.active_flows.end(),
                     [this](FlowId f) { return !ctx_->network->flow_active(f); }),
      gate.active_flows.end());
  for (FlowId f : gate.active_flows) {
    if (open) {
      ctx_->network->resume_flow(f);
    } else {
      ctx_->network->pause_flow(f);
    }
  }
  gate.gated_closed = !open;

  if (open) {
    std::deque<ChunkTransfer> waiting = std::move(gate.waiting);
    gate.waiting.clear();
    for (auto& t : waiting) start_flow(std::move(t), &gate);
  }
  arm_timer(app, gate);
}

}  // namespace mccs::svc
