#include "mccs/transport_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "netsim/routing.h"

namespace mccs::svc {

TransportEngine::TransportEngine(ServiceContext& ctx, HostId host, int nic_index)
    : ctx_(&ctx), host_(host), nic_index_(nic_index) {
  if (ctx_->telemetry != nullptr) {
    telemetry::MetricsRegistry& reg = ctx_->telemetry->metrics();
    const telemetry::Labels labels{{"host", std::to_string(host_.get())},
                                   {"nic", std::to_string(nic_index_)}};
    deadline_checks_ = &reg.counter("transport_deadline_checks", labels);
    retries_ = &reg.counter("transport_retries", labels);
    escalations_ = &reg.counter("transport_escalations", labels);
    send_latency_us_ = &reg.histogram(
        "transport_send_latency_us",
        {50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0, 20000.0, 100000.0}, labels);
  } else {
    // Bare-engine construction (unit tests without a Fabric): fall back to
    // privately owned counters so stats() keeps working.
    deadline_checks_ = &own_deadline_checks_;
    retries_ = &own_retries_;
    escalations_ = &own_escalations_;
  }
}

bool TrafficSchedule::open_at(Time t) const {
  if (unrestricted()) return true;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  for (const Window& w : allowed) {
    if (phase >= w.begin && phase < w.end) return true;
  }
  return false;
}

Time TrafficSchedule::next_open(Time t) const {
  if (unrestricted() || open_at(t)) return t;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  Time best = kTimeInfinity;
  for (const Window& w : allowed) {
    const double delta = w.begin >= phase ? w.begin - phase : w.begin + period - phase;
    best = std::min(best, t + delta);
  }
  return best;  // kTimeInfinity if no windows at all (fully blocked)
}

Time TrafficSchedule::next_boundary(Time t) const {
  if (unrestricted()) return kTimeInfinity;
  const double phase = std::fmod(std::max(t - t0, 0.0), period);
  Time best = t + (period - phase);  // period wrap is always a boundary
  for (const Window& w : allowed) {
    for (double edge : {w.begin, w.end}) {
      const double delta = edge > phase ? edge - phase : edge + period - phase;
      if (delta > 1e-12) best = std::min(best, t + delta);
    }
  }
  return best;
}

void TransportEngine::post_send(ChunkTransfer transfer) {
  MCCS_EXPECTS(transfer.deliver && transfer.on_sent);
  const AppId app = transfer.app;
  const std::uint64_t sid = next_send_id_++;
  Inflight send;
  send.transfer = std::move(transfer);
  send.posted = ctx_->loop->now();
  inflight_.emplace(sid, std::move(send));

  auto it = gates_.find(app.get());
  AppGate* gate = it == gates_.end() ? nullptr : &it->second;
  if (gate != nullptr && !gate->schedule.open_at(ctx_->loop->now())) {
    gate->waiting.push_back(sid);
    arm_timer(app, *gate);
    return;
  }
  start_flow(sid, gate);
}

void TransportEngine::start_flow(std::uint64_t sid, AppGate* gate) {
  Inflight& s = inflight_.at(sid);
  const ChunkTransfer& t = s.transfer;
  const cluster::Cluster& cl = *ctx_->cluster;
  net::FlowSpec spec;
  spec.src = cl.nic_node_of_gpu(t.src_gpu);
  spec.dst = cl.nic_node_of_gpu(t.dst_gpu);
  spec.size = std::max<Bytes>(t.bytes, 1);  // zero-byte steps still sync
  if (s.attempts == 0) {
    spec.route = t.route;
    spec.ecmp_key = t.ecmp_key;
  } else {
    // Retry: abandon the connection's pinned route and re-hash the ECMP
    // placement — the cheapest way off a dead path. Deterministic per
    // (connection key, attempt).
    spec.route = RouteId{};
    spec.ecmp_key = net::Routing::ecmp_hash(
        t.ecmp_key + static_cast<std::uint64_t>(s.attempts));
  }
  spec.app = t.app;
  spec.start_latency =
      ctx_->config.network_hop_latency + ctx_->config.transport_step_overhead +
      ctx_->config.transport_retry_backoff * std::min(s.attempts, 16);
  spec.on_complete = [this, sid](FlowId, Time) { finish_send(sid); };

  s.flow = ctx_->network->start_flow(std::move(spec));
  s.watermark = std::max<Bytes>(t.bytes, 1);
  if (gate != nullptr) {
    gate->active_sends.push_back(sid);
    arm_timer(t.app, *gate);  // pause this flow at the next window close
  }
  arm_deadline(sid);
}

void TransportEngine::finish_send(std::uint64_t sid) {
  auto it = inflight_.find(sid);
  MCCS_ASSERT(it != inflight_.end());
  Inflight s = std::move(it->second);
  inflight_.erase(it);
  ctx_->loop->cancel(s.deadline);
  auto git = gates_.find(s.transfer.app.get());
  if (git != gates_.end()) {
    auto& v = git->second.active_sends;
    v.erase(std::remove(v.begin(), v.end(), sid), v.end());
  }
  if (ctx_->telemetry != nullptr && ctx_->telemetry->enabled()) {
    const Time now = ctx_->loop->now();
    if (track_ < 0) {
      track_ = ctx_->telemetry->timeline().track(
          "host " + std::to_string(host_.get()),
          "transport nic " + std::to_string(nic_index_));
    }
    // src_gpu is implied by the track (this host's NIC) plus the proxy-layer
    // span; keeping the arg list lean matters — this is the hottest engine
    // recording site.
    ctx_->telemetry->timeline().span(
        track_, "transport", "chunk_send", s.posted, now,
        {{"app", static_cast<std::uint64_t>(s.transfer.app.get())},
         {"dst_gpu", static_cast<std::uint64_t>(s.transfer.dst_gpu.get())},
         {"bytes", s.transfer.bytes},
         {"attempts", static_cast<std::int64_t>(s.attempts)}});
    if (send_latency_us_ != nullptr) {
      send_latency_us_->observe((now - s.posted) * 1e6);
    }
  }
  s.transfer.deliver();  // RDMA write lands at the receiver...
  s.transfer.on_sent();  // ...then the sender sees its completion event
}

void TransportEngine::arm_deadline(std::uint64_t sid) {
  const double slack = ctx_->config.chunk_deadline_slack;
  if (slack <= 0.0) return;  // detection disabled: zero healthy-path cost
  Inflight& s = inflight_.at(sid);
  // Analytic lower bound: the flow's fixed start latency plus serialization
  // at the nominal bottleneck capacity of its current path (full capacity on
  // purpose — the bound must not loosen when the fault itself degrades it).
  Bandwidth bottleneck = std::numeric_limits<Bandwidth>::infinity();
  for (LinkId l : ctx_->network->flow_path(s.flow)) {
    bottleneck =
        std::min(bottleneck, ctx_->network->topology().link(l).capacity);
  }
  const double bytes = static_cast<double>(std::max<Bytes>(s.transfer.bytes, 1));
  Time bound = ctx_->config.network_hop_latency +
               ctx_->config.transport_step_overhead +
               ctx_->config.transport_retry_backoff * std::min(s.attempts, 16);
  if (std::isfinite(bottleneck) && bottleneck > 0.0) bound += bytes / bottleneck;
  s.deadline_dt = std::max(slack * bound, ctx_->config.chunk_deadline_floor);
  s.deadline =
      ctx_->loop->schedule_after(s.deadline_dt, [this, sid] { on_deadline(sid); });
}

void TransportEngine::on_deadline(std::uint64_t sid) {
  auto it = inflight_.find(sid);
  if (it == inflight_.end()) return;
  Inflight& s = it->second;
  s.deadline = {};
  deadline_checks_->increment();
  if (!ctx_->network->flow_active(s.flow)) return;  // completing this instant

  auto git = gates_.find(s.transfer.app.get());
  const bool gated =
      git != gates_.end() && git->second.gated_closed;
  const Bytes remaining = ctx_->network->flow_remaining(s.flow);
  if (gated || remaining < s.watermark) {
    // Progress (or deliberately paused by QoS): re-arm and keep watching.
    // Firing here never perturbs simulated flow state, so enabling detection
    // does not change healthy-path results.
    s.watermark = remaining;
    s.deadline = ctx_->loop->schedule_after(s.deadline_dt,
                                            [this, sid] { on_deadline(sid); });
    return;
  }

  // A full deadline window with zero progress: retry on a re-hashed path.
  ++s.attempts;
  retries_->increment();
  if (ctx_->telemetry != nullptr && ctx_->telemetry->enabled()) {
    if (track_ < 0) {
      track_ = ctx_->telemetry->timeline().track(
          "host " + std::to_string(host_.get()),
          "transport nic " + std::to_string(nic_index_));
    }
    ctx_->telemetry->timeline().instant(
        track_, "transport", "retry", ctx_->loop->now(),
        {{"app", static_cast<std::uint64_t>(s.transfer.app.get())},
         {"dst_gpu", static_cast<std::uint64_t>(s.transfer.dst_gpu.get())},
         {"attempts", static_cast<std::int64_t>(s.attempts)}});
  }
  const bool escalate = s.attempts > ctx_->config.transport_max_retries &&
                        ctx_->on_transport_stall != nullptr;
  StallReport report;
  if (escalate) {
    report.app = s.transfer.app;
    report.host = host_;
    report.src_gpu = s.transfer.src_gpu;
    report.dst_gpu = s.transfer.dst_gpu;
    report.bytes = s.transfer.bytes;
    report.attempts = s.attempts;
    report.path = ctx_->network->flow_path(s.flow).to_path();
  }
  {
    // The retry's cancel + re-hashed restart are one mutation epoch; the
    // restarted flow is latent (backoff), so when several sends re-hash at
    // the same instant their restarts also share one activation cohort.
    net::Network::SolveBatch batch(*ctx_->network);
    ctx_->network->cancel_flow(s.flow);
    AppGate* gate = git == gates_.end() ? nullptr : &git->second;
    if (gate != nullptr) {
      auto& v = gate->active_sends;
      v.erase(std::remove(v.begin(), v.end(), sid), v.end());
    }
    start_flow(sid, gate);
  }
  if (escalate) {
    escalations_->increment();
    if (ctx_->telemetry != nullptr && ctx_->telemetry->enabled()) {
      ctx_->telemetry->timeline().instant(
          track_, "transport", "stall_report", ctx_->loop->now(),
          {{"app", static_cast<std::uint64_t>(report.app.get())},
           {"src_gpu", static_cast<std::uint64_t>(report.src_gpu.get())},
           {"dst_gpu", static_cast<std::uint64_t>(report.dst_gpu.get())},
           {"attempts", static_cast<std::int64_t>(report.attempts)}});
    }
    ctx_->on_transport_stall(report);
  }
}

std::size_t TransportEngine::abort_app(AppId app) {
  auto git = gates_.find(app.get());
  if (git != gates_.end()) {
    ctx_->loop->cancel(git->second.timer);
    gates_.erase(git);
  }
  std::size_t dropped = 0;
  // One batch epoch for the mass cancel: the tenant's flows leave the
  // network at one instant, so the survivors' rates re-solve once, not once
  // per cancelled flow.
  net::Network::SolveBatch batch(*ctx_->network);
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.transfer.app != app) {
      ++it;
      continue;
    }
    ctx_->loop->cancel(it->second.deadline);
    // Waiting (gated) sends have no flow yet; their id stays invalid.
    if (it->second.flow.valid() && ctx_->network->flow_active(it->second.flow)) {
      ctx_->network->cancel_flow(it->second.flow);
    }
    it = inflight_.erase(it);
    ++dropped;
  }
  return dropped;
}

std::size_t TransportEngine::inflight_count(AppId app) const {
  std::size_t n = 0;
  for (const auto& [sid, s] : inflight_) {
    if (s.transfer.app == app) ++n;
  }
  return n;
}

void TransportEngine::set_schedule(AppId app, TrafficSchedule schedule) {
  AppGate& gate = gates_[app.get()];
  gate.schedule = std::move(schedule);
  on_boundary(app);  // apply immediately and arm the timer
}

void TransportEngine::clear_schedule(AppId app) {
  auto it = gates_.find(app.get());
  if (it == gates_.end()) return;
  AppGate& gate = it->second;
  ctx_->loop->cancel(gate.timer);
  // Release everything that was held back — resumes and restarts share one
  // same-instant batch epoch (the restarted flows are latent, so they join
  // an activation cohort; the resumes re-solve once here).
  net::Network::SolveBatch batch(*ctx_->network);
  if (gate.gated_closed) {
    for (std::uint64_t sid : gate.active_sends) {
      auto sit = inflight_.find(sid);
      if (sit == inflight_.end()) continue;
      const FlowId f = sit->second.flow;
      if (ctx_->network->flow_active(f)) ctx_->network->resume_flow(f);
    }
  }
  std::deque<std::uint64_t> waiting = std::move(gate.waiting);
  gates_.erase(it);
  for (std::uint64_t sid : waiting) start_flow(sid, nullptr);
}

void TransportEngine::arm_timer(AppId app, AppGate& gate) {
  if (ctx_->loop->pending(gate.timer)) return;
  // Only keep a timer while there is something to gate: pending sends, or
  // in-flight flows that must pause at the next close. Otherwise the event
  // loop would never drain.
  if (gate.waiting.empty() && gate.active_sends.empty()) return;
  Time boundary = gate.schedule.next_boundary(ctx_->loop->now());
  if (boundary >= kTimeInfinity) return;
  // Guarantee strictly-future firing: floating-point folding can place the
  // boundary at (or epsilon before) `now`, which would livelock the loop.
  boundary = std::max(boundary, ctx_->loop->now() + nanos(100));
  gate.timer = ctx_->loop->schedule_at(boundary, [this, app] { on_boundary(app); });
}

void TransportEngine::on_boundary(AppId app) {
  auto it = gates_.find(app.get());
  if (it == gates_.end()) return;
  AppGate& gate = it->second;
  const bool open = gate.schedule.open_at(ctx_->loop->now());

  // A window boundary gates every in-flight flow of the tenant at one
  // instant: batch the pause/resume burst (and any releases below) into one
  // re-solve.
  net::Network::SolveBatch batch(*ctx_->network);

  // Pause or resume in-flight flows to track the window state.
  gate.active_sends.erase(
      std::remove_if(gate.active_sends.begin(), gate.active_sends.end(),
                     [this](std::uint64_t sid) {
                       auto sit = inflight_.find(sid);
                       return sit == inflight_.end() ||
                              !ctx_->network->flow_active(sit->second.flow);
                     }),
      gate.active_sends.end());
  for (std::uint64_t sid : gate.active_sends) {
    const FlowId f = inflight_.at(sid).flow;
    if (open) {
      ctx_->network->resume_flow(f);
    } else {
      ctx_->network->pause_flow(f);
    }
  }
  gate.gated_closed = !open;

  if (open) {
    std::deque<std::uint64_t> waiting = std::move(gate.waiting);
    gate.waiting.clear();
    for (std::uint64_t sid : waiting) start_flow(sid, &gate);
  }
  arm_timer(app, gate);
}

}  // namespace mccs::svc
