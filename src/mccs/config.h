#pragma once
// Tunable timing model of the MCCS service datapath and control plane.
//
// The paper reports a 50–80 µs end-to-end latency overhead on the datapath
// ("the communication between the application and the MCCS service, as well
// as between the internal engines of the MCCS service, incurs an overall
// latency of 50-80 us", §6.2). The defaults below decompose that figure into
// the hops the implementation actually takes; changing them changes only
// timing, never behaviour.

#include <cstddef>

#include "common/units.h"

namespace mccs::svc {

struct ServiceConfig {
  // --- shim <-> service IPC (shared-memory command queues) -----------------
  /// Shim command queue -> frontend engine delivery.
  Time shim_to_service_latency = micros(15);
  /// Entries per shim command ring (bounded shared-memory queue).
  std::size_t ipc_queue_capacity = 256;
  /// Completion notification back to the shim.
  Time service_to_shim_latency = micros(15);

  // --- internal engine-to-engine hops ---------------------------------------
  /// Frontend engine -> proxy engine work-request hand-off.
  Time engine_hop_latency = micros(10);
  /// Proxy engine -> transport engine per-step hand-off (RDMA post/poll).
  Time transport_step_overhead = micros(8);

  // --- GPU-side costs --------------------------------------------------------
  /// Launch overhead for a communication kernel on the communicator stream.
  Time comm_kernel_launch = micros(5);
  /// Intra-host (shared-memory channel) per-hop latency.
  Time intra_host_hop_latency = micros(4);

  // --- network / connection management --------------------------------------
  /// Per-message latency on a peer-to-peer RDMA connection.
  Time network_hop_latency = micros(5);
  /// Tearing down + re-establishing one peer-to-peer connection (amortised;
  /// connections of one reconfiguration are re-established in parallel).
  Time connection_setup_time = micros(500);
  /// Per-hop latency on the TCP-based control ring used for bootstrap and
  /// the reconfiguration-barrier AllGather.
  Time control_hop_latency = micros(20);
  /// Communicator bootstrap (rendezvous with rank 0, §4.2).
  Time bootstrap_latency = millis(2);

  /// When false, the datapath is timing-only: chunk transfers carry no real
  /// bytes (pair with gpu::DeviceConfig::materialize_memory = false for
  /// large-message benches). Defaults to true: collectives move and reduce
  /// real data.
  bool move_data = true;

  /// Cache compiled collective plans per (comm, kind, count, dtype, root)
  /// across launches (host-side fast path; see mccs/coll_plan.h). Plans are
  /// invalidated on every reconfiguration epoch. Affects host CPU time only,
  /// never simulated timing; `false` rebuilds every plan from scratch (the
  /// cold path bench/micro_datapath measures against).
  bool enable_plan_cache = true;

  // --- fault tolerance (see DESIGN.md "Failure model and recovery protocol") -
  /// Stall detection: each posted chunk gets a no-progress deadline of
  /// `chunk_deadline_slack` x its analytic lower bound (start latency plus
  /// serialization at the path's bottleneck capacity), floored at
  /// `chunk_deadline_floor`. A deadline that fires with progress since the
  /// last check simply re-arms; only a full window of zero progress (and not
  /// QoS-gated) triggers the retry ladder. <= 0 disables detection entirely —
  /// the default, so the healthy path schedules no timers and is bit-for-bit
  /// identical to a build without the machinery.
  double chunk_deadline_slack = 0.0;
  Time chunk_deadline_floor = millis(2);
  /// Retry ladder: a stalled chunk is re-posted under a re-hashed ECMP key
  /// (dropping any pinned explicit route). After `transport_max_retries`
  /// silent attempts the transport escalates to the controller via the
  /// fabric's stall handler; retries continue either way (with linear
  /// backoff, capped at 16x) so a reconfiguration can still drain the
  /// stalled collective over surviving paths.
  int transport_max_retries = 3;
  Time transport_retry_backoff = micros(100);

  // --- telemetry (see DESIGN.md "Telemetry subsystem") -----------------------
  /// Record the virtual-time span/event timeline (frontend/proxy/transport/
  /// netsim flow lifetimes, policy and recovery instants, the link-
  /// utilization sampler) for Chrome-trace export. Off by default: every
  /// recording site sits behind one cheap branch, and with it off the
  /// simulation is byte-identical to a build without the machinery. The
  /// metrics registry (replacing the old ad-hoc counters) is always live
  /// regardless — counters are not gated.
  bool enable_telemetry = false;

  /// ABLATION ONLY: apply reconfiguration commands immediately on receipt,
  /// skipping the Fig.-4 sequence-number barrier. Demonstrates the
  /// correctness failure the protocol exists to prevent (collectives
  /// executing under mixed ring configurations deadlock or corrupt data).
  bool unsafe_immediate_reconfig = false;
};

}  // namespace mccs::svc
