#include "mccs/strategy.h"

#include <algorithm>
#include <unordered_map>

namespace mccs::svc {

std::vector<coll::RingOrder> make_channel_orders(
    const std::vector<int>& base_order, const std::vector<GpuId>& gpus_by_rank,
    const cluster::Cluster& cluster, int num_channels) {
  MCCS_EXPECTS(num_channels >= 1);
  MCCS_EXPECTS(base_order.size() == gpus_by_rank.size());

  // Split the base order into maximal same-host runs.
  struct Run {
    std::size_t begin;
    std::size_t len;
  };
  std::vector<Run> runs;
  std::size_t i = 0;
  const std::size_t n = base_order.size();
  while (i < n) {
    std::size_t j = i + 1;
    const HostId h = cluster.host_of_gpu(
        gpus_by_rank[static_cast<std::size_t>(base_order[i])]);
    while (j < n &&
           cluster.host_of_gpu(gpus_by_rank[static_cast<std::size_t>(base_order[j])]) == h) {
      ++j;
    }
    runs.push_back(Run{i, j - i});
    i = j;
  }

  std::vector<coll::RingOrder> orders;
  orders.reserve(static_cast<std::size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    std::vector<int> order = base_order;
    for (const Run& run : runs) {
      // Rotate the run left by c so channel c exits the host via a different
      // GPU (and its paired NIC).
      std::rotate(order.begin() + static_cast<std::ptrdiff_t>(run.begin),
                  order.begin() + static_cast<std::ptrdiff_t>(
                                      run.begin + static_cast<std::size_t>(c) % run.len),
                  order.begin() + static_cast<std::ptrdiff_t>(run.begin + run.len));
    }
    orders.emplace_back(std::move(order));
  }
  return orders;
}

CommStrategy nccl_default_strategy(const std::vector<GpuId>& gpus_by_rank,
                                   const cluster::Cluster& cluster) {
  MCCS_EXPECTS(!gpus_by_rank.empty());

  // Channels: one per NIC on the busiest host of this communicator.
  std::unordered_map<std::uint32_t, int> per_host;
  int max_local = 1;
  for (GpuId g : gpus_by_rank) {
    max_local = std::max(max_local, ++per_host[cluster.host_of_gpu(g).get()]);
  }

  std::vector<int> identity(gpus_by_rank.size());
  for (std::size_t r = 0; r < identity.size(); ++r) identity[r] = static_cast<int>(r);

  CommStrategy s;
  s.channel_orders =
      make_channel_orders(identity, gpus_by_rank, cluster, max_local);
  return s;
}

}  // namespace mccs::svc
