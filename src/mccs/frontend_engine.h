#pragma once
// Frontend engine (§4.1): one per application per host. Terminates the
// shim's shared-memory command queue, owns the application's GPU memory
// allocations (allocation is redirected to the service, which exports an
// inter-process handle back to the tenant), and validates every buffer a
// collective names before forwarding the work request to the proxy engine —
// the isolation boundary that makes MCCS safe in a multi-tenant cloud.

#include <memory>
#include <unordered_map>
#include <variant>

#include "common/ids.h"
#include "gpusim/runtime.h"
#include "mccs/api.h"
#include "mccs/context.h"
#include "mccs/ipc.h"
#include "mccs/proxy_engine.h"

namespace mccs::svc {

/// Commands a shim posts over its shared-memory ring.
struct CollectiveCommand {
  CommId comm;
  GpuId gpu;
  int nranks = 0;
  WorkRequest request;
};
struct P2pCommand {
  CommId comm;
  GpuId gpu;
  P2pRequest request;
};
using ShimCommand = std::variant<CollectiveCommand, P2pCommand>;

class FrontendEngine {
 public:
  FrontendEngine(ServiceContext& ctx, HostId host, AppId app)
      : ctx_(&ctx), host_(host), app_(app) {}

  FrontendEngine(const FrontendEngine&) = delete;
  FrontendEngine& operator=(const FrontendEngine&) = delete;

  [[nodiscard]] AppId app() const { return app_; }

  /// Allocate device memory on behalf of the tenant; returns the device
  /// pointer obtained by opening the exported IPC handle (§4.1).
  gpu::DevicePtr handle_alloc(GpuId gpu, Bytes size);

  /// Deallocate: the shim closes its side of the handle, then the service
  /// releases the allocation.
  void handle_free(gpu::DevicePtr ptr);

  /// Validate a tenant buffer: it must come from an allocation this
  /// frontend made for this app, and [offset, offset+len) must be in range.
  [[nodiscard]] bool validate(gpu::DevicePtr ptr, Bytes len) const;

  /// Validate the request's buffers and hand it to the GPU's proxy engine
  /// (after the engine-hop latency).
  void handle_collective(CommId comm, GpuId gpu, WorkRequest request, int nranks);

  /// Validate and forward a point-to-point operation.
  void handle_p2p(CommId comm, GpuId gpu, P2pRequest request);

  /// The shared-memory command ring for the shim bound to `gpu` (created on
  /// first use). The frontend is the consumer: commands drain one IPC
  /// latency after the ring goes non-empty.
  CommandQueue<ShimCommand>& command_queue(GpuId gpu);

  [[nodiscard]] std::size_t allocation_count() const { return registry_.size(); }

 private:
  struct AllocInfo {
    GpuId gpu;
    Bytes size;
  };

  static std::uint64_t key(GpuId gpu, MemId mem) {
    return (static_cast<std::uint64_t>(gpu.get()) << 32) | mem.get();
  }

  void consume(ShimCommand command);

  ServiceContext* ctx_;
  HostId host_;
  AppId app_;
  int track_ = -1;  ///< telemetry track, lazily interned (enabled mode only)
  std::unordered_map<std::uint64_t, AllocInfo> registry_;
  std::unordered_map<std::uint32_t, std::unique_ptr<CommandQueue<ShimCommand>>>
      queues_;  ///< by GpuId
};

}  // namespace mccs::svc
